// Package kyrix is a from-scratch Go implementation of Kyrix, the
// end-to-end system for developing scalable details-on-demand data
// exploration applications (Tao et al., CIDR 2019).
//
// The public API mirrors the paper's architecture (Fig. 1):
//
//   - Declare an application with the canvas/layer/jump model
//     ([App], [Canvas], [Layer], [Jump]) and register transform,
//     placement, selector and rendering functions on a [Registry].
//   - [Compile] the spec; the compiler performs the constraint checks
//     of §2.1.
//   - Load data into the embedded DBMS ([NewDB], [DB.Exec],
//     [DB.InsertRow]) — the substrate standing in for PostgreSQL.
//   - Start the backend with [NewServer]; it precomputes both of
//     §3.1's database designs (tuple–tile mapping tables and the bbox
//     spatial index) and serves tiles and dynamic boxes over HTTP with
//     a backend cache.
//   - Drive a frontend with [NewClient]: pan, jump, render; choose the
//     fetching granularity per §3.1 ([DBoxExact], [DBox50],
//     [TileSpatial1024], ...).
//
// # Concurrent serving pipeline
//
// The backend is built to scale with cores, not collapse on one lock:
//
//   - Both caches are sharded: keys are fnv-hashed onto a
//     power-of-two number of independently locked shards. Shard counts
//     are knobs ([ServerOptions].CacheShards, [ClientOptions].CacheShards;
//     0 picks an automatic count, and small budgets collapse to one
//     shard with exact global LRU order). The backend cache adds a
//     frequency-aware admission policy — see "Backend cache admission"
//     below.
//   - Identical concurrent tile/box requests are coalesced
//     (singleflight): one database query runs, every caller shares the
//     payload. Disable with [ServerOptions].DisableCoalescing for
//     ablations.
//   - [NewServer] materializes layers in parallel under a bounded
//     worker pool ([ServerOptions].PrecomputeParallelism, 0 =
//     GOMAXPROCS); the first error wins.
//   - The server keeps a prepared-plan cache: each layer's constant
//     statement shapes are parsed once and re-executed with fresh '?'
//     arguments, skipping the SQL parser on the hot path.
//
// # Backend cache admission (W-TinyLFU)
//
// The backend cache is more than a sharded LRU: with
// [ServerOptions].CacheAdmission set to "lfu" (the
// [DefaultServerOptions] setting) it is a frequency-aware admitting
// cache in the W-TinyLFU family. Each shard keeps a 4-bit count-min
// sketch of access frequencies — every lookup, hit or miss, is
// recorded, and the sketch is aged by periodic halving so yesterday's
// hot keys decay — plus a small probationary window in front of a
// segmented main area (probation/protected). While the cache is under
// its byte budget everything is admitted; once the budget is
// contended, a new entry must be estimated strictly more frequent
// than the would-be victim (the main area's LRU entry) to displace
// it. The effect on skewed multi-tenant traffic is exactly what the
// 500 ms budget needs: a one-shot sequential scan (a cold dbox sweep,
// a crawler) is rejected wholesale and cannot flush the hot tile set,
// while a genuinely popular key is admitted on its second touch.
// Entries re-accessed in the window or probation graduate to the
// protected segment (capped at 4/5 of a shard's share; overflow
// demotes back to probation). Knobs: [ServerOptions].CacheAdmission
// ("lfu"|"off" — "off" keeps the plain sharded LRU) and
// [ServerOptions].CacheSketchCounters (sketch size, 0 = derived from
// the budget). The cache's Stats expose Admitted/Rejected gate
// decisions, surfaced by GET /stats.
//
// Two invariants hold regardless of policy. First, the byte budget is
// hard: after every Put, resident bytes <= budget — eviction tries
// the inserting shard, then a cross-shard steal, and finally drops
// the just-inserted entry itself rather than over-committing. Second,
// the cross-shard steal is capped at a fair share: no neighbor shard
// is drained below (budget - incoming)/shards by someone else's
// insert, so one oversized value cannot empty a warm neighbor. The
// adversarial workloads behind these guarantees ship with the bench:
// `kyrix-bench -clients ... -workload zipf|scan|mixed -admission
// lfu|off` compares hit ratios policy-by-policy on the same trace.
//
// [ServerOptions].CacheDoorkeeper adds a bloom-filter doorkeeper in
// front of the sketch: a key's first sighting per decay period sets
// bloom bits instead of count-min counters, so one-hit wonders cannot
// inflate the sketch and — through counter collisions — make unrelated
// cold keys look admissible. The filter clears on every sketch decay;
// estimates transparently count the bloom bit as one sighting.
//
// # Persistent tile store (L2)
//
// Setting [ServerOptions].Cache.L2.Path enables a second cache tier
// under the in-memory one: an embedded single-writer log-structured KV
// store (internal/store) holding encoded, post-render tile/box
// payloads across restarts — a redeployed node re-serves its working
// set from local disk instead of stampeding the database cold.
//
//   - Record format. The store is a directory of size-bounded segment
//     files; each segment reuses the WAL's length-prefixed CRC-32
//     framing, and each record is one storage-codec row
//     {generation, kind, key, payload}. Reads are checksum-verified
//     end to end: a torn or corrupt record is a cache miss, never bad
//     bytes. An in-memory key→(segment,offset) index is rebuilt on
//     open by replaying the segments.
//   - Write-behind semantics. The serving path never waits on L2: an
//     L1 miss reads L2 before the database, and fills (database or
//     peer) are enqueued on a bounded queue flushed by one background
//     writer in batches (a full batch or Cache.L2.FlushInterval — one
//     fsync per batch). A full queue drops the fill; losing a write
//     costs a future disk miss, never correctness. [Instance.Close]
//     drains the queue (bounded by a deadline), so a fill accepted
//     just before shutdown is readable after restart.
//   - Invalidation by generation prefix. Every record carries the
//     generation it was written under; /update and cluster epoch
//     adoptions append one fsynced generation marker that makes every
//     earlier record invisible — in O(1), without touching records on
//     disk, and durably across restarts. Eviction (oldest segment
//     first, salvaging still-live records within the byte budget)
//     reclaims the dead space, doubling as compaction.
//
// Knobs: [ServerOptions].Cache.L2 Path/MaxBytes/SegmentBytes/
// WriteQueueDepth/FlushInterval; GET /stats reports the tier under
// cache.l2 ([StatsSnapshot]). `kyrix-bench -restart -l2dir DIR`
// measures the restart benefit (the committed BENCH_restart_*.json
// artifacts), and BenchmarkColdStart guards it in CI.
//
// # Cache configuration migration (CacheOptions)
//
// The flat [ServerOptions] fields CacheBytes, CacheShards,
// CacheAdmission, CacheSketchCounters and CacheDoorkeeper are
// deprecated aliases of the nested [CacheOptions] ([ServerOptions].Cache):
// Cache.L1.Bytes, Cache.L1.Shards, Cache.L1.Admission,
// Cache.L1.SketchCounters, Cache.L1.Doorkeeper. Precedence is
// field-by-field: an explicitly set (non-zero) nested field wins, a
// zero nested field falls back to its flat alias — so existing call
// sites keep configuring exactly what they did, and new code should
// write the nested form. Note that [DefaultServerOptions] populates
// the nested struct: callers starting from it must override
// Cache.L1.* (overriding a flat alias would lose to the nested
// default).
//
// # Clustered serving
//
// One process, however well sharded, is one machine. With
// [ServerOptions].Cluster ([ClusterOptions]: Self, Peers,
// VirtualNodes, HotReplicate) N backends form a serving tier in the
// groupcache mold, assuming a shared (or identically loaded) backing
// store:
//
//   - Ownership. Every canonical cache key (layer+tile, layer+box —
//     the same strings the backend cache stores) maps to exactly one
//     owner node on a consistent-hash ring with virtual nodes. Node
//     join/leave remaps only ~K/N keys (property-tested in
//     internal/cluster), so growing the tier does not restart the
//     world.
//   - Peer fill. A node that misses its cache on a key it does not
//     own forwards the request to the owner's /peer endpoint instead
//     of querying the database. The reply reuses the wire v3 frame
//     codec (one frame: status byte, bounded DEFLATE when worth it).
//     Transport is pooled HTTP with per-peer bounded concurrency and
//     a hard timeout; any peer failure degrades to a local database
//     query — a slow or dead peer costs latency, never availability.
//   - Cross-node singleflight. The non-owner's concurrent identical
//     misses coalesce onto one peer exchange, and the owner dedupes
//     that exchange against its own misses via the generation-scoped
//     flight keys — so one database query serves the entire cluster
//     per key per generation (asserted under -race in the server
//     tests).
//   - Hot-key replication. A non-owned key whose sketch frequency
//     crosses HotReplicate is admitted into the local cache after a
//     peer fill, so a viral viewport is served everywhere locally
//     instead of bottlenecking its owner; the long tail stays
//     owner-only and aggregate cache capacity scales with N.
//   - Invalidation. /update bumps the updating node's component of a
//     per-origin epoch vector (a G-counter: only the origin advances
//     its own counter, so concurrent updates at different nodes can
//     neither collide nor erase each other) carried on every peer
//     request and response header; a node observing any advanced
//     component clears its cache and bumps its generation (staleness
//     is bounded by one peer exchange). Cross-epoch v3 delta frames
//     are refused: non-owned dbox items always ship full frames,
//     because the id-based delta diff cannot prove a cross-epoch base
//     safe.
//
// `kyrix-server -self URL -peers URL,URL,...` joins a real node;
// `kyrix-bench -nodes N -workload zipf` runs the in-process scaling
// demonstration (per-node hit%/fill%/dbq columns, BENCH JSON via
// -json). The committed BENCH_cluster_{1,2}node.json artifacts show
// cluster-wide db-queries/step for two nodes below the one-node
// baseline at parity p50 latency.
//
// # Replicated updates
//
// The cluster section above shares reads; [ClusterOptions].Replog
// ([ReplogOptions]: Dir, ElectionTimeout, Heartbeat, SubmitTimeout)
// replicates writes. With a Dir set, every node runs a member of a
// leader-based replicated log (internal/replog — a minimal Raft
// subset, no external dependency): POST /update on any node is
// forwarded to the leader, appended as a term-numbered log command,
// acknowledged only once a quorum of members has it durably in their
// WALs, and then applied on every node in log order. The apply
// callback executes the SQL and performs the local epoch bump + L1/L2
// invalidation, replacing the gossip-style epoch vector on the write
// path — replicated clusters get one total order of updates instead
// of eventual convergence.
//
//   - Durability. Each member persists the log through the same
//     length-prefixed CRC-32 WAL framing the store uses: an
//     append-only term/vote file (meta.kyx) and a truncatable entry
//     log (replog.kyx) under Dir. A restarted node replays its
//     committed prefix through the apply callback before serving, so
//     an acked update survives any minority of crashes — and full
//     restarts, since the entries are on every quorum member's disk.
//   - Failover. Followers detect a dead leader by heartbeat silence
//     (randomized election timeouts prevent split votes; a live
//     leader's followers refuse votes, so a rejoining node cannot
//     depose it) and elect a replacement that first commits a no-op to
//     discover the durable frontier. Clients see 503 during the
//     election window; an update acked before the kill is never lost.
//     A 503 is ambiguous — the update may have committed before the
//     error — so each update carries an idempotency key the log
//     dedupes retries on (the forwarding path mints one per request;
//     clients needing retry-safety across their own re-POSTs set "id"
//     in the /update body), making a keyed retry exactly-once even for
//     non-idempotent SQL.
//   - Standalone. A single-member log (Self unset, Dir set) commits
//     with quorum 1 — the same durable, replayable /update without
//     cluster networking, which is also the crash-recovery story for
//     one node.
//
// GET /stats reports the member under replog (role, term, leader,
// last/commit/applied indexes) and per-peer transport health under
// cluster.peers (failure counts, breaker state). `kyrix-server
// -replog-dir DIR` joins a real member; `kyrix-bench -failover` runs
// the 3-node kill-the-leader measurement (steady vs failover tile
// p50, election-bridge time, updates lost — contractually 0; the
// committed BENCH_failover.json artifact), and the chaos tests in
// internal/experiments (leader kill, partition, full-cluster restart)
// assert zero committed-update loss under -race in CI's chaos-smoke
// job.
//
// # Auto-LOD layers (aggregation pyramid)
//
// A separable layer declared with "lod": "auto" ([Layer].LOD) gets a
// per-zoom-level aggregation pyramid at precompute time, the Kyrix-S
// direction: any viewport at any zoom scans a bounded number of rows.
//
//   - Pyramid layout. Level ℓ partitions the canvas into square cells
//     of side baseCell·2^ℓ ([PrecomputeOptions].LODBaseCell, default
//     64). Each cell stores one materialized row: the cell's
//     representative base row (smallest id — so the base-schema prefix,
//     id/x/y/..., decodes exactly like a raw row) with appended
//     aggregate columns lod_count (rows in the cell), lod_sum (first
//     non-coordinate numeric column), and lod_minx/miny/maxx/maxy (the
//     union of the member rows' rendered boxes, R-tree indexed).
//     Levels are built until a level's full-canvas cell count fits the
//     row budget ([PrecomputeOptions].LODRowBudget, default 4096).
//     Level 0 aggregates the base table; each coarser level folds 2×2
//     child cells, keeping the heaviest child's representative.
//   - Level selection. A tile or dbox window routes to the coarsest
//     need: if the layer's row density times the window area fits the
//     budget, raw rows are served; otherwise the finest level whose
//     cell count inside the window fits the budget. The rule is a pure
//     function of the window and per-layer constants, so cache keys,
//     cluster ownership and the wire protocols need no level
//     component — cached pyramid tiles flow through the W-TinyLFU
//     cache, peer fills and v3 compression unchanged (v3 delta frames
//     are gated on base and new box selecting the same level: the same
//     representative id carries different aggregates across levels).
//   - Build. The pyramid is built by the work-stealing precompute pool
//     (internal/fetch): level 0 is split into disjoint cell-column
//     stripes, stolen across [PrecomputeOptions].LODWorkers workers
//     (0 = GOMAXPROCS), and bulk-inserted in batches; a failure in any
//     layer cancels the in-flight builds of every other layer.
//
// The bounded-row property is measured by `kyrix-bench -lodsweep`
// (same zoom workload at 1× and 10× dataset scale; the committed
// BENCH_lod_{off,on}.json artifacts) and guarded by BenchmarkLODZoom
// in CI's bench-regression job. GET /app advertises lod/lodLevels per
// layer; GET /stats exposes lodQueries and dbRowsScanned.
//
// # Batch endpoint, protocol v1 (buffered JSON, tiles only)
//
// POST /batch fetches many tiles of one layer in a single round trip.
// Request body (design defaults to "spatial", codec to "json"):
//
//	{"canvas":"main","layer":0,"size":256,"design":"spatial",
//	 "codec":"json","tiles":[{"col":0,"row":0},{"col":1,"row":0}]}
//
// Response, tiles in request order; data is the same payload a single
// GET /tile would return, base64-encoded inside the JSON envelope, and
// err is set per tile instead of failing the whole batch:
//
//	{"tiles":[{"col":0,"row":0,"data":"..."},
//	          {"col":1,"row":0,"err":"..."}]}
//
// At most 256 tiles per request. The frontend uses it when
// [ClientOptions].BatchSize > 1, both for viewport fetches and for
// [Client.PrefetchTiles] cache warming.
//
// # Batch endpoint, protocol v2 (binary framed stream, tiles + dboxes)
//
// Protocol v2 removes v1's two costs — base64 (~33% wire overhead) and
// whole-response buffering — and widens the batch to dynamic boxes, so
// a multi-layer canvas viewport is served in exactly one round trip.
// The request is still a JSON POST to /batch, now with "v":2 and a
// heterogeneous item list, each item addressing its own layer of one
// canvas:
//
//	{"v":2,"canvas":"main","codec":"binary","items":[
//	 {"kind":"tile","layer":0,"size":256,"col":0,"row":0},
//	 {"kind":"dbox","layer":1,"minx":0,"miny":0,"maxx":900,"maxy":700}]}
//
// The response is a binary stream (Content-Type
// application/x-kyrix-batch-v2), flushed frame by frame as sub-results
// complete so the client renders layers as they arrive. All integers
// are unsigned varints:
//
//	header:  magic "KYXB" | version 0x02 | item count
//	frame:   index | kind (1B: 0=tile 1=dbox) | status (1B) |
//	         payload length | payload
//
// Frames arrive in completion order; index maps a frame to its item.
// Status 0 (OK) carries the item's payload in the request codec — the
// exact bytes a single GET /tile or /dbox would return, no base64;
// statuses 1 (bad request) and 2 (internal) carry a UTF-8 message, and
// failures stay per-frame instead of failing the batch. The stream
// ends after exactly `item count` frames; an earlier EOF is a
// truncated stream. Versioning: the magic names the framed family, the
// version byte bumps on incompatible layout changes, and decoders
// reject versions they do not know. At most 256 items per request;
// the frontend splits (and, past the first negotiated exchange,
// overlaps) larger viewports across multiple round trips.
//
// # Batch protocol v3 (per-frame compression + delta boxes)
//
// Protocol v3 attacks the remaining wire cost: frames still ship whole
// payloads even when the client already holds almost all of the rows
// (successive viewports of a pan session overlap heavily — the
// Kyrix-S observation). The request is the same JSON POST with "v":3,
// optionally "comp":"off" to disable compression, and dbox items may
// declare a base box the client holds:
//
//	{"v":3,"canvas":"main","codec":"binary","items":[
//	 {"kind":"dbox","layer":0,"minx":200,"miny":0,"maxx":1200,"maxy":800,
//	  "base":{"minx":0,"miny":0,"maxx":1000,"maxy":800,"id":"e5f1a9..."}}]}
//
// The response stream (Content-Type application/x-kyrix-batch-v3) adds
// one codec byte per frame after the status:
//
//	header:  magic "KYXB" | version 0x03 | item count
//	frame:   index | kind (1B) | status (1B) |
//	         codec (1B: 0=raw 1=flate 2=delta 3=delta+flate) |
//	         payload length | payload
//
// Flate payloads are DEFLATE streams of the raw payload, emitted only
// when a cheap size/entropy heuristic says compression will pay;
// decompression is bounded, so a corrupt or hostile length can never
// become a decompression bomb. Delta payloads carry the byte size and
// content hash of the full payload they replace, a tombstone list (ids
// of rows leaving the base box) and the entering rows as a nested
// payload: the client reconstructs base − tombstones + entering, which
// is row-for-row the full result. The "id" is the FNV-64a hash of the
// exact payload bytes the client holds; the server only delta-encodes
// when its cached copy of the base hashes identically, so stale bases
// (after an /update), evicted bases, low overlap, or a delta bigger
// than the full payload all degrade to a full frame — the delta is an
// optimization, never a correctness dependency. Error frames are
// always raw.
//
// [ClientOptions].BatchProtocol negotiates ([ProtocolAuto],
// [ProtocolV1], [ProtocolV2], [ProtocolV3]): in auto mode dbox-scheme
// clients (and tile clients with BatchSize > 1) speak v3 and walk the
// ladder down (v3 -> v2 -> v1, each downgrade remembered) when the
// backend rejects a version; forcing a version is an option.
// [ClientOptions].Compression ([CompressionAuto], [CompressionOff])
// negotiates per-request compression. The concurrent bench
// (`kyrix-bench -clients ... -proto 1|2|3 -scheme dbox`) reports wire
// bytes, compression ratio and time-to-first-frame for all protocols,
// and `kyrix-bench -json` writes the sweep to a BENCH_<label>.json
// artifact.
//
// # Observability
//
// The backend instruments its own serving pipeline end to end
// (internal/obs, stdlib-only): request tracing, Prometheus-format
// metrics, and a flight recorder of slow requests, all mounted on the
// serving mux and all on by default ([ObsOptions] on
// ServerOptions.Obs turns pieces off or sizes them).
//
// Tracing: every request handler opens a root span and the pipeline
// stages it passes through become children — the span taxonomy is
// http.tile / http.dbox / http.batch / http.update roots over item,
// l2.read, db.query, peer.fetch, peer.serve, delta.plan, compress and
// flush children, with attributes (cache tier hit, LOD level, rows,
// applied/skipped) on the span that decided them. Trace context
// crosses process boundaries in the X-Kyrix-Trace header, and a peer
// ships its finished subtree back in X-Kyrix-Trace-Spans, so a
// cluster fill records ONE stitched trace on the requesting node:
// http.tile -> peer.fetch -> the owner's peer.serve -> db.query. The
// frontend client joins in when [ClientOptions].Tracer is set — each
// Load/Pan opens an "interaction" span (time-to-first-frame and
// request counts as attributes) whose context is stamped onto /batch
// POSTs, parenting the server's work under the user-visible
// interaction. Replog RPCs carry the same header, so a follower's
// vote or append lands under the leader's trace.
//
// Metrics: GET /metrics serves the Prometheus text exposition —
// fixed-bucket per-stage latency histograms
// (kyrix_stage_duration_seconds{stage=...}, observed on the serving
// path whether or not tracing is enabled) plus every counter /stats
// reports, re-rendered at scrape time from the same atomics so the
// two surfaces cannot disagree. GET /stats (schema v2) gains
// uptimeSeconds and build info; ?v=1 keeps the legacy flat map,
// golden-tested. A scrape costs one registry walk; the hot path pays
// two atomic adds per stage.
//
//	curl -s localhost:8080/metrics | grep kyrix_stage
//	curl -s localhost:8080/debug/requests | jq '.slowest[0]'
//
// Flight recorder: /debug/requests returns the N most recent and N
// slowest completed root spans as JSON trees (N =
// ObsOptions.FlightRecorderSize, default 64) — the "what was that
// spike" tool, lock-cheap enough to leave on in production.
// kyrix-server exposes the knobs as -no-trace, -flight-recorder and
// -pprof (opt-in net/http/pprof); kyrix-bench embeds the final
// per-stage p50/p95/p99 into its -json BENCH artifact and dumps the
// flight recorder with -slowdump. CI's obs-smoke job boots a backend,
// drives a batched sweep, and validates the scrape; the bench job
// tracks BenchmarkObsOverhead (tracing on vs off over the hot HTTP
// tile path) so the instrumentation budget (<3% p50) holds across
// PRs.
//
// # Static analysis (kyrix-vet)
//
// The invariants the sections above rely on — lock discipline, bounded
// decompression, cancellable scans, load-bearing durability errors,
// stoppable background work — are mechanized as five custom analyzers
// in internal/analysis, driven by cmd/kyrix-vet either standalone
// (`go run ./cmd/kyrix-vet ./...`) or through the vet driver
// (`go build -o kyrix-vet ./cmd/kyrix-vet && go vet -vettool=./kyrix-vet ./...`).
// CI's static-analysis job gates every change on both go vet and
// kyrix-vet.
//
//   - guardedby: a struct field annotated `// guarded by mu` may only
//     be accessed in functions that lock mu first, follow the *Locked
//     caller-holds-lock naming convention, or operate on a locally
//     constructed value. Mechanizes the lock discipline the sharded
//     cache, replog and store depend on.
//   - boundedread: io.ReadAll over a reader of unknown size and direct
//     flate/gzip/zlib reader construction are forbidden outside
//     internal/wire — bound with io.LimitReader/http.MaxBytesReader or
//     decompress through wire.Decompress, which enforces a byte
//     budget. The standing form of the v3 decompression-bomb defense.
//   - ctxloop: a function handed a context must stay cancellable — row
//     scans (loops over []storage.Row) and unconditional for{} loops
//     must observe ctx, and context.Background()/TODO() must not cut
//     the caller's cancellation chain. The standing form of the
//     Materialize cancellation fix.
//   - walerr: errors from wal/store methods are durability signals; a
//     bare call, defer, or go statement that discards one is flagged.
//     Assigning to _ is the visible, greppable opt-out.
//   - lifecycle: time.Tick never (its ticker is unstoppable); a
//     NewTicker result must be stopped or handed off; goroutines
//     launched from long-lived types (method set has Close/Stop/
//     Shutdown) must have a drain tie — channel receive, select,
//     context, WaitGroup — so Close actually ends them.
//
// Analysis covers production code only (_test.go files are skipped).
// A false positive is suppressed inline with `//lint:ignore-kyrix
// <analyzer> <reason>` on or directly above the flagged line; the
// reason is mandatory, and a reasonless directive is itself a finding.
// The analyzers are tested against fixtures in
// internal/analysis/testdata, and TestRepoClean pins the tree at zero
// findings.
//
// The experiment harness that regenerates the paper's Figures 6 and 7
// lives in internal/experiments and is exposed through cmd/kyrix-bench
// and the root bench_test.go; `kyrix-bench -clients 1,8,32` measures
// the concurrent serving pipeline under parallel frontends.
package kyrix

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
	"kyrix/internal/server"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
)

// InteractiveBudget is the 500 ms response-time goal of §1/§3.
const InteractiveBudget = frontend.InteractiveBudget

// Declarative model (§2.1).
type (
	// App is the root of a Kyrix specification.
	App = spec.App
	// Canvas is an arbitrary-size worksheet with overlaid layers.
	Canvas = spec.Canvas
	// Layer is one overlaid layer of a canvas.
	Layer = spec.Layer
	// Transform is a layer's data specification (SQL + row transform).
	Transform = spec.Transform
	// ColumnSpec declares one transform output column.
	ColumnSpec = spec.ColumnSpec
	// Placement locates data objects on the canvas (§3.1/§3.2).
	Placement = spec.Placement
	// Jump is a customized transition between canvases.
	Jump = spec.Jump
	// JumpType enumerates transition types.
	JumpType = spec.JumpType
	// Registry resolves function names used in specs.
	Registry = spec.Registry
	// CompiledApp is a validated spec with functions resolved.
	CompiledApp = spec.CompiledApp
)

// Jump types (geometric zoom, semantic zoom, or both).
const (
	GeometricZoom         = spec.GeometricZoom
	SemanticZoom          = spec.SemanticZoom
	GeometricSemanticZoom = spec.GeometricSemanticZoom
)

// NewRegistry returns an empty function registry.
func NewRegistry() *Registry { return spec.NewRegistry() }

// Compile validates an app spec against a registry (§2.1's compiler).
func Compile(app *App, reg *Registry) (*CompiledApp, error) {
	return spec.Compile(app, reg)
}

// ParseSpec parses a JSON app spec.
func ParseSpec(data []byte) (*App, error) { return spec.FromJSON(data) }

// Embedded DBMS (the PostgreSQL stand-in).
type (
	// DB is the embedded relational database.
	DB = sqldb.DB
	// Row is one tuple.
	Row = storage.Row
	// Value is one dynamically typed cell.
	Value = storage.Value
)

// NewDB creates an empty embedded database.
func NewDB() *DB { return sqldb.NewDB() }

// Value constructors.
var (
	// Int builds an integer value.
	Int = storage.I64
	// Float builds a float value.
	Float = storage.F64
	// Text builds a string value.
	Text = storage.Str
	// Boolean builds a bool value.
	Boolean = storage.Bool
)

// Backend (Fig. 1's "Backend Server").
type (
	// Server is the Kyrix backend.
	Server = server.Server
	// ServerOptions configures precomputation and the backend cache.
	ServerOptions = server.Options
	// PrecomputeOptions selects which physical structures are built at
	// startup (ServerOptions.Precompute). The alias makes the knobs
	// constructible by external module consumers, who cannot import
	// the internal package the struct lives in.
	PrecomputeOptions = fetch.Options
	// IndexKind selects the index structure on the tuple–tile mapping
	// table (PrecomputeOptions.MappingIndex).
	IndexKind = sqldb.IndexKind
	// ClusterOptions joins a backend to a serving cluster
	// (ServerOptions.Cluster): consistent-hash tile ownership with
	// peer cache fill — see the "Clustered serving" section above.
	ClusterOptions = server.ClusterOptions
	// ReplogOptions configures the replicated update log
	// (ClusterOptions.Replog): setting Dir turns /update into a
	// quorum-committed log command — see "Replicated updates" above.
	ReplogOptions = server.ReplogOptions
	// CacheOptions nests the backend cache configuration
	// (ServerOptions.Cache): L1 is the in-memory W-TinyLFU/LRU tier,
	// L2 the persistent tile store — see "Persistent tile store (L2)"
	// above for the migration from the deprecated flat fields.
	CacheOptions = server.CacheOptions
	// L1CacheOptions configures the in-memory backend cache tier.
	L1CacheOptions = server.L1CacheOptions
	// L2CacheOptions configures the persistent tile store tier.
	L2CacheOptions = server.L2CacheOptions
	// StatsSnapshot is the versioned structured GET /stats response
	// (schema v2); GET /stats?v=1 still serves the legacy flat map.
	StatsSnapshot = server.StatsSnapshot
	// ObsOptions configures the observability layer
	// (ServerOptions.Obs): tracing + flight recorder depth + pprof —
	// see the "Observability" section above. The zero value traces with
	// a 64-deep recorder and no pprof.
	ObsOptions = server.ObsOptions
)

// Mapping-table index kinds (§3.1 compares B-tree and hash).
const (
	IndexBTree = sqldb.IndexBTree
	IndexHash  = sqldb.IndexHash
)

// DefaultPrecomputeOptions builds both §3.1 database designs with the
// paper's three tile sizes — the Precompute field of
// DefaultServerOptions, exposed so callers can start from it and
// adjust single knobs.
func DefaultPrecomputeOptions() PrecomputeOptions {
	return server.DefaultOptions().Precompute
}

// NewServer precomputes every layer and returns a ready backend.
func NewServer(db *DB, ca *CompiledApp, opts ServerOptions) (*Server, error) {
	return server.New(db, ca, opts)
}

// DefaultServerOptions builds both §3.1 database designs with the
// paper's three tile sizes.
func DefaultServerOptions() ServerOptions { return server.DefaultOptions() }

// Frontend (Fig. 1's "Frontend").
type (
	// Client is a frontend instance.
	Client = frontend.Client
	// ClientOptions selects the fetching scheme, codec and cache size.
	ClientOptions = frontend.Options
	// FetchReport is one interaction's measured data fetching.
	FetchReport = frontend.FetchReport
	// RenderFunc draws one data object.
	RenderFunc = frontend.RenderFunc
	// LayerMeta is what the frontend knows about one layer (schema,
	// placement parameters, renderer name); renderers receive it.
	LayerMeta = server.LayerMeta
)

// Batch wire protocol selection for [ClientOptions].BatchProtocol:
// auto-negotiate v3 with a remembered v2-then-v1 fallback ladder, or
// force a version.
const (
	ProtocolAuto = frontend.ProtocolAuto
	ProtocolV1   = frontend.ProtocolV1
	ProtocolV2   = frontend.ProtocolV2
	ProtocolV3   = frontend.ProtocolV3
)

// Per-frame compression selection for [ClientOptions].Compression
// (batch protocol v3).
const (
	CompressionAuto = frontend.CompressionAuto
	CompressionOff  = frontend.CompressionOff
)

// NewClient connects a frontend to a backend URL.
func NewClient(baseURL string, ca *CompiledApp, opts ClientOptions) (*Client, error) {
	return frontend.NewClient(baseURL, ca, opts)
}

// DefaultClientOptions uses dynamic boxes with a 64 MB frontend cache.
func DefaultClientOptions() ClientOptions { return frontend.DefaultOptions() }

// Fetching granularities (§3.1).
type Granularity = fetch.Granularity

// The paper's eight fetching schemes plus helpers.
var (
	// DBoxExact fetches exactly the viewport per move.
	DBoxExact = fetch.DBoxExact
	// DBox50 fetches a box 50% larger than the viewport.
	DBox50 = fetch.DBox50
	// TileSpatial256/1024/4096: static tiles over the spatial index.
	TileSpatial256  = fetch.TileSpatial256
	TileSpatial1024 = fetch.TileSpatial1024
	TileSpatial4096 = fetch.TileSpatial4096
	// TileMapping256/1024/4096: static tiles over tuple–tile mapping.
	TileMapping256  = fetch.TileMapping256
	TileMapping1024 = fetch.TileMapping1024
	TileMapping4096 = fetch.TileMapping4096
)

// Instance is a running in-process Kyrix application: backend on a
// loopback listener plus a connected frontend — the one-call setup for
// examples and embedding.
type Instance struct {
	DB      *DB
	Server  *Server
	Client  *Client
	BaseURL string

	ln   net.Listener
	hsrv *http.Server
}

// Launch compiles app, precomputes, serves on 127.0.0.1 and connects a
// client. Callers own db contents (load tables before Launch).
func Launch(db *DB, app *App, reg *Registry, srvOpts ServerOptions, cliOpts ClientOptions) (*Instance, error) {
	ca, err := Compile(app, reg)
	if err != nil {
		return nil, err
	}
	srv, err := NewServer(db, ca, srvOpts)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("kyrix: listen: %w", err)
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = hsrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	cli, err := NewClient(base, ca, cliOpts)
	if err != nil {
		// Close the listener explicitly as well: hsrv.Close only knows
		// about ln once Serve has registered it, and that goroutine may
		// not have run yet — relying on it alone leaked the listener.
		_ = hsrv.Close()
		_ = ln.Close()
		return nil, err
	}
	return &Instance{
		DB: db, Server: srv, Client: cli, BaseURL: base,
		ln: ln, hsrv: hsrv,
	}, nil
}

// CloseGrace bounds how long Close waits for in-flight requests —
// /batch streams mid-frame in particular — to drain before forcing
// connections shut.
const CloseGrace = 5 * time.Second

// Close shuts the instance down gracefully: the listener stops
// accepting immediately, in-flight requests (streaming /batch
// responses included) get up to CloseGrace to complete, and only then
// are surviving connections force-closed. Draining instead of
// snapping the listener shut removes the connection-reset race that
// concurrent tests could trip over, and is what lets a cluster node
// leave without failing the peer fills it is mid-way through serving.
// It is idempotent.
func (in *Instance) Close() error {
	if in.hsrv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), CloseGrace)
	err := in.hsrv.Shutdown(ctx)
	cancel()
	if err != nil {
		// Grace expired (or Shutdown failed): force the stragglers.
		_ = in.hsrv.Close()
	}
	// Shutdown/Close cover listeners Serve has registered, but a
	// listener whose Serve goroutine has not started yet is not
	// registered — close it directly (double-close yields ErrClosed,
	// ignored).
	if in.ln != nil {
		if cerr := in.ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) && err == nil {
			err = cerr
		}
		in.ln = nil
	}
	in.hsrv = nil
	// Only after the HTTP side has drained: release the backend's own
	// resources. Crucially this flushes the persistent tile store's
	// write-behind queue (bounded by its drain deadline), so a fill
	// accepted moments before Close is readable after the next start.
	if in.Server != nil {
		if serr := in.Server.Close(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// WithinBudget reports whether a fetch report met the 500 ms goal.
func WithinBudget(rep FetchReport) bool { return rep.Duration <= InteractiveBudget }

// Version identifies this implementation.
const Version = "kyrix-go 1.0 (CIDR'19 reproduction)"
