package kyrix_test

import (
	"net"
	"testing"

	"kyrix"
	"kyrix/internal/fetch"
	"kyrix/internal/sqldb"
)

// buildDemo loads a small scatter dataset and returns the app pieces —
// the same shape a downstream user of the public API writes.
func buildDemo(t testing.TB, n int) (*kyrix.DB, *kyrix.App, *kyrix.Registry) {
	t.Helper()
	db := kyrix.NewDB()
	if _, err := db.Exec("CREATE TABLE pts (id INT, x DOUBLE, y DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// A 45x45 grid spanning the whole 2048x2048 canvas.
		err := db.InsertRow("pts", kyrix.Row{
			kyrix.Int(int64(i)),
			kyrix.Float(float64(i%45) * 45),
			kyrix.Float(float64(i/45) * 45),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &kyrix.App{
		Name: "demo",
		Canvases: []kyrix.Canvas{{
			ID: "main", W: 2048, H: 2048,
			Transforms: []kyrix.Transform{{
				ID: "t", Query: "SELECT * FROM pts",
				Columns: []kyrix.ColumnSpec{
					{Name: "id", Type: "int"},
					{Name: "x", Type: "double"},
					{Name: "y", Type: "double"},
				},
			}},
			Layers: []kyrix.Layer{{
				TransformID: "t",
				Placement:   &kyrix.Placement{XCol: "x", YCol: "y", Radius: 2},
				Renderer:    "dots",
			}},
		}},
		InitialCanvas: "main", InitialX: 1024, InitialY: 1024,
		ViewportW: 512, ViewportH: 512,
	}
	return db, app, reg
}

func TestLaunchEndToEnd(t *testing.T) {
	db, app, reg := buildDemo(t, 2000)
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
	}, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	rep, err := inst.Client.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 {
		t.Fatal("load fetched nothing")
	}
	if !kyrix.WithinBudget(rep) {
		t.Fatalf("local load over budget: %v", rep.Duration)
	}
	rep, err = inst.Client.PanBy(600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 1 {
		t.Fatalf("pan requests = %d", rep.Requests)
	}
	rows, err := inst.Client.ObjectsInViewport(0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("objects: %v, %d rows", err, len(rows))
	}
	// Double close is safe.
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchCompileError(t *testing.T) {
	db, app, reg := buildDemo(t, 10)
	app.InitialCanvas = "missing"
	if _, err := kyrix.Launch(db, app, reg, kyrix.DefaultServerOptions(), kyrix.DefaultClientOptions()); err == nil {
		t.Fatal("bad spec must fail Launch")
	}
}

func TestSpecJSONThroughPublicAPI(t *testing.T) {
	_, app, reg := buildDemo(t, 1)
	data, err := app.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := kyrix.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kyrix.Compile(back, reg); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeAliases(t *testing.T) {
	if kyrix.DBoxExact.Name() != "dbox" || kyrix.TileMapping4096.Name() != "tile mapping 4096" {
		t.Fatal("scheme aliases wrong")
	}
	var _ kyrix.Granularity = kyrix.DBox50
	if kyrix.TileSpatial256.TileSize != 256 || kyrix.TileSpatial1024.TileSize != 1024 {
		t.Fatal("tile sizes wrong")
	}
}

func TestValueConstructors(t *testing.T) {
	db := kyrix.NewDB()
	if _, err := db.Exec("CREATE TABLE v (a INT, b DOUBLE, c TEXT, d BOOL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO v VALUES (?, ?, ?, ?)",
		kyrix.Int(1), kyrix.Float(2.5), kyrix.Text("x"), kyrix.Boolean(true)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT * FROM v")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query: %v", err)
	}
}

// Ensure exported DB alias is the internal type (compile-time check
// that downstream signatures interoperate).
var _ *sqldb.DB = (*kyrix.DB)(nil)

// TestCloseReleasesListener: Close must free the port (the listener),
// not just stop the HTTP server, and stay idempotent.
func TestCloseReleasesListener(t *testing.T) {
	db, app, reg := buildDemo(t, 100)
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 1 << 20,
		Precompute: fetch.Options{BuildSpatial: true},
	}, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	addr := inst.BaseURL[len("http://"):]
	if err := inst.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := inst.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The port must be rebindable immediately after Close.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port still held after Close: %v", err)
	}
	ln.Close()
}

// TestBatchThroughPublicAPI drives the batched tile path end to end
// through Launch + ClientOptions.BatchSize.
func TestBatchThroughPublicAPI(t *testing.T) {
	db, app, reg := buildDemo(t, 2000)
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
	}, kyrix.ClientOptions{
		Scheme:     kyrix.TileSpatial1024,
		CacheBytes: 4 << 20,
		BatchSize:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rep, err := inst.Client.PanBy(512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 {
		t.Fatal("batched pan fetched nothing")
	}
	if inst.Server.Stats.BatchRequests.Load() == 0 {
		t.Fatal("public-API batch client did not use /batch")
	}
}

// TestTilePrefetcherThroughPublicAPI: momentum prediction + batched
// tile warming makes the next pan free.
func TestTilePrefetcherThroughPublicAPI(t *testing.T) {
	db, app, reg := buildDemo(t, 2000)
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
	}, kyrix.ClientOptions{
		Scheme:     kyrix.TileSpatial256,
		CacheBytes: 4 << 20,
		BatchSize:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	bounds := kyrix.RectXYWH(0, 0, 2048, 2048)
	pf := kyrix.NewTilePrefetcher(kyrix.NewMomentumPredictor(2), inst.Client, []int{0}, 256, bounds)

	// Establish rightward momentum: two pans, prefetcher observing.
	vp := kyrix.RectXYWH(0, 768, 512, 512)
	if _, err := inst.Client.Pan(vp); err != nil {
		t.Fatal(err)
	}
	pf.OnPan(vp)
	vp = vp.Translate(512, 0)
	if _, err := inst.Client.Pan(vp); err != nil {
		t.Fatal(err)
	}
	pf.OnPan(vp) // predicts the next viewport and warms its tiles

	if pf.Issued == 0 || pf.Errs != 0 {
		t.Fatalf("prefetcher stats = %+v", pf)
	}
	rep, err := inst.Client.Pan(vp.Translate(512, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 {
		t.Fatalf("predicted pan still issued %d requests", rep.Requests)
	}
}

// TestPrecomputeOptionsConstructible pins the fix for the
// ServerOptions.Precompute internal-type leak: a downstream module
// (which cannot import kyrix/internal/...) must be able to build
// ServerOptions entirely from root-level names. This test deliberately
// avoids the internal fetch package.
func TestPrecomputeOptionsConstructible(t *testing.T) {
	db, app, reg := buildDemo(t, 1000)
	opts := kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: kyrix.PrecomputeOptions{
			BuildSpatial: true,
			TileSizes:    []float64{512},
			MappingIndex: kyrix.IndexBTree,
		},
	}
	inst, err := kyrix.Launch(db, app, reg, opts, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rep, err := inst.Client.Load()
	if err != nil || rep.Rows == 0 {
		t.Fatalf("load over root-constructed options: %v, %d rows", err, rep.Rows)
	}
	// The default precompute options are the ones DefaultServerOptions
	// ships, and the hash-index kind is usable too.
	def := kyrix.DefaultPrecomputeOptions()
	if !def.BuildSpatial || len(def.TileSizes) != 3 {
		t.Fatalf("default precompute = %+v", def)
	}
	if kyrix.IndexHash == kyrix.IndexBTree {
		t.Fatal("index kinds must differ")
	}
}

// TestMultiLayerOneRoundTripThroughPublicAPI: the v2 protocol headline
// through the public API — a two-data-layer canvas loads in one /batch
// round trip and the report carries the new wire metrics.
func TestMultiLayerOneRoundTripThroughPublicAPI(t *testing.T) {
	db, app, reg := buildDemo(t, 1500)
	// Add a second data layer over the same transform.
	c0 := &app.Canvases[0]
	c0.Layers = append(c0.Layers, kyrix.Layer{
		TransformID: "t",
		Placement:   &kyrix.Placement{XCol: "x", YCol: "y", Radius: 6},
		Renderer:    "dots",
	})
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: kyrix.PrecomputeOptions{BuildSpatial: true, TileSizes: []float64{512}},
	}, kyrix.ClientOptions{
		Scheme:     kyrix.DBox50,
		CacheBytes: 4 << 20,
		BatchSize:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	rep, err := inst.Client.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 1 {
		t.Fatalf("two-layer load used %d round trips, want 1", rep.Requests)
	}
	if rep.WireBytes == 0 || rep.FirstFrame == 0 {
		t.Fatalf("wire metrics missing: %+v", rep)
	}
	if inst.Server.Stats.BatchRequests.Load() != 1 || inst.Server.Stats.BoxRequests.Load() != 2 {
		t.Fatalf("server stats: batches=%d boxes=%d",
			inst.Server.Stats.BatchRequests.Load(), inst.Server.Stats.BoxRequests.Load())
	}
	for li := 0; li < 2; li++ {
		rows, err := inst.Client.ObjectsInViewport(li)
		if err != nil || len(rows) == 0 {
			t.Fatalf("layer %d: %v, %d rows", li, err, len(rows))
		}
	}
}
