package kyrix_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"kyrix"
	"kyrix/internal/fetch"
	"kyrix/internal/server"
	"kyrix/internal/storage"
)

// TestInstanceCloseDrainsInFlight: Close must let a request already in
// flight finish (up to the grace period) instead of snapping the
// connection under it. The request is held open deterministically by
// streaming its body through a pipe: the /batch handler blocks in the
// JSON decoder until the second half of the body arrives, which we
// send only after Close has begun waiting.
func TestInstanceCloseDrainsInFlight(t *testing.T) {
	db, app, reg := buildDemo(t, 500)
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
	}, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		req, rerr := http.NewRequest(http.MethodPost, inst.BaseURL+"/batch", pr)
		if rerr != nil {
			done <- result{err: rerr}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, rerr := http.DefaultClient.Do(req)
		if rerr != nil {
			done <- result{err: rerr}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: string(body)}
	}()

	// First half of the body: once it is on the wire and the server
	// has picked the connection up, the handler blocks mid-decode and
	// the connection counts as active. The settle delay covers the
	// accept + header-read window (pw.Write returns when the client
	// transport consumed the bytes, not when the server did).
	if _, err := pw.Write([]byte(`{"canvas":"main","layer":0,"size":512,`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- inst.Close() }()

	// Give Shutdown time to stop the listener and start draining; the
	// in-flight request must still be alive (no result yet).
	select {
	case r := <-done:
		t.Fatalf("request finished before its body did: status=%d body=%q err=%v", r.status, r.body, r.err)
	case <-time.After(150 * time.Millisecond):
	}

	// Finish the request; the drained server must answer it whole.
	if _, err := pw.Write([]byte(`"tiles":[{"col":0,"row":0}]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed under Close: %v", r.err)
	}
	if r.status != http.StatusOK || !strings.Contains(r.body, "tiles") {
		t.Fatalf("in-flight request: status %d body %q", r.status, r.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v", err)
	}

	// And the listener really is gone for NEW work.
	if _, err := http.Get(inst.BaseURL + "/app"); err == nil {
		t.Fatal("server still accepting after Close")
	}
}

// TestInstanceCloseFlushesL2 is the write-behind drain contract at the
// facade level: a tile served moments before Close — its L2 fill still
// sitting in the write-behind queue — must be readable from the
// persistent store after a reopen. The flush interval is pinned to an
// hour so nothing but Close's drain could have persisted it.
func TestInstanceCloseFlushesL2(t *testing.T) {
	dir := t.TempDir()
	l2opts := func() kyrix.ServerOptions {
		return kyrix.ServerOptions{
			Cache: kyrix.CacheOptions{
				L1: kyrix.L1CacheOptions{Bytes: 4 << 20},
				L2: kyrix.L2CacheOptions{Path: dir, FlushInterval: time.Hour},
			},
			Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
		}
	}
	getTile := func(base string) []byte {
		resp, err := http.Get(base + "/tile?canvas=main&layer=0&size=512&col=0&row=0")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tile: %s: %s", resp.Status, body)
		}
		return body
	}

	db, app, reg := buildDemo(t, 500)
	inst, err := kyrix.Launch(db, app, reg, l2opts(), kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := getTile(inst.BaseURL)
	// No flush, no wait: the fill is (at best) queued when Close runs.
	if err := inst.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}

	db2, app2, reg2 := buildDemo(t, 500)
	inst2, err := kyrix.Launch(db2, app2, reg2, l2opts(), kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	got := getTile(inst2.BaseURL)
	if string(got) != string(want) {
		t.Fatal("reopened instance served a different payload")
	}
	snap := inst2.Server.Snapshot()
	if snap.Cache.L2 == nil || snap.Cache.L2.Hits == 0 {
		t.Fatalf("reopened serve did not hit the persistent store: %+v", snap.Cache.L2)
	}
	if snap.Serving.DBQueries != 0 {
		t.Fatalf("reopened serve ran %d db queries, want 0", snap.Serving.DBQueries)
	}
}

// replogOpts is a standalone instance with the replicated update log
// attached (single member, quorum 1): the Close-ordering surface under
// test without cluster networking in the way.
func replogOpts(dir string) kyrix.ServerOptions {
	return kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Cluster: kyrix.ClusterOptions{
			Replog: kyrix.ReplogOptions{Dir: dir, ElectionTimeout: 30 * time.Millisecond},
		},
		Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
	}
}

func postUpdate(t *testing.T, base, sql string, args ...server.ArgValue) {
	t.Helper()
	body, _ := json.Marshal(server.UpdateRequest{SQL: sql, Args: args})
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(base+"/update", "application/json", bytes.NewReader(body))
		if err == nil {
			rb, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			err = &httpError{resp.StatusCode, string(rb)}
		}
		// 503 until the single-member log elects itself; retry briefly.
		if time.Now().After(deadline) {
			t.Fatalf("update never acked: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string { return e.body }

// TestInstanceCloseWithReplog is the shutdown-ordering contract with
// the replicated log attached: Close must drain the log's applier and
// fsync its WAL (an update acked before Close is replayed after the
// next Launch over the same dir), release every goroutine the log
// started (checked under -race), and stay idempotent.
func TestInstanceCloseWithReplog(t *testing.T) {
	dir := t.TempDir()
	before := runtime.NumGoroutine()

	db, app, reg := buildDemo(t, 500)
	inst, err := kyrix.Launch(db, app, reg, replogOpts(dir), kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	postUpdate(t, inst.BaseURL, "UPDATE pts SET x = ? WHERE id = 0",
		server.ArgValue{Kind: storage.TFloat64, F: 777})

	if err := inst.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if err := inst.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}

	// The log's WAL must exist and be non-empty — the acked update is
	// on disk.
	for _, name := range []string{"replog.kyx", "meta.kyx"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("%s after Close: %v (size %d)", name, err, fi.Size())
		}
	}

	// Every goroutine the instance started (HTTP serve, replog timer,
	// applier, election helpers) must exit. Idle HTTP keepalive
	// connections linger briefly; poll with a deadline.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after Close: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Crash-recovery: a fresh Launch over the same dir (fresh DB — the
	// in-memory state machine rebuilds each boot) replays the committed
	// update.
	db2, app2, reg2 := buildDemo(t, 500)
	inst2, err := kyrix.Launch(db2, app2, reg2, replogOpts(dir), kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	wait := time.Now().Add(10 * time.Second)
	for {
		res, err := db2.Query("SELECT x FROM pts WHERE id = 0")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 1 && res.Rows[0][0].F == 777 {
			break
		}
		if time.Now().After(wait) {
			t.Fatalf("acked update not replayed after relaunch: %v", res.Rows)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
