package kyrix_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"kyrix"
	"kyrix/internal/fetch"
)

// TestInstanceCloseDrainsInFlight: Close must let a request already in
// flight finish (up to the grace period) instead of snapping the
// connection under it. The request is held open deterministically by
// streaming its body through a pipe: the /batch handler blocks in the
// JSON decoder until the second half of the body arrives, which we
// send only after Close has begun waiting.
func TestInstanceCloseDrainsInFlight(t *testing.T) {
	db, app, reg := buildDemo(t, 500)
	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
	}, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	type result struct {
		status int
		body   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		req, rerr := http.NewRequest(http.MethodPost, inst.BaseURL+"/batch", pr)
		if rerr != nil {
			done <- result{err: rerr}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, rerr := http.DefaultClient.Do(req)
		if rerr != nil {
			done <- result{err: rerr}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: string(body)}
	}()

	// First half of the body: once it is on the wire and the server
	// has picked the connection up, the handler blocks mid-decode and
	// the connection counts as active. The settle delay covers the
	// accept + header-read window (pw.Write returns when the client
	// transport consumed the bytes, not when the server did).
	if _, err := pw.Write([]byte(`{"canvas":"main","layer":0,"size":512,`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	closed := make(chan error, 1)
	go func() { closed <- inst.Close() }()

	// Give Shutdown time to stop the listener and start draining; the
	// in-flight request must still be alive (no result yet).
	select {
	case r := <-done:
		t.Fatalf("request finished before its body did: status=%d body=%q err=%v", r.status, r.body, r.err)
	case <-time.After(150 * time.Millisecond):
	}

	// Finish the request; the drained server must answer it whole.
	if _, err := pw.Write([]byte(`"tiles":[{"col":0,"row":0}]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed under Close: %v", r.err)
	}
	if r.status != http.StatusOK || !strings.Contains(r.body, "tiles") {
		t.Fatalf("in-flight request: status %d body %q", r.status, r.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close = %v", err)
	}

	// And the listener really is gone for NEW work.
	if _, err := http.Get(inst.BaseURL + "/app"); err == nil {
		t.Fatal("server still accepting after Close")
	}
}

// TestInstanceCloseFlushesL2 is the write-behind drain contract at the
// facade level: a tile served moments before Close — its L2 fill still
// sitting in the write-behind queue — must be readable from the
// persistent store after a reopen. The flush interval is pinned to an
// hour so nothing but Close's drain could have persisted it.
func TestInstanceCloseFlushesL2(t *testing.T) {
	dir := t.TempDir()
	l2opts := func() kyrix.ServerOptions {
		return kyrix.ServerOptions{
			Cache: kyrix.CacheOptions{
				L1: kyrix.L1CacheOptions{Bytes: 4 << 20},
				L2: kyrix.L2CacheOptions{Path: dir, FlushInterval: time.Hour},
			},
			Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{512}},
		}
	}
	getTile := func(base string) []byte {
		resp, err := http.Get(base + "/tile?canvas=main&layer=0&size=512&col=0&row=0")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tile: %s: %s", resp.Status, body)
		}
		return body
	}

	db, app, reg := buildDemo(t, 500)
	inst, err := kyrix.Launch(db, app, reg, l2opts(), kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := getTile(inst.BaseURL)
	// No flush, no wait: the fill is (at best) queued when Close runs.
	if err := inst.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}

	db2, app2, reg2 := buildDemo(t, 500)
	inst2, err := kyrix.Launch(db2, app2, reg2, l2opts(), kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	got := getTile(inst2.BaseURL)
	if string(got) != string(want) {
		t.Fatal("reopened instance served a different payload")
	}
	snap := inst2.Server.Snapshot()
	if snap.Cache.L2 == nil || snap.Cache.L2.Hits == 0 {
		t.Fatalf("reopened serve did not hit the persistent store: %+v", snap.Cache.L2)
	}
	if snap.Serving.DBQueries != 0 {
		t.Fatalf("reopened serve ran %d db queries, want 0", snap.Serving.DBQueries)
	}
}
