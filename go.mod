module kyrix

go 1.24
