package kyrix_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"kyrix"
	"kyrix/internal/fetch"
)

// TestCrimeMapJourney drives the paper's §2.2 application end to end
// through the public API: load the state map, click a state, follow the
// semantic-zoom jump to the county map, pan there, and verify the
// 500 ms budget at every step.
func TestCrimeMapJourney(t *testing.T) {
	db := kyrix.NewDB()
	mustExec(t, db, "CREATE TABLE states (id INT, name TEXT, rate DOUBLE, cx DOUBLE, cy DOUBLE)")
	mustExec(t, db, "CREATE TABLE counties (id INT, name TEXT, rate DOUBLE, parent INT, cx DOUBLE, cy DOUBLE)")
	// A 5x2 grid of 100x100 states; 4 counties per state on the 5x
	// county canvas.
	for s := 0; s < 10; s++ {
		cx, cy := float64(s%5)*100+50, float64(s/5)*100+50
		if err := db.InsertRow("states", kyrix.Row{
			kyrix.Int(int64(s)), kyrix.Text(stateName(s)), kyrix.Float(300 + float64(s)*50),
			kyrix.Float(cx), kyrix.Float(cy),
		}); err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 4; q++ {
			ccx := cx*5 + float64(q%2)*250 - 125
			ccy := cy*5 + float64(q/2)*250 - 125
			if err := db.InsertRow("counties", kyrix.Row{
				kyrix.Int(int64(s*4 + q)), kyrix.Text("county"), kyrix.Float(300),
				kyrix.Int(int64(s)), kyrix.Float(ccx), kyrix.Float(ccy),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("states")
	reg.RegisterRenderer("counties")
	reg.RegisterSelector("stateLayer", func(_ kyrix.Row, layerIdx int) bool { return layerIdx == 0 })
	reg.RegisterViewport("countyCenter", func(row kyrix.Row) kyrix.Point {
		return kyrix.Point{X: row[3].AsFloat() * 5, Y: row[4].AsFloat() * 5}
	})
	reg.RegisterName("countyName", func(row kyrix.Row) string {
		return "County map of " + row[1].S
	})

	stateCols := []kyrix.ColumnSpec{
		{Name: "id", Type: "int"}, {Name: "name", Type: "text"},
		{Name: "rate", Type: "double"}, {Name: "cx", Type: "double"}, {Name: "cy", Type: "double"},
	}
	countyCols := []kyrix.ColumnSpec{
		{Name: "id", Type: "int"}, {Name: "name", Type: "text"},
		{Name: "rate", Type: "double"}, {Name: "parent", Type: "int"},
		{Name: "cx", Type: "double"}, {Name: "cy", Type: "double"},
	}
	app := &kyrix.App{
		Name: "crimetest",
		Canvases: []kyrix.Canvas{
			{
				ID: "statemap", W: 500, H: 200,
				Transforms: []kyrix.Transform{{ID: "st", Query: "SELECT * FROM states", Columns: stateCols}},
				Layers: []kyrix.Layer{{
					TransformID: "st",
					Placement:   &kyrix.Placement{XCol: "cx", YCol: "cy", Radius: 50},
					Renderer:    "states",
				}},
			},
			{
				ID: "countymap", W: 2500, H: 1000,
				Transforms: []kyrix.Transform{{ID: "ct", Query: "SELECT * FROM counties", Columns: countyCols}},
				Layers: []kyrix.Layer{{
					TransformID: "ct",
					Placement:   &kyrix.Placement{XCol: "cx", YCol: "cy", Radius: 125},
					Renderer:    "counties",
				}},
			},
		},
		Jumps: []kyrix.Jump{{
			From: "statemap", To: "countymap", Type: kyrix.GeometricSemanticZoom,
			Selector: "stateLayer", NewViewport: "countyCenter", Name: "countyName",
		}},
		InitialCanvas: "statemap", InitialX: 250, InitialY: 100,
		ViewportW: 200, ViewportH: 150,
	}

	inst, err := kyrix.Launch(db, app, reg, kyrix.ServerOptions{
		CacheBytes: 4 << 20,
		Precompute: fetch.Options{BuildSpatial: true, TileSizes: []float64{100}},
	}, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	rep, err := inst.Client.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !kyrix.WithinBudget(rep) {
		t.Fatalf("state map load over budget: %v", rep.Duration)
	}
	states, err := inst.Client.ObjectsInViewport(0)
	if err != nil || len(states) == 0 {
		t.Fatalf("states: %v, %d", err, len(states))
	}
	clicked := states[0]
	choices, err := inst.Client.JumpsFor(clicked, 0)
	if err != nil || len(choices) != 1 {
		t.Fatalf("choices = %v, %v", choices, err)
	}
	if choices[0].Label != "County map of "+clicked[1].S {
		t.Fatalf("jump label = %q", choices[0].Label)
	}
	rep, err = inst.Client.Jump(choices[0].Index, clicked)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Client.Canvas().ID != "countymap" {
		t.Fatal("jump did not switch canvas")
	}
	// The viewport centers on the clicked state's 5x position.
	want := kyrix.Point{X: clicked[3].AsFloat() * 5, Y: clicked[4].AsFloat() * 5}
	if inst.Client.Viewport().Center().Dist(want) > 150 {
		t.Fatalf("county viewport center %v want near %v", inst.Client.Viewport().Center(), want)
	}
	counties, err := inst.Client.ObjectsInViewport(0)
	if err != nil || len(counties) == 0 {
		t.Fatalf("counties: %v, %d", err, len(counties))
	}
	// Every visible county belongs to a nearby state.
	for _, c := range counties {
		if c[3].AsInt() < 0 || c[3].AsInt() >= 10 {
			t.Fatalf("county with bad parent: %v", c)
		}
	}
	// Pan on the county map.
	rep, err = inst.Client.PanBy(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !kyrix.WithinBudget(rep) {
		t.Fatalf("county pan over budget: %v", rep.Duration)
	}
}

// TestUpdateModelWithWAL exercises the §4 update path end to end: edits
// through the HTTP endpoint, logged to the WAL, surviving a restart.
func TestUpdateModelWithWAL(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "app.wal")

	build := func() *kyrix.DB {
		db := kyrix.NewDB()
		if err := db.AttachWAL(walPath); err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := build()
	mustExec(t, db, "CREATE TABLE notes (id INT, x DOUBLE, y DOUBLE, tag TEXT)")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO notes VALUES (?, ?, ?, '')",
			kyrix.Int(int64(i)), kyrix.Float(float64(i%10)*100+50), kyrix.Float(float64(i/10)*100+50))
	}
	reg := kyrix.NewRegistry()
	reg.RegisterRenderer("notes")
	app := &kyrix.App{
		Name: "notes",
		Canvases: []kyrix.Canvas{{
			ID: "c", W: 1000, H: 1000,
			Transforms: []kyrix.Transform{{ID: "t", Query: "SELECT * FROM notes",
				Columns: []kyrix.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "tag", Type: "text"},
				}}},
			Layers: []kyrix.Layer{{
				TransformID: "t",
				Placement:   &kyrix.Placement{XCol: "x", YCol: "y", Radius: 5},
				Renderer:    "notes",
			}},
		}},
		InitialCanvas: "c", InitialX: 500, InitialY: 500,
		ViewportW: 400, ViewportH: 400,
	}
	srvOpts := kyrix.ServerOptions{
		CacheBytes: 1 << 20,
		Precompute: fetch.Options{BuildSpatial: true},
	}
	inst, err := kyrix.Launch(db, app, reg, srvOpts, kyrix.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Tag a row through the HTTP update endpoint.
	body, _ := json.Marshal(map[string]any{
		"sql": "UPDATE notes SET tag = 'flagged' WHERE id = 55",
	})
	resp, err := http.Post(inst.BaseURL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("update status %s", resp.Status)
	}
	res, err := db.Query("SELECT tag FROM notes WHERE id = 55")
	if err != nil || res.Rows[0][0].S != "flagged" {
		t.Fatalf("tag after update: %v %v", res, err)
	}
	inst.Close()
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}

	// Simulated restart: a fresh DB recovers everything from the WAL,
	// including the HTTP-applied update.
	db2 := build()
	defer db2.DetachWAL()
	res, err = db2.Query("SELECT COUNT(*) FROM notes")
	if err != nil || res.Rows[0][0].AsInt() != 100 {
		t.Fatalf("recovered count: %v %v", res, err)
	}
	res, err = db2.Query("SELECT tag FROM notes WHERE id = 55")
	if err != nil || res.Rows[0][0].S != "flagged" {
		t.Fatalf("recovered tag: %v %v", res, err)
	}
}

func mustExec(t *testing.T, db *kyrix.DB, sql string, args ...kyrix.Value) {
	t.Helper()
	if _, err := db.Exec(sql, args...); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

func stateName(i int) string {
	names := []string{"Alpha", "Bravo", "Charlie", "Delta", "Echo",
		"Foxtrot", "Golf", "Hotel", "India", "Juliet"}
	return names[i%len(names)]
}
