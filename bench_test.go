// Benchmarks regenerating every figure of the paper's evaluation plus
// the DESIGN.md ablations, one benchmark per table/figure:
//
//	go test -bench=Figure6 -benchmem        # Fig. 6 (Uniform), per scheme/trace
//	go test -bench=Figure7 -benchmem        # Fig. 7 (Skewed)
//	go test -bench=Ablation -benchmem       # A1..A5
//
// Each sub-benchmark replays one (scheme, trace) series; ns/op is the
// full-trace replay cost, and the reported custom metrics give the
// paper's actual quantity (mean ms per pan step) plus the fetch-volume
// diagnostics. KYRIX_BENCH_SCALE=default (or paper) selects bigger
// workloads; the default is the quick CI scale.
//
// For paper-style formatted tables use: go run ./cmd/kyrix-bench
package kyrix_test

import (
	"os"
	"sync"
	"testing"

	"kyrix/internal/experiments"
	"kyrix/internal/fetch"
	"kyrix/internal/workload"
)

func benchConfig() experiments.Config {
	switch os.Getenv("KYRIX_BENCH_SCALE") {
	case "default":
		return experiments.DefaultConfig()
	case "paper":
		return experiments.PaperConfig()
	}
	return experiments.QuickConfig()
}

var (
	benchOnce sync.Once
	benchUni  *experiments.Env
	benchSkew *experiments.Env
	benchErr  error
)

func benchEnvs(b *testing.B) (*experiments.Env, *experiments.Env) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := benchConfig()
		cfg.Runs = 1
		benchUni, benchErr = experiments.NewEnv(cfg, "uniform")
		if benchErr != nil {
			return
		}
		benchSkew, benchErr = experiments.NewEnv(cfg, "skewed")
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchUni, benchSkew
}

// benchFigure runs every paper scheme × trace as sub-benchmarks.
func benchFigure(b *testing.B, env *experiments.Env) {
	traces := workload.PaperTraces(env.Dataset, 1024, env.Cfg.ViewportW, env.Cfg.ViewportH)
	for _, g := range fetch.PaperSchemes() {
		for _, tr := range traces {
			g, tr := g, tr
			b.Run(g.Name()+"/"+tr.Name, func(b *testing.B) {
				b.ReportAllocs()
				var last experiments.Series
				for i := 0; i < b.N; i++ {
					s, err := env.RunScheme(g, tr)
					if err != nil {
						b.Fatal(err)
					}
					last = s
				}
				b.ReportMetric(last.MeanMs, "ms/step")
				b.ReportMetric(last.RequestsPerStep, "req/step")
				b.ReportMetric(last.RowsPerStep, "rows/step")
			})
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: all eight fetching schemes on
// the Uniform dataset over traces a, b, c.
func BenchmarkFigure6(b *testing.B) {
	uni, _ := benchEnvs(b)
	benchFigure(b, uni)
}

// BenchmarkFigure7 regenerates Figure 7: the same grid on Skewed.
func BenchmarkFigure7(b *testing.B) {
	_, skew := benchEnvs(b)
	benchFigure(b, skew)
}

// BenchmarkFigure4 measures the fetch-volume diagnostics behind the
// Fig. 4 granularity illustration (requests and rows per step).
func BenchmarkFigure4(b *testing.B) {
	uni, _ := benchEnvs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(uni); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 measures trace generation (the Fig. 5 viewport
// movement traces).
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	d := workload.Skewed(100, cfg.CanvasW, cfg.CanvasH, cfg.Seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.PaperTraces(d, 1024, cfg.ViewportW, cfg.ViewportH)
	}
}

// BenchmarkColdStart measures the restart experiment: a first boot
// serving a zipf hot set cold, then a full restart (fresh DB, re-run
// precompute, empty L1) over the same persistent L2 directory
// replaying the identical trace. The custom metrics are the restart
// phase's warm-up cost: database queries to warm (db-queries-to-warm)
// and the median latency of the first 100 steps (p50-first-100-ms).
// With L2 working both should sit far below the first boot's.
func BenchmarkColdStart(b *testing.B) {
	cfg := benchConfig()
	cfg.NumPoints = min(cfg.NumPoints, 120_000) // two precomputes per iter
	b.ReportAllocs()
	var last *experiments.RestartResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RestartExperiment(cfg,
			experiments.DefaultRestartOptions(b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	warm := last.Phases[1]
	b.ReportMetric(float64(warm.DBQueriesToWarm), "db-queries-to-warm")
	b.ReportMetric(warm.P50FirstStepsMs, "p50-first-100-ms")
}

// BenchmarkAblationInflation regenerates A1: the dynamic-box inflation
// sweep.
func BenchmarkAblationInflation(b *testing.B) {
	uni, _ := benchEnvs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationInflation(uni); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCache regenerates A2: frontend/backend cache
// configurations on a revisit trace.
func BenchmarkAblationCache(b *testing.B) {
	uni, _ := benchEnvs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCache(uni); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrefetch regenerates A3: momentum prefetching with
// dynamic boxes (the §4 proposed study).
func BenchmarkAblationPrefetch(b *testing.B) {
	uni, _ := benchEnvs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPrefetch(uni); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSeparability regenerates A4: the §3.2 separable
// shortcut vs full materialization (precompute time).
func BenchmarkAblationSeparability(b *testing.B) {
	cfg := benchConfig()
	cfg.NumPoints = 30_000 // precompute-bound; keep iterations fast
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSeparability(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCodec regenerates A5: JSON vs binary wire codecs.
func BenchmarkAblationCodec(b *testing.B) {
	uni, _ := benchEnvs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCodec(uni); err != nil {
			b.Fatal(err)
		}
	}
}
