// Command kyrix-compile validates a Kyrix JSON application spec — the
// standalone face of the compiler described in the paper's §1 ("the
// compiler parses developers' specification and performs basic
// constraint checkings").
//
// Usage:
//
//	kyrix-compile -spec app.json [-print]
//
// Function names referenced by the spec (transforms, placements,
// selectors, renderers) are declared with -declare so compilation can
// succeed without the Go code that registers them:
//
//	kyrix-compile -spec app.json -declare renderer:dots -declare selector:stateSelector
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/storage"
)

type declList []string

func (d *declList) String() string     { return strings.Join(*d, ",") }
func (d *declList) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	specPath := flag.String("spec", "", "path to the JSON app spec (required)")
	printSpec := flag.Bool("print", false, "print the normalized spec JSON on success")
	var decls declList
	flag.Var(&decls, "declare", "declare a named function as available: kind:name where kind is transform|placement|selector|viewport|name|renderer (repeatable)")
	flag.Parse()

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "kyrix-compile: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	app, err := spec.FromJSON(data)
	if err != nil {
		fatal(err)
	}
	reg := spec.NewRegistry()
	for _, d := range decls {
		kind, name, ok := strings.Cut(d, ":")
		if !ok {
			fatal(fmt.Errorf("bad -declare %q (want kind:name)", d))
		}
		switch kind {
		case "transform":
			reg.RegisterTransform(name, func(r storage.Row) storage.Row { return r })
		case "placement":
			reg.RegisterPlacement(name, func(storage.Row) geom.Rect { return geom.Rect{} })
		case "selector":
			reg.RegisterSelector(name, func(storage.Row, int) bool { return true })
		case "viewport":
			reg.RegisterViewport(name, func(storage.Row) geom.Point { return geom.Point{} })
		case "name":
			reg.RegisterName(name, func(storage.Row) string { return "" })
		case "renderer":
			reg.RegisterRenderer(name)
		default:
			fatal(fmt.Errorf("unknown declare kind %q", kind))
		}
	}

	ca, err := spec.Compile(app, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kyrix-compile: FAILED\n%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("OK: app %q compiles\n", app.Name)
	fmt.Printf("  canvases: %d\n", len(app.Canvases))
	for _, c := range app.Canvases {
		fmt.Printf("    %-16s %8.0fx%-8.0f layers=%d transforms=%d\n",
			c.ID, c.W, c.H, len(c.Layers), len(c.Transforms))
	}
	fmt.Printf("  jumps: %d\n", len(app.Jumps))
	for i, j := range app.Jumps {
		fmt.Printf("    %s -> %s (%s, zoom %.2gx)\n", j.From, j.To, j.Type, ca.JumpFuncs[i].ZoomFactor)
	}
	fmt.Printf("  initial: canvas %q center (%g, %g), viewport %gx%g\n",
		app.InitialCanvas, app.InitialX, app.InitialY, app.ViewportW, app.ViewportH)
	if *printSpec {
		out, err := app.ToJSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kyrix-compile:", err)
	os.Exit(1)
}
