// Command kyrix-vet runs the repo's invariant analyzers (see
// internal/analysis) over Go packages. It has two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/kyrix-vet ./...
//
// As a vet tool, speaking cmd/go's unitchecker protocol (-flags,
// -V=full, then one JSON vet.cfg per compilation unit):
//
//	go build -o kyrix-vet ./cmd/kyrix-vet
//	go vet -vettool=$PWD/kyrix-vet ./...
//
// Both modes exit 0 when clean and nonzero when any finding survives
// suppression. Findings print as file:line:col: message [kyrix-vet/<analyzer>].
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"kyrix/internal/analysis"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full":
			printVersion()
			return
		case "-flags":
			// No analyzer flags: report an empty flag set to cmd/go.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kyrix-vet <packages>  (e.g. kyrix-vet ./...)")
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

// printVersion emits the `name version devel <id>` line cmd/go hashes
// into its build cache key; the id is the tool binary's content hash
// so editing an analyzer invalidates cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), id)
}

func standalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kyrix-vet:", err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "kyrix-vet:", err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "kyrix-vet: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// vetConfig is the unit description cmd/go writes for each package
// when invoked as `go vet -vettool=kyrix-vet`.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kyrix-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "kyrix-vet: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The protocol requires the facts file regardless of outcome; the
	// suite exchanges no facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "kyrix-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Drop test files: the suite checks production-code invariants
	// (this also skips external _test package units entirely).
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	imp := analysis.NewExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := analysis.CheckFiles(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "kyrix-vet:", err)
		return 1
	}
	findings, err := analysis.RunAnalyzers(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kyrix-vet:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
