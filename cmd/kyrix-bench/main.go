// Command kyrix-bench regenerates the paper's evaluation tables and the
// ablations indexed in DESIGN.md §4.
//
//	kyrix-bench -fig 6            # Figure 6 (Uniform)
//	kyrix-bench -fig 7            # Figure 7 (Skewed)
//	kyrix-bench -fig all          # everything, plus the shape report
//	kyrix-bench -fig A3 -scale quick
//	kyrix-bench -clients 1,4,16   # concurrent-clients throughput sweep
//
// -scale selects the workload size: quick (CI), default (laptop,
// DESIGN.md §5 mapping), paper (the original 100M-dot setup; very
// slow).
//
// -clients switches to concurrent-clients mode: N parallel frontends
// replay viewport traces against one backend, measuring throughput
// (steps/s), latency (mean/p50/p95), and how far the serving pipeline
// (sharded cache, request coalescing, batched tile fetch) cuts
// database queries per step. -steps and -batch tune the workload;
// -proto selects the /batch wire protocol (1 = buffered JSON, 2 =
// binary framed stream, 3 = compressed/delta framed stream) and -comp
// toggles v3 per-frame compression; the table reports wireKB/step,
// time-to-first-frame and the wire/raw compression ratio so the
// protocols can be compared directly.
//
// -workload selects the trace shape: walk (random pans, the default),
// zipf (zipf-hot-set pan/zoom — clients share a skewed hot set), scan
// (one-shot sequential canvas sweep), mixed (zipf tenants plus a
// scanning tenant — the cache-admission adversary) or zoom (zipf-zoom
// in/out around hot centers — the auto-LOD case). -admission picks
// the backend cache policy (lfu = W-TinyLFU admission, off = plain
// sharded LRU); the hit% column and hitRatio JSON field make the two
// directly comparable on the same trace.
//
// -nodes N runs the sweep against an in-process serving cluster of N
// nodes (consistent-hash tile ownership with peer cache fill); clients
// round-robin across the nodes and the table gains aggregate fill%
// plus per-node hit%/fill%/dbq columns. `-nodes 2 -workload zipf
// -cachemb 1` is the scaling demonstration: cluster-wide db-queries
// per step drop below the 1-node baseline because each key is filled
// by exactly one owner and the aggregate cache capacity doubles.
//
// -lod declares the point layer "lod": "auto", so precompute builds the
// aggregation pyramid and zoomed-out windows serve bounded aggregate
// rows. -lodsweep runs the bounded-row demonstration instead: the same
// zoom workload at 1x and 10x dataset scale, with and without -lod
// deciding the knob, writing rowsScannedPerStep and p50 per size to the
// -json artifact — flat with LOD on, linear growth with it off.
//
// -l2dir enables the persistent tile store (the on-disk L2 under the
// backend cache) at that directory. -restart runs the cold-start
// experiment instead: a first boot serving a zipf hot set, a full
// restart (fresh DB, re-run precompute, empty L1) over the same L2
// directory replaying the identical trace, and the no-L2 baseline for
// comparison; with -json it writes BENCH_restart_l2.json and
// BENCH_restart_cold.json (dbQueriesToWarm and p50FirstStepsMs per
// phase).
//
// -failover runs the replicated-update availability experiment: a
// 3-node cluster with the quorum-committed update log serves a tile
// stream with interleaved updates, the leader is killed mid-run, and
// the survivors carry on. The table reports per-phase tile p50/p95,
// the re-election window, and updatesLost (contractually 0); with
// -json it writes BENCH_failover.json.
//
// -json writes the concurrent-mode results to BENCH_<label>.json
// (label from -label) so the perf trajectory is machine-readable
// across PRs: wireKB/step, ttff ms, p50/p95 latency, compression
// ratio and backend-cache hit ratio per client count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"kyrix/internal/experiments"
	"kyrix/internal/fetch"
	"kyrix/internal/frontend"
	"kyrix/internal/obs"
	"kyrix/internal/server"
)

func main() {
	fig := flag.String("fig", "all", "which figure/ablation to run: 4|5|6|7|A1|A2|A3|A4|A5|all")
	scale := flag.String("scale", "default", "workload scale: quick | default | paper")
	runs := flag.Int("runs", 0, "override the number of runs per series (0 = config default)")
	clients := flag.String("clients", "", "concurrent-clients mode: comma-separated client counts (e.g. 1,4,16); replaces the figure runs")
	steps := flag.Int("steps", 12, "pan steps per client in concurrent-clients mode")
	batch := flag.Int("batch", 8, "frontend tile batch size in concurrent-clients mode (0 = per-tile GETs)")
	proto := flag.Int("proto", 0, "batch wire protocol in concurrent-clients mode: 0 auto, 1 buffered JSON, 2 binary framed stream, 3 compressed/delta framed stream (compare wireKB/step, ttff and ratio)")
	comp := flag.Bool("comp", true, "v3 per-frame compression in concurrent-clients mode (false asks for raw frames)")
	scheme := flag.String("scheme", "tile", "fetching scheme in concurrent-clients mode: tile (spatial 1024) or dbox (dbox 50% — the pan/zoom workload v3 delta frames target)")
	workloadKind := flag.String("workload", "walk", "concurrent-clients trace shape: walk | zipf | scan | mixed | zoom (zipf/scan/mixed are the cache-admission adversaries; zoom is the auto-LOD case)")
	lod := flag.Bool("lod", false, "declare the point layer lod \"auto\": precompute builds the aggregation pyramid and zoomed-out windows serve bounded aggregate rows")
	lodSweep := flag.Bool("lodsweep", false, "run the bounded-row sweep: the zoom workload at 1x and 10x dataset scale (with -lod deciding the knob); writes rowsScannedPerStep per size with -json")
	nodes := flag.Int("nodes", 1, "concurrent-clients mode: run an in-process serving cluster of N nodes (clients round-robin across nodes; 1 = standalone baseline through the same harness)")
	admission := flag.String("admission", "lfu", "backend cache admission policy: lfu (W-TinyLFU) | off (plain sharded LRU)")
	cacheMB := flag.Int("cachemb", 0, "override the backend cache budget in MB (0 = config default; shrink it so the zipf/scan workloads actually contend the budget)")
	codec := flag.String("codec", "", "override the wire codec (json | binary; default from -scale config)")
	jsonOut := flag.Bool("json", false, "concurrent-clients mode: also write the results to BENCH_<label>.json (including the final per-stage /metrics quantiles)")
	slowDump := flag.Bool("slowdump", false, "concurrent-clients mode: dump the backend's flight recorder (/debug/requests — the N slowest and most recent traces) to BENCH_slow_<label>.json after the sweep")
	label := flag.String("label", "", "label for the -json artifact (default proto+clients)")
	l2dir := flag.String("l2dir", "", "enable the persistent tile store (L2) at this directory; -restart uses a temp dir when empty")
	restart := flag.Bool("restart", false, "run the restart cold-start experiment: first boot vs L2-warm restart over the same zipf trace, plus the no-L2 baseline; -json writes BENCH_restart_l2.json and BENCH_restart_cold.json")
	failover := flag.Bool("failover", false, "run the replicated-update failover experiment: 3-node cluster, leader killed mid-run, steady vs failover tile p50 and zero-loss audit; -json writes BENCH_failover.json")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "quick":
		cfg = experiments.QuickConfig()
	case "default":
		cfg = experiments.DefaultConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		log.Fatalf("unknown -scale %q", *scale)
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	switch *codec {
	case "":
	case "json", "binary":
		cfg.Codec = server.Codec(*codec)
	default:
		log.Fatalf("unknown -codec %q", *codec)
	}

	switch *admission {
	case "lfu", "off":
		cfg.CacheAdmission = *admission
	default:
		log.Fatalf("unknown -admission %q", *admission)
	}
	if *cacheMB > 0 {
		cfg.BackendCacheBytes = int64(*cacheMB) << 20
	}
	cfg.LOD = *lod
	cfg.L2Dir = *l2dir

	if *restart {
		dir := *l2dir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "kyrix-l2-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		ropts := experiments.DefaultRestartOptions(dir)
		ropts.BatchSize = *batch
		// -steps keeps its concurrent-mode default of 12; only an
		// explicit value overrides the restart window of 100.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "steps" {
				ropts.Steps = *steps
			}
		})
		for _, variant := range []struct {
			l2dir, artifact string
		}{{dir, "restart_l2"}, {"", "restart_cold"}} {
			ropts.L2Dir = variant.l2dir
			res, err := experiments.RestartExperiment(cfg, ropts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res.Format())
			if *jsonOut {
				data, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					log.Fatal(err)
				}
				path := "BENCH_" + variant.artifact + ".json"
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					log.Fatal(err)
				}
				log.Printf("wrote %s", path)
			}
		}
		return
	}

	if *failover {
		root, err := os.MkdirTemp("", "kyrix-replog-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(root)
		fopts := experiments.DefaultFailoverOptions(root)
		// -steps keeps its concurrent-mode default of 12; only an
		// explicit value overrides the failover window of 200.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "steps" {
				fopts.StepsPerPhase = *steps
			}
		})
		res, err := experiments.FailoverExperiment(cfg, fopts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
		if *jsonOut {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile("BENCH_failover.json", append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote BENCH_failover.json")
		}
		return
	}

	if *lodSweep {
		stats, err := experiments.LODSweep(experiments.LODSweepOptions{
			Base:           cfg,
			StepsPerClient: *steps,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, rs := range stats {
			fmt.Printf("points=%-10d clients=%d rows-scanned/step=%-10.1f p50=%.2fms mean=%.2fms dbq/step=%.2f\n",
				rs.NumPoints, rs.Clients, rs.RowsScannedPerStep, rs.P50Ms, rs.MeanMs, rs.DbqPerStep)
		}
		if *jsonOut {
			opts := experiments.ConcurrentOptions{Workload: "zoom", StepsPerClient: *steps, Scheme: fetch.DBox50}
			lbl := *label
			if lbl == "" {
				lbl = fmt.Sprintf("lod_%s", map[bool]string{true: "on", false: "off"}[*lod])
			}
			if err := writeBenchJSON(lbl, *scale, "4", *admission, 1, opts, stats, nil); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	if *clients != "" {
		counts, err := parseCounts(*clients)
		if err != nil {
			log.Fatal(err)
		}
		opts := experiments.DefaultConcurrentOptions()
		opts.ClientCounts = counts
		opts.StepsPerClient = *steps
		opts.BatchSize = *batch
		opts.Protocol = *proto
		opts.Workload = *workloadKind
		if !*comp {
			opts.Compression = frontend.CompressionOff
		}
		switch *scheme {
		case "tile":
		case "dbox":
			opts.Scheme = fetch.DBox50
		default:
			log.Fatalf("unknown -scheme %q", *scheme)
		}
		var t *experiments.Table
		var stats []experiments.ConcurrentRowStats
		var scrapeURL string // node 0 in cluster mode — the stage breakdown sample
		if *nodes > 1 {
			// Cluster mode: N in-process nodes over one dataset, the
			// multi-node counterpart of the concurrent sweep. The
			// single-backend path below stays untouched so historical
			// BENCH artifacts remain comparable.
			cenv := buildClusterEnv(cfg, "uniform", *nodes)
			defer cenv.Close()
			t, stats, err = experiments.ClusterRun(cenv, opts)
			scrapeURL = cenv.Nodes[0].BaseURL
		} else {
			env := buildEnv(cfg, "uniform")
			defer env.Close()
			t, stats, err = experiments.ConcurrentClients(env, opts)
			scrapeURL = env.BaseURL
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
		stages, err := experiments.ScrapeStages(scrapeURL)
		if err != nil {
			log.Printf("kyrix-bench: stage scrape failed: %v", err)
		} else {
			printStages(stages)
		}
		lbl := *label
		if lbl == "" {
			lbl = defaultLabel(*clients, *admission, *nodes, opts)
		}
		if *jsonOut {
			if err := writeBenchJSON(lbl, *scale, *clients, *admission, *nodes, opts, stats, stages); err != nil {
				log.Fatal(err)
			}
		}
		if *slowDump {
			if err := dumpSlowRequests(scrapeURL, lbl); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *jsonOut {
		log.Fatal("kyrix-bench: -json requires -clients (the concurrent sweep is the machine-readable surface)")
	}

	want := func(name string) bool { return *fig == "all" || strings.EqualFold(*fig, name) }
	ran := false

	// Figure 5 is derived (no DB needed).
	if want("5") {
		ran = true
		for _, kind := range []string{"uniform", "skewed"} {
			out, err := experiments.Figure5(cfg, kind)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		}
	}

	var uniEnv, skewEnv *experiments.Env
	needUni := want("4") || want("6") || want("A1") || want("A2") || want("A3") || want("A5")
	needSkew := want("7")
	if needUni {
		uniEnv = buildEnv(cfg, "uniform")
		defer uniEnv.Close()
	}
	if needSkew {
		skewEnv = buildEnv(cfg, "skewed")
		defer skewEnv.Close()
	}

	var fig6, fig7 *experiments.Table
	if want("6") {
		ran = true
		t, err := experiments.FigureSchemes(uniEnv, "Figure 6: average response times on Uniform")
		if err != nil {
			log.Fatal(err)
		}
		fig6 = t
		fmt.Println(t.Format())
	}
	if want("7") {
		ran = true
		t, err := experiments.FigureSchemes(skewEnv, "Figure 7: average response times on Skewed")
		if err != nil {
			log.Fatal(err)
		}
		fig7 = t
		fmt.Println(t.Format())
	}
	if fig6 != nil && fig7 != nil {
		fmt.Println("Shape report (paper §3.3 Results):")
		for _, line := range experiments.ShapeReport(fig6, fig7) {
			fmt.Println(" ", line)
		}
		fmt.Println()
	}
	if want("4") {
		ran = true
		t, err := experiments.Figure4(uniEnv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
	}
	type ablation struct {
		name string
		run  func() (*experiments.Table, error)
	}
	ablations := []ablation{
		{"A1", func() (*experiments.Table, error) { return experiments.AblationInflation(uniEnv) }},
		{"A2", func() (*experiments.Table, error) { return experiments.AblationCache(uniEnv) }},
		{"A3", func() (*experiments.Table, error) { return experiments.AblationPrefetch(uniEnv) }},
		{"A4", func() (*experiments.Table, error) { return experiments.AblationSeparability(cfg) }},
		{"A5", func() (*experiments.Table, error) { return experiments.AblationCodec(uniEnv) }},
	}
	for _, a := range ablations {
		if !want(a.name) {
			continue
		}
		ran = true
		t, err := a.run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "kyrix-bench: unknown -fig %q\n", *fig)
		os.Exit(2)
	}
}

// benchArtifact is the BENCH_<label>.json shape: enough run context to
// interpret the rows, plus the machine-readable sweep itself.
type benchArtifact struct {
	Label     string                           `json:"label"`
	Mode      string                           `json:"mode"`
	Scale     string                           `json:"scale"`
	Clients   string                           `json:"clients"`
	Steps     int                              `json:"stepsPerClient"`
	Batch     int                              `json:"batchSize"`
	Proto     int                              `json:"proto"`
	Scheme    string                           `json:"scheme"`
	Workload  string                           `json:"workload"`
	Admission string                           `json:"admission"`
	Nodes     int                              `json:"nodes,omitempty"`
	Rows      []experiments.ConcurrentRowStats `json:"rows"`
	// Stages is the final /metrics scrape folded into per-stage latency
	// quantiles (kyrix_stage_duration_seconds by stage label) — where
	// serving time went across the whole sweep. Node 0 in cluster mode.
	Stages map[string]obs.StageQuantiles `json:"stages,omitempty"`
}

// defaultLabel derives the BENCH artifact label when -label is unset.
func defaultLabel(clients, admission string, nodes int, opts experiments.ConcurrentOptions) string {
	workloadName := opts.Workload
	if workloadName == "" {
		workloadName = "walk"
	}
	label := fmt.Sprintf("proto%d_clients%s", opts.Protocol, strings.ReplaceAll(clients, ",", "-"))
	if workloadName != "walk" {
		label = fmt.Sprintf("%s_%s_%s", label, workloadName, admission)
	}
	if nodes > 1 {
		label = fmt.Sprintf("%s_%dnode", label, nodes)
	}
	return label
}

// printStages renders the post-sweep stage breakdown, slowest first.
func printStages(stages map[string]obs.StageQuantiles) {
	if len(stages) == 0 {
		return
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return stages[names[i]].P95Ms > stages[names[j]].P95Ms
	})
	fmt.Println("Per-stage latency over the sweep (/metrics histograms):")
	for _, name := range names {
		q := stages[name]
		fmt.Printf("  %-12s n=%-7d p50=%8.3fms  p95=%8.3fms  p99=%8.3fms\n",
			name, q.Count, q.P50Ms, q.P95Ms, q.P99Ms)
	}
	fmt.Println()
}

// dumpSlowRequests writes the backend's flight recorder snapshot (the
// raw /debug/requests JSON) next to the BENCH artifact.
func dumpSlowRequests(baseURL, label string) error {
	resp, err := http.Get(baseURL + "/debug/requests")
	if err != nil {
		return fmt.Errorf("kyrix-bench: fetch /debug/requests: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("kyrix-bench: /debug/requests: %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	path := "BENCH_slow_" + label + ".json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", path)
	return nil
}

func writeBenchJSON(label, scale, clients, admission string, nodes int, opts experiments.ConcurrentOptions, stats []experiments.ConcurrentRowStats, stages map[string]obs.StageQuantiles) error {
	workloadName := opts.Workload
	if workloadName == "" {
		workloadName = "walk"
	}
	mode := "concurrent"
	if nodes > 1 {
		mode = "cluster"
	}
	if label == "" {
		label = defaultLabel(clients, admission, nodes, opts)
	}
	art := benchArtifact{
		Label: label, Mode: mode, Scale: scale, Clients: clients,
		Steps: opts.StepsPerClient, Batch: opts.BatchSize, Proto: opts.Protocol,
		Scheme: opts.Scheme.Name(), Workload: workloadName, Admission: admission,
		Nodes: nodes, Rows: stats, Stages: stages,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	path := "BENCH_" + label + ".json"
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", path)
	return nil
}

func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("kyrix-bench: bad -clients entry %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func buildClusterEnv(cfg experiments.Config, kind string, n int) *experiments.ClusterEnv {
	log.Printf("building %d-node %s cluster (%d points per node, canvas %gx%g)...",
		n, kind, cfg.NumPoints, cfg.CanvasW, cfg.CanvasH)
	start := time.Now()
	cenv, err := experiments.NewClusterEnv(cfg, kind, n)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("cluster ready in %v (load + both database designs on every node)", time.Since(start).Round(time.Millisecond))
	return cenv
}

func buildEnv(cfg experiments.Config, kind string) *experiments.Env {
	log.Printf("building %s environment (%d points, canvas %gx%g)...",
		kind, cfg.NumPoints, cfg.CanvasW, cfg.CanvasH)
	start := time.Now()
	env, err := experiments.NewEnv(cfg, kind)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s environment ready in %v (load + both database designs)", kind, time.Since(start).Round(time.Millisecond))
	return env
}
