// Command kyrix-server runs a Kyrix backend over HTTP.
//
// Demo mode generates one of the paper's synthetic datasets, builds the
// single-canvas scatter application over it and serves it:
//
//	kyrix-server -demo uniform -n 1000000 -addr :8080
//	kyrix-server -demo skewed  -n 1000000
//	kyrix-server -demo uniform -lod        # "lod": "auto" on the point layer
//
// Spec mode serves a JSON spec against CSV-loaded tables. Each -table
// flag is name=path.csv, where the CSV header declares typed columns as
// name:type (type ∈ int,double,text,bool):
//
//	kyrix-server -spec app.json -table states=states.csv -table counties=counties.csv
//
// Cluster mode joins this node to a serving cluster: -self is the URL
// peers reach this node at, -peers the comma-separated base URLs of
// every node (this node included is fine). Cache-key ownership is
// partitioned over a consistent-hash ring; a non-owner forwards misses
// to the owner's /peer endpoint instead of querying its database, hot
// keys replicate locally, and /update bumps a gossiped cluster epoch:
//
//	kyrix-server -demo uniform -addr :8080 -self http://10.0.0.1:8080 \
//	  -peers http://10.0.0.1:8080,http://10.0.0.2:8080
//
// Every node must serve the same data (shared or identically loaded
// backing store — the epoch protocol keeps caches coherent, data
// placement is the store's job).
//
// -replog-dir upgrades /update from gossiped invalidation to a
// quorum-committed replicated log persisted under that directory: any
// node accepts an update, forwards it to the elected leader, and every
// node applies the committed log in the same order. A restarted node
// replays its log and rejoins; updates acked to clients survive the
// loss of any minority of nodes:
//
//	kyrix-server -demo uniform -addr :8080 -self http://10.0.0.1:8080 \
//	  -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	  -replog-dir /var/lib/kyrix/replog
//
// -l2dir enables the persistent tile store (L2): rendered payloads are
// journaled to checksummed segment files under that directory through a
// write-behind queue, so a restarted node answers its working set from
// disk instead of re-querying the database. /update (and cluster epoch
// bumps) invalidate the store by generation without touching disk.
//
// Endpoints (consumed by the kyrix frontend client): /app /tile /dbox
// /update /stats, plus /peer for cluster fills. Observability rides the
// same mux: /metrics serves Prometheus-format counters and per-stage
// latency histograms, /debug/requests the flight recorder (the N
// slowest and most recent request traces as span trees); -pprof
// additionally mounts net/http/pprof under /debug/pprof/, and
// -no-trace turns span collection off while keeping the histograms.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"kyrix/internal/fetch"
	"kyrix/internal/server"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

type tableList []string

func (t *tableList) String() string     { return strings.Join(*t, ",") }
func (t *tableList) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.String("demo", "", "serve a synthetic demo dataset: uniform | skewed")
	n := flag.Int("n", 1_000_000, "demo dataset size")
	lod := flag.Bool("lod", false, "demo mode: declare \"lod\": \"auto\" on the point layer (aggregation pyramid)")
	specPath := flag.String("spec", "", "JSON app spec to serve (spec mode)")
	seed := flag.Int64("seed", 2019, "demo dataset seed")
	cacheMB := flag.Int64("cache-mb", 256, "backend cache budget in MB")
	l2dir := flag.String("l2dir", "", "enable the persistent tile store (L2) at this directory: rendered payloads survive restarts and warm the node without database queries")
	l2MB := flag.Int64("l2-mb", 0, "persistent tile store budget in MB (0 = store default, 1 GiB)")
	tileSizes := flag.String("tile-sizes", "256,1024,4096", "comma-separated tile sizes to precompute")
	walPath := flag.String("wal", "", "attach a write-ahead log at this path (enables the update model)")
	self := flag.String("self", "", "cluster mode: this node's base URL as peers reach it (e.g. http://10.0.0.1:8080)")
	peers := flag.String("peers", "", "cluster mode: comma-separated base URLs of every cluster node (may include -self)")
	replogDir := flag.String("replog-dir", "", "persist a replicated update log under this directory: /update commits through a quorum of the cluster and survives node failures (standalone: a durable single-node log)")
	noTrace := flag.Bool("no-trace", false, "disable request tracing and the /debug/requests flight recorder (/metrics histograms stay on)")
	flightN := flag.Int("flight-recorder", 0, "flight recorder depth: /debug/requests keeps the N most recent and N slowest request traces (0 = 64)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving mux")
	var tables tableList
	flag.Var(&tables, "table", "load a CSV table: name=path.csv (repeatable, spec mode)")
	flag.Parse()

	var clusterOpts server.ClusterOptions
	if *peers != "" || *self != "" {
		if *self == "" || *peers == "" {
			log.Fatal("cluster mode needs both -self and -peers")
		}
		clusterOpts.Self = *self
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				clusterOpts.Peers = append(clusterOpts.Peers, p)
			}
		}
		if !clusterOpts.Enabled() {
			log.Fatalf("-peers %q names no peer besides -self", *peers)
		}
	}
	clusterOpts.Replog.Dir = *replogDir

	var sizes []float64
	for _, s := range strings.Split(*tileSizes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			log.Fatalf("bad -tile-sizes: %v", err)
		}
		sizes = append(sizes, v)
	}

	db := sqldb.NewDB()
	if *walPath != "" {
		if err := db.AttachWAL(*walPath); err != nil {
			log.Fatalf("attach WAL: %v", err)
		}
		log.Printf("WAL attached at %s (recovered state replayed)", *walPath)
	}

	var ca *spec.CompiledApp
	var err error
	switch {
	case *demo != "":
		ca, err = buildDemo(db, *demo, *n, *seed, *lod)
	case *specPath != "":
		ca, err = buildFromSpec(db, *specPath, tables)
	default:
		log.Fatal("one of -demo or -spec is required")
	}
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(db, ca, server.Options{
		Cache: server.CacheOptions{
			L1: server.L1CacheOptions{Bytes: *cacheMB << 20},
			L2: server.L2CacheOptions{Path: *l2dir, MaxBytes: *l2MB << 20},
		},
		Cluster: clusterOpts,
		Obs: server.ObsOptions{
			DisableTracing:     *noTrace,
			FlightRecorderSize: *flightN,
			Pprof:              *pprofOn,
		},
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    sizes,
			MappingIndex: sqldb.IndexBTree,
		},
	})
	if err != nil {
		log.Fatalf("precompute: %v", err)
	}
	if clusterOpts.Enabled() {
		log.Printf("cluster node %s joined ring of %d peers", clusterOpts.Self, len(clusterOpts.Peers))
	}
	if *l2dir != "" {
		log.Printf("persistent tile store at %s (%d keys resident)", *l2dir, srv.L2().Len())
	}
	if *replogDir != "" {
		rs := srv.Replog().Snapshot()
		log.Printf("replicated update log at %s (%d members, %d entries on disk)",
			*replogDir, rs.Members, rs.LastIndex)
	}
	log.Printf("kyrix backend serving app %q on %s", ca.Spec.Name, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func buildDemo(db *sqldb.DB, kind string, n int, seed int64, lod bool) (*spec.CompiledApp, error) {
	const w, h = 131072.0, 16384.0
	var d *workload.Dataset
	switch kind {
	case "uniform":
		d = workload.Uniform(n, w, h, seed)
	case "skewed":
		d = workload.Skewed(n, w, h, seed)
	default:
		return nil, fmt.Errorf("unknown -demo %q (want uniform or skewed)", kind)
	}
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		return nil, err
	}
	for i := range d.Points {
		p := &d.Points[i]
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			return nil, err
		}
	}
	log.Printf("loaded %d %s points on a %gx%g canvas (lod=%v)", n, kind, w, h, lod)
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "demo-" + kind,
		Canvases: []spec.Canvas{{
			ID: "main", W: w, H: h,
			Transforms: []spec.Transform{{
				ID: "pts", Query: "SELECT * FROM points",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "pts",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
				LOD:         lodKnob(lod),
			}},
		}},
		InitialCanvas: "main", InitialX: w / 2, InitialY: h / 2,
		ViewportW: 1024, ViewportH: 1024,
	}
	return spec.Compile(app, reg)
}

func lodKnob(on bool) string {
	if on {
		return "auto"
	}
	return ""
}

func buildFromSpec(db *sqldb.DB, path string, tables tableList) (*spec.CompiledApp, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	app, err := spec.FromJSON(data)
	if err != nil {
		return nil, err
	}
	for _, tspec := range tables {
		name, csvPath, ok := strings.Cut(tspec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -table %q (want name=path.csv)", tspec)
		}
		if err := loadCSV(db, name, csvPath); err != nil {
			return nil, fmt.Errorf("load %s: %w", tspec, err)
		}
	}
	// Spec mode declares every referenced function name permissively:
	// a serving-only process has no Go callbacks, so specs served here
	// must be separable (the §3.2 common case).
	reg := spec.NewRegistry()
	for _, c := range app.Canvases {
		for _, l := range c.Layers {
			if l.Renderer != "" {
				reg.RegisterRenderer(l.Renderer)
			}
		}
	}
	return spec.Compile(app, reg)
}

// loadCSV loads a CSV with a typed header (col:type,...) into a fresh
// table.
func loadCSV(db *sqldb.DB, table, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("read header: %w", err)
	}
	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (", table)
	types := make([]string, len(header))
	for i, hcol := range header {
		name, typ, ok := strings.Cut(strings.TrimSpace(hcol), ":")
		if !ok {
			return fmt.Errorf("header column %q lacks a :type suffix", hcol)
		}
		types[i] = typ
		sqlType := map[string]string{"int": "INT", "double": "DOUBLE", "text": "TEXT", "bool": "BOOL"}[typ]
		if sqlType == "" {
			return fmt.Errorf("unknown type %q in header", typ)
		}
		if i > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "%s %s", name, sqlType)
	}
	ddl.WriteString(")")
	if _, err := db.Exec(ddl.String()); err != nil {
		return err
	}
	count := 0
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		row := make(storage.Row, len(rec))
		for i, cell := range rec {
			switch types[i] {
			case "int":
				v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
				if err != nil {
					return fmt.Errorf("row %d col %d: %w", count, i, err)
				}
				row[i] = storage.I64(v)
			case "double":
				v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
				if err != nil {
					return fmt.Errorf("row %d col %d: %w", count, i, err)
				}
				row[i] = storage.F64(v)
			case "text":
				row[i] = storage.Str(cell)
			case "bool":
				row[i] = storage.Bool(strings.EqualFold(strings.TrimSpace(cell), "true"))
			}
		}
		if err := db.InsertRow(table, row); err != nil {
			return err
		}
		count++
	}
	log.Printf("loaded table %s: %d rows", table, count)
	return nil
}
