package render

import (
	"image/color"
	"os"
	"path/filepath"
	"testing"

	"kyrix/internal/geom"
)

var (
	red   = color.RGBA{255, 0, 0, 255}
	white = color.RGBA{255, 255, 255, 255}
)

func TestNewClearsWhite(t *testing.T) {
	im := New(100, 50, geom.RectXYWH(0, 0, 100, 50))
	if w, h := im.Size(); w != 100 || h != 50 {
		t.Fatalf("size = %dx%d", w, h)
	}
	if im.At(geom.Point{X: 50, Y: 25}) != white {
		t.Fatal("background not white")
	}
	if im.View() != geom.RectXYWH(0, 0, 100, 50) {
		t.Fatal("view")
	}
}

func TestFillRect(t *testing.T) {
	im := New(100, 100, geom.RectXYWH(0, 0, 100, 100))
	im.FillRect(geom.Rect{MinX: 10, MinY: 10, MaxX: 30, MaxY: 30}, red)
	if im.At(geom.Point{X: 20, Y: 20}) != red {
		t.Fatal("inside not filled")
	}
	if im.At(geom.Point{X: 50, Y: 50}) != white {
		t.Fatal("outside filled")
	}
}

func TestFillRectScaled(t *testing.T) {
	// Viewport covers canvas [1000,2000): canvas point 1500 maps to
	// pixel 50.
	im := New(100, 100, geom.RectXYWH(1000, 1000, 1000, 1000))
	im.FillRect(geom.Rect{MinX: 1400, MinY: 1400, MaxX: 1600, MaxY: 1600}, red)
	if im.At(geom.Point{X: 1500, Y: 1500}) != red {
		t.Fatal("scaled fill missed")
	}
	if im.At(geom.Point{X: 1100, Y: 1100}) != white {
		t.Fatal("scaled fill overreached")
	}
	// Off-view geometry is a no-op.
	im.FillRect(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, red)
}

func TestStrokeRect(t *testing.T) {
	im := New(100, 100, geom.RectXYWH(0, 0, 100, 100))
	im.StrokeRect(geom.Rect{MinX: 10, MinY: 10, MaxX: 90, MaxY: 90}, red)
	if im.At(geom.Point{X: 10, Y: 50}) != red {
		t.Fatal("left edge not stroked")
	}
	if im.At(geom.Point{X: 50, Y: 50}) != white {
		t.Fatal("interior filled by stroke")
	}
}

func TestDot(t *testing.T) {
	im := New(100, 100, geom.RectXYWH(0, 0, 100, 100))
	im.Dot(geom.Point{X: 50, Y: 50}, 5, red)
	if im.At(geom.Point{X: 50, Y: 50}) != red {
		t.Fatal("dot center not set")
	}
	if im.At(geom.Point{X: 58, Y: 58}) == red {
		t.Fatal("dot too large")
	}
	// A sub-pixel dot still lands one pixel.
	im2 := New(10, 10, geom.RectXYWH(0, 0, 1000, 1000))
	im2.Dot(geom.Point{X: 500, Y: 500}, 1, red)
	if im2.At(geom.Point{X: 500, Y: 500}) != red {
		t.Fatal("tiny dot vanished")
	}
}

func TestLine(t *testing.T) {
	im := New(100, 100, geom.RectXYWH(0, 0, 100, 100))
	im.Line(geom.Point{X: 0, Y: 0}, geom.Point{X: 99, Y: 99}, red)
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 50}, {X: 99, Y: 99}} {
		if im.At(p) != red {
			t.Fatalf("line missing at %v", p)
		}
	}
	// Line partially outside the view must not panic.
	im.Line(geom.Point{X: -50, Y: 20}, geom.Point{X: 150, Y: 20}, red)
	if im.At(geom.Point{X: 50, Y: 20}) != red {
		t.Fatal("clipped horizontal line missing")
	}
}

func TestSavePNG(t *testing.T) {
	im := New(20, 20, geom.RectXYWH(0, 0, 20, 20))
	im.FillRect(geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}, red)
	path := filepath.Join(t.TempDir(), "out.png")
	if err := im.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("png not written: %v", err)
	}
	if err := im.SavePNG(filepath.Join(t.TempDir(), "missing", "out.png")); err == nil {
		t.Fatal("bad path must error")
	}
}

func TestRamp(t *testing.T) {
	lo := Ramp(0, 0, 100)
	hi := Ramp(100, 0, 100)
	if lo.G != 235 || hi.G != 0 {
		t.Fatalf("ramp ends: %v %v", lo, hi)
	}
	// Clamping.
	if Ramp(-50, 0, 100) != lo || Ramp(500, 0, 100) != hi {
		t.Fatal("ramp must clamp")
	}
	// Degenerate domain.
	if Ramp(5, 10, 10).R != 255 {
		t.Fatal("degenerate ramp")
	}
	mid := Ramp(50, 0, 100)
	if mid.G >= lo.G || mid.G <= hi.G {
		t.Fatal("ramp not monotone")
	}
}

func TestCategoryColor(t *testing.T) {
	seen := map[color.RGBA]bool{}
	for i := 0; i < 8; i++ {
		c := CategoryColor(i)
		if seen[c] {
			t.Fatalf("palette repeats at %d", i)
		}
		seen[c] = true
	}
	if CategoryColor(8) != CategoryColor(0) {
		t.Fatal("palette should wrap")
	}
	_ = CategoryColor(-3) // must not panic
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 10, geom.RectXYWH(0, 0, 1, 1))
}

func BenchmarkDot(b *testing.B) {
	im := New(1024, 1024, geom.RectXYWH(0, 0, 1024, 1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		im.Dot(geom.Point{X: float64(i % 1024), Y: float64((i * 7) % 1024)}, 2, red)
	}
}
