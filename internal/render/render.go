// Package render is the software rasterizer standing in for the
// browser/D3 rendering functions of the paper's frontend. Rendering
// correctness is not what the paper measures, but the examples produce
// real PNGs through it, and the frontend simulator charges rendering
// work to a separate path from data fetching, mirroring "rendering is
// performed by a separate process" (§3.2).
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"

	"kyrix/internal/geom"
)

// Image is a drawable RGBA raster mapped onto a canvas-space viewport:
// drawing coordinates are canvas coordinates, translated and scaled to
// pixels internally.
type Image struct {
	rgba *image.RGBA
	// view is the canvas-space rectangle this image shows.
	view geom.Rect
	sx   float64
	sy   float64
}

// New creates a w×h pixel image showing the canvas-space rect view.
func New(w, h int, view geom.Rect) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: image dims %dx%d", w, h))
	}
	img := &Image{
		rgba: image.NewRGBA(image.Rect(0, 0, w, h)),
		view: view,
	}
	img.sx = float64(w) / view.W()
	img.sy = float64(h) / view.H()
	img.Clear(color.RGBA{R: 255, G: 255, B: 255, A: 255})
	return img
}

// Size returns the pixel dimensions.
func (im *Image) Size() (int, int) {
	b := im.rgba.Bounds()
	return b.Dx(), b.Dy()
}

// View returns the canvas-space viewport.
func (im *Image) View() geom.Rect { return im.view }

// RGBA exposes the underlying raster (e.g., for diffing in tests).
func (im *Image) RGBA() *image.RGBA { return im.rgba }

// Clear fills the whole image.
func (im *Image) Clear(c color.Color) {
	b := im.rgba.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			im.rgba.Set(x, y, c)
		}
	}
}

// toPx converts canvas coordinates to pixel coordinates.
func (im *Image) toPx(p geom.Point) (int, int) {
	return int(math.Floor((p.X - im.view.MinX) * im.sx)),
		int(math.Floor((p.Y - im.view.MinY) * im.sy))
}

// FillRect fills a canvas-space rectangle.
func (im *Image) FillRect(r geom.Rect, c color.Color) {
	if !r.Intersects(im.view) {
		return
	}
	x0, y0 := im.toPx(geom.Point{X: r.MinX, Y: r.MinY})
	x1, y1 := im.toPx(geom.Point{X: r.MaxX, Y: r.MaxY})
	b := im.rgba.Bounds()
	for y := max(y0, b.Min.Y); y <= min(y1, b.Max.Y-1); y++ {
		for x := max(x0, b.Min.X); x <= min(x1, b.Max.X-1); x++ {
			im.rgba.Set(x, y, c)
		}
	}
}

// StrokeRect outlines a canvas-space rectangle with a 1px border.
func (im *Image) StrokeRect(r geom.Rect, c color.Color) {
	if !r.Intersects(im.view) {
		return
	}
	x0, y0 := im.toPx(geom.Point{X: r.MinX, Y: r.MinY})
	x1, y1 := im.toPx(geom.Point{X: r.MaxX, Y: r.MaxY})
	b := im.rgba.Bounds()
	for x := max(x0, b.Min.X); x <= min(x1, b.Max.X-1); x++ {
		if y0 >= b.Min.Y && y0 < b.Max.Y {
			im.rgba.Set(x, y0, c)
		}
		if y1 >= b.Min.Y && y1 < b.Max.Y {
			im.rgba.Set(x, y1, c)
		}
	}
	for y := max(y0, b.Min.Y); y <= min(y1, b.Max.Y-1); y++ {
		if x0 >= b.Min.X && x0 < b.Max.X {
			im.rgba.Set(x0, y, c)
		}
		if x1 >= b.Min.X && x1 < b.Max.X {
			im.rgba.Set(x1, y, c)
		}
	}
}

// Dot fills a canvas-space disc of radius r (in canvas units).
func (im *Image) Dot(p geom.Point, r float64, c color.Color) {
	box := geom.RectAround(p, r)
	if !box.Intersects(im.view) {
		return
	}
	x0, y0 := im.toPx(geom.Point{X: box.MinX, Y: box.MinY})
	x1, y1 := im.toPx(geom.Point{X: box.MaxX, Y: box.MaxY})
	cx, cy := im.toPx(p)
	rr := float64(x1-x0) / 2
	if rr < 1 {
		rr = 1
	}
	b := im.rgba.Bounds()
	for y := max(y0, b.Min.Y); y <= min(y1, b.Max.Y-1); y++ {
		for x := max(x0, b.Min.X); x <= min(x1, b.Max.X-1); x++ {
			dx, dy := float64(x-cx), float64(y-cy)
			if dx*dx+dy*dy <= rr*rr {
				im.rgba.Set(x, y, c)
			}
		}
	}
}

// Line draws a 1px line between two canvas points (Bresenham).
func (im *Image) Line(a, b geom.Point, c color.Color) {
	x0, y0 := im.toPx(a)
	x1, y1 := im.toPx(b)
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	bounds := im.rgba.Bounds()
	for {
		if x0 >= bounds.Min.X && x0 < bounds.Max.X && y0 >= bounds.Min.Y && y0 < bounds.Max.Y {
			im.rgba.Set(x0, y0, c)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// At returns the pixel color at canvas point p (useful in tests).
func (im *Image) At(p geom.Point) color.Color {
	x, y := im.toPx(p)
	return im.rgba.At(x, y)
}

// SavePNG writes the image to path.
func (im *Image) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("render: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, im.rgba); err != nil {
		return fmt.Errorf("render: encode %s: %w", path, err)
	}
	return nil
}

// Ramp maps v in [lo, hi] onto a white→red sequential color ramp, the
// classic choropleth scale for the crime-rate example.
func Ramp(v, lo, hi float64) color.RGBA {
	if hi <= lo {
		return color.RGBA{R: 255, G: 255, B: 255, A: 255}
	}
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return color.RGBA{
		R: 255,
		G: uint8(235 * (1 - t)),
		B: uint8(225 * (1 - t)),
		A: 255,
	}
}

// CategoryColor returns a distinguishable color for small category
// indexes (EEG channels, trace series).
func CategoryColor(i int) color.RGBA {
	palette := []color.RGBA{
		{31, 119, 180, 255}, {255, 127, 14, 255}, {44, 160, 44, 255},
		{214, 39, 40, 255}, {148, 103, 189, 255}, {140, 86, 75, 255},
		{227, 119, 194, 255}, {127, 127, 127, 255},
	}
	return palette[((i%len(palette))+len(palette))%len(palette)]
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
