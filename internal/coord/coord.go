// Package coord implements the coordinated multi-canvas views of the
// paper's §4 MGH scenario: "Kyrix must be extended to support multiple
// canvases on the screen simultaneously and to have pan/zoom operations
// in one canvas cause desired actions in other canvases", e.g.
// "movement in the temporal view should cause an appropriate change in
// the spectral view".
//
// A Coordinator links named views; each link maps one view's viewport
// to another's through an affine coordinate map. Moving any view
// propagates through the link graph (with cycle protection, so mutual
// temporal↔spectral links work).
package coord

import (
	"fmt"
	"sync"

	"kyrix/internal/geom"
)

// View is anything with a movable viewport; the frontend Client
// satisfies it via a small adapter, and tests use fakes.
type View interface {
	// Viewport returns the current viewport.
	Viewport() geom.Rect
	// MoveTo pans the view. Implementations fetch data as needed.
	MoveTo(geom.Rect) error
}

// Map is an affine mapping between two canvases' coordinate systems:
// dst = src*Scale + Offset, per axis.
type Map struct {
	ScaleX, ScaleY   float64
	OffsetX, OffsetY float64
}

// Identity is the no-op map.
var Identity = Map{ScaleX: 1, ScaleY: 1}

// Apply transforms a rectangle through the map.
func (m Map) Apply(r geom.Rect) geom.Rect {
	out := geom.Rect{
		MinX: r.MinX*m.ScaleX + m.OffsetX,
		MinY: r.MinY*m.ScaleY + m.OffsetY,
		MaxX: r.MaxX*m.ScaleX + m.OffsetX,
		MaxY: r.MaxY*m.ScaleY + m.OffsetY,
	}
	if out.MinX > out.MaxX {
		out.MinX, out.MaxX = out.MaxX, out.MinX
	}
	if out.MinY > out.MaxY {
		out.MinY, out.MaxY = out.MaxY, out.MinY
	}
	return out
}

// Invert returns the inverse map (zero scales are rejected at link
// time, so Invert is total here).
func (m Map) Invert() Map {
	return Map{
		ScaleX:  1 / m.ScaleX,
		ScaleY:  1 / m.ScaleY,
		OffsetX: -m.OffsetX / m.ScaleX,
		OffsetY: -m.OffsetY / m.ScaleY,
	}
}

// XOnly keeps the destination's y extent, coordinating only the x axis
// — the EEG temporal→spectral case where time aligns but the vertical
// encodings differ.
type LinkOption func(*link)

// WithXOnly coordinates only the horizontal axis.
func WithXOnly() LinkOption {
	return func(l *link) { l.xOnly = true }
}

type link struct {
	from, to string
	m        Map
	xOnly    bool
}

// Coordinator owns the linked views.
type Coordinator struct {
	mu    sync.Mutex
	views map[string]View // guarded by mu
	links []link          // guarded by mu
}

// New creates an empty coordinator.
func New() *Coordinator {
	return &Coordinator{views: make(map[string]View)}
}

// AddView registers a named view.
func (c *Coordinator) AddView(name string, v View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.views[name]; dup {
		return fmt.Errorf("coord: duplicate view %q", name)
	}
	c.views[name] = v
	return nil
}

// Link ties from→to through m: when from moves, to moves to the mapped
// viewport. Register the inverse link too for bidirectional coupling.
func (c *Coordinator) Link(from, to string, m Map, opts ...LinkOption) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[from]; !ok {
		return fmt.Errorf("coord: unknown view %q", from)
	}
	if _, ok := c.views[to]; !ok {
		return fmt.Errorf("coord: unknown view %q", to)
	}
	if m.ScaleX == 0 || m.ScaleY == 0 {
		return fmt.Errorf("coord: degenerate map scale")
	}
	l := link{from: from, to: to, m: m}
	for _, o := range opts {
		o(&l)
	}
	c.links = append(c.links, l)
	return nil
}

// LinkBidirectional installs from→to with m and to→from with the
// inverse.
func (c *Coordinator) LinkBidirectional(from, to string, m Map, opts ...LinkOption) error {
	if err := c.Link(from, to, m, opts...); err != nil {
		return err
	}
	return c.Link(to, from, m.Invert(), opts...)
}

// Move pans the named view and propagates through links. Each view
// moves at most once per call (cycle protection), so bidirectional
// links terminate.
func (c *Coordinator) Move(name string, to geom.Rect) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.views[name]
	if !ok {
		return fmt.Errorf("coord: unknown view %q", name)
	}
	moved := map[string]bool{name: true}
	if err := v.MoveTo(to); err != nil {
		return fmt.Errorf("coord: move %q: %w", name, err)
	}
	// BFS through links.
	type pending struct {
		name string
		vp   geom.Rect
	}
	queue := []pending{{name, to}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range c.links {
			if l.from != cur.name || moved[l.to] {
				continue
			}
			dst := c.views[l.to]
			target := l.m.Apply(cur.vp)
			if l.xOnly {
				old := dst.Viewport()
				target.MinY, target.MaxY = old.MinY, old.MaxY
			}
			moved[l.to] = true
			if err := dst.MoveTo(target); err != nil {
				return fmt.Errorf("coord: propagate to %q: %w", l.to, err)
			}
			queue = append(queue, pending{l.to, target})
		}
	}
	return nil
}

// Views lists registered view names.
func (c *Coordinator) Views() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.views))
	for n := range c.views {
		out = append(out, n)
	}
	return out
}
