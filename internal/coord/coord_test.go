package coord

import (
	"errors"
	"math"
	"testing"

	"kyrix/internal/geom"
)

type fakeView struct {
	vp    geom.Rect
	moves int
	fail  bool
}

func (f *fakeView) Viewport() geom.Rect { return f.vp }
func (f *fakeView) MoveTo(r geom.Rect) error {
	if f.fail {
		return errors.New("boom")
	}
	f.vp = r
	f.moves++
	return nil
}

func TestMapApplyInvert(t *testing.T) {
	m := Map{ScaleX: 2, ScaleY: 3, OffsetX: 10, OffsetY: -5}
	r := geom.RectXYWH(100, 100, 50, 50)
	fwd := m.Apply(r)
	if fwd.MinX != 210 || fwd.MinY != 295 || fwd.W() != 100 || fwd.H() != 150 {
		t.Fatalf("Apply = %v", fwd)
	}
	back := m.Invert().Apply(fwd)
	if math.Abs(back.MinX-r.MinX) > 1e-9 || math.Abs(back.MaxY-r.MaxY) > 1e-9 {
		t.Fatalf("roundtrip = %v want %v", back, r)
	}
	// Negative scale flips; Apply must keep rect valid.
	neg := Map{ScaleX: -1, ScaleY: 1}
	out := neg.Apply(r)
	if !out.Valid() {
		t.Fatalf("negative scale produced invalid rect %v", out)
	}
}

func TestAddLinkValidation(t *testing.T) {
	c := New()
	a := &fakeView{}
	if err := c.AddView("a", a); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView("a", a); err == nil {
		t.Fatal("duplicate view must fail")
	}
	if err := c.Link("a", "ghost", Identity); err == nil {
		t.Fatal("unknown to-view must fail")
	}
	if err := c.Link("ghost", "a", Identity); err == nil {
		t.Fatal("unknown from-view must fail")
	}
	_ = c.AddView("b", &fakeView{})
	if err := c.Link("a", "b", Map{ScaleX: 0, ScaleY: 1}); err == nil {
		t.Fatal("degenerate scale must fail")
	}
	if err := c.Move("ghost", geom.Rect{}); err == nil {
		t.Fatal("moving unknown view must fail")
	}
}

func TestLinkedMove(t *testing.T) {
	c := New()
	temporal := &fakeView{}
	spectral := &fakeView{}
	_ = c.AddView("temporal", temporal)
	_ = c.AddView("spectral", spectral)
	// Spectral canvas is half the temporal scale on x.
	if err := c.Link("temporal", "spectral", Map{ScaleX: 0.5, ScaleY: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Move("temporal", geom.RectXYWH(1000, 0, 200, 100)); err != nil {
		t.Fatal(err)
	}
	if temporal.vp.MinX != 1000 {
		t.Fatal("primary view did not move")
	}
	if spectral.vp.MinX != 500 || spectral.vp.W() != 100 {
		t.Fatalf("linked view = %v", spectral.vp)
	}
	// Moving spectral does NOT move temporal (one-way link).
	_ = c.Move("spectral", geom.RectXYWH(0, 0, 100, 100))
	if temporal.vp.MinX != 1000 {
		t.Fatal("one-way link propagated backwards")
	}
}

func TestBidirectionalNoInfiniteLoop(t *testing.T) {
	c := New()
	a := &fakeView{}
	b := &fakeView{}
	_ = c.AddView("a", a)
	_ = c.AddView("b", b)
	if err := c.LinkBidirectional("a", "b", Map{ScaleX: 2, ScaleY: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Move("a", geom.RectXYWH(100, 100, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if a.moves != 1 || b.moves != 1 {
		t.Fatalf("moves = %d/%d (cycle?)", a.moves, b.moves)
	}
	if b.vp.MinX != 200 {
		t.Fatalf("b = %v", b.vp)
	}
	// And the other direction.
	if err := c.Move("b", geom.RectXYWH(400, 400, 20, 20)); err != nil {
		t.Fatal(err)
	}
	if a.vp.MinX != 200 {
		t.Fatalf("a = %v", a.vp)
	}
}

func TestChainPropagation(t *testing.T) {
	c := New()
	v1, v2, v3 := &fakeView{}, &fakeView{}, &fakeView{}
	_ = c.AddView("v1", v1)
	_ = c.AddView("v2", v2)
	_ = c.AddView("v3", v3)
	_ = c.Link("v1", "v2", Map{ScaleX: 2, ScaleY: 2})
	_ = c.Link("v2", "v3", Map{ScaleX: 2, ScaleY: 2})
	if err := c.Move("v1", geom.RectXYWH(10, 10, 5, 5)); err != nil {
		t.Fatal(err)
	}
	if v3.vp.MinX != 40 {
		t.Fatalf("chained v3 = %v", v3.vp)
	}
}

func TestXOnlyLink(t *testing.T) {
	c := New()
	temporal := &fakeView{}
	spectral := &fakeView{vp: geom.RectXYWH(0, 300, 100, 100)}
	_ = c.AddView("temporal", temporal)
	_ = c.AddView("spectral", spectral)
	_ = c.Link("temporal", "spectral", Identity, WithXOnly())
	if err := c.Move("temporal", geom.RectXYWH(500, 700, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if spectral.vp.MinX != 500 {
		t.Fatal("x not coordinated")
	}
	if spectral.vp.MinY != 300 || spectral.vp.MaxY != 400 {
		t.Fatalf("y should be untouched: %v", spectral.vp)
	}
}

func TestMoveErrorPropagates(t *testing.T) {
	c := New()
	a := &fakeView{}
	b := &fakeView{fail: true}
	_ = c.AddView("a", a)
	_ = c.AddView("b", b)
	_ = c.Link("a", "b", Identity)
	if err := c.Move("a", geom.RectXYWH(0, 0, 1, 1)); err == nil {
		t.Fatal("linked failure must surface")
	}
}

func TestViews(t *testing.T) {
	c := New()
	_ = c.AddView("x", &fakeView{})
	_ = c.AddView("y", &fakeView{})
	if len(c.Views()) != 2 {
		t.Fatal("views")
	}
}
