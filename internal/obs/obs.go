// Package obs is Kyrix's stdlib-only observability layer. It has three
// pillars that share one design constraint: the serving hot path must pay
// at most a nil check (tracing off) or a couple of atomic adds (metrics)
// per stage.
//
//   - Tracing: Tracer.Start(ctx, name) opens a span; child spans hang off
//     the context. Spans carry µs timestamps and small key/value attribute
//     sets, and whole trace trees can be serialized, shipped across a node
//     boundary in an HTTP header, and grafted back into the caller's trace
//     so a cross-node fill reads as one stitched timeline.
//   - Metrics: Registry hands out atomic counters and fixed-bucket latency
//     histograms and renders them in Prometheus text exposition format.
//     Ad-hoc families (values owned elsewhere, e.g. server counters) are
//     emitted at scrape time through registered collectors.
//   - Flight recorder: Recorder keeps the N most recent and N slowest
//     completed traces in lock-cheap structures for /debug/requests.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries trace context (traceID-parentSpanID, hex) on
// cross-node requests: peer fills, replog RPCs, and client batches.
const TraceHeader = "X-Kyrix-Trace"

// SpansHeader carries a completed span subtree (JSON) on a peer response
// so the requester can graft the owner node's timeline into its own trace.
// Subtrees larger than maxSpansHeader bytes are dropped, not truncated.
const SpansHeader = "X-Kyrix-Trace-Spans"

const maxSpansHeader = 16 << 10

// idCounter seeds span/trace IDs. The random base keeps IDs distinct
// across nodes so stitched traces don't collide.
var idCounter atomic.Uint64

func init() {
	idCounter.Store(rand.Uint64() | 1)
}

func newID() uint64 {
	return idCounter.Add(0x9e3779b97f4a7c15) // golden-ratio stride keeps IDs well spread
}

// Tracer creates spans and records finished root traces into a Recorder.
// A nil *Tracer is valid and means "tracing off": Start returns a nil span
// and the unchanged context, and all span methods on nil are no-ops.
type Tracer struct {
	rec *Recorder
}

// NewTracer returns a tracer recording completed root traces into rec.
// rec may be nil (spans still work, e.g. for header propagation, but
// nothing is retained).
func NewTracer(rec *Recorder) *Tracer {
	return &Tracer{rec: rec}
}

// Recorder returns the flight recorder backing t, or nil.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Span is one timed operation inside a trace. Spans are created by
// Tracer.Start and finished with End; attributes and children may be added
// from multiple goroutines (batch workers share a parent span).
type Span struct {
	tracer     *Tracer
	traceID    uint64
	spanID     uint64
	parent     uint64
	name       string
	start      time.Time
	root       bool
	parentSpan *Span

	mu       sync.Mutex
	attrs    []Attr      // guarded by mu
	children []*SpanData // guarded by mu
	ended    bool        // guarded by mu
	durUS    int64       // guarded by mu
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanData is the exported, immutable form of a finished span. It is what
// /debug/requests serves and what crosses node boundaries in SpansHeader.
type SpanData struct {
	TraceID  string      `json:"trace"`
	SpanID   string      `json:"span"`
	Parent   string      `json:"parent,omitempty"`
	Name     string      `json:"name"`
	StartUS  int64       `json:"startUs"` // µs since the Unix epoch
	DurUS    int64       `json:"durUs"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Children []*SpanData `json:"children,omitempty"`
}

type ctxKey struct{}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Start opens a span named name. If ctx already carries a span the new one
// is its child; otherwise it becomes a new root trace. The returned
// context carries the new span. On a nil tracer both return values are
// passed through unchanged (sp == nil).
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{tracer: t, name: name, spanID: newID(), start: time.Now()}
	if parent := SpanFromContext(ctx); parent != nil {
		sp.traceID = parent.traceID
		sp.parent = parent.spanID
		sp.parentSpan = parent
	} else {
		sp.traceID = newID()
		sp.root = true
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartRemote opens a root span that continues a trace started on another
// node (or the client): it adopts tc's trace ID and parent span ID, so the
// resulting SpanData can be grafted into the remote caller's trace.
func (t *Tracer) StartRemote(ctx context.Context, name string, tc TraceContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{tracer: t, name: name, spanID: newID(), start: time.Now(), root: true}
	if tc.TraceID != 0 {
		sp.traceID = tc.TraceID
		sp.parent = tc.SpanID
	} else {
		sp.traceID = newID()
	}
	return ContextWithSpan(ctx, sp), sp
}

// Attr records a key/value attribute on the span. Safe on nil.
func (s *Span) Attr(key string, value any) {
	if s == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case string:
		v = x
	case int:
		v = strconv.Itoa(x)
	case int64:
		v = strconv.FormatInt(x, 10)
	case bool:
		v = strconv.FormatBool(x)
	case time.Duration:
		v = x.String()
	default:
		v = fmt.Sprint(x)
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// End finishes the span. Child spans fold their finished SpanData into the
// parent; a root span hands the completed trace to the tracer's recorder.
// End is idempotent and safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.durUS = time.Since(s.start).Microseconds()
	s.mu.Unlock()
	if s.root {
		if rec := s.tracer.rec; rec != nil {
			rec.Record(s.Data())
		}
		return
	}
	if p := s.parentSpan; p != nil {
		p.addChild(s.Data())
	}
}

// Duration reports how long the span ran (or has been running).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return time.Duration(s.durUS) * time.Microsecond
	}
	return time.Since(s.start)
}

func (s *Span) addChild(d *SpanData) {
	s.mu.Lock()
	s.children = append(s.children, d)
	s.mu.Unlock()
}

// Graft attaches a finished remote span subtree (typically decoded from
// SpansHeader) as a child of s. Safe on nil.
func (s *Span) Graft(d *SpanData) {
	if s == nil || d == nil {
		return
	}
	s.addChild(d)
}

// Data snapshots the span into its exported form. Children are copied;
// attribute order is preserved.
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := &SpanData{
		TraceID: formatID(s.traceID),
		SpanID:  formatID(s.spanID),
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   s.durUS,
	}
	if s.parent != 0 {
		d.Parent = formatID(s.parent)
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Attr(nil), s.attrs...)
	}
	if len(s.children) > 0 {
		d.Children = append([]*SpanData(nil), s.children...)
		sort.SliceStable(d.Children, func(i, j int) bool { return d.Children[i].StartUS < d.Children[j].StartUS })
	}
	return d
}

func formatID(id uint64) string {
	return strconv.FormatUint(id, 16)
}

// TraceContext is the wire form of a trace position: which trace, and
// which span the next hop should parent under.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// HeaderValue renders tc for TraceHeader.
func (tc TraceContext) HeaderValue() string {
	return formatID(tc.TraceID) + "-" + formatID(tc.SpanID)
}

// ParseTraceContext parses a TraceHeader value. ok is false on any
// malformed input.
func ParseTraceContext(v string) (tc TraceContext, ok bool) {
	dash := strings.IndexByte(v, '-')
	if dash <= 0 || dash == len(v)-1 {
		return TraceContext{}, false
	}
	tid, err1 := strconv.ParseUint(v[:dash], 16, 64)
	sid, err2 := strconv.ParseUint(v[dash+1:], 16, 64)
	if err1 != nil || err2 != nil || tid == 0 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tid, SpanID: sid}, true
}

// InjectHeader writes the active span's trace context from ctx into h.
// No-op when ctx carries no span.
func InjectHeader(ctx context.Context, h http.Header) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return
	}
	h.Set(TraceHeader, TraceContext{TraceID: sp.traceID, SpanID: sp.spanID}.HeaderValue())
}

// ExtractHeader reads trace context from h. ok is false when the header is
// absent or malformed.
func ExtractHeader(h http.Header) (TraceContext, bool) {
	v := h.Get(TraceHeader)
	if v == "" {
		return TraceContext{}, false
	}
	return ParseTraceContext(v)
}

// EncodeSpansHeader renders d for SpansHeader. It returns "" when the
// subtree serializes larger than the bound (the trace is then simply not
// stitched rather than corrupted).
func EncodeSpansHeader(d *SpanData) string {
	if d == nil {
		return ""
	}
	b, err := json.Marshal(d)
	if err != nil || len(b) > maxSpansHeader {
		return ""
	}
	return string(b)
}

// DecodeSpansHeader parses a SpansHeader value; nil when absent or bad.
func DecodeSpansHeader(v string) *SpanData {
	if v == "" || len(v) > maxSpansHeader {
		return nil
	}
	var d SpanData
	if err := json.Unmarshal([]byte(v), &d); err != nil {
		return nil
	}
	return &d
}
