package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Recorder is the flight recorder: a bounded, lock-cheap store of the N
// most recent and the N slowest completed traces.
//
// The recent side is a ring of atomic pointers indexed by an atomic
// cursor — recording is two atomics, no locks. The slowest side keeps a
// small sorted slice behind a mutex, but the mutex is only taken when a
// trace beats the current floor, which is published through an atomic so
// the common case (fast request, slow floor already high) is one atomic
// load.
type Recorder struct {
	cap    int
	recent []atomic.Pointer[SpanData]
	cursor atomic.Uint64

	floorUS atomic.Int64 // duration floor of the slowest set; -1 while not full

	mu      sync.Mutex
	slowest []*SpanData // guarded by mu; sorted by DurUS descending
}

// NewRecorder returns a recorder keeping the n most recent and n slowest
// traces. n <= 0 selects the default of 64.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 64
	}
	r := &Recorder{cap: n, recent: make([]atomic.Pointer[SpanData], n)}
	r.floorUS.Store(-1)
	return r
}

// Record stores one completed root trace. Safe for concurrent use; safe on
// nil.
func (r *Recorder) Record(d *SpanData) {
	if r == nil || d == nil {
		return
	}
	slot := (r.cursor.Add(1) - 1) % uint64(r.cap)
	r.recent[slot].Store(d)

	floor := r.floorUS.Load()
	if floor >= 0 && d.DurUS <= floor {
		return
	}
	r.mu.Lock()
	r.insertSlowestLocked(d)
	r.mu.Unlock()
}

// insertSlowestLocked inserts d into the sorted slowest set, evicting the
// fastest entry when full, and republishes the atomic floor.
func (r *Recorder) insertSlowestLocked(d *SpanData) {
	i := sort.Search(len(r.slowest), func(i int) bool { return r.slowest[i].DurUS < d.DurUS })
	r.slowest = append(r.slowest, nil)
	copy(r.slowest[i+1:], r.slowest[i:])
	r.slowest[i] = d
	if len(r.slowest) > r.cap {
		r.slowest = r.slowest[:r.cap]
	}
	if len(r.slowest) == r.cap {
		r.floorUS.Store(r.slowest[len(r.slowest)-1].DurUS)
	}
}

// Snapshot is the JSON shape served at /debug/requests.
type Snapshot struct {
	Recent  []*SpanData `json:"recent"`
	Slowest []*SpanData `json:"slowest"`
}

// Snapshot returns the current recent (newest first) and slowest (slowest
// first) traces. Safe on nil.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{}
	cur := r.cursor.Load()
	for off := uint64(0); off < uint64(r.cap); off++ {
		// Walk backwards from the most recently written slot.
		slot := (cur + uint64(r.cap) - 1 - off) % uint64(r.cap)
		if d := r.recent[slot].Load(); d != nil {
			snap.Recent = append(snap.Recent, d)
		}
	}
	r.mu.Lock()
	snap.Slowest = append([]*SpanData(nil), r.slowest...)
	r.mu.Unlock()
	return snap
}
