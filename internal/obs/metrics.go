package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the upper bounds (seconds) for latency histograms:
// 50µs up to 2.5s in a coarse exponential ladder sized for a serving path
// whose SLO is "interaction under 500ms".
var DefaultBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Counter is a monotonically increasing metric series.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-bucket latency histogram. Observations are
// durations; exposition is in seconds. All mutation is atomic — Observe
// costs two atomic adds plus a branch-free bucket search.
type Histogram struct {
	bounds []float64 // upper bounds, seconds; ascending
	counts []atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot returns cumulative bucket counts aligned with bounds plus +Inf,
// the total count, and the sum in seconds.
func (h *Histogram) snapshot() (cum []uint64, total uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), float64(h.sumNS.Load()) / 1e9
}

// Quantile estimates the q-quantile (0..1) in seconds by linear
// interpolation within the bucket containing the target rank, matching
// Prometheus's histogram_quantile. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, total, _ := h.snapshot()
	return bucketQuantile(h.bounds, cum, total, q)
}

func bucketQuantile(bounds []float64, cum []uint64, total uint64, q float64) float64 {
	if total == 0 || len(cum) == 0 {
		return 0
	}
	rank := q * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i == len(cum) {
		i = len(cum) - 1
	}
	if i >= len(bounds) { // landed in +Inf: report the last finite bound
		if len(bounds) == 0 {
			return 0
		}
		return bounds[len(bounds)-1]
	}
	lo, clo := 0.0, uint64(0)
	if i > 0 {
		lo, clo = bounds[i-1], cum[i-1]
	}
	hi, chi := bounds[i], cum[i]
	if chi == clo {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(clo))/(float64(chi)-float64(clo))
}

// labelSet is a rendered, sorted label string like `stage="db.query"`.
type labelSet string

func makeLabels(kv ...string) labelSet {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, kv[i]+`="`+escapeLabel(kv[i+1])+`"`)
	}
	sort.Strings(pairs)
	return labelSet(strings.Join(pairs, ","))
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

type family struct {
	name string
	help string
	typ  string // "counter", "histogram"

	mu         sync.Mutex
	counters   map[labelSet]*Counter   // guarded by mu
	histograms map[labelSet]*Histogram // guarded by mu
}

// Registry owns metric families and renders them as Prometheus text
// exposition. Handles returned by Counter/Histogram are stable — resolve
// them once at setup and mutate lock-free on the hot path.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family           // guarded by mu
	order      []string                     // guarded by mu
	collectors []func(*CollectorScratchpad) // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:       name,
			help:       help,
			typ:        typ,
			counters:   make(map[labelSet]*Counter),
			histograms: make(map[labelSet]*Histogram),
		}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// Counter returns the counter series for name with the given label
// key/value pairs, creating family and series on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, "counter")
	ls := makeLabels(labels...)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.counters[ls]
	if !ok {
		c = &Counter{}
		f.counters[ls] = c
	}
	return c
}

// Histogram returns the histogram series for name with the given label
// key/value pairs, using DefaultBuckets.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	f := r.family(name, help, "histogram")
	ls := makeLabels(labels...)
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.histograms[ls]
	if !ok {
		h = newHistogram(DefaultBuckets)
		f.histograms[ls] = h
	}
	return h
}

// CollectorScratchpad accumulates scrape-time samples from collectors:
// families whose values live elsewhere (server atomic counters, cache and
// store snapshots) and are only rendered, never owned, by the registry.
type CollectorScratchpad struct {
	lines []promFamily
}

type promFamily struct {
	name, help, typ string
	samples         []promSample
}

type promSample struct {
	labels labelSet
	value  float64
}

// Gauge emits one gauge sample.
func (c *CollectorScratchpad) Gauge(name, help string, value float64, labels ...string) {
	c.emit(name, help, "gauge", value, labels...)
}

// Counter emits one counter sample (value must be cumulative).
func (c *CollectorScratchpad) Counter(name, help string, value float64, labels ...string) {
	c.emit(name, help, "counter", value, labels...)
}

func (c *CollectorScratchpad) emit(name, help, typ string, value float64, labels ...string) {
	ls := makeLabels(labels...)
	for i := range c.lines {
		if c.lines[i].name == name {
			c.lines[i].samples = append(c.lines[i].samples, promSample{ls, value})
			return
		}
	}
	c.lines = append(c.lines, promFamily{name: name, help: help, typ: typ,
		samples: []promSample{{ls, value}}})
}

// RegisterCollector adds fn to the scrape path. Collectors run on every
// WriteProm call, in registration order.
func (r *Registry) RegisterCollector(fn func(*CollectorScratchpad)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// WriteProm renders every family (owned and collected) in Prometheus text
// exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(order))
	for _, name := range order {
		fams = append(fams, r.families[name])
	}
	collectors := make([]func(*CollectorScratchpad), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		writeOwnedFamily(bw, f)
	}
	pad := &CollectorScratchpad{}
	for _, fn := range collectors {
		fn(pad)
	}
	for _, pf := range pad.lines {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", pf.name, pf.help, pf.name, pf.typ)
		for _, s := range pf.samples {
			writeSample(bw, pf.name, s.labels, s.value)
		}
	}
	return bw.Flush()
}

func writeOwnedFamily(w *bufio.Writer, f *family) {
	f.mu.Lock()
	counters := make(map[labelSet]*Counter, len(f.counters))
	for ls, c := range f.counters {
		counters[ls] = c
	}
	histograms := make(map[labelSet]*Histogram, len(f.histograms))
	for ls, h := range f.histograms {
		histograms[ls] = h
	}
	f.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
	switch f.typ {
	case "counter":
		for _, ls := range sortedKeys(counters) {
			writeSample(w, f.name, ls, float64(counters[ls].Value()))
		}
	case "histogram":
		for _, ls := range sortedKeys(histograms) {
			h := histograms[ls]
			cum, total, sum := h.snapshot()
			for i, ub := range h.bounds {
				writeSample(w, f.name+"_bucket", addLE(ls, formatBound(ub)), float64(cum[i]))
			}
			writeSample(w, f.name+"_bucket", addLE(ls, "+Inf"), float64(total))
			writeSample(w, f.name+"_sum", ls, sum)
			writeSample(w, f.name+"_count", ls, float64(total))
		}
	}
}

func sortedKeys[V any](m map[labelSet]V) []labelSet {
	keys := make([]labelSet, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func addLE(ls labelSet, le string) labelSet {
	if ls == "" {
		return labelSet(`le="` + le + `"`)
	}
	return ls + labelSet(`,le="`+le+`"`)
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func writeSample(w *bufio.Writer, name string, ls labelSet, v float64) {
	var val string
	switch {
	case math.IsInf(v, 1):
		val = "+Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		val = strconv.FormatFloat(v, 'f', -1, 64)
	default:
		val = strconv.FormatFloat(v, 'g', -1, 64)
	}
	if ls == "" {
		fmt.Fprintf(w, "%s %s\n", name, val)
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, ls, val)
}

// ---- Exposition parsing (consumer side: kyrix-bench, obs-smoke) ----

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed Prometheus text payload.
type Exposition struct {
	Types   map[string]string // family name -> counter/gauge/histogram
	Samples []Sample
}

// HasFamily reports whether the payload declared a # TYPE for name.
func (e *Exposition) HasFamily(name string) bool {
	_, ok := e.Types[name]
	return ok
}

// ParseExposition parses Prometheus text exposition format. It understands
// the subset WriteProm emits (HELP/TYPE comments, optional label sets,
// +Inf) which is all kyrix-bench and the smoke tests need.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				e.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		e.Samples = append(e.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		close := strings.LastIndexByte(line, '}')
		if close < brace {
			return s, fmt.Errorf("obs: malformed sample %q", line)
		}
		s.Name = line[:brace]
		if err := parseLabels(line[brace+1:close], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(line[close+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("obs: malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("obs: malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("obs: bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(v, 64)
}

func parseLabels(body string, out map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return fmt.Errorf("obs: malformed labels %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		i := eq + 2
		var sb strings.Builder
		for i < len(body) {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
			i++
		}
		if i >= len(body) {
			return fmt.Errorf("obs: unterminated label value in %q", body)
		}
		out[key] = sb.String()
		body = strings.TrimPrefix(strings.TrimSpace(body[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// HistogramQuantiles extracts p50/p95/p99 (plus count) for each series of
// histogram family name, keyed by the value of keyLabel (e.g. "stage").
func (e *Exposition) HistogramQuantiles(name, keyLabel string) map[string]StageQuantiles {
	type acc struct {
		bounds []float64
		cum    []uint64
		total  uint64
		sum    float64
	}
	accs := map[string]*acc{}
	get := func(k string) *acc {
		a, ok := accs[k]
		if !ok {
			a = &acc{}
			accs[k] = a
		}
		return a
	}
	for _, s := range e.Samples {
		key := s.Labels[keyLabel]
		switch s.Name {
		case name + "_bucket":
			a := get(key)
			le := s.Labels["le"]
			if le == "+Inf" {
				continue // total comes from _count
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			a.bounds = append(a.bounds, b)
			a.cum = append(a.cum, uint64(s.Value))
		case name + "_count":
			get(key).total = uint64(s.Value)
		case name + "_sum":
			get(key).sum = s.Value
		}
	}
	out := map[string]StageQuantiles{}
	for k, a := range accs {
		sort.Sort(&boundSorter{a.bounds, a.cum})
		q := StageQuantiles{Count: a.total}
		if a.total > 0 {
			q.P50Ms = bucketQuantile(a.bounds, withInf(a.cum, a.total), a.total, 0.50) * 1000
			q.P95Ms = bucketQuantile(a.bounds, withInf(a.cum, a.total), a.total, 0.95) * 1000
			q.P99Ms = bucketQuantile(a.bounds, withInf(a.cum, a.total), a.total, 0.99) * 1000
			q.MeanMs = a.sum / float64(a.total) * 1000
		}
		out[k] = q
	}
	return out
}

func withInf(cum []uint64, total uint64) []uint64 {
	return append(append([]uint64(nil), cum...), total)
}

type boundSorter struct {
	bounds []float64
	cum    []uint64
}

func (b *boundSorter) Len() int           { return len(b.bounds) }
func (b *boundSorter) Less(i, j int) bool { return b.bounds[i] < b.bounds[j] }
func (b *boundSorter) Swap(i, j int) {
	b.bounds[i], b.bounds[j] = b.bounds[j], b.bounds[i]
	b.cum[i], b.cum[j] = b.cum[j], b.cum[i]
}

// StageQuantiles is the per-stage summary kyrix-bench embeds into BENCH
// artifacts.
type StageQuantiles struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`
}
