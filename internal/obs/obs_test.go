package obs

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndRecord(t *testing.T) {
	rec := NewRecorder(8)
	tr := NewTracer(rec)

	ctx, root := tr.Start(context.Background(), "http.batch")
	root.Attr("proto", 3)
	ctx2, child := tr.Start(ctx, "db.query")
	child.Attr("rows", int64(42))
	_, grand := tr.Start(ctx2, "compress")
	grand.End()
	child.End()
	root.End()

	snap := rec.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(snap.Recent))
	}
	d := snap.Recent[0]
	if d.Name != "http.batch" || len(d.Children) != 1 {
		t.Fatalf("bad root: %+v", d)
	}
	c := d.Children[0]
	if c.Name != "db.query" || c.Parent != d.SpanID || c.TraceID != d.TraceID {
		t.Fatalf("bad child: %+v (root span %s)", c, d.SpanID)
	}
	if len(c.Children) != 1 || c.Children[0].Name != "compress" {
		t.Fatalf("bad grandchild: %+v", c.Children)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "rows" || c.Attrs[0].Value != "42" {
		t.Fatalf("bad attrs: %+v", c.Attrs)
	}
}

func TestNilTracerAndSpanSafe(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.Attr("k", "v")
	sp.End()
	sp.Graft(nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer must not install a span")
	}
	var rec *Recorder
	rec.Record(&SpanData{})
	if s := rec.Snapshot(); len(s.Recent) != 0 {
		t.Fatal("nil recorder snapshot must be empty")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := NewTracer(nil)
	ctx, sp := tr.Start(context.Background(), "root")
	h := http.Header{}
	InjectHeader(ctx, h)
	tc, ok := ExtractHeader(h)
	if !ok {
		t.Fatalf("extract failed from %q", h.Get(TraceHeader))
	}
	if tc.TraceID != sp.traceID || tc.SpanID != sp.spanID {
		t.Fatalf("roundtrip mismatch: %+v vs trace=%x span=%x", tc, sp.traceID, sp.spanID)
	}

	_, remote := tr.StartRemote(context.Background(), "peer.serve", tc)
	remote.End()
	d := remote.Data()
	if d.TraceID != formatID(sp.traceID) || d.Parent != formatID(sp.spanID) {
		t.Fatalf("remote span not stitched: %+v", d)
	}

	if _, ok := ExtractHeader(http.Header{}); ok {
		t.Fatal("empty header must not extract")
	}
	for _, bad := range []string{"zz", "12-", "-12", "0-5", "12-xyz"} {
		if _, ok := ParseTraceContext(bad); ok {
			t.Fatalf("parsed malformed %q", bad)
		}
	}
}

func TestSpansHeaderEncodeDecodeAndBound(t *testing.T) {
	d := &SpanData{TraceID: "a", SpanID: "b", Name: "peer.serve", DurUS: 7,
		Children: []*SpanData{{TraceID: "a", SpanID: "c", Name: "db.query"}}}
	v := EncodeSpansHeader(d)
	if v == "" {
		t.Fatal("encode returned empty")
	}
	got := DecodeSpansHeader(v)
	if got == nil || got.Name != "peer.serve" || len(got.Children) != 1 {
		t.Fatalf("decode mismatch: %+v", got)
	}

	big := &SpanData{Name: strings.Repeat("x", maxSpansHeader+1)}
	if EncodeSpansHeader(big) != "" {
		t.Fatal("oversized subtree must encode to empty")
	}
	if DecodeSpansHeader("not json") != nil {
		t.Fatal("bad json must decode to nil")
	}
}

func TestHistogramQuantileAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("kyrix_stage_duration_seconds", "per-stage latency", "stage", "db.query")
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond) // falls in the (1ms, 2.5ms] bucket
	}
	q := h.Quantile(0.5)
	if q < 0.001 || q > 0.0025 {
		t.Fatalf("p50 = %v, want within (1ms, 2.5ms]", q)
	}
	c := reg.Counter("kyrix_requests_total", "requests", "endpoint", "/batch")
	c.Add(5)

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE kyrix_stage_duration_seconds histogram",
		`kyrix_stage_duration_seconds_bucket{stage="db.query",le="+Inf"} 100`,
		`kyrix_stage_duration_seconds_count{stage="db.query"} 100`,
		"# TYPE kyrix_requests_total counter",
		`kyrix_requests_total{endpoint="/batch"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}

	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !exp.HasFamily("kyrix_stage_duration_seconds") || !exp.HasFamily("kyrix_requests_total") {
		t.Fatalf("parsed families: %+v", exp.Types)
	}
	qs := exp.HistogramQuantiles("kyrix_stage_duration_seconds", "stage")
	dq, ok := qs["db.query"]
	if !ok || dq.Count != 100 {
		t.Fatalf("quantiles: %+v", qs)
	}
	if dq.P50Ms < 1 || dq.P50Ms > 2.5 {
		t.Fatalf("parsed p50 = %vms, want within (1, 2.5]", dq.P50Ms)
	}
	if dq.MeanMs < 1.5 || dq.MeanMs > 2.5 {
		t.Fatalf("parsed mean = %vms, want ~2", dq.MeanMs)
	}
}

func TestCollector(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterCollector(func(c *CollectorScratchpad) {
		c.Counter("kyrix_cache_events_total", "cache events", 12, "cache", "l1", "event", "hit")
		c.Counter("kyrix_cache_events_total", "cache events", 3, "cache", "l1", "event", "miss")
		c.Gauge("kyrix_uptime_seconds", "uptime", 1.5)
	})
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`kyrix_cache_events_total{cache="l1",event="hit"} 12`,
		`kyrix_cache_events_total{cache="l1",event="miss"} 3`,
		"# TYPE kyrix_uptime_seconds gauge",
		"kyrix_uptime_seconds 1.5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	// One family header even with two samples.
	if strings.Count(text, "# TYPE kyrix_cache_events_total") != 1 {
		t.Fatalf("duplicate family header:\n%s", text)
	}
}

// TestRecorderWraparoundRace hammers a small ring from many goroutines so
// -race exercises concurrent cursor wraparound, slot stores, and slowest-
// set insertion racing Snapshot readers.
func TestRecorderWraparoundRace(t *testing.T) {
	rec := NewRecorder(8)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec.Record(&SpanData{Name: "t", DurUS: int64(w*perWriter + i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := rec.Snapshot()
			if len(s.Recent) > 8 || len(s.Slowest) > 8 {
				t.Errorf("snapshot overflow: recent=%d slowest=%d", len(s.Recent), len(s.Slowest))
				return
			}
		}
	}()
	wg.Wait()
	<-done

	s := rec.Snapshot()
	if len(s.Recent) != 8 {
		t.Fatalf("recent = %d, want 8 after wraparound", len(s.Recent))
	}
	if len(s.Slowest) != 8 {
		t.Fatalf("slowest = %d, want 8", len(s.Slowest))
	}
	for i := 1; i < len(s.Slowest); i++ {
		if s.Slowest[i].DurUS > s.Slowest[i-1].DurUS {
			t.Fatalf("slowest not sorted at %d: %d > %d", i, s.Slowest[i].DurUS, s.Slowest[i-1].DurUS)
		}
	}
	// The true slowest trace must have survived.
	if s.Slowest[0].DurUS != writers*perWriter-1 {
		t.Fatalf("slowest[0] = %d, want %d", s.Slowest[0].DurUS, writers*perWriter-1)
	}
}

func TestConcurrentSpansOnSharedParent(t *testing.T) {
	tr := NewTracer(NewRecorder(4))
	ctx, root := tr.Start(context.Background(), "batch")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := tr.Start(ctx, "item")
			sp.Attr("k", "v")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	d := tr.Recorder().Snapshot().Recent[0]
	if len(d.Children) != 16 {
		t.Fatalf("children = %d, want 16", len(d.Children))
	}
}
