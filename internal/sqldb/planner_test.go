package sqldb

import (
	"strings"
	"testing"

	"kyrix/internal/storage"
)

func planText(t *testing.T, db *DB, sql string, args ...storage.Value) string {
	t.Helper()
	res := mustQuery(t, db, "EXPLAIN "+sql, args...)
	var sb strings.Builder
	for _, r := range res.Rows {
		sb.WriteString(r[0].S)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestPlannerPrefersEqualityOverRange(t *testing.T) {
	db := pointsDB(t, 100)
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	// Both an equality and a range conjunct exist; equality wins.
	plan := planText(t, db, "SELECT * FROM records WHERE id >= 10 AND id = 42")
	if !strings.Contains(plan, "BTree Eq Scan") {
		t.Fatalf("plan:\n%s", plan)
	}
	// The range conjunct becomes a residual filter.
	if !strings.Contains(plan, "Filter (1 residual conjuncts)") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestPlannerEqualityOverIntersects(t *testing.T) {
	db := pointsDB(t, 100)
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	mustExec(t, db, "CREATE INDEX idx_bbox ON records USING RTREE (minx, miny, maxx, maxy)")
	plan := planText(t, db,
		"SELECT * FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, 0, 0, 10, 10) AND id = 3")
	if !strings.Contains(plan, "Eq Scan") {
		t.Fatalf("equality should win:\n%s", plan)
	}
}

func TestPlannerRangeFlippedOperands(t *testing.T) {
	db := pointsDB(t, 100)
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	for _, where := range []string{"10 <= id", "id <= 10", "10 > id", "id BETWEEN 3 AND 7"} {
		plan := planText(t, db, "SELECT * FROM records WHERE "+where)
		if !strings.Contains(plan, "BTree Range Scan") {
			t.Fatalf("WHERE %s:\n%s", where, plan)
		}
	}
}

func TestPlannerStrictBoundsCorrect(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (k INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3),(4),(5)")
	mustExec(t, db, "CREATE INDEX i ON t USING BTREE (k)")
	cases := []struct {
		where string
		want  int
	}{
		{"k > 2", 3},
		{"k >= 2", 4},
		{"k < 2", 1},
		{"k <= 2", 2},
		{"2 < k", 3},
		{"k BETWEEN 2 AND 4", 3},
	}
	for _, c := range cases {
		res := mustQuery(t, db, "SELECT COUNT(*) FROM t WHERE "+c.where)
		if got := res.Rows[0][0].AsInt(); got != int64(c.want) {
			t.Errorf("WHERE %s: %d rows want %d", c.where, got, c.want)
		}
	}
}

func TestPlannerParamConstFolding(t *testing.T) {
	db := pointsDB(t, 100)
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	// Arithmetic on params and literals is still a constant for index
	// selection.
	plan := planText(t, db, "SELECT * FROM records WHERE id = ? + 1", storage.I64(4))
	if !strings.Contains(plan, "BTree Eq Scan") {
		t.Fatalf("param arithmetic should fold:\n%s", plan)
	}
	res := mustQuery(t, db, "SELECT * FROM records WHERE id = ? + 1", storage.I64(4))
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("folded query = %v", res.Rows)
	}
}

func TestPlannerNoIndexOnOtherColumn(t *testing.T) {
	db := pointsDB(t, 100)
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	plan := planText(t, db, "SELECT * FROM records WHERE x > 50")
	if !strings.Contains(plan, "Seq Scan") {
		t.Fatalf("non-indexed column should seq scan:\n%s", plan)
	}
}

func TestPlannerIntersectsArgOrderMatters(t *testing.T) {
	db := pointsDB(t, 100)
	mustExec(t, db, "CREATE INDEX idx_bbox ON records USING RTREE (minx, miny, maxx, maxy)")
	// Columns in a different order than the index: no rtree scan (the
	// predicate still evaluates correctly as a filter).
	plan := planText(t, db,
		"SELECT * FROM records WHERE INTERSECTS(miny, minx, maxx, maxy, 0, 0, 10, 10)")
	if strings.Contains(plan, "RTree") {
		t.Fatalf("mismatched column order should not use the index:\n%s", plan)
	}
}

func TestPlannerJoinConjunctStaysPostJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE a (id INT, v INT)")
	mustExec(t, db, "CREATE TABLE b (id INT, w INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1, 10), (2, 20)")
	mustExec(t, db, "INSERT INTO b VALUES (1, 5), (2, 25)")
	// The conjunct a.v < b.w references both tables: it must be
	// evaluated after the join, not pushed into a scan.
	res := mustQuery(t, db, "SELECT a.id FROM a JOIN b ON a.id = b.id WHERE a.v < b.w")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("cross-table filter = %v", res.Rows)
	}
}

func TestRangeScanUsesIndexResults(t *testing.T) {
	db := pointsDB(t, 1000)
	seq := mustQuery(t, db, "SELECT id FROM records WHERE id BETWEEN 100 AND 200")
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	idx := mustQuery(t, db, "SELECT id FROM records WHERE id BETWEEN 100 AND 200")
	if len(seq.Rows) != 101 || len(idx.Rows) != 101 {
		t.Fatalf("range rows = %d / %d", len(seq.Rows), len(idx.Rows))
	}
}

func TestUpdateUsesIndexForWhere(t *testing.T) {
	db := pointsDB(t, 5000)
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	before := db.Stats().RowsScanned
	n := mustExec(t, db, "UPDATE records SET x = 1.0 WHERE id = 17")
	if n != 1 {
		t.Fatalf("updated %d", n)
	}
	scanned := db.Stats().RowsScanned - before
	// An indexed point update must not scan the whole table.
	if scanned > 10 {
		t.Fatalf("update scanned %d rows", scanned)
	}
}

// pointsDB lives in sqldb_test.go; this file only adds planner cases.
var _ = planText
