package sqldb

import "testing"

func lexKinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, "SELECT a, b2 FROM t WHERE a >= 1.5e3 AND b2 != 'it''s'")
	want := []struct {
		kind tokenKind
		text string
	}{
		{tokKeyword, "SELECT"}, {tokIdent, "a"}, {tokSymbol, ","}, {tokIdent, "b2"},
		{tokKeyword, "FROM"}, {tokIdent, "t"}, {tokKeyword, "WHERE"},
		{tokIdent, "a"}, {tokSymbol, ">="}, {tokFloat, "1.5e3"},
		{tokKeyword, "AND"}, {tokIdent, "b2"}, {tokSymbol, "!="}, {tokString, "it's"},
		{tokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count %d want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].kind != w.kind || toks[i].text != w.text {
			t.Fatalf("token %d = {%d %q} want {%d %q}", i, toks[i].kind, toks[i].text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]tokenKind{
		"42":      tokInt,
		"0":       tokInt,
		"3.14":    tokFloat,
		".5":      tokFloat,
		"1e9":     tokFloat,
		"2.5E-3":  tokFloat,
		"6.02e+2": tokFloat,
	}
	for src, kind := range cases {
		toks := lexKinds(t, src)
		if toks[0].kind != kind || toks[0].text != src {
			t.Errorf("lex(%q) = {%d %q}, want kind %d", src, toks[0].kind, toks[0].text, kind)
		}
	}
}

func TestLexDiamondNotEquals(t *testing.T) {
	toks := lexKinds(t, "a <> b")
	if toks[1].kind != tokSymbol || toks[1].text != "!=" {
		t.Fatalf("<> lexed as %q", toks[1].text)
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks := lexKinds(t, "select From wHeRe")
	for i, want := range []string{"SELECT", "FROM", "WHERE"} {
		if toks[i].kind != tokKeyword || toks[i].text != want {
			t.Fatalf("token %d = %q", i, toks[i].text)
		}
	}
}

func TestLexIdentifiersPreserveCase(t *testing.T) {
	toks := lexKinds(t, "SELECT MyColumn FROM T_1")
	if toks[1].text != "MyColumn" || toks[3].text != "T_1" {
		t.Fatalf("idents = %q %q", toks[1].text, toks[3].text)
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "SELECT a -- this is a comment\nFROM t")
	if len(toks) != 5 { // SELECT a FROM t EOF
		t.Fatalf("tokens with comment = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"SELECT @", "'unterminated", "a ! b", "#"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "SELECT  a")
	if toks[0].pos != 0 || toks[1].pos != 8 {
		t.Fatalf("positions = %d %d", toks[0].pos, toks[1].pos)
	}
}

func TestLexSemicolonIgnored(t *testing.T) {
	toks := lexKinds(t, "SELECT a;")
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
}
