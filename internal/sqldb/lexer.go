// Package sqldb implements the embedded relational DBMS that stands in
// for PostgreSQL in this reproduction. It provides a SQL dialect large
// enough for every query the paper issues: the record/tile-mapping
// tables of §3.1, B-tree/hash/R-tree index creation, the tile join, the
// spatial window query used by both tile-spatial and dynamic-box
// fetching, and the UPDATE path for the §4 update model.
//
// The stack is classical: lexer → recursive-descent parser → rule-based
// planner (index selection, join strategy) → Volcano-style executor
// over heap files from internal/storage.
package sqldb

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // ( ) , . * = != < <= > >= + - / ?
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true, "USING": true,
	"JOIN": true, "INNER": true, "AS": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "GROUP": true,
	"UPDATE": true, "SET": true, "DELETE": true, "TRUE": true, "FALSE": true,
	"INT": true, "DOUBLE": true, "TEXT": true, "BOOL": true,
	"BTREE": true, "HASH": true, "RTREE": true, "EXPLAIN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"INTERSECTS": true, "DROP": true, "IF": true, "EXISTS": true,
	"BETWEEN": true,
}

// lex tokenizes src. Errors carry byte positions for diagnostics.
func lex(src string) ([]token, error) {
	var toks []token
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case isAlpha(c):
			start := i
			for i < n && (isAlpha(src[i]) || isDigit(src[i])) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(src[i+1])):
			start := i
			isFloat := false
			for i < n && (isDigit(src[i]) || src[i] == '.' || src[i] == 'e' ||
				src[i] == 'E' || ((src[i] == '+' || src[i] == '-') && i > start &&
				(src[i-1] == 'e' || src[i-1] == 'E'))) {
				if src[i] == '.' || src[i] == 'e' || src[i] == 'E' {
					isFloat = true
				}
				i++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' { // '' escape
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqldb: unterminated string at %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '!' || c == '<' || c == '>':
			start := i
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokSymbol, src[i : i+2], start})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sqldb: stray '!' at %d", start)
			} else if c == '<' && i+1 < n && src[i+1] == '>' {
				toks = append(toks, token{tokSymbol, "!=", start})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			}
		case strings.ContainsRune("(),.*=+-/?;", rune(c)):
			if c == ';' { // statement terminator: ignore
				i++
				continue
			}
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
