package sqldb

import (
	"encoding/json"
	"fmt"
	"sort"

	"kyrix/internal/rtree"
	"kyrix/internal/storage"
	"kyrix/internal/wal"
)

// Query parses and executes a SELECT (or EXPLAIN SELECT), returning a
// materialized result. args fill '?' placeholders in order.
func (db *DB) Query(sql string, args ...storage.Value) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires SELECT; use Exec for %T", st)
	}
	return db.RunSelect(sel, args...)
}

// RunSelect executes an already-parsed SELECT. Servers that issue the
// same statement shape repeatedly can cache the parse.
func (db *DB) RunSelect(sel *SelectStmt, args ...storage.Value) (*Result, error) {
	plan, err := db.planSelect(sel, args)
	if err != nil {
		return nil, err
	}
	// Read-lock every involved table in name order (deadlock-free),
	// once per distinct table.
	tables := map[string]*Table{plan.base.name: plan.base}
	for _, jc := range plan.joins {
		tables[jc.table.name] = jc.table
	}
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tables[n].mu.RLock()
	}
	defer func() {
		for i := len(names) - 1; i >= 0; i-- {
			tables[names[i]].mu.RUnlock()
		}
	}()
	db.bump(func(s *DBStats) { s.Selects++ })
	return db.executeSelect(plan)
}

// Exec parses and executes a DDL or DML statement, returning the number
// of affected rows (0 for DDL).
func (db *DB) Exec(sql string, args ...storage.Value) (int64, error) {
	st, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	n, err := db.execStmt(st, args)
	if err != nil {
		return 0, err
	}
	if db.shouldLog(st) {
		if err := db.logToWAL(sql, args); err != nil {
			return n, fmt.Errorf("sqldb: statement applied but WAL append failed: %w", err)
		}
	}
	return n, nil
}

func (db *DB) execStmt(st Statement, args []storage.Value) (int64, error) {
	switch st := st.(type) {
	case *CreateTableStmt:
		return 0, db.createTable(st)
	case *CreateIndexStmt:
		return 0, db.createIndex(st)
	case *DropTableStmt:
		return 0, db.dropTable(st)
	case *InsertStmt:
		return db.execInsert(st, args)
	case *UpdateStmt:
		return db.execUpdate(st, args)
	case *DeleteStmt:
		return db.execDelete(st, args)
	case *SelectStmt:
		return 0, fmt.Errorf("sqldb: Exec cannot run SELECT; use Query")
	}
	return 0, fmt.Errorf("sqldb: unsupported statement %T", st)
}

func (db *DB) execInsert(st *InsertStmt, args []storage.Value) (int64, error) {
	t, err := db.Table(st.Table)
	if err != nil {
		return 0, err
	}
	// Evaluate rows before taking the lock; inserts are literal/param
	// expressions with no column references.
	rows := make([]storage.Row, 0, len(st.Rows))
	for _, exprs := range st.Rows {
		if len(exprs) != len(t.schema) {
			return 0, fmt.Errorf("sqldb: INSERT arity %d != table arity %d", len(exprs), len(t.schema))
		}
		row := make(storage.Row, len(exprs))
		for i, e := range exprs {
			ce, err := compileExpr(e, nil, args)
			if err != nil {
				return 0, err
			}
			v, err := ce.eval(nil)
			if err != nil {
				return 0, err
			}
			row[i], err = coerce(v, t.schema[i].Type)
			if err != nil {
				return 0, err
			}
		}
		rows = append(rows, row)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, row := range rows {
		rid, err := t.heap.Insert(row)
		if err != nil {
			return 0, err
		}
		t.indexInsert(rid, row)
	}
	db.bump(func(s *DBStats) { s.Inserts += int64(len(rows)) })
	return int64(len(rows)), nil
}

// ScanTable streams every live row of a table to fn in RID order,
// without materializing the result. The row passed to fn is reused;
// copy to retain. Returning false stops the scan. It is the bulk path
// for precomputation passes over millions of rows.
func (db *DB) ScanTable(table string, fn func(row storage.Row) bool) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.heap.Scan(func(_ storage.RID, row storage.Row) bool { return fn(row) })
}

// InsertRow is the fast bulk-load path used by dataset generators: it
// bypasses SQL parsing but maintains indexes identically to INSERT.
func (db *DB) InsertRow(table string, row storage.Row) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	if len(row) != len(t.schema) {
		return fmt.Errorf("sqldb: row arity %d != table arity %d", len(row), len(t.schema))
	}
	for i := range row {
		row[i], err = coerce(row[i], t.schema[i].Type)
		if err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid, err := t.heap.Insert(row)
	if err != nil {
		return err
	}
	t.indexInsert(rid, row)
	return nil
}

// InsertRows appends a batch of rows under one lock acquisition — the
// concurrent bulk-load path for precompute passes that build tables
// from several goroutines at once: each caller coerces its batch
// outside the lock, then holds the table's write lock once per batch
// instead of once per row. Rows are coerced in place.
func (db *DB) InsertRows(table string, rows []storage.Row) error {
	if len(rows) == 0 {
		return nil
	}
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(t.schema) {
			return fmt.Errorf("sqldb: row arity %d != table arity %d", len(row), len(t.schema))
		}
		for i := range row {
			row[i], err = coerce(row[i], t.schema[i].Type)
			if err != nil {
				return err
			}
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, row := range rows {
		rid, err := t.heap.Insert(row)
		if err != nil {
			return err
		}
		t.indexInsert(rid, row)
	}
	db.bump(func(s *DBStats) { s.Inserts += int64(len(rows)) })
	return nil
}

// matchingRIDs collects (rid, row-copy) pairs satisfying where, using
// an index when one applies. Caller holds at least a read lock on t.
func (db *DB) matchingRIDs(t *Table, tname string, where Expr, args []storage.Value) ([]storage.RID, []storage.Row, error) {
	bs := makeBindings(binding{name: tname, schema: t.schema})
	conjuncts := splitAnd(where)
	sc := chooseScan(t, tname, conjuncts, args)
	if sc.usedConjunct >= 0 {
		conjuncts = append(conjuncts[:sc.usedConjunct:sc.usedConjunct], conjuncts[sc.usedConjunct+1:]...)
	}
	var filters []compiledExpr
	for _, c := range conjuncts {
		ce, err := compileExpr(c, bs, args)
		if err != nil {
			return nil, nil, err
		}
		filters = append(filters, ce)
	}
	var rids []storage.RID
	var rows []storage.Row
	var evalErr error
	keep := func(rid storage.RID, row storage.Row) bool {
		for _, f := range filters {
			v, err := f.eval(row)
			if err != nil {
				evalErr = err
				return false
			}
			if !truth(v) {
				return true
			}
		}
		rids = append(rids, rid)
		rows = append(rows, append(storage.Row(nil), row...))
		return true
	}
	var err error
	switch sc.kind {
	case "seq":
		err = t.heap.Scan(keep)
	default:
		row := make(storage.Row, len(t.schema))
		visit := func(packed uint64) bool {
			rid := storage.UnpackRID(packed)
			if gerr := t.heap.GetInto(rid, row); gerr != nil {
				evalErr = gerr
				return false
			}
			return keep(rid, row)
		}
		switch sc.kind {
		case "btree-eq":
			sc.index.bt.Lookup(sc.eqKey, visit)
		case "hash-eq":
			sc.index.hi.Lookup(sc.eqKey, visit)
		case "btree-range":
			sc.index.bt.AscendRange(sc.lo, sc.hi, func(_ int64, v uint64) bool { return visit(v) })
		case "rtree":
			sc.index.rt.Search(sc.window, func(it rtree.Item) bool { return visit(it.Val) })
		}
	}
	if err == nil {
		err = evalErr
	}
	return rids, rows, err
}

func (db *DB) execUpdate(st *UpdateStmt, args []storage.Value) (int64, error) {
	t, err := db.Table(st.Table)
	if err != nil {
		return 0, err
	}
	bs := makeBindings(binding{name: st.Table, schema: t.schema})
	type setPlan struct {
		col int
		ce  compiledExpr
	}
	var sets []setPlan
	for _, sc := range st.Set {
		col := t.schema.ColIndex(sc.Column)
		if col < 0 {
			return 0, fmt.Errorf("sqldb: no column %q in %q", sc.Column, st.Table)
		}
		ce, err := compileExpr(sc.Value, bs, args)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setPlan{col: col, ce: ce})
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rids, rows, err := db.matchingRIDs(t, st.Table, st.Where, args)
	if err != nil {
		return 0, err
	}
	for i, rid := range rids {
		oldRow := rows[i]
		newRow := append(storage.Row(nil), oldRow...)
		for _, sp := range sets {
			v, err := sp.ce.eval(oldRow)
			if err != nil {
				return int64(i), err
			}
			newRow[sp.col], err = coerce(v, t.schema[sp.col].Type)
			if err != nil {
				return int64(i), err
			}
		}
		t.indexDelete(rid, oldRow)
		if err := t.heap.Update(rid, newRow); err == storage.ErrPageFull {
			// Relocate: delete + reinsert, giving the row a new RID.
			if err := t.heap.Delete(rid); err != nil {
				return int64(i), err
			}
			newRID, err := t.heap.Insert(newRow)
			if err != nil {
				return int64(i), err
			}
			t.indexInsert(newRID, newRow)
		} else if err != nil {
			return int64(i), err
		} else {
			t.indexInsert(rid, newRow)
		}
	}
	db.bump(func(s *DBStats) { s.Updates += int64(len(rids)) })
	return int64(len(rids)), nil
}

func (db *DB) execDelete(st *DeleteStmt, args []storage.Value) (int64, error) {
	t, err := db.Table(st.Table)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rids, rows, err := db.matchingRIDs(t, st.Table, st.Where, args)
	if err != nil {
		return 0, err
	}
	for i, rid := range rids {
		if err := t.heap.Delete(rid); err != nil {
			return int64(i), err
		}
		t.indexDelete(rid, rows[i])
	}
	db.bump(func(s *DBStats) { s.Deletes += int64(len(rids)) })
	return int64(len(rids)), nil
}

// --- WAL integration (the §4 update model) ---

type walRecord struct {
	SQL  string     `json:"sql"`
	Args []walValue `json:"args,omitempty"`
}

type walValue struct {
	Kind storage.ColType `json:"k"`
	I    int64           `json:"i,omitempty"`
	F    float64         `json:"f,omitempty"`
	S    string          `json:"s,omitempty"`
	B    bool            `json:"b,omitempty"`
}

// walState is set while a WAL is attached; replaying suppresses
// re-logging during recovery.
type walState struct {
	log       *wal.Log
	replaying bool
}

// AttachWAL opens (or creates) a logical redo log at path, replays any
// committed statements into this database, and logs every subsequent
// DDL/DML statement. Call before loading data when recovering.
func (db *DB) AttachWAL(path string) error {
	log, err := wal.Open(path)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.walSt = &walState{log: log, replaying: true}
	db.mu.Unlock()
	err = log.Replay(func(_ wal.LSN, payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("sqldb: corrupt WAL record: %w", err)
		}
		args := make([]storage.Value, len(rec.Args))
		for i, a := range rec.Args {
			args[i] = storage.Value{Kind: a.Kind, I: a.I, F: a.F, S: a.S, B: a.B}
		}
		st, err := Parse(rec.SQL)
		if err != nil {
			return err
		}
		_, err = db.execStmt(st, args)
		return err
	})
	db.mu.Lock()
	db.walSt.replaying = false
	db.mu.Unlock()
	return err
}

// DetachWAL stops logging and closes the log.
func (db *DB) DetachWAL() error {
	db.mu.Lock()
	st := db.walSt
	db.walSt = nil
	db.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.log.Close()
}

func (db *DB) shouldLog(st Statement) bool {
	db.mu.RLock()
	ws := db.walSt
	db.mu.RUnlock()
	if ws == nil || ws.replaying {
		return false
	}
	switch st.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt, *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
		return true
	}
	return false
}

func (db *DB) logToWAL(sql string, args []storage.Value) error {
	db.mu.RLock()
	ws := db.walSt
	db.mu.RUnlock()
	if ws == nil {
		return nil
	}
	rec := walRecord{SQL: sql}
	for _, a := range args {
		rec.Args = append(rec.Args, walValue{Kind: a.Kind, I: a.I, F: a.F, S: a.S, B: a.B})
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = ws.log.Append(payload)
	return err
}
