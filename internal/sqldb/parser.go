package sqldb

import (
	"fmt"
	"strconv"

	"kyrix/internal/storage"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input starting with %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks   []token
	pos    int
	src    string
	params int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error at byte %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("EXPLAIN"):
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		sel, ok := st.(*SelectStmt)
		if !ok {
			return nil, p.errf("EXPLAIN supports SELECT only")
		}
		sel.Explain = true
		return sel, nil
	case p.acceptKeyword("CREATE"):
		if p.acceptKeyword("TABLE") {
			return p.createTable()
		}
		if p.acceptKeyword("INDEX") {
			return p.createIndex()
		}
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	case p.acceptKeyword("DROP"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		st := &DropTableStmt{}
		if p.acceptKeyword("IF") {
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	case p.acceptKeyword("INSERT"):
		return p.insert()
	case p.acceptKeyword("UPDATE"):
		return p.update()
	case p.acceptKeyword("DELETE"):
		return p.delete()
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	}
	return nil, p.errf("expected statement, got %q", p.peek().text)
}

func (p *parser) createTable() (Statement, error) {
	st := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		// CREATE TABLE IF NOT EXISTS — NOT is a keyword too.
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokKeyword {
			return nil, p.errf("expected column type, got %q", t.text)
		}
		var ct storage.ColType
		switch t.text {
		case "INT":
			ct = storage.TInt64
		case "DOUBLE":
			ct = storage.TFloat64
		case "TEXT":
			ct = storage.TString
		case "BOOL":
			ct = storage.TBool
		default:
			return nil, p.errf("unknown column type %q", t.text)
		}
		st.Schema = append(st.Schema, storage.Column{Name: col, Type: ct})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createIndex() (Statement, error) {
	st := &CreateIndexStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	st.Table, err = p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("USING"); err != nil {
		return nil, err
	}
	t := p.next()
	switch {
	case t.kind == tokKeyword && t.text == "BTREE":
		st.Kind = IndexBTree
	case t.kind == tokKeyword && t.text == "HASH":
		st.Kind = IndexHash
	case t.kind == tokKeyword && t.text == "RTREE":
		st.Kind = IndexRTree
	default:
		return nil, p.errf("expected BTREE, HASH or RTREE, got %q", t.text)
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) update() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Value: e})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		st.Where, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) delete() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		var err error
		st.Where, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	st := &SelectStmt{Limit: -1}
	for {
		if p.acceptSymbol("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else if p.peek().kind == tokIdent &&
			p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
			p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
			st.Items = append(st.Items, SelectItem{Star: true, StarTable: p.peek().text})
			p.pos += 3
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.peek().kind == tokIdent {
				item.Alias = p.next().text
			}
			st.Items = append(st.Items, item)
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	st.From = ref
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		jref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Ref: jref, On: on})
	}
	if p.acceptKeyword("WHERE") {
		st.Where, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokInt {
			return nil, p.errf("expected integer after LIMIT, got %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT: %v", err)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmp
//	cmp     := add ((=|!=|<|<=|>|>=) add | BETWEEN add AND add)?
//	add     := mul ((+|-) mul)*
//	mul     := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := literal | param | call | colref | ( expr )
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.cmp()
}

func (p *parser) cmp() (Expr, error) {
	l, err := p.add()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.add()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.add()
		if err != nil {
			return nil, err
		}
		return &Between{E: l, Lo: lo, Hi: hi}, nil
	}
	ops := map[string]int{"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}
	if t := p.peek(); t.kind == tokSymbol {
		if op, ok := ops[t.text]; ok {
			p.pos++
			r, err := p.add()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) add() (Expr, error) {
	l, err := p.mul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.acceptSymbol("-"):
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mul() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.acceptSymbol("/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpSub, L: &Lit{Val: storage.I64(0)}, R: e}, nil
	}
	return p.primary()
}

var funcKinds = map[string]FuncKind{
	"COUNT": FnCount, "SUM": FnSum, "AVG": FnAvg, "MIN": FnMin,
	"MAX": FnMax, "INTERSECTS": FnIntersects,
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &Lit{Val: storage.I64(v)}, nil
	case tokFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return &Lit{Val: storage.F64(v)}, nil
	case tokString:
		p.pos++
		return &Lit{Val: storage.Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return &Lit{Val: storage.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Lit{Val: storage.Bool(false)}, nil
		}
		if fn, ok := funcKinds[t.text]; ok {
			p.pos++
			return p.call(fn)
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokSymbol:
		switch t.text {
		case "(":
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "?":
			p.pos++
			e := &Param{Ordinal: p.params}
			p.params++
			return e, nil
		}
	case tokIdent:
		p.pos++
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Col: col}, nil
		}
		return &ColRef{Col: t.text}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) call(fn FuncKind) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	c := &Call{Fn: fn}
	if fn == FnCount && p.acceptSymbol("*") {
		c.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	if p.acceptSymbol(")") {
		return nil, p.errf("function requires arguments")
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, e)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	want := map[FuncKind]int{FnCount: 1, FnSum: 1, FnAvg: 1, FnMin: 1, FnMax: 1, FnIntersects: 8}
	if n := want[fn]; len(c.Args) != n {
		return nil, p.errf("function takes %d arguments, got %d", n, len(c.Args))
	}
	return c, nil
}
