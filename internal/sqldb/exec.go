package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"kyrix/internal/rtree"
	"kyrix/internal/storage"
)

// Result is a fully materialized query result.
type Result struct {
	Cols []string
	Rows []storage.Row
}

// runScan executes the chosen access path and returns copied rows.
func (db *DB) runScan(t *Table, sc scanChoice) ([]storage.Row, error) {
	var out []storage.Row
	scanned := int64(0)
	emit := func(row storage.Row) {
		out = append(out, append(storage.Row(nil), row...))
	}
	var err error
	switch sc.kind {
	case "seq":
		err = t.heap.Scan(func(_ storage.RID, row storage.Row) bool {
			scanned++
			emit(row)
			return true
		})
	case "btree-eq":
		err = fetchByRIDs(t, &scanned, emit, func(yield func(uint64) bool) {
			sc.index.bt.Lookup(sc.eqKey, yield)
		})
	case "hash-eq":
		err = fetchByRIDs(t, &scanned, emit, func(yield func(uint64) bool) {
			sc.index.hi.Lookup(sc.eqKey, yield)
		})
	case "btree-range":
		err = fetchByRIDs(t, &scanned, emit, func(yield func(uint64) bool) {
			sc.index.bt.AscendRange(sc.lo, sc.hi, func(_ int64, v uint64) bool { return yield(v) })
		})
	case "rtree":
		err = fetchByRIDs(t, &scanned, emit, func(yield func(uint64) bool) {
			sc.index.rt.Search(sc.window, func(it rtree.Item) bool { return yield(it.Val) })
		})
	default:
		err = fmt.Errorf("sqldb: unknown scan kind %q", sc.kind)
	}
	db.bump(func(s *DBStats) { s.RowsScanned += scanned })
	return out, err
}

// fetchByRIDs decodes every RID produced by the generator.
func fetchByRIDs(t *Table, scanned *int64, emit func(storage.Row), gen func(yield func(uint64) bool)) error {
	var ferr error
	row := make(storage.Row, len(t.schema))
	gen(func(packed uint64) bool {
		rid := storage.UnpackRID(packed)
		if err := t.heap.GetInto(rid, row); err != nil {
			ferr = err
			return false
		}
		*scanned++
		emit(row)
		return true
	})
	return ferr
}

// runJoin joins the materialized outer rows with the inner table per
// the chosen strategy, producing concatenated rows.
func (db *DB) runJoin(outer []storage.Row, jc joinChoice) ([]storage.Row, error) {
	inner := jc.table
	var out []storage.Row
	scanned := int64(0)
	switch jc.kind {
	case "inl":
		innerRow := make(storage.Row, len(inner.schema))
		for _, orow := range outer {
			key := orow[jc.outerIdx].AsInt()
			var ferr error
			lookup := func(packed uint64) bool {
				rid := storage.UnpackRID(packed)
				if err := inner.heap.GetInto(rid, innerRow); err != nil {
					ferr = err
					return false
				}
				scanned++
				combined := make(storage.Row, 0, len(orow)+len(innerRow))
				combined = append(combined, orow...)
				combined = append(combined, innerRow...)
				out = append(out, combined)
				return true
			}
			if jc.index.Kind == IndexBTree {
				jc.index.bt.Lookup(key, lookup)
			} else {
				jc.index.hi.Lookup(key, lookup)
			}
			if ferr != nil {
				return nil, ferr
			}
		}
	case "hash":
		build := make(map[int64][]storage.Row)
		err := inner.heap.Scan(func(_ storage.RID, row storage.Row) bool {
			scanned++
			key := row[jc.innerIdx].AsInt()
			build[key] = append(build[key], append(storage.Row(nil), row...))
			return true
		})
		if err != nil {
			return nil, err
		}
		for _, orow := range outer {
			for _, irow := range build[orow[jc.outerIdx].AsInt()] {
				combined := make(storage.Row, 0, len(orow)+len(irow))
				combined = append(combined, orow...)
				combined = append(combined, irow...)
				out = append(out, combined)
			}
		}
	default:
		return nil, fmt.Errorf("sqldb: unknown join kind %q", jc.kind)
	}
	db.bump(func(s *DBStats) { s.RowsScanned += scanned })
	return out, nil
}

// selectPlan holds all decisions for one SELECT, built before any data
// is touched so EXPLAIN shares the exact logic of execution.
type selectPlan struct {
	st      *SelectStmt
	args    []storage.Value
	base    *Table
	scan    scanChoice
	joins   []joinChoice
	bs      bindings
	filters []compiledExpr // residual WHERE conjuncts over final bindings
	lines   []string       // explain description
}

// planSelect resolves tables, picks access paths and compiles residual
// filters.
func (db *DB) planSelect(st *SelectStmt, args []storage.Value) (*selectPlan, error) {
	base, err := db.Table(st.From.Table)
	if err != nil {
		return nil, err
	}
	p := &selectPlan{st: st, args: args, base: base}
	bs := makeBindings(binding{name: st.From.Name(), schema: base.schema})

	conjuncts := splitAnd(st.Where)
	p.scan = chooseScan(base, st.From.Name(), conjuncts, args)
	p.lines = append(p.lines, p.scan.describe(st.From.Name()))
	if p.scan.usedConjunct >= 0 {
		conjuncts = append(conjuncts[:p.scan.usedConjunct:p.scan.usedConjunct],
			conjuncts[p.scan.usedConjunct+1:]...)
	}

	for _, jcAst := range st.Joins {
		inner, err := db.Table(jcAst.Ref.Table)
		if err != nil {
			return nil, err
		}
		jc, err := chooseJoin(jcAst, inner, bs)
		if err != nil {
			return nil, err
		}
		p.joins = append(p.joins, jc)
		p.lines = append(p.lines, jc.desc)
		parts := make([]binding, len(bs)+1)
		for i, b := range bs {
			parts[i] = binding{name: b.name, schema: b.schema}
		}
		parts[len(bs)] = binding{name: jcAst.Ref.Name(), schema: inner.schema}
		bs = makeBindings(parts...)
	}
	p.bs = bs

	for _, c := range conjuncts {
		ce, err := compileExpr(c, bs, args)
		if err != nil {
			return nil, err
		}
		p.filters = append(p.filters, ce)
	}
	if len(p.filters) > 0 {
		p.lines = append(p.lines, fmt.Sprintf("Filter (%d residual conjuncts)", len(p.filters)))
	}
	if len(st.GroupBy) > 0 || anyAggregate(st.Items) {
		p.lines = append(p.lines, "Aggregate")
	}
	if len(st.OrderBy) > 0 {
		p.lines = append(p.lines, "Sort")
	}
	if st.Limit >= 0 {
		p.lines = append(p.lines, fmt.Sprintf("Limit %d", st.Limit))
	}
	return p, nil
}

func anyAggregate(items []SelectItem) bool {
	for _, it := range items {
		if !it.Star && containsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// executeSelect runs the full pipeline. Caller holds read locks.
func (db *DB) executeSelect(p *selectPlan) (*Result, error) {
	if p.st.Explain {
		res := &Result{Cols: []string{"plan"}}
		for _, l := range p.lines {
			res.Rows = append(res.Rows, storage.Row{storage.Str(l)})
		}
		return res, nil
	}
	rows, err := db.runScan(p.base, p.scan)
	if err != nil {
		return nil, err
	}
	for _, jc := range p.joins {
		rows, err = db.runJoin(rows, jc)
		if err != nil {
			return nil, err
		}
	}
	if len(p.filters) > 0 {
		kept := rows[:0]
		for _, row := range rows {
			ok := true
			for _, f := range p.filters {
				v, err := f.eval(row)
				if err != nil {
					return nil, err
				}
				if !truth(v) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	var res *Result
	if len(p.st.GroupBy) > 0 || anyAggregate(p.st.Items) {
		res, err = db.aggregate(p, rows)
		if err != nil {
			return nil, err
		}
		// ORDER BY over aggregate output references output columns.
		if err := orderLimitOutput(res, p.st); err != nil {
			return nil, err
		}
	} else {
		// ORDER BY over input bindings, then project, then limit.
		if len(p.st.OrderBy) > 0 {
			if err := db.orderRows(rows, p.st.OrderBy, p.bs, p.args); err != nil {
				return nil, err
			}
		}
		if p.st.Limit >= 0 && int64(len(rows)) > p.st.Limit {
			rows = rows[:p.st.Limit]
		}
		res, err = db.project(p, rows)
		if err != nil {
			return nil, err
		}
	}
	db.bump(func(s *DBStats) { s.RowsOut += int64(len(res.Rows)) })
	return res, nil
}

// project evaluates the SELECT items for each row.
func (db *DB) project(p *selectPlan, rows []storage.Row) (*Result, error) {
	type proj struct {
		ce   compiledExpr
		name string
	}
	var projs []proj
	for _, item := range p.st.Items {
		if item.Star {
			for _, b := range p.bs {
				if item.StarTable != "" && item.StarTable != b.name {
					continue
				}
				for i, col := range b.schema {
					projs = append(projs, proj{ce: colExpr{idx: b.offset + i}, name: col.Name})
				}
			}
			if item.StarTable != "" {
				found := false
				for _, b := range p.bs {
					if b.name == item.StarTable {
						found = true
					}
				}
				if !found {
					return nil, fmt.Errorf("sqldb: unknown table %q in %s.*", item.StarTable, item.StarTable)
				}
			}
			continue
		}
		ce, err := compileExpr(item.Expr, p.bs, p.args)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = exprName(item.Expr)
		}
		projs = append(projs, proj{ce: ce, name: name})
	}
	res := &Result{Cols: make([]string, len(projs))}
	for i, pr := range projs {
		res.Cols[i] = pr.name
	}
	res.Rows = make([]storage.Row, 0, len(rows))
	for _, row := range rows {
		out := make(storage.Row, len(projs))
		for i, pr := range projs {
			v, err := pr.ce.eval(row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// aggState accumulates one aggregate function.
type aggState struct {
	count int64
	sum   float64
	min   storage.Value
	max   storage.Value
	seen  bool
}

func (a *aggState) add(v storage.Value) {
	a.count++
	a.sum += v.AsFloat()
	if !a.seen || v.Compare(a.min) < 0 {
		a.min = v
	}
	if !a.seen || v.Compare(a.max) > 0 {
		a.max = v
	}
	a.seen = true
}

func (a *aggState) result(fn FuncKind) storage.Value {
	switch fn {
	case FnCount:
		return storage.I64(a.count)
	case FnSum:
		return storage.F64(a.sum)
	case FnAvg:
		if a.count == 0 {
			return storage.F64(0)
		}
		return storage.F64(a.sum / float64(a.count))
	case FnMin:
		if !a.seen {
			return storage.F64(0)
		}
		return a.min
	case FnMax:
		if !a.seen {
			return storage.F64(0)
		}
		return a.max
	}
	return storage.Value{}
}

// aggregate implements hash aggregation with permissive (MySQL-style)
// semantics: non-aggregate select items are evaluated on the first row
// of each group.
func (db *DB) aggregate(p *selectPlan, rows []storage.Row) (*Result, error) {
	type itemPlan struct {
		isAgg bool
		fn    FuncKind
		arg   compiledExpr // nil for COUNT(*)
		plain compiledExpr // non-aggregate
		name  string
	}
	var items []itemPlan
	for _, item := range p.st.Items {
		if item.Star {
			return nil, fmt.Errorf("sqldb: * not allowed in aggregate query")
		}
		name := item.Alias
		if name == "" {
			name = exprName(item.Expr)
		}
		if call, ok := item.Expr.(*Call); ok && call.Fn != FnIntersects {
			ip := itemPlan{isAgg: true, fn: call.Fn, name: name}
			if !call.Star {
				ce, err := compileExpr(call.Args[0], p.bs, p.args)
				if err != nil {
					return nil, err
				}
				ip.arg = ce
			}
			items = append(items, ip)
			continue
		}
		if containsAggregate(item.Expr) {
			return nil, fmt.Errorf("sqldb: aggregates must be top-level select items")
		}
		ce, err := compileExpr(item.Expr, p.bs, p.args)
		if err != nil {
			return nil, err
		}
		items = append(items, itemPlan{plain: ce, name: name})
	}
	var groupCEs []compiledExpr
	for _, g := range p.st.GroupBy {
		ce, err := compileExpr(g, p.bs, p.args)
		if err != nil {
			return nil, err
		}
		groupCEs = append(groupCEs, ce)
	}

	type group struct {
		first storage.Row
		aggs  []aggState
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range rows {
		var key strings.Builder
		for _, ce := range groupCEs {
			v, err := ce.eval(row)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&key, "%d:%s\x00", v.Kind, v.String())
		}
		k := key.String()
		g, ok := groups[k]
		if !ok {
			g = &group{first: row, aggs: make([]aggState, len(items))}
			groups[k] = g
			order = append(order, k)
		}
		for i, ip := range items {
			if !ip.isAgg {
				continue
			}
			if ip.arg == nil { // COUNT(*)
				g.aggs[i].count++
				continue
			}
			v, err := ip.arg.eval(row)
			if err != nil {
				return nil, err
			}
			g.aggs[i].add(v)
		}
	}
	// A global aggregate (no GROUP BY) over zero rows yields one row.
	if len(groupCEs) == 0 && len(groups) == 0 {
		groups[""] = &group{aggs: make([]aggState, len(items))}
		order = append(order, "")
	}

	res := &Result{Cols: make([]string, len(items))}
	for i, ip := range items {
		res.Cols[i] = ip.name
	}
	for _, k := range order {
		g := groups[k]
		out := make(storage.Row, len(items))
		for i, ip := range items {
			if ip.isAgg {
				out[i] = g.aggs[i].result(ip.fn)
				continue
			}
			if g.first == nil {
				out[i] = storage.I64(0)
				continue
			}
			v, err := ip.plain.eval(g.first)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// orderRows sorts rows in place by the ORDER BY keys over bindings bs.
func (db *DB) orderRows(rows []storage.Row, keys []OrderItem, bs bindings, args []storage.Value) error {
	type keyPlan struct {
		ce   compiledExpr
		desc bool
	}
	plans := make([]keyPlan, len(keys))
	for i, k := range keys {
		ce, err := compileExpr(k.Expr, bs, args)
		if err != nil {
			return err
		}
		plans[i] = keyPlan{ce: ce, desc: k.Desc}
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, kp := range plans {
			a, err := kp.ce.eval(rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			b, err := kp.ce.eval(rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c := a.Compare(b)
			if c == 0 {
				continue
			}
			if kp.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

// orderLimitOutput applies ORDER BY/LIMIT to an aggregate result, with
// keys referencing output column names.
func orderLimitOutput(res *Result, st *SelectStmt) error {
	if len(st.OrderBy) > 0 {
		idxOf := func(name string) int {
			for i, c := range res.Cols {
				if c == name {
					return i
				}
			}
			return -1
		}
		type keyPlan struct {
			idx  int
			desc bool
		}
		var plans []keyPlan
		for _, k := range st.OrderBy {
			ref, ok := k.Expr.(*ColRef)
			if !ok {
				return fmt.Errorf("sqldb: ORDER BY on aggregate output must name an output column")
			}
			i := idxOf(ref.Col)
			if i < 0 {
				return fmt.Errorf("sqldb: ORDER BY column %q not in aggregate output", ref.Col)
			}
			plans = append(plans, keyPlan{idx: i, desc: k.Desc})
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			for _, kp := range plans {
				c := res.Rows[i][kp.idx].Compare(res.Rows[j][kp.idx])
				if c == 0 {
					continue
				}
				if kp.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if st.Limit >= 0 && int64(len(res.Rows)) > st.Limit {
		res.Rows = res.Rows[:st.Limit]
	}
	return nil
}
