package sqldb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"kyrix/internal/storage"
)

func mustExec(t *testing.T, db *DB, sql string, args ...storage.Value) int64 {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...storage.Value) *Result {
	t.Helper()
	res, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

// pointsDB builds the paper's record-table shape: id, x, y and a bbox.
func pointsDB(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE records (
		id INT, x DOUBLE, y DOUBLE,
		minx DOUBLE, miny DOUBLE, maxx DOUBLE, maxy DOUBLE)`)
	for i := 0; i < n; i++ {
		x, y := float64(i%100)*10, float64(i/100)*10
		if err := db.InsertRow("records", storage.Row{
			storage.I64(int64(i)), storage.F64(x), storage.F64(y),
			storage.F64(x - 1), storage.F64(y - 1), storage.F64(x + 1), storage.F64(y + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE, c TEXT, d BOOL)")
	n := mustExec(t, db, "INSERT INTO t VALUES (1, 2.5, 'x', TRUE), (2, 3.5, 'y', FALSE)")
	if n != 2 {
		t.Fatalf("inserted %d", n)
	}
	res := mustQuery(t, db, "SELECT * FROM t")
	if len(res.Rows) != 2 || len(res.Cols) != 4 {
		t.Fatalf("result %dx%d", len(res.Rows), len(res.Cols))
	}
	if res.Cols[0] != "a" || res.Cols[3] != "d" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if res.Rows[0][2].S != "x" || res.Rows[1][3].B {
		t.Fatalf("values wrong: %v", res.Rows)
	}
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Fatal("duplicate table must fail")
	}
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INT)")
	if _, err := db.Exec("CREATE TABLE u (a INT, a DOUBLE)"); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if _, err := db.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Fatal("insert into missing table must fail")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('str')"); err == nil {
		t.Fatal("type mismatch must fail")
	}
}

func TestDropTable(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Query("SELECT * FROM t"); err == nil {
		t.Fatal("query after drop must fail")
	}
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Fatal("double drop must fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS t")
}

func TestWhereOperators(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d'),(5,'e')")
	cases := []struct {
		where string
		want  int
	}{
		{"a = 3", 1},
		{"a != 3", 4},
		{"a < 3", 2},
		{"a <= 3", 3},
		{"a > 3", 2},
		{"a >= 3", 3},
		{"a BETWEEN 2 AND 4", 3},
		{"NOT a = 3", 4},
		{"a = 1 OR a = 5", 2},
		{"a > 1 AND a < 5", 3},
		{"a + 1 = 3", 1},
		{"a * 2 >= 8", 2},
		{"a - 1 = 0", 1},
		{"a / 2 = 2", 2}, // integer division: a=4 -> 2, a=5 -> 2
		{"s = 'c'", 1},
		{"s != 'c'", 4},
		{"3 < a", 2}, // flipped operand order
		{"TRUE", 5},
		{"FALSE", 0},
	}
	for _, c := range cases {
		res := mustQuery(t, db, "SELECT * FROM t WHERE "+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if _, err := db.Query("SELECT a / 0 FROM t"); err == nil {
		t.Fatal("integer division by zero must fail")
	}
	if _, err := db.Query("SELECT a / 0.0 FROM t"); err == nil {
		t.Fatal("float division by zero must fail")
	}
}

func TestParams(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (?, ?), (?, ?)",
		storage.I64(1), storage.Str("one"), storage.I64(2), storage.Str("two"))
	res := mustQuery(t, db, "SELECT s FROM t WHERE a = ?", storage.I64(2))
	if len(res.Rows) != 1 || res.Rows[0][0].S != "two" {
		t.Fatalf("param query = %v", res.Rows)
	}
	if _, err := db.Query("SELECT * FROM t WHERE a = ?"); err == nil {
		t.Fatal("missing arg must fail")
	}
}

func TestProjectionAliases(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (3, 4)")
	res := mustQuery(t, db, "SELECT a + b AS total, a * b product, a FROM t")
	if res.Cols[0] != "total" || res.Cols[1] != "product" || res.Cols[2] != "a" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if res.Rows[0][0].AsInt() != 7 || res.Rows[0][1].AsInt() != 12 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestOrderByLimit(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (3,1),(1,2),(2,3),(5,4),(4,5)")
	res := mustQuery(t, db, "SELECT a FROM t ORDER BY a DESC LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("limit: %d rows", len(res.Rows))
	}
	for i, want := range []int64{5, 4, 3} {
		if res.Rows[i][0].AsInt() != want {
			t.Fatalf("order desc: %v", res.Rows)
		}
	}
	res = mustQuery(t, db, "SELECT a FROM t ORDER BY a")
	if res.Rows[0][0].AsInt() != 1 || res.Rows[4][0].AsInt() != 5 {
		t.Fatalf("order asc: %v", res.Rows)
	}
	// Multi-key: equal first key falls through to second.
	mustExec(t, db, "CREATE TABLE u (k INT, v INT)")
	mustExec(t, db, "INSERT INTO u VALUES (1,9),(1,7),(0,8)")
	res = mustQuery(t, db, "SELECT k, v FROM u ORDER BY k, v DESC")
	if res.Rows[0][0].AsInt() != 0 || res.Rows[1][1].AsInt() != 9 || res.Rows[2][1].AsInt() != 7 {
		t.Fatalf("multi-key order: %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (g INT, v DOUBLE)")
	mustExec(t, db, "INSERT INTO t VALUES (1,10),(1,20),(2,5),(2,15),(2,40)")
	res := mustQuery(t, db, "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t")
	row := res.Rows[0]
	if row[0].AsInt() != 5 || row[1].AsFloat() != 90 || row[2].AsFloat() != 18 ||
		row[3].AsFloat() != 5 || row[4].AsFloat() != 40 {
		t.Fatalf("aggregates = %v", row)
	}
	// GROUP BY.
	res = mustQuery(t, db, "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g ORDER BY g")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsInt() != 2 || res.Rows[0][2].AsFloat() != 30 {
		t.Fatalf("group 1 = %v", res.Rows[0])
	}
	if res.Rows[1][0].AsInt() != 2 || res.Rows[1][1].AsInt() != 3 || res.Rows[1][2].AsFloat() != 60 {
		t.Fatalf("group 2 = %v", res.Rows[1])
	}
	// Aggregate over empty input: one row of zeros.
	mustExec(t, db, "CREATE TABLE empty (v INT)")
	res = mustQuery(t, db, "SELECT COUNT(*), SUM(v) FROM empty")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("empty aggregate = %v", res.Rows)
	}
	// COUNT(col) and aggregate with WHERE.
	res = mustQuery(t, db, "SELECT COUNT(v) FROM t WHERE g = 2")
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("count with where = %v", res.Rows)
	}
}

func TestIndexSelectionExplain(t *testing.T) {
	db := pointsDB(t, 1000)
	mustExec(t, db, "CREATE INDEX idx_id ON records USING BTREE (id)")
	mustExec(t, db, "CREATE INDEX idx_bbox ON records USING RTREE (minx, miny, maxx, maxy)")

	expectPlan := func(sql, want string, args ...storage.Value) {
		t.Helper()
		res := mustQuery(t, db, "EXPLAIN "+sql, args...)
		joined := ""
		for _, r := range res.Rows {
			joined += r[0].S + "\n"
		}
		if !strings.Contains(joined, want) {
			t.Errorf("EXPLAIN %s:\n%swant fragment %q", sql, joined, want)
		}
	}
	expectPlan("SELECT * FROM records WHERE id = 5", "BTree Eq Scan")
	expectPlan("SELECT * FROM records WHERE id BETWEEN 5 AND 10", "BTree Range Scan")
	expectPlan("SELECT * FROM records WHERE id >= 5", "BTree Range Scan")
	expectPlan("SELECT * FROM records WHERE x = 5", "Seq Scan")
	expectPlan("SELECT * FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, 0, 0, 50, 50)",
		"RTree Window Scan")
	expectPlan("SELECT * FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, ?, ?, ?, ?)",
		"RTree Window Scan",
		storage.F64(0), storage.F64(0), storage.F64(50), storage.F64(50))
	// Hash preferred over btree for equality.
	mustExec(t, db, "CREATE INDEX idx_id_hash ON records USING HASH (id)")
	expectPlan("SELECT * FROM records WHERE id = 5", "Hash Eq Scan")
}

func TestIndexScanResultsMatchSeqScan(t *testing.T) {
	db := pointsDB(t, 2000)
	seq := mustQuery(t, db, "SELECT id FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, 100, 100, 300, 300)")
	mustExec(t, db, "CREATE INDEX idx_bbox ON records USING RTREE (minx, miny, maxx, maxy)")
	idx := mustQuery(t, db, "SELECT id FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, 100, 100, 300, 300)")
	if len(seq.Rows) == 0 {
		t.Fatal("empty oracle result — bad test window")
	}
	seen := map[int64]bool{}
	for _, r := range seq.Rows {
		seen[r[0].AsInt()] = true
	}
	if len(idx.Rows) != len(seq.Rows) {
		t.Fatalf("rtree scan %d rows, seq %d", len(idx.Rows), len(seq.Rows))
	}
	for _, r := range idx.Rows {
		if !seen[r[0].AsInt()] {
			t.Fatalf("rtree returned id %d not in seq scan", r[0].AsInt())
		}
	}
}

func TestCreateIndexValidation(t *testing.T) {
	db := pointsDB(t, 10)
	if _, err := db.Exec("CREATE INDEX i ON records USING BTREE (x)"); err == nil {
		t.Fatal("btree on DOUBLE must fail")
	}
	if _, err := db.Exec("CREATE INDEX i ON records USING BTREE (id, x)"); err == nil {
		t.Fatal("btree with two columns must fail")
	}
	if _, err := db.Exec("CREATE INDEX i ON records USING RTREE (minx, miny)"); err == nil {
		t.Fatal("rtree with two columns must fail")
	}
	if _, err := db.Exec("CREATE INDEX i ON records USING BTREE (missing)"); err == nil {
		t.Fatal("index on missing column must fail")
	}
	mustExec(t, db, "CREATE INDEX i ON records USING BTREE (id)")
	if _, err := db.Exec("CREATE INDEX i ON records USING BTREE (id)"); err == nil {
		t.Fatal("duplicate index name must fail")
	}
}

func TestJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE records (id INT, val TEXT)")
	mustExec(t, db, "CREATE TABLE tiles (tile_id INT, tuple_id INT)")
	mustExec(t, db, "INSERT INTO records VALUES (1,'a'),(2,'b'),(3,'c')")
	mustExec(t, db, "INSERT INTO tiles VALUES (100,1),(100,3),(200,2)")

	// Hash join (no index).
	res := mustQuery(t, db,
		"SELECT r.val FROM tiles t JOIN records r ON t.tuple_id = r.id WHERE t.tile_id = 100 ORDER BY val")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "a" || res.Rows[1][0].S != "c" {
		t.Fatalf("hash join = %v", res.Rows)
	}

	// INL join once the index exists; same answer, different plan.
	mustExec(t, db, "CREATE INDEX idx_rid ON records USING BTREE (id)")
	plan := mustQuery(t, db,
		"EXPLAIN SELECT r.val FROM tiles t JOIN records r ON t.tuple_id = r.id WHERE t.tile_id = 100")
	text := ""
	for _, r := range plan.Rows {
		text += r[0].S + "\n"
	}
	if !strings.Contains(text, "Index Nested Loop Join") {
		t.Fatalf("expected INL join:\n%s", text)
	}
	res = mustQuery(t, db,
		"SELECT r.val FROM tiles t JOIN records r ON t.tuple_id = r.id WHERE t.tile_id = 100 ORDER BY val")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "a" || res.Rows[1][0].S != "c" {
		t.Fatalf("inl join = %v", res.Rows)
	}

	// Qualified star.
	res = mustQuery(t, db,
		"SELECT r.* FROM tiles t JOIN records r ON t.tuple_id = r.id WHERE t.tile_id = 200")
	if len(res.Cols) != 2 || res.Cols[0] != "id" || len(res.Rows) != 1 || res.Rows[0][1].S != "b" {
		t.Fatalf("qualified star = %v %v", res.Cols, res.Rows)
	}

	// Join with reversed ON order.
	res = mustQuery(t, db,
		"SELECT r.val FROM tiles t JOIN records r ON r.id = t.tuple_id WHERE t.tile_id = 200")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "b" {
		t.Fatalf("reversed ON = %v", res.Rows)
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INT, parent INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 0), (2, 1), (3, 1)")
	res := mustQuery(t, db,
		"SELECT a.id, b.id FROM t a JOIN t b ON b.parent = a.id ORDER BY b.id")
	if len(res.Rows) != 2 {
		t.Fatalf("self join = %v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("self join rows = %v", res.Rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE a (id INT)")
	mustExec(t, db, "CREATE TABLE b (id INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "INSERT INTO b VALUES (1)")
	if _, err := db.Query("SELECT id FROM a JOIN b ON a.id = b.id"); err == nil {
		t.Fatal("ambiguous column must fail")
	}
}

func TestUpdate(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INT, v INT, tag TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10, ''), (2, 20, ''), (3, 30, '')")
	mustExec(t, db, "CREATE INDEX idx ON t USING BTREE (v)")
	n := mustExec(t, db, "UPDATE t SET v = v + 100, tag = 'bumped' WHERE id >= 2")
	if n != 2 {
		t.Fatalf("updated %d", n)
	}
	res := mustQuery(t, db, "SELECT v FROM t WHERE id = 1")
	if res.Rows[0][0].AsInt() != 10 {
		t.Fatal("non-matching row changed")
	}
	// The index must reflect new values: query via the indexed column.
	res = mustQuery(t, db, "SELECT id FROM t WHERE v = 120")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("index after update = %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT id FROM t WHERE v = 20")
	if len(res.Rows) != 0 {
		t.Fatal("stale index entry after update")
	}
	// Growing update that forces row relocation (text grows a lot).
	mustExec(t, db, "UPDATE t SET tag = ? WHERE id = 3", storage.Str(strings.Repeat("z", 500)))
	res = mustQuery(t, db, "SELECT tag FROM t WHERE id = 3")
	if len(res.Rows[0][0].S) != 500 {
		t.Fatal("relocating update lost data")
	}
}

func TestDelete(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,1),(2,2),(3,3),(4,4)")
	mustExec(t, db, "CREATE INDEX idx ON t USING HASH (id)")
	n := mustExec(t, db, "DELETE FROM t WHERE v > 2")
	if n != 2 {
		t.Fatalf("deleted %d", n)
	}
	res := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("count after delete = %v", res.Rows)
	}
	// Index no longer returns deleted rows.
	res = mustQuery(t, db, "SELECT * FROM t WHERE id = 3")
	if len(res.Rows) != 0 {
		t.Fatal("stale index entry after delete")
	}
	// Delete everything.
	mustExec(t, db, "DELETE FROM t")
	res = mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatal("full delete failed")
	}
}

func TestIntersectsWithoutIndex(t *testing.T) {
	db := pointsDB(t, 500)
	res := mustQuery(t, db,
		"SELECT COUNT(*) FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, 0, 0, 100, 100)")
	if res.Rows[0][0].AsInt() == 0 {
		t.Fatal("fallback INTERSECTS evaluation returned nothing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"CREATE TABLE t (a BADTYPE)",
		"CREATE INDEX ON t USING BTREE (a)",
		"CREATE INDEX i ON t USING SPLAY (a)",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (1",
		"SELECT * FROM t LIMIT abc",
		"SELECT * FROM t trailing junk (",
		"SELECT COUNT() FROM t",
		"SELECT INTERSECTS(a, b) FROM t",
		"SELECT 'unterminated FROM t",
		"UPDATE t SET WHERE a = 1",
		"DELETE t WHERE a = 1",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseComments(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT) -- trailing comment")
	mustExec(t, db, "INSERT INTO t VALUES (1); ")
	res := mustQuery(t, db, "SELECT a -- pick a\nFROM t")
	if len(res.Rows) != 1 {
		t.Fatal("comment handling broke query")
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('it''s')")
	res := mustQuery(t, db, "SELECT s FROM t WHERE s = 'it''s'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "it's" {
		t.Fatalf("escape = %v", res.Rows)
	}
}

func TestWALReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	db := NewDB()
	if err := db.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (id INT, v TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'one'), (2, 'two')")
	mustExec(t, db, "UPDATE t SET v = 'TWO' WHERE id = 2")
	mustExec(t, db, "INSERT INTO t VALUES (?, ?)", storage.I64(3), storage.Str("three"))
	mustExec(t, db, "DELETE FROM t WHERE id = 1")
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}

	// Fresh DB recovers the full state from the log.
	db2 := NewDB()
	if err := db2.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	defer db2.DetachWAL()
	res := mustQuery(t, db2, "SELECT id, v FROM t ORDER BY id")
	if len(res.Rows) != 2 {
		t.Fatalf("recovered rows = %v", res.Rows)
	}
	if res.Rows[0][1].S != "TWO" || res.Rows[1][1].S != "three" {
		t.Fatalf("recovered values = %v", res.Rows)
	}
	// And continues logging.
	mustExec(t, db2, "INSERT INTO t VALUES (4, 'four')")
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := pointsDB(t, 1000)
	mustExec(t, db, "CREATE INDEX idx_bbox ON records USING RTREE (minx, miny, maxx, maxy)")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 50; i++ {
				x := rng.Float64() * 900
				_, err := db.Query(
					"SELECT COUNT(*) FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, ?, ?, ?, ?)",
					storage.F64(x), storage.F64(0), storage.F64(x+100), storage.F64(100))
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_, err := db.Exec("UPDATE records SET x = x WHERE id = ?", storage.I64(int64(i)))
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsCounted(t *testing.T) {
	db := pointsDB(t, 100)
	mustQuery(t, db, "SELECT * FROM records")
	st := db.Stats()
	if st.Selects != 1 || st.RowsScanned != 100 || st.RowsOut != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableNames(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE zeta (a INT)")
	mustExec(t, db, "CREATE TABLE alpha (a INT)")
	names := db.TableNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
}

func TestOrderByOnAggregateOutput(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (g INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,5),(2,50),(3,20)")
	res := mustQuery(t, db, "SELECT g, SUM(v) AS total FROM t GROUP BY g ORDER BY total DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 2 || res.Rows[1][0].AsInt() != 3 {
		t.Fatalf("agg order = %v", res.Rows)
	}
}

func BenchmarkWindowQuery10k(b *testing.B) {
	db := NewDB()
	_, _ = db.Exec(`CREATE TABLE records (id INT, minx DOUBLE, miny DOUBLE, maxx DOUBLE, maxy DOUBLE)`)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		_ = db.InsertRow("records", storage.Row{
			storage.I64(int64(i)),
			storage.F64(x - 1), storage.F64(y - 1), storage.F64(x + 1), storage.F64(y + 1),
		})
	}
	_, _ = db.Exec("CREATE INDEX idx ON records USING RTREE (minx, miny, maxx, maxy)")
	sel, err := Parse("SELECT * FROM records WHERE INTERSECTS(minx, miny, maxx, maxy, ?, ?, ?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := float64(i%90) * 100
		_, err := db.RunSelect(sel.(*SelectStmt),
			storage.F64(x), storage.F64(x), storage.F64(x+1000), storage.F64(x+1000))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	sql := "SELECT r.id, r.x FROM tiles t JOIN records r ON t.tuple_id = r.id WHERE t.tile_id = ? ORDER BY r.id LIMIT 100"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExplainFormat(t *testing.T) {
	db := pointsDB(t, 10)
	res := mustQuery(t, db, "EXPLAIN SELECT * FROM records WHERE id = 1 ORDER BY x LIMIT 5")
	if res.Cols[0] != "plan" || len(res.Rows) < 2 {
		t.Fatalf("explain = %v %v", res.Cols, res.Rows)
	}
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintln(&sb, r[0].S)
	}
	for _, want := range []string{"Seq Scan", "Sort", "Limit 5"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("explain missing %q:\n%s", want, sb.String())
		}
	}
}
