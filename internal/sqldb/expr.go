package sqldb

import (
	"fmt"
	"strings"

	"kyrix/internal/geom"
	"kyrix/internal/storage"
)

// binding names one input relation and its schema; execution rows are
// the concatenation of all bound relations' columns.
type binding struct {
	name   string
	schema storage.Schema
	offset int // column offset in the flat row
}

type bindings []binding

func makeBindings(parts ...binding) bindings {
	off := 0
	out := make(bindings, 0, len(parts))
	for _, p := range parts {
		p.offset = off
		off += len(p.schema)
		out = append(out, p)
	}
	return out
}

func (bs bindings) width() int {
	n := 0
	for _, b := range bs {
		n += len(b.schema)
	}
	return n
}

// resolve finds the flat column position of a (possibly qualified)
// column reference.
func (bs bindings) resolve(ref *ColRef) (int, storage.ColType, error) {
	found := -1
	var ct storage.ColType
	for _, b := range bs {
		if ref.Table != "" && ref.Table != b.name {
			continue
		}
		if i := b.schema.ColIndex(ref.Col); i >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqldb: ambiguous column %q", ref.Col)
			}
			found = b.offset + i
			ct = b.schema[i].Type
		}
	}
	if found < 0 {
		if ref.Table != "" {
			return 0, 0, fmt.Errorf("sqldb: no column %s.%s", ref.Table, ref.Col)
		}
		return 0, 0, fmt.Errorf("sqldb: no column %q", ref.Col)
	}
	return found, ct, nil
}

// compiledExpr evaluates against a flat execution row.
type compiledExpr interface {
	eval(row storage.Row) (storage.Value, error)
}

type litExpr struct{ v storage.Value }

func (e litExpr) eval(storage.Row) (storage.Value, error) { return e.v, nil }

type colExpr struct{ idx int }

func (e colExpr) eval(row storage.Row) (storage.Value, error) { return row[e.idx], nil }

type binExpr struct {
	op   int
	l, r compiledExpr
}

func truth(v storage.Value) bool {
	switch v.Kind {
	case storage.TBool:
		return v.B
	case storage.TInt64:
		return v.I != 0
	case storage.TFloat64:
		return v.F != 0
	case storage.TString:
		return v.S != ""
	}
	return false
}

func (e binExpr) eval(row storage.Row) (storage.Value, error) {
	// Short-circuit logicals.
	switch e.op {
	case OpAnd:
		lv, err := e.l.eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		if !truth(lv) {
			return storage.Bool(false), nil
		}
		rv, err := e.r.eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.Bool(truth(rv)), nil
	case OpOr:
		lv, err := e.l.eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		if truth(lv) {
			return storage.Bool(true), nil
		}
		rv, err := e.r.eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.Bool(truth(rv)), nil
	}
	lv, err := e.l.eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	rv, err := e.r.eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	switch e.op {
	case OpEq:
		return storage.Bool(lv.Equal(rv)), nil
	case OpNe:
		return storage.Bool(!lv.Equal(rv)), nil
	case OpLt:
		return storage.Bool(lv.Compare(rv) < 0), nil
	case OpLe:
		return storage.Bool(lv.Compare(rv) <= 0), nil
	case OpGt:
		return storage.Bool(lv.Compare(rv) > 0), nil
	case OpGe:
		return storage.Bool(lv.Compare(rv) >= 0), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		return arith(e.op, lv, rv)
	}
	return storage.Value{}, fmt.Errorf("sqldb: unknown operator %d", e.op)
}

func arith(op int, l, r storage.Value) (storage.Value, error) {
	// Integer arithmetic stays integral (tile math depends on it);
	// mixed or float operands use float semantics.
	if l.Kind == storage.TInt64 && r.Kind == storage.TInt64 {
		a, b := l.I, r.I
		switch op {
		case OpAdd:
			return storage.I64(a + b), nil
		case OpSub:
			return storage.I64(a - b), nil
		case OpMul:
			return storage.I64(a * b), nil
		case OpDiv:
			if b == 0 {
				return storage.Value{}, fmt.Errorf("sqldb: division by zero")
			}
			return storage.I64(a / b), nil
		}
	}
	if (l.Kind == storage.TInt64 || l.Kind == storage.TFloat64) &&
		(r.Kind == storage.TInt64 || r.Kind == storage.TFloat64) {
		a, b := l.AsFloat(), r.AsFloat()
		switch op {
		case OpAdd:
			return storage.F64(a + b), nil
		case OpSub:
			return storage.F64(a - b), nil
		case OpMul:
			return storage.F64(a * b), nil
		case OpDiv:
			if b == 0 {
				return storage.Value{}, fmt.Errorf("sqldb: division by zero")
			}
			return storage.F64(a / b), nil
		}
	}
	return storage.Value{}, fmt.Errorf("sqldb: arithmetic on non-numeric values %s, %s", l.Kind, r.Kind)
}

type notExpr struct{ e compiledExpr }

func (e notExpr) eval(row storage.Row) (storage.Value, error) {
	v, err := e.e.eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	return storage.Bool(!truth(v)), nil
}

type betweenExpr struct{ e, lo, hi compiledExpr }

func (e betweenExpr) eval(row storage.Row) (storage.Value, error) {
	v, err := e.e.eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	lo, err := e.lo.eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	hi, err := e.hi.eval(row)
	if err != nil {
		return storage.Value{}, err
	}
	return storage.Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0), nil
}

// intersectsExpr is INTERSECTS(aMinX, aMinY, aMaxX, aMaxY, bMinX, bMinY,
// bMaxX, bMaxY): rectangle overlap with inclusive edges.
type intersectsExpr struct{ args [8]compiledExpr }

func (e intersectsExpr) eval(row storage.Row) (storage.Value, error) {
	var f [8]float64
	for i, a := range e.args {
		v, err := a.eval(row)
		if err != nil {
			return storage.Value{}, err
		}
		if v.Kind != storage.TInt64 && v.Kind != storage.TFloat64 {
			return storage.Value{}, fmt.Errorf("sqldb: INTERSECTS argument %d is not numeric", i+1)
		}
		f[i] = v.AsFloat()
	}
	a := geom.Rect{MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3]}
	b := geom.Rect{MinX: f[4], MinY: f[5], MaxX: f[6], MaxY: f[7]}
	return storage.Bool(a.Intersects(b)), nil
}

// compileExpr resolves columns against bs and substitutes args for
// params. Aggregate calls are rejected here; the aggregation operator
// compiles its own arguments.
func compileExpr(e Expr, bs bindings, args []storage.Value) (compiledExpr, error) {
	switch e := e.(type) {
	case *Lit:
		return litExpr{v: e.Val}, nil
	case *Param:
		if e.Ordinal >= len(args) {
			return nil, fmt.Errorf("sqldb: query has parameter %d but only %d args given", e.Ordinal+1, len(args))
		}
		return litExpr{v: args[e.Ordinal]}, nil
	case *ColRef:
		idx, _, err := bs.resolve(e)
		if err != nil {
			return nil, err
		}
		return colExpr{idx: idx}, nil
	case *Binary:
		l, err := compileExpr(e.L, bs, args)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(e.R, bs, args)
		if err != nil {
			return nil, err
		}
		return binExpr{op: e.Op, l: l, r: r}, nil
	case *Not:
		c, err := compileExpr(e.E, bs, args)
		if err != nil {
			return nil, err
		}
		return notExpr{e: c}, nil
	case *Between:
		v, err := compileExpr(e.E, bs, args)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(e.Lo, bs, args)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(e.Hi, bs, args)
		if err != nil {
			return nil, err
		}
		return betweenExpr{e: v, lo: lo, hi: hi}, nil
	case *Call:
		if e.Fn == FnIntersects {
			var ce intersectsExpr
			for i, a := range e.Args {
				c, err := compileExpr(a, bs, args)
				if err != nil {
					return nil, err
				}
				ce.args[i] = c
			}
			return ce, nil
		}
		return nil, fmt.Errorf("sqldb: aggregate %s not allowed here", funcName(e.Fn))
	}
	return nil, fmt.Errorf("sqldb: cannot compile %T", e)
}

func funcName(fn FuncKind) string {
	switch fn {
	case FnCount:
		return "COUNT"
	case FnSum:
		return "SUM"
	case FnAvg:
		return "AVG"
	case FnMin:
		return "MIN"
	case FnMax:
		return "MAX"
	case FnIntersects:
		return "INTERSECTS"
	}
	return "?"
}

// exprName derives an output column name.
func exprName(e Expr) string {
	switch e := e.(type) {
	case *ColRef:
		return e.Col
	case *Call:
		if e.Star {
			return strings.ToLower(funcName(e.Fn))
		}
		if len(e.Args) == 1 {
			if c, ok := e.Args[0].(*ColRef); ok {
				return strings.ToLower(funcName(e.Fn)) + "_" + c.Col
			}
		}
		return strings.ToLower(funcName(e.Fn))
	}
	return "expr"
}

// containsAggregate reports whether e contains an aggregate call.
func containsAggregate(e Expr) bool {
	switch e := e.(type) {
	case *Call:
		if e.Fn != FnIntersects {
			return true
		}
		for _, a := range e.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *Binary:
		return containsAggregate(e.L) || containsAggregate(e.R)
	case *Not:
		return containsAggregate(e.E)
	case *Between:
		return containsAggregate(e.E) || containsAggregate(e.Lo) || containsAggregate(e.Hi)
	}
	return false
}
