package sqldb

import "kyrix/internal/storage"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Name        string
	Schema      storage.Schema
	IfNotExists bool
}

// IndexKind selects the index structure.
type IndexKind int

// Index kinds supported by CREATE INDEX ... USING.
const (
	IndexBTree IndexKind = iota
	IndexHash
	IndexRTree
)

func (k IndexKind) String() string {
	switch k {
	case IndexBTree:
		return "BTREE"
	case IndexHash:
		return "HASH"
	case IndexRTree:
		return "RTREE"
	}
	return "?"
}

// CreateIndexStmt creates an index. BTREE/HASH take one column; RTREE
// takes exactly four (minx, miny, maxx, maxy).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Kind    IndexKind
	Columns []string
}

// DropTableStmt removes a table and its indexes.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// UpdateStmt updates rows matching Where.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr // may be nil
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt deletes rows matching Where.
type DeleteStmt struct {
	Table string
	Where Expr // may be nil
}

// SelectStmt is a (optionally joined, grouped, ordered, limited) query.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Expr // may be nil
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int64 // -1 = none
	Explain bool
}

// SelectItem is one projection; Star means "*", optionally qualified
// ("r.*") via StarTable.
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Name returns the effective binding name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is INNER JOIN <ref> ON <left> = <right>.
type JoinClause struct {
	Ref TableRef
	On  Expr // parsed equality; planner requires ColRef = ColRef
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is any scalar expression.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ Val storage.Value }

// ColRef references a column, optionally qualified by table/alias.
type ColRef struct {
	Table string // "" if unqualified
	Col   string
}

// Param is a '?' placeholder, filled from query args by ordinal.
type Param struct{ Ordinal int }

// BinOp kinds.
const (
	OpEq = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
)

// Binary is a binary operation.
type Binary struct {
	Op   int
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Between is `expr BETWEEN lo AND hi` (inclusive).
type Between struct {
	E, Lo, Hi Expr
}

// FuncKind enumerates built-in functions.
type FuncKind int

// Built-in functions. Aggregates are only legal in a SELECT list.
const (
	FnCount FuncKind = iota
	FnSum
	FnAvg
	FnMin
	FnMax
	FnIntersects
)

// Call is a function call. For FnCount with Star, Args is empty.
type Call struct {
	Fn   FuncKind
	Args []Expr
	Star bool // COUNT(*)
}

func (*Lit) expr()     {}
func (*ColRef) expr()  {}
func (*Param) expr()   {}
func (*Binary) expr()  {}
func (*Not) expr()     {}
func (*Between) expr() {}
func (*Call) expr()    {}
