package sqldb

import (
	"fmt"
	"sort"
	"sync"

	"kyrix/internal/btree"
	"kyrix/internal/geom"
	"kyrix/internal/hashidx"
	"kyrix/internal/rtree"
	"kyrix/internal/storage"
)

// DB is an embedded relational database: a catalog of tables, each a
// heap file plus secondary indexes. Safe for concurrent use; readers of
// a table proceed in parallel, writers are exclusive per table.
type DB struct {
	mu         sync.RWMutex
	tables     map[string]*Table
	poolFrames int
	walSt      *walState

	statsMu sync.Mutex
	stats   DBStats
}

// DBStats counts executed statements, for the experiment reports.
type DBStats struct {
	Selects     int64
	Inserts     int64
	Updates     int64
	Deletes     int64
	RowsScanned int64
	RowsOut     int64
}

// Option configures a DB.
type Option func(*DB)

// WithPoolFrames sets the per-table buffer pool capacity in pages.
// The default (8192 frames = 64 MB per table) keeps the working set of
// the laptop-scale experiments resident, standing in for the paper's
// 32 GB instance.
func WithPoolFrames(frames int) Option {
	return func(db *DB) { db.poolFrames = frames }
}

// NewDB creates an empty database.
func NewDB(opts ...Option) *DB {
	db := &DB{tables: make(map[string]*Table), poolFrames: 8192}
	for _, o := range opts {
		o(db)
	}
	return db
}

// Stats returns a snapshot of execution counters.
func (db *DB) Stats() DBStats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.stats
}

func (db *DB) bump(f func(*DBStats)) {
	db.statsMu.Lock()
	f(&db.stats)
	db.statsMu.Unlock()
}

// Table is a named heap file with secondary indexes.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  storage.Schema
	heap    *storage.HeapFile
	indexes map[string]*Index
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() storage.Schema { return t.schema }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int64 { return t.heap.Count() }

// Index is a secondary index over one table.
type Index struct {
	Name string
	Kind IndexKind
	Cols []string
	pos  []int // column positions in the table schema

	bt *btree.Tree
	hi *hashidx.Index
	rt *rtree.Tree
}

// Len returns the number of indexed entries.
func (ix *Index) Len() int {
	switch ix.Kind {
	case IndexBTree:
		return ix.bt.Len()
	case IndexHash:
		return ix.hi.Len()
	case IndexRTree:
		return ix.rt.Len()
	}
	return 0
}

// Table returns the named table, or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %q", name)
	}
	return t, nil
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (db *DB) createTable(st *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[st.Name]; exists {
		if st.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: table %q already exists", st.Name)
	}
	seen := map[string]bool{}
	for _, c := range st.Schema {
		if seen[c.Name] {
			return fmt.Errorf("sqldb: duplicate column %q in table %q", c.Name, st.Name)
		}
		seen[c.Name] = true
	}
	bp := storage.NewBufferPool(storage.NewMemDisk(), db.poolFrames)
	heap, err := storage.NewHeapFile(bp, st.Schema)
	if err != nil {
		return err
	}
	db.tables[st.Name] = &Table{
		name:    st.Name,
		schema:  st.Schema,
		heap:    heap,
		indexes: make(map[string]*Index),
	}
	return nil
}

func (db *DB) dropTable(st *DropTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[st.Name]; !ok {
		if st.IfExists {
			return nil
		}
		return fmt.Errorf("sqldb: no such table %q", st.Name)
	}
	delete(db.tables, st.Name)
	return nil
}

func (db *DB) createIndex(st *CreateIndexStmt) error {
	t, err := db.Table(st.Table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.indexes[st.Name]; exists {
		return fmt.Errorf("sqldb: index %q already exists on %q", st.Name, st.Table)
	}
	switch st.Kind {
	case IndexBTree, IndexHash:
		if len(st.Columns) != 1 {
			return fmt.Errorf("sqldb: %s index takes exactly one column", st.Kind)
		}
	case IndexRTree:
		if len(st.Columns) != 4 {
			return fmt.Errorf("sqldb: RTREE index takes exactly four columns (minx, miny, maxx, maxy)")
		}
	}
	ix := &Index{Name: st.Name, Kind: st.Kind, Cols: st.Columns}
	for _, col := range st.Columns {
		pos := t.schema.ColIndex(col)
		if pos < 0 {
			return fmt.Errorf("sqldb: no column %q in table %q", col, st.Table)
		}
		ct := t.schema[pos].Type
		switch st.Kind {
		case IndexBTree, IndexHash:
			if ct != storage.TInt64 {
				return fmt.Errorf("sqldb: %s index requires an INT column, %q is %s", st.Kind, col, ct)
			}
		case IndexRTree:
			if ct != storage.TFloat64 && ct != storage.TInt64 {
				return fmt.Errorf("sqldb: RTREE index requires numeric columns, %q is %s", col, ct)
			}
		}
		ix.pos = append(ix.pos, pos)
	}
	// Build: bulk-load R-trees (the precomputation phase inserts
	// millions of rows before indexing), incremental for the rest.
	switch ix.Kind {
	case IndexBTree:
		ix.bt = btree.New()
		err = t.heap.Scan(func(rid storage.RID, row storage.Row) bool {
			ix.bt.Insert(row[ix.pos[0]].AsInt(), rid.Pack())
			return true
		})
	case IndexHash:
		ix.hi = hashidx.New()
		err = t.heap.Scan(func(rid storage.RID, row storage.Row) bool {
			ix.hi.Insert(row[ix.pos[0]].AsInt(), rid.Pack())
			return true
		})
	case IndexRTree:
		var items []rtree.Item
		err = t.heap.Scan(func(rid storage.RID, row storage.Row) bool {
			items = append(items, rtree.Item{Box: ix.rowBox(row), Val: rid.Pack()})
			return true
		})
		if err == nil {
			ix.rt = rtree.BulkLoad(items)
		}
	}
	if err != nil {
		return err
	}
	t.indexes[st.Name] = ix
	return nil
}

func (ix *Index) rowBox(row storage.Row) geom.Rect {
	return geom.Rect{
		MinX: row[ix.pos[0]].AsFloat(),
		MinY: row[ix.pos[1]].AsFloat(),
		MaxX: row[ix.pos[2]].AsFloat(),
		MaxY: row[ix.pos[3]].AsFloat(),
	}
}

// indexInsert adds row (at rid) to every index. Caller holds t.mu.
func (t *Table) indexInsert(rid storage.RID, row storage.Row) {
	for _, ix := range t.indexes {
		switch ix.Kind {
		case IndexBTree:
			ix.bt.Insert(row[ix.pos[0]].AsInt(), rid.Pack())
		case IndexHash:
			ix.hi.Insert(row[ix.pos[0]].AsInt(), rid.Pack())
		case IndexRTree:
			ix.rt.Insert(ix.rowBox(row), rid.Pack())
		}
	}
}

// indexDelete removes row (at rid) from every index. Caller holds t.mu.
func (t *Table) indexDelete(rid storage.RID, row storage.Row) {
	for _, ix := range t.indexes {
		switch ix.Kind {
		case IndexBTree:
			ix.bt.Delete(row[ix.pos[0]].AsInt(), rid.Pack())
		case IndexHash:
			ix.hi.Delete(row[ix.pos[0]].AsInt(), rid.Pack())
		case IndexRTree:
			ix.rt.Delete(ix.rowBox(row), rid.Pack())
		}
	}
}

// coerce validates/adapts v to column type ct (int<->float widening
// only).
func coerce(v storage.Value, ct storage.ColType) (storage.Value, error) {
	switch ct {
	case storage.TInt64:
		switch v.Kind {
		case storage.TInt64:
			return v, nil
		case storage.TFloat64:
			return storage.I64(int64(v.F)), nil
		}
	case storage.TFloat64:
		switch v.Kind {
		case storage.TFloat64:
			return v, nil
		case storage.TInt64:
			return storage.F64(float64(v.I)), nil
		}
	case storage.TString:
		if v.Kind == storage.TString {
			return v, nil
		}
	case storage.TBool:
		if v.Kind == storage.TBool {
			return v, nil
		}
	}
	return storage.Value{}, fmt.Errorf("sqldb: cannot store %s value into %s column", v.Kind, ct)
}
