package sqldb

import (
	"fmt"
	"testing"
	"testing/quick"

	"kyrix/internal/storage"
)

// evalConst parses and evaluates a constant scalar expression through
// the full lexer/parser/compiler pipeline by wrapping it in a one-row
// query.
func evalConst(t *testing.T, db *DB, expr string) storage.Value {
	t.Helper()
	res := mustQuery(t, db, fmt.Sprintf("SELECT %s AS v FROM one", expr))
	if len(res.Rows) != 1 {
		t.Fatalf("eval %q: %d rows", expr, len(res.Rows))
	}
	return res.Rows[0][0]
}

func oneRowDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE one (k INT)")
	mustExec(t, db, "INSERT INTO one VALUES (1)")
	return db
}

func TestExprPrecedence(t *testing.T) {
	db := oneRowDB(t)
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 4 - 3", 3},    // left assoc
		{"20 / 2 / 5", 2},    // left assoc
		{"2 + 3 * 4 - 5", 9}, // mul binds tighter
		{"-3 + 5", 2},        // unary minus
		{"10 - -3", 13},      // double negative
		{"100 / 7", 14},      // integer division truncates
	}
	for _, c := range cases {
		if got := evalConst(t, db, c.expr).AsInt(); got != c.want {
			t.Errorf("%s = %d want %d", c.expr, got, c.want)
		}
	}
}

func TestExprBooleanLogic(t *testing.T) {
	db := oneRowDB(t)
	cases := []struct {
		expr string
		want bool
	}{
		{"TRUE AND FALSE", false},
		{"TRUE OR FALSE", true},
		{"NOT TRUE", false},
		{"NOT FALSE AND TRUE", true},      // NOT binds tighter than AND
		{"TRUE OR FALSE AND FALSE", true}, // AND binds tighter than OR
		{"(TRUE OR FALSE) AND FALSE", false},
		{"1 < 2 AND 2 < 3", true},
		{"1 BETWEEN 0 AND 2", true},
		{"3 BETWEEN 0 AND 2", false},
		{"NOT 3 BETWEEN 0 AND 2", true},
	}
	for _, c := range cases {
		if got := evalConst(t, db, c.expr); got.Kind != storage.TBool || got.B != c.want {
			t.Errorf("%s = %v want %v", c.expr, got, c.want)
		}
	}
}

func TestExprMixedArithmetic(t *testing.T) {
	db := oneRowDB(t)
	// int/float promotion.
	if got := evalConst(t, db, "1 + 2.5"); got.Kind != storage.TFloat64 || got.F != 3.5 {
		t.Fatalf("1 + 2.5 = %v", got)
	}
	if got := evalConst(t, db, "5 / 2.0"); got.F != 2.5 {
		t.Fatalf("5 / 2.0 = %v", got)
	}
	if got := evalConst(t, db, "5 / 2"); got.I != 2 {
		t.Fatalf("5 / 2 = %v", got)
	}
}

func TestExprShortCircuit(t *testing.T) {
	db := oneRowDB(t)
	// The right side would divide by zero; short-circuit must avoid
	// evaluating it.
	if got := evalConst(t, db, "FALSE AND 1 / 0 = 1"); got.B {
		t.Fatal("FALSE AND ... should be false")
	}
	if got := evalConst(t, db, "TRUE OR 1 / 0 = 1"); !got.B {
		t.Fatal("TRUE OR ... should be true")
	}
}

// Property: integer arithmetic through the SQL pipeline matches Go.
func TestQuickIntArithmetic(t *testing.T) {
	db := oneRowDB(t)
	f := func(a, b int16) bool {
		av, bv := int64(a), int64(b)
		sum := evalConst(t, db, fmt.Sprintf("%d + %d", av, bv)).AsInt()
		dif := evalConst(t, db, fmt.Sprintf("%d - (%d)", av, bv)).AsInt()
		prd := evalConst(t, db, fmt.Sprintf("%d * %d", av, bv)).AsInt()
		if sum != av+bv || dif != av-bv || prd != av*bv {
			return false
		}
		if bv != 0 {
			quo := evalConst(t, db, fmt.Sprintf("%d / (%d)", av, bv)).AsInt()
			if quo != av/bv {
				return false
			}
		}
		lt := evalConst(t, db, fmt.Sprintf("%d < %d", av, bv)).B
		return lt == (av < bv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectsExprFallback(t *testing.T) {
	db := oneRowDB(t)
	// INTERSECTS evaluates as a plain predicate on constants.
	if got := evalConst(t, db, "INTERSECTS(0, 0, 10, 10, 5, 5, 20, 20)"); !got.B {
		t.Fatal("overlapping boxes should intersect")
	}
	if got := evalConst(t, db, "INTERSECTS(0, 0, 10, 10, 11, 11, 20, 20)"); got.B {
		t.Fatal("disjoint boxes should not intersect")
	}
	// Touching edges count (inclusive semantics, same as the R-tree).
	if got := evalConst(t, db, "INTERSECTS(0, 0, 10, 10, 10, 10, 20, 20)"); !got.B {
		t.Fatal("touching boxes should intersect")
	}
}

func TestExprErrors(t *testing.T) {
	db := oneRowDB(t)
	bad := []string{
		"SELECT 'a' + 1 FROM one",                              // string arithmetic
		"SELECT missing FROM one",                              // unknown column
		"SELECT INTERSECTS('a', 0, 0, 0, 0, 0, 0, 0) FROM one", // non-numeric
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}
