package sqldb

import (
	"fmt"
	"math"

	"kyrix/internal/geom"
	"kyrix/internal/storage"
)

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// constValue evaluates e when it contains no column references
// (literals, params, arithmetic thereon). ok=false otherwise.
func constValue(e Expr, args []storage.Value) (storage.Value, bool) {
	c, err := compileExpr(e, nil, args)
	if err != nil {
		return storage.Value{}, false
	}
	v, err := c.eval(nil)
	if err != nil {
		return storage.Value{}, false
	}
	return v, true
}

// scanChoice is the chosen access path for the FROM table.
type scanChoice struct {
	kind         string // "seq" | "btree-eq" | "hash-eq" | "btree-range" | "rtree"
	index        *Index
	eqKey        int64
	lo, hi       int64
	window       geom.Rect
	usedConjunct int // consumed conjunct index, -1 for seq
}

func (sc scanChoice) describe(table string) string {
	switch sc.kind {
	case "btree-eq":
		return fmt.Sprintf("BTree Eq Scan on %s using %s (%s = %d)", table, sc.index.Name, sc.index.Cols[0], sc.eqKey)
	case "hash-eq":
		return fmt.Sprintf("Hash Eq Scan on %s using %s (%s = %d)", table, sc.index.Name, sc.index.Cols[0], sc.eqKey)
	case "btree-range":
		return fmt.Sprintf("BTree Range Scan on %s using %s (%d <= %s <= %d)", table, sc.index.Name, sc.lo, sc.index.Cols[0], sc.hi)
	case "rtree":
		return fmt.Sprintf("RTree Window Scan on %s using %s (window %s)", table, sc.index.Name, sc.window)
	}
	return fmt.Sprintf("Seq Scan on %s", table)
}

// chooseScan picks the best access path for table t given the WHERE
// conjuncts. Preference order mirrors a textbook rule-based optimizer:
// equality (hash, then btree), spatial window, btree range, seq scan.
func chooseScan(t *Table, tname string, conjuncts []Expr, args []storage.Value) scanChoice {
	best := scanChoice{kind: "seq", usedConjunct: -1}
	score := 0 // higher wins: eq=4, rtree=3, range=2
	for ci, c := range conjuncts {
		if sc, ok := matchEq(t, tname, c, args); ok {
			s := 4
			if s > score {
				sc.usedConjunct = ci
				best, score = sc, s
			}
		}
		if sc, ok := matchIntersects(t, tname, c, args); ok {
			s := 3
			if s > score {
				sc.usedConjunct = ci
				best, score = sc, s
			}
		}
		if sc, ok := matchRange(t, tname, c, args); ok {
			s := 2
			if s > score {
				sc.usedConjunct = ci
				best, score = sc, s
			}
		}
	}
	return best
}

// refOn reports whether e is a ColRef naming a column of binding tname
// on table t, returning the column name.
func refOn(e Expr, t *Table, tname string) (string, bool) {
	ref, ok := e.(*ColRef)
	if !ok {
		return "", false
	}
	if ref.Table != "" && ref.Table != tname {
		return "", false
	}
	if t.schema.ColIndex(ref.Col) < 0 {
		return "", false
	}
	return ref.Col, true
}

// matchEq matches `col = const` (either order) with a hash or btree
// index on col.
func matchEq(t *Table, tname string, e Expr, args []storage.Value) (scanChoice, bool) {
	b, ok := e.(*Binary)
	if !ok || b.Op != OpEq {
		return scanChoice{}, false
	}
	col, colOK := refOn(b.L, t, tname)
	val, valOK := constValue(b.R, args)
	if !colOK || !valOK {
		col, colOK = refOn(b.R, t, tname)
		val, valOK = constValue(b.L, args)
	}
	if !colOK || !valOK {
		return scanChoice{}, false
	}
	if val.Kind != storage.TInt64 && val.Kind != storage.TFloat64 {
		return scanChoice{}, false
	}
	// Prefer hash over btree for pure equality.
	var btIx *Index
	for _, ix := range t.indexes {
		if len(ix.Cols) == 1 && ix.Cols[0] == col {
			switch ix.Kind {
			case IndexHash:
				return scanChoice{kind: "hash-eq", index: ix, eqKey: val.AsInt()}, true
			case IndexBTree:
				btIx = ix
			}
		}
	}
	if btIx != nil {
		return scanChoice{kind: "btree-eq", index: btIx, eqKey: val.AsInt()}, true
	}
	return scanChoice{}, false
}

// matchRange matches `col >= c`, `col <= c`, `col > c`, `col < c`,
// `col BETWEEN a AND b` with a btree index on col. Strict bounds adjust
// by one (INT columns only).
func matchRange(t *Table, tname string, e Expr, args []storage.Value) (scanChoice, bool) {
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	var col string
	switch e := e.(type) {
	case *Between:
		c, ok := refOn(e.E, t, tname)
		if !ok {
			return scanChoice{}, false
		}
		lov, ok1 := constValue(e.Lo, args)
		hiv, ok2 := constValue(e.Hi, args)
		if !ok1 || !ok2 {
			return scanChoice{}, false
		}
		col, lo, hi = c, lov.AsInt(), hiv.AsInt()
	case *Binary:
		op := e.Op
		c, colOK := refOn(e.L, t, tname)
		v, valOK := constValue(e.R, args)
		if !colOK || !valOK {
			// const OP col: flip the operator.
			c, colOK = refOn(e.R, t, tname)
			v, valOK = constValue(e.L, args)
			switch op {
			case OpLt:
				op = OpGt
			case OpLe:
				op = OpGe
			case OpGt:
				op = OpLt
			case OpGe:
				op = OpLe
			}
		}
		if !colOK || !valOK {
			return scanChoice{}, false
		}
		col = c
		switch op {
		case OpGe:
			lo = v.AsInt()
		case OpGt:
			lo = v.AsInt() + 1
		case OpLe:
			hi = v.AsInt()
		case OpLt:
			hi = v.AsInt() - 1
		default:
			return scanChoice{}, false
		}
	default:
		return scanChoice{}, false
	}
	for _, ix := range t.indexes {
		if ix.Kind == IndexBTree && len(ix.Cols) == 1 && ix.Cols[0] == col {
			return scanChoice{kind: "btree-range", index: ix, lo: lo, hi: hi}, true
		}
	}
	return scanChoice{}, false
}

// matchIntersects matches INTERSECTS(c1,c2,c3,c4, e5..e8) where
// c1..c4 are the columns of an RTREE index on t (in index order) and
// e5..e8 are constants.
func matchIntersects(t *Table, tname string, e Expr, args []storage.Value) (scanChoice, bool) {
	call, ok := e.(*Call)
	if !ok || call.Fn != FnIntersects || len(call.Args) != 8 {
		return scanChoice{}, false
	}
	var cols [4]string
	for i := 0; i < 4; i++ {
		c, ok := refOn(call.Args[i], t, tname)
		if !ok {
			return scanChoice{}, false
		}
		cols[i] = c
	}
	var win [4]float64
	for i := 0; i < 4; i++ {
		v, ok := constValue(call.Args[4+i], args)
		if !ok || (v.Kind != storage.TInt64 && v.Kind != storage.TFloat64) {
			return scanChoice{}, false
		}
		win[i] = v.AsFloat()
	}
	for _, ix := range t.indexes {
		if ix.Kind != IndexRTree {
			continue
		}
		if ix.Cols[0] == cols[0] && ix.Cols[1] == cols[1] &&
			ix.Cols[2] == cols[2] && ix.Cols[3] == cols[3] {
			return scanChoice{
				kind:   "rtree",
				index:  ix,
				window: geom.Rect{MinX: win[0], MinY: win[1], MaxX: win[2], MaxY: win[3]},
			}, true
		}
	}
	return scanChoice{}, false
}

// joinChoice is the chosen strategy for one JOIN clause.
type joinChoice struct {
	ref      TableRef
	table    *Table
	kind     string // "inl" (index nested loop) | "hash"
	index    *Index // inl only
	outerIdx int    // flat column index in the current row
	innerIdx int    // column position within the inner table schema
	desc     string
}

// chooseJoin resolves jc.On as outerCol = innerCol and picks INL when
// the inner column has a hash or btree index.
func chooseJoin(jc JoinClause, inner *Table, bs bindings) (joinChoice, error) {
	b, ok := jc.On.(*Binary)
	if !ok || b.Op != OpEq {
		return joinChoice{}, fmt.Errorf("sqldb: JOIN ON must be an equality of two columns")
	}
	lref, lok := b.L.(*ColRef)
	rref, rok := b.R.(*ColRef)
	if !lok || !rok {
		return joinChoice{}, fmt.Errorf("sqldb: JOIN ON must compare two columns")
	}
	innerName := jc.Ref.Name()
	innerBS := makeBindings(binding{name: innerName, schema: inner.schema})
	var outerRef, innerRef *ColRef
	if _, _, err := innerBS.resolve(lref); err == nil && (lref.Table == innerName || lref.Table == "") {
		// l could be inner; check r against outer.
		if _, _, err := bs.resolve(rref); err == nil {
			outerRef, innerRef = rref, lref
		}
	}
	if outerRef == nil {
		if _, _, err := bs.resolve(lref); err == nil {
			if _, _, err := innerBS.resolve(rref); err == nil {
				outerRef, innerRef = lref, rref
			}
		}
	}
	if outerRef == nil {
		return joinChoice{}, fmt.Errorf("sqldb: JOIN ON columns must reference the joined table and a prior table")
	}
	outerIdx, _, err := bs.resolve(outerRef)
	if err != nil {
		return joinChoice{}, err
	}
	innerPos := inner.schema.ColIndex(innerRef.Col)
	out := joinChoice{ref: jc.Ref, table: inner, outerIdx: outerIdx, innerIdx: innerPos, kind: "hash"}
	for _, ix := range inner.indexes {
		if len(ix.Cols) == 1 && ix.Cols[0] == innerRef.Col &&
			(ix.Kind == IndexBTree || ix.Kind == IndexHash) {
			out.kind = "inl"
			out.index = ix
			break
		}
	}
	if out.kind == "inl" {
		out.desc = fmt.Sprintf("Index Nested Loop Join with %s using %s (%s)", innerName, out.index.Name, innerRef.Col)
	} else {
		out.desc = fmt.Sprintf("Hash Join with %s (%s)", innerName, innerRef.Col)
	}
	return out, nil
}
