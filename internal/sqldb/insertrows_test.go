package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"kyrix/internal/storage"
)

func TestInsertRowsBasics(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE)")
	rows := []storage.Row{
		{storage.I64(1), storage.F64(1.5)},
		{storage.I64(2), storage.I64(3)}, // int coerced into the DOUBLE column
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("t", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	res := mustQuery(t, db, "SELECT * FROM t ORDER BY a")
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	if res.Rows[1][1].Kind != storage.TFloat64 || res.Rows[1][1].F != 3 {
		t.Fatalf("batch insert did not coerce int into DOUBLE column: %v", res.Rows[1][1])
	}
	if got := db.Stats().Inserts; got != 2 {
		t.Fatalf("Inserts stat = %d, want 2", got)
	}
}

func TestInsertRowsErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE)")
	if err := db.InsertRows("missing", []storage.Row{{storage.I64(1), storage.F64(2)}}); err == nil {
		t.Fatal("missing table must fail")
	}
	// A bad row anywhere in the batch rejects the whole batch before any
	// insert happens — partial batches would corrupt pyramid levels.
	batch := []storage.Row{
		{storage.I64(1), storage.F64(2)},
		{storage.I64(2)}, // arity
	}
	if err := db.InsertRows("t", batch); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	batch = []storage.Row{
		{storage.I64(1), storage.F64(2)},
		{storage.Str("nope"), storage.F64(2)}, // type
	}
	if err := db.InsertRows("t", batch); err == nil {
		t.Fatal("type mismatch must fail")
	}
	if res := mustQuery(t, db, "SELECT * FROM t"); len(res.Rows) != 0 {
		t.Fatalf("failed batches left %d rows behind", len(res.Rows))
	}
}

func TestInsertRowsIndexVisibility(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE)")
	mustExec(t, db, "CREATE INDEX t_a ON t USING BTREE (a)")
	rows := make([]storage.Row, 100)
	for i := range rows {
		rows[i] = storage.Row{storage.I64(int64(i)), storage.F64(float64(i))}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	plan := mustQuery(t, db, "EXPLAIN SELECT * FROM t WHERE a = ?", storage.I64(42))
	var joined strings.Builder
	for _, r := range plan.Rows {
		joined.WriteString(r[0].S)
		joined.WriteString("\n")
	}
	if !strings.Contains(joined.String(), "BTree Eq Scan") {
		t.Fatalf("equality probe not using the index:\n%s", joined.String())
	}
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = ?", storage.I64(42))
	if len(res.Rows) != 1 || res.Rows[0][1].F != 42 {
		t.Fatalf("index lookup after batch insert: %v", res.Rows)
	}
}

// TestInsertRowsConcurrentBatches is the pyramid bulk-insert shape:
// several goroutines each append disjoint chunks with InsertRows while
// readers scan. Run under -race it proves the one-lock-per-batch path
// is safe; the final count proves no batch was lost or duplicated.
func TestInsertRowsConcurrentBatches(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b DOUBLE)")
	const (
		writers   = 8
		batches   = 10
		batchSize = 50
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([]storage.Row, batchSize)
				for i := range rows {
					id := int64(w*batches*batchSize + b*batchSize + i)
					rows[i] = storage.Row{storage.I64(id), storage.F64(float64(id))}
				}
				if err := db.InsertRows("t", rows); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Query("SELECT COUNT(*) FROM t"); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	res := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if got := res.Rows[0][0].AsInt(); got != writers*batches*batchSize {
		t.Fatalf("count = %d, want %d", got, writers*batches*batchSize)
	}
}
