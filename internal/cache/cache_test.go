package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetPut(t *testing.T) {
	c := NewLRU(1000)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, 100)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 100 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU(300)
	c.Put("a", "A", 100)
	c.Put("b", "B", 100)
	c.Put("c", "C", 100)
	// Touch a so b is LRU.
	c.Get("a")
	c.Put("d", "D", 100) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should be resident", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestOversizeValueRejected(t *testing.T) {
	c := NewLRU(100)
	c.Put("big", 1, 200)
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize value should not be cached")
	}
	if c.Stats().Bytes != 0 {
		t.Fatal("bytes leaked")
	}
}

func TestDisabledCache(t *testing.T) {
	c := NewLRU(0)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must not store")
	}
}

func TestUpdateExisting(t *testing.T) {
	c := NewLRU(1000)
	c.Put("a", 1, 100)
	c.Put("a", 2, 600)
	v, ok := c.Get("a")
	if !ok || v.(int) != 2 {
		t.Fatalf("updated value = %v", v)
	}
	if st := c.Stats(); st.Bytes != 600 || st.Entries != 1 {
		t.Fatalf("stats after update = %+v", st)
	}
	// Shrinking update.
	c.Put("a", 3, 50)
	if st := c.Stats(); st.Bytes != 50 {
		t.Fatalf("bytes after shrink = %d", st.Bytes)
	}
}

func TestRemoveClear(t *testing.T) {
	c := NewLRU(1000)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Remove("a")
	c.Remove("missing") // no-op
	if _, ok := c.Get("a"); ok {
		t.Fatal("a not removed")
	}
	c.Clear()
	if _, ok := c.Get("b"); ok {
		t.Fatal("clear left entries")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after clear = %+v", st)
	}
}

func TestContainsNoStats(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", 1, 10)
	before := c.Stats()
	if !c.Contains("a") || c.Contains("b") {
		t.Fatal("Contains wrong")
	}
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatal("Contains must not change stats")
	}
}

func TestResetStats(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", 1, 10)
	c.Get("a")
	c.Get("b")
	c.ResetStats()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Puts != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if st.Entries != 1 {
		t.Fatal("reset must keep contents")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("k%d", (g*1000+i)%128)
				c.Put(key, i, 64)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 10000 {
		t.Fatalf("budget exceeded: %d", st.Bytes)
	}
}

// Property: bytes never exceed budget, and entry count matches the map.
func TestQuickBudgetInvariant(t *testing.T) {
	f := func(ops []struct {
		Key  uint8
		Size uint16
	}) bool {
		c := NewLRU(4096)
		for _, op := range ops {
			c.Put(fmt.Sprintf("k%d", op.Key%32), nil, int64(op.Size))
			if st := c.Stats(); st.Bytes > 4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutGet(b *testing.B) {
	c := NewLRU(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%1024)
		c.Put(key, i, 512)
		c.Get(key)
	}
}
