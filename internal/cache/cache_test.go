package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetPut(t *testing.T) {
	c := NewLRU(1000)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, 100)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Bytes != 100 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU(300)
	c.Put("a", "A", 100)
	c.Put("b", "B", 100)
	c.Put("c", "C", 100)
	// Touch a so b is LRU.
	c.Get("a")
	c.Put("d", "D", 100) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should be resident", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestOversizeValueRejected(t *testing.T) {
	c := NewLRU(100)
	c.Put("big", 1, 200)
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize value should not be cached")
	}
	if c.Stats().Bytes != 0 {
		t.Fatal("bytes leaked")
	}
}

func TestDisabledCache(t *testing.T) {
	c := NewLRU(0)
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must not store")
	}
}

func TestUpdateExisting(t *testing.T) {
	c := NewLRU(1000)
	c.Put("a", 1, 100)
	c.Put("a", 2, 600)
	v, ok := c.Get("a")
	if !ok || v.(int) != 2 {
		t.Fatalf("updated value = %v", v)
	}
	if st := c.Stats(); st.Bytes != 600 || st.Entries != 1 {
		t.Fatalf("stats after update = %+v", st)
	}
	// Shrinking update.
	c.Put("a", 3, 50)
	if st := c.Stats(); st.Bytes != 50 {
		t.Fatalf("bytes after shrink = %d", st.Bytes)
	}
}

func TestRemoveClear(t *testing.T) {
	c := NewLRU(1000)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Remove("a")
	c.Remove("missing") // no-op
	if _, ok := c.Get("a"); ok {
		t.Fatal("a not removed")
	}
	c.Clear()
	if _, ok := c.Get("b"); ok {
		t.Fatal("clear left entries")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after clear = %+v", st)
	}
}

func TestContainsNoStats(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", 1, 10)
	before := c.Stats()
	if !c.Contains("a") || c.Contains("b") {
		t.Fatal("Contains wrong")
	}
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatal("Contains must not change stats")
	}
}

func TestResetStats(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", 1, 10)
	c.Get("a")
	c.Get("b")
	c.ResetStats()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Puts != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	if st.Entries != 1 {
		t.Fatal("reset must keep contents")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(10000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("k%d", (g*1000+i)%128)
				c.Put(key, i, 64)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 10000 {
		t.Fatalf("budget exceeded: %d", st.Bytes)
	}
}

// Property: bytes never exceed budget, and entry count matches the map.
func TestQuickBudgetInvariant(t *testing.T) {
	f := func(ops []struct {
		Key  uint8
		Size uint16
	}) bool {
		c := NewLRU(4096)
		for _, op := range ops {
			c.Put(fmt.Sprintf("k%d", op.Key%32), nil, int64(op.Size))
			if st := c.Stats(); st.Bytes > 4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutGet(b *testing.B) {
	c := NewLRU(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%1024)
		c.Put(key, i, 512)
		c.Get(key)
	}
}

// --- sharded-cache surface ---

func TestShardedDefaults(t *testing.T) {
	// Small budgets collapse to one shard so exact global LRU order is
	// preserved (the tests above depend on it).
	if got := NewLRU(300).ShardCount(); got != 1 {
		t.Fatalf("tiny budget shards = %d, want 1", got)
	}
	// Production-sized budgets shard.
	if got := NewLRU(256 << 20).ShardCount(); got < 8 {
		t.Fatalf("256MB budget shards = %d, want >= 8", got)
	}
	// Explicit counts round up to a power of two.
	if got := NewLRUSharded(256<<20, 5).ShardCount(); got != 8 {
		t.Fatalf("shards(5) = %d, want 8", got)
	}
	// Disabled caches are a single shard that rejects puts.
	c := NewLRUSharded(0, 16)
	if c.ShardCount() != 1 {
		t.Fatalf("disabled cache shards = %d", c.ShardCount())
	}
	c.Put("a", 1, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestShardedBudgetHonored(t *testing.T) {
	const budget = 64 << 20
	c := NewLRUSharded(budget, 8)
	if c.ShardCount() != 8 {
		t.Fatalf("shards = %d", c.ShardCount())
	}
	// Insert far more bytes than the budget, across many keys, and
	// verify the aggregate never exceeds the total budget.
	const size = 1 << 20
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i, size)
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("bytes %d exceed budget %d after put %d", st.Bytes, budget, i)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions when 200MB is pushed through a 64MB cache")
	}
	if st.Bytes > budget {
		t.Fatalf("final bytes %d exceed budget %d", st.Bytes, budget)
	}
}

func TestShardedStatsAggregation(t *testing.T) {
	c := NewLRUSharded(64<<20, 8)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("agg-%d", i)
		c.Put(keys[i], i, 100)
	}
	for _, k := range keys {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("lost key %s", k)
		}
	}
	c.Get("missing-1")
	c.Get("missing-2")
	st := c.Stats()
	if st.Puts != 64 || st.Hits != 64 || st.Misses != 2 {
		t.Fatalf("aggregated stats = %+v", st)
	}
	if st.Entries != 64 || st.Bytes != 6400 {
		t.Fatalf("aggregated contents = %+v", st)
	}
	// Keys must actually spread over shards (fnv over distinct keys).
	perShard := make(map[uint32]int)
	for _, k := range keys {
		perShard[fnv32a(k)&c.mask]++
	}
	if len(perShard) < 2 {
		t.Fatalf("64 keys landed on %d shard(s)", len(perShard))
	}
	c.ResetStats()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Puts != 0 {
		t.Fatalf("stats not reset across shards: %+v", st)
	}
	if st := c.Stats(); st.Entries != 64 {
		t.Fatal("reset must keep contents")
	}
	c.Clear()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("clear left state: %+v", st)
	}
}

func TestShardedConcurrentAccess(t *testing.T) {
	c := NewLRUSharded(64<<20, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", (g*2000+i)%512)
				c.Put(key, i, 1024)
				c.Get(key)
				if i%64 == 0 {
					c.Remove(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 64<<20 {
		t.Fatalf("budget exceeded: %d", st.Bytes)
	}
}

func TestLargeValueCacheableAcrossShards(t *testing.T) {
	// A value bigger than budget/shards (but within the budget) must
	// still be cacheable — the old single-lock cache accepted it, and
	// sharding must not silently regress that. Eviction steals from
	// other shards to make room.
	const budget = 16 << 20
	c := NewLRUSharded(budget, 8)
	if c.ShardCount() != 8 {
		t.Fatalf("shards = %d", c.ShardCount())
	}
	// Fill every shard with small entries.
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("small-%d", i), i, budget/64)
	}
	if st := c.Stats(); st.Bytes > budget {
		t.Fatalf("pre-fill bytes %d over budget", st.Bytes)
	}
	// 12 MB value: 6x one shard's share (2 MB), well within the total.
	big := int64(12 << 20)
	c.Put("big", "payload", big)
	v, ok := c.Get("big")
	if !ok || v.(string) != "payload" {
		t.Fatalf("large value not cached (Get = %v %v)", v, ok)
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("bytes %d exceed budget %d after large put", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("large put should have evicted small entries")
	}
}
