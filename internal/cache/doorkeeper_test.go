package cache

import (
	"fmt"
	"testing"
)

// TestDoorkeeperFirstSightingStaysOutOfSketch: with the doorkeeper on,
// a single sighting lives in the bloom filter (estimate 1) and the
// count-min rows stay untouched; the second sighting graduates into
// the rows.
func TestDoorkeeperFirstSightingStaysOutOfSketch(t *testing.T) {
	sk := newSketch(1024, true)
	h := fnv64a("tile/main/0/1024/3/7")
	sk.add(h)
	if got := sk.estimate(h); got != 1 {
		t.Fatalf("estimate after first sighting = %d, want 1 (doorkeeper only)", got)
	}
	// The rows themselves must be clean: every counter the key maps to
	// is still zero.
	for r := 0; r < sketchDepth; r++ {
		if c := sk.counter(r, sk.idx(h, r)); c != 0 {
			t.Fatalf("row %d counter = %d after one sighting, want 0", r, c)
		}
	}
	sk.add(h)
	if got := sk.estimate(h); got != 2 {
		t.Fatalf("estimate after second sighting = %d, want 2", got)
	}
	for r := 0; r < sketchDepth; r++ {
		if c := sk.counter(r, sk.idx(h, r)); c != 1 {
			t.Fatalf("row %d counter = %d after second sighting, want 1", r, c)
		}
	}
}

// TestDoorkeeperResetsOnDecay: the halving that ages the counters also
// clears the doorkeeper, so first-sighting memory is as perishable as
// the counts (and the bloom filter cannot fill up forever).
func TestDoorkeeperResetsOnDecay(t *testing.T) {
	sk := newSketch(64, true) // resetAt = max(8*64, 256) = 512
	h := fnv64a("hot-key")
	sk.add(h)
	if !sk.dk.contains(h) {
		t.Fatal("doorkeeper lost a fresh sighting")
	}
	// Drive one-hit traffic until the sample period elapses. These
	// first sightings count toward additions, so a pure scan still
	// cycles the decay.
	for i := 0; sk.additions > 0 && i < 10_000; i++ {
		sk.add(fnv64a(fmt.Sprintf("scan-%d", i)))
	}
	if sk.dk.contains(h) && sk.estimate(h) > 0 {
		// Not a hard failure on contains alone (a post-reset scan key
		// may collide), but the original bits must be gone.
		t.Fatalf("doorkeeper not cleared by decay: estimate=%d", sk.estimate(h))
	}
}

// TestDoorkeeperKeepsSketchClean: a long one-hit scan must not bleed
// into the count-min rows. With the doorkeeper, an unseen probe key
// estimates 0 despite thousands of scan sightings; without it, the
// tiny sketch's collisions make cold keys look warm — the admission
// precision the doorkeeper buys.
func TestDoorkeeperKeepsSketchClean(t *testing.T) {
	withDK := newSketch(64, true)
	noDK := newSketch(64, false)
	// Stay inside one decay period for the clean-rows assertion: at
	// resetAt the halving clears both structures.
	scan := withDK.resetAt - 1
	for i := 0; i < scan; i++ {
		h := fnv64a(fmt.Sprintf("scan/%d", i))
		withDK.add(h)
		noDK.add(h)
	}
	var dirtyWith, dirtyWithout int
	for i := 0; i < 200; i++ {
		h := fnv64a(fmt.Sprintf("probe/%d", i)) // never added
		// Probe the raw rows (not estimate) so doorkeeper false
		// positives cannot mask row pollution.
		minWith, minWithout := counterMax, counterMax
		for r := 0; r < sketchDepth; r++ {
			if c := int(withDK.counter(r, withDK.idx(h, r))); c < minWith {
				minWith = c
			}
			if c := int(noDK.counter(r, noDK.idx(h, r))); c < minWithout {
				minWithout = c
			}
		}
		if minWith > 0 {
			dirtyWith++
		}
		if minWithout > 0 {
			dirtyWithout++
		}
	}
	if dirtyWith != 0 {
		t.Fatalf("doorkeeper let %d/200 unseen keys look warm in the rows", dirtyWith)
	}
	if dirtyWithout == 0 {
		t.Fatal("control broken: the doorkeeper-less sketch shows no scan pollution, so the test proves nothing")
	}
}

// TestAdmissionPrecisionScanWorkload is the cache-level payoff: warm a
// hot set under a contended budget, run a long one-shot scan, and the
// doorkeeper-backed cache keeps the entire hot set resident — the scan
// keys estimate at most 1 (bloom bit) while the hot keys' counts sit
// clean in the rows, so the admission gate rejects the scan wholesale.
func TestAdmissionPrecisionScanWorkload(t *testing.T) {
	build := func(dk bool) *LRU {
		return New(Config{
			Budget:    64 << 10,
			Shards:    1,
			Admission: AdmissionLFU,
			// A deliberately small sketch so scan collisions are the
			// norm: precision has to come from the doorkeeper keeping
			// the rows clean, not from sketch width.
			SketchCounters: 256,
			Doorkeeper:     dk,
		})
	}
	hot := make([]string, 16)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot/%d", i)
	}
	run := func(c *LRU) float64 {
		const entry = 2 << 10 // 32 entries fill the 64 KB budget
		// Warm the hot set: three touches each (Get records frequency,
		// Put inserts), filling half the budget.
		for _, k := range hot {
			c.Get(k)
			c.Put(k, k, entry)
			c.Get(k)
			c.Get(k)
		}
		// Fill the rest of the budget with background entries so the
		// scan below contends the gate instead of free space.
		for i := 0; i < 16; i++ {
			k := fmt.Sprintf("bg/%d", i)
			c.Get(k)
			c.Put(k, k, entry)
			c.Get(k)
		}
		// One-shot scan: distinct keys, each fetched exactly once
		// (Get miss, then the fill's Put — the serving path's shape,
		// so every scan key touches the sketch twice without a
		// doorkeeper and once with it). Sized to stay within one
		// decay period: the halving mid-scan would reset both
		// structures and blur what is being compared.
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("scan/%d", i)
			c.Get(k)
			c.Put(k, k, entry)
		}
		// Measure: how much of the hot set survived the scan.
		hits := 0
		for _, k := range hot {
			if c.Contains(k) {
				hits++
			}
		}
		return float64(hits) / float64(len(hot))
	}
	withDK := run(build(true))
	without := run(build(false))
	if withDK < 1 {
		t.Fatalf("doorkeeper cache kept only %.0f%% of the hot set through the scan, want 100%%", 100*withDK)
	}
	if withDK < without {
		t.Fatalf("doorkeeper made admission precision worse: %.2f vs %.2f", withDK, without)
	}
}
