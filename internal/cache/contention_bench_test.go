package cache

import (
	"fmt"
	"runtime"
	"testing"
)

// benchKeys is a fixed working set that fits comfortably in every
// sharding of the benchmark budget, so the benchmark measures lock
// contention, not eviction churn.
var benchKeys = func() []string {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("t/canvas0/1024/%d/%d", i%32, i/32)
	}
	return keys
}()

// BenchmarkContention compares the single-mutex design (shards=1, the
// seed implementation) against sharded variants under parallel mixed
// Get/Put load. Run with -cpu and pipe into benchstat:
//
//	go test ./internal/cache -bench Contention -count 10 | benchstat -
func BenchmarkContention(b *testing.B) {
	for _, shards := range []int{1, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := NewLRUSharded(256<<20, shards)
			if got := c.ShardCount(); got != shards {
				b.Fatalf("ShardCount = %d, want %d", got, shards)
			}
			for _, k := range benchKeys {
				c.Put(k, k, 4096)
			}
			// Guarantee at least 8 goroutines regardless of GOMAXPROCS,
			// matching the acceptance bar ("≥8 goroutines").
			procs := runtime.GOMAXPROCS(0)
			if procs < 8 {
				b.SetParallelism((8 + procs - 1) / procs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					key := benchKeys[i&1023]
					if i&7 == 0 { // 1-in-8 writes, a cache-hit-heavy mix
						c.Put(key, key, 4096)
					} else {
						c.Get(key)
					}
					i++
				}
			})
		})
	}
}
