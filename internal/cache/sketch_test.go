package cache

import "testing"

func TestSketchEstimate(t *testing.T) {
	sk := newSketch(1024, false)
	h := fnv64a("hot")
	if got := sk.estimate(h); got != 0 {
		t.Fatalf("fresh estimate = %d", got)
	}
	for i := 0; i < 10; i++ {
		sk.add(h)
	}
	if got := sk.estimate(h); got != 10 {
		t.Fatalf("estimate after 10 adds = %d", got)
	}
	// A different key stays near zero (collisions can only inflate,
	// and at this width a single other key should not collide on all
	// rows).
	if got := sk.estimate(fnv64a("cold")); got != 0 {
		t.Fatalf("cold estimate = %d", got)
	}
}

func TestSketchSaturates(t *testing.T) {
	sk := newSketch(1024, false)
	h := fnv64a("k")
	for i := 0; i < 100; i++ {
		sk.add(h)
	}
	if got := sk.estimate(h); got != counterMax {
		t.Fatalf("saturated estimate = %d, want %d", got, counterMax)
	}
}

func TestSketchHalving(t *testing.T) {
	sk := newSketch(1024, false)
	h := fnv64a("aging")
	for i := 0; i < 12; i++ {
		sk.add(h)
	}
	sk.halve()
	if got := sk.estimate(h); got != 6 {
		t.Fatalf("estimate after halving = %d, want 6", got)
	}
	sk.reset()
	if got := sk.estimate(h); got != 0 {
		t.Fatalf("estimate after reset = %d", got)
	}
	if sk.additions != 0 {
		t.Fatalf("additions after reset = %d", sk.additions)
	}
}

func TestSketchAutoHalvesAtSamplePeriod(t *testing.T) {
	sk := newSketch(64, false) // resetAt = max(8*64, 256) = 512
	hot := fnv64a("hot")
	for i := 0; i < 20; i++ {
		sk.add(hot)
	}
	before := sk.estimate(hot)
	// Saturated counters stop counting as additions, so drive the
	// sample period with distinct keys.
	for i := 0; i < sk.resetAt; i++ {
		sk.add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	if got := sk.estimate(hot); got >= before {
		t.Fatalf("estimate %d not decayed from %d after sample period", got, before)
	}
}

func TestSketchMinimumWidth(t *testing.T) {
	sk := newSketch(0, false)
	if got := sk.mask + 1; got < 64 {
		t.Fatalf("width = %d, want >= 64", got)
	}
	// Still functional at the floor width.
	h := fnv64a("x")
	sk.add(h)
	if sk.estimate(h) < 1 {
		t.Fatal("estimate lost the add")
	}
}
