// Package cache provides the byte-budgeted LRU cache used on both sides
// of the wire: the frontend cache and the backend cache of §3.1 ("Kyrix
// employs both a frontend cache and a backend cache").
//
// Keys are strings (canonical request keys like "tile/canvas0/1/5/7" or
// "dbox/canvas0/<rect>"); values carry an explicit size so the budget
// reflects payload bytes, not entry counts.
package cache

import (
	"container/list"
	"sync"
)

// Stats reports cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Puts      int64
	Bytes     int64
	Entries   int
}

type cacheEntry struct {
	key   string
	value any
	size  int64
}

// LRU is a thread-safe least-recently-used cache with a byte budget.
type LRU struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*list.Element
	order   *list.List // front = most recent

	hits, misses, evictions, puts int64
}

// NewLRU creates a cache holding up to budget bytes. budget <= 0 means
// the cache rejects every Put (a disabled cache, used by the A2
// ablation).
func NewLRU(budget int64) *LRU {
	return &LRU{
		budget:  budget,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the cached value and whether it was present, refreshing
// recency on a hit.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Contains reports presence without affecting recency or stats.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put stores value under key with the given size in bytes, evicting LRU
// entries as needed. Values larger than the whole budget are not cached.
// Re-putting a key updates its value, size and recency.
func (c *LRU) Put(key string, value any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	c.puts++
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.value, e.size = value, size
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&cacheEntry{key: key, value: value, size: size})
		c.entries[key] = el
		c.bytes += size
	}
	for c.bytes > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Remove drops key if present.
func (c *LRU) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.order.Remove(el)
		delete(c.entries, key)
		c.bytes -= e.size
	}
}

// Clear empties the cache, keeping statistics.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order.Init()
	c.bytes = 0
}

// Stats returns a snapshot of cache statistics.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Puts:      c.puts,
		Bytes:     c.bytes,
		Entries:   len(c.entries),
	}
}

// ResetStats zeroes the counters (budget and contents unchanged).
func (c *LRU) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions, c.puts = 0, 0, 0, 0
}
