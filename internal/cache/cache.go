// Package cache provides the byte-budgeted LRU cache used on both sides
// of the wire: the frontend cache and the backend cache of §3.1 ("Kyrix
// employs both a frontend cache and a backend cache").
//
// Keys are strings (canonical request keys like "tile/canvas0/1/5/7" or
// "dbox/canvas0/<rect>"); values carry an explicit size so the budget
// reflects payload bytes, not entry counts.
//
// The cache is sharded: keys are fnv-1a hashed onto a power-of-two
// number of shards, each an independently locked LRU list. The byte
// budget is global (maintained with one atomic counter), so any value
// up to the full budget is cacheable, exactly as in a single-lock LRU;
// when an insert pushes the total over budget, the inserting shard
// evicts its own LRU entries first and then steals evictions from
// other shards. Under concurrent load shards eliminate the
// single-mutex bottleneck; caches with small budgets collapse to one
// shard and behave exactly like a classic global LRU.
package cache

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
)

// minShardBudget is the smallest per-shard share of the budget worth
// splitting for: below this, sharding fragments eviction order for no
// contention win, so the constructor reduces the shard count (tiny
// caches keep exact global LRU order).
const minShardBudget = 1 << 20

// maxShards bounds the shard count (power of two).
const maxShards = 256

// Stats reports cache activity, aggregated across shards.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Puts      int64
	Bytes     int64
	Entries   int
}

type cacheEntry struct {
	key   string
	value any
	size  int64
}

// shard is one independently locked LRU list.
type shard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recent

	hits, misses, evictions, puts int64
}

// LRU is a thread-safe, sharded least-recently-used cache with a
// global byte budget. Recency is tracked per shard; total resident
// bytes never exceed the budget.
type LRU struct {
	shards []*shard
	mask   uint32
	budget int64
	bytes  atomic.Int64
}

// NewLRU creates a cache holding up to budget bytes with an automatic
// shard count (derived from GOMAXPROCS, reduced for small budgets).
// budget <= 0 means the cache rejects every Put (a disabled cache,
// used by the A2 ablation).
func NewLRU(budget int64) *LRU {
	return NewLRUSharded(budget, 0)
}

// NewLRUSharded creates a cache holding up to budget bytes spread over
// the given number of shards. shards is rounded up to a power of two;
// shards <= 0 picks a default from GOMAXPROCS. The shard count is
// reduced until every shard's share of the budget is at least
// minShardBudget (1 MB), so small caches keep exact global LRU order.
// Values up to the full budget are cacheable regardless of shard
// count.
func NewLRUSharded(budget int64, shards int) *LRU {
	if shards <= 0 {
		// Serving concurrency routinely exceeds core count (requests
		// block on network I/O), so the default floors at 8 shards;
		// the budget clamp below still collapses small caches.
		shards = 4 * runtime.GOMAXPROCS(0)
		if shards < 8 {
			shards = 8
		}
	}
	n := nextPow2(shards)
	if n > maxShards {
		n = maxShards
	}
	if budget < 0 {
		budget = 0
	}
	for n > 1 && budget/int64(n) < minShardBudget {
		n /= 2
	}
	c := &LRU{shards: make([]*shard, n), mask: uint32(n - 1), budget: budget}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries: make(map[string]*list.Element),
			order:   list.New(),
		}
	}
	return c
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ShardCount returns the number of shards (a power of two).
func (c *LRU) ShardCount() int { return len(c.shards) }

// fnv-1a, inlined to keep the hot path allocation-free.
func fnv32a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *LRU) shardIdx(key string) uint32 {
	if len(c.shards) == 1 {
		return 0
	}
	return fnv32a(key) & c.mask
}

// Get returns the cached value and whether it was present, refreshing
// recency on a hit.
func (c *LRU) Get(key string) (any, bool) {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Peek returns the cached value without refreshing recency or
// touching hit/miss statistics. Callers that already counted a miss
// for this key (the server's coalescing double-check) use it to avoid
// double-counting.
func (c *LRU) Peek(key string) (any, bool) {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).value, true
}

// Contains reports presence without affecting recency or stats.
func (c *LRU) Contains(key string) bool {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// evictOne drops the shard's LRU entry, crediting the global byte
// count. Caller holds s.mu. Reports whether anything was evicted.
func (s *shard) evictOne(bytes *atomic.Int64) bool {
	back := s.order.Back()
	if back == nil {
		return false
	}
	e := back.Value.(*cacheEntry)
	s.order.Remove(back)
	delete(s.entries, e.key)
	bytes.Add(-e.size)
	s.evictions++
	return true
}

// Put stores value under key with the given size in bytes, evicting
// LRU entries as needed — from the key's own shard first, then from
// other shards when the owner runs dry. Values larger than the whole
// budget are not cached. Re-putting a key updates its value, size and
// recency.
func (c *LRU) Put(key string, value any, size int64) {
	if size < 0 {
		size = 0
	}
	if size > c.budget || c.budget <= 0 {
		return
	}
	idx := c.shardIdx(key)
	s := c.shards[idx]
	s.mu.Lock()
	s.puts++
	var inserted *list.Element
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes.Add(size - e.size)
		e.value, e.size = value, size
		s.order.MoveToFront(el)
		inserted = el
	} else {
		el := s.order.PushFront(&cacheEntry{key: key, value: value, size: size})
		s.entries[key] = el
		c.bytes.Add(size)
		inserted = el
	}
	// Evict the shard's older entries, never the entry just stored —
	// a value larger than this shard's prior contents spills over to
	// the cross-shard steal below instead of evicting itself.
	for c.bytes.Load() > c.budget && s.order.Back() != inserted {
		if !s.evictOne(&c.bytes) {
			break
		}
	}
	s.mu.Unlock()
	// The owning shard ran dry but the total is still over budget (a
	// value bigger than the shard's prior contents): steal evictions
	// from the other shards, one lock at a time. Cross-shard eviction
	// order is approximate LRU; the byte bound is exact.
	if c.bytes.Load() > c.budget && len(c.shards) > 1 {
		for i := 1; i < len(c.shards) && c.bytes.Load() > c.budget; i++ {
			sh := c.shards[(int(idx)+i)%len(c.shards)]
			sh.mu.Lock()
			for c.bytes.Load() > c.budget && sh.evictOne(&c.bytes) {
			}
			sh.mu.Unlock()
		}
	}
}

// Remove drops key if present.
func (c *LRU) Remove(key string) {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		s.order.Remove(el)
		delete(s.entries, key)
		c.bytes.Add(-e.size)
	}
}

// Clear empties the cache, keeping statistics.
func (c *LRU) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		for _, el := range s.entries {
			c.bytes.Add(-el.Value.(*cacheEntry).size)
		}
		s.entries = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of cache statistics summed across shards.
// The snapshot is per-shard consistent, not globally atomic: shards
// are read one at a time, so concurrent mutation can skew totals
// slightly.
func (c *LRU) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Puts += s.puts
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	st.Bytes = c.bytes.Load()
	return st
}

// ResetStats zeroes the counters (budget and contents unchanged).
func (c *LRU) ResetStats() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.hits, s.misses, s.evictions, s.puts = 0, 0, 0, 0
		s.mu.Unlock()
	}
}
