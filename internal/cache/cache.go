// Package cache provides the byte-budgeted cache used on both sides of
// the wire: the frontend cache and the backend cache of §3.1 ("Kyrix
// employs both a frontend cache and a backend cache").
//
// Keys are strings (canonical request keys like "tile/canvas0/1/5/7" or
// "dbox/canvas0/<rect>"); values carry an explicit size so the budget
// reflects payload bytes, not entry counts.
//
// The cache is sharded: keys are fnv-1a hashed onto a power-of-two
// number of shards, each an independently locked segmented LRU. The
// byte budget is global (maintained with one atomic counter), so any
// value up to the full budget is cacheable, exactly as in a
// single-lock LRU; when an insert pushes the total over budget, the
// inserting shard evicts its own entries first and then steals
// evictions from other shards. The steal is capped: no neighbor shard
// is drained below its fair share of the post-insert budget,
// (budget-size)/shards, so one oversized or one-shot insert can no
// longer empty a warm neighbor. Under concurrent load shards eliminate
// the single-mutex bottleneck; caches with small budgets collapse to
// one shard and behave exactly like a classic global LRU.
//
// # Admission (W-TinyLFU)
//
// With Config.Admission set to AdmissionLFU the cache becomes a
// frequency-aware admitting cache in the W-TinyLFU family: each shard
// keeps a 4-bit count-min sketch of access frequencies (aged by
// periodic halving), a small probationary window in front of a
// segmented main area (probation/protected), and an admission gate.
// New entries land in the window; once the cache is at its byte
// budget, the window's LRU entry becomes a candidate whose estimated
// frequency is compared against the would-be victim's (the main
// area's LRU entry): the candidate is admitted — evicting the victim —
// only if it is strictly more frequent, and is dropped otherwise.
// One-shot traffic (a sequential dbox scan) therefore cannot displace
// a hot working set, while genuinely hot keys are admitted on their
// second touch. Entries re-accessed while in probation are promoted
// to the protected segment (capped at 4/5 of a shard's share; overflow
// demotes back to probation MRU). Stats.Admitted/Rejected count the
// gate's decisions. AdmissionOff (the zero value) keeps the plain
// sharded LRU behavior.
//
// # Byte-budget invariant
//
// After every Put, Stats().Bytes <= budget. Eviction tries, in order:
// the inserting shard's own entries (through the admission gate in LFU
// mode), a fair-share-capped steal from the other shards, and — as the
// final fallback — the just-inserted entry itself, so the invariant
// holds even when every other shard is at its floor and the insert
// cannot be funded. Values larger than the whole budget are rejected
// up front.
package cache

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
)

// minShardBudget is the smallest per-shard share of the budget worth
// splitting for: below this, sharding fragments eviction order for no
// contention win, so the constructor reduces the shard count (tiny
// caches keep exact global LRU order).
const minShardBudget = 1 << 20

// maxShards bounds the shard count (power of two).
const maxShards = 256

// Admission selects the cache admission policy.
type Admission string

const (
	// AdmissionOff is the plain sharded LRU: every Put is admitted and
	// eviction is strictly by recency. The empty string means the same.
	AdmissionOff Admission = "off"
	// AdmissionLFU enables W-TinyLFU frequency-based admission: a
	// count-min sketch estimates key frequencies and new entries must
	// beat the would-be victim's frequency to displace it.
	AdmissionLFU Admission = "lfu"
)

// Config configures a cache.
type Config struct {
	// Budget is the global byte budget. <= 0 disables the cache (every
	// Put is rejected — the A2 ablation).
	Budget int64
	// Shards is rounded up to a power of two; <= 0 picks a default
	// from GOMAXPROCS. The count is reduced until every shard's share
	// of the budget is at least 1 MB.
	Shards int
	// Admission selects the admission policy ("" = AdmissionOff).
	Admission Admission
	// SketchCounters sizes the TinyLFU frequency sketch: total 4-bit
	// counters across all shards (rounded up per shard to a power of
	// two). 0 derives a size from the budget assuming ~4 KB mean
	// entries. Ignored when admission is off.
	SketchCounters int
	// Doorkeeper puts a bloom filter in front of each shard's
	// frequency sketch: a key's first sighting per decay period sets
	// bloom bits instead of count-min counters, so one-hit wonders
	// cannot inflate the sketch (and, through collisions, the
	// estimates of unrelated keys). The filter is cleared on every
	// sketch decay. Ignored when admission is off.
	Doorkeeper bool
}

// Stats reports cache activity, aggregated across shards.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Puts      int64
	// Admitted/Rejected count W-TinyLFU admission-gate decisions:
	// candidates that displaced a less-frequent victim vs candidates
	// dropped (always 0 with admission off; Rejected also counts
	// entries dropped by the last-resort budget fallback).
	Admitted int64
	Rejected int64
	Bytes    int64
	Entries  int
}

// segment identifies which LRU list an entry lives on. With admission
// off only segWindow is used (the classic single list).
type segment uint8

const (
	segWindow segment = iota
	segProbation
	segProtected
)

type cacheEntry struct {
	key   string
	value any
	size  int64
	seg   segment
	// hash is fnv64a(key), computed once at insert so the admission
	// gate's frequency comparisons never re-hash the key (victims are
	// re-examined in loops, under shard mutexes). Unused (0) with
	// admission off.
	hash uint64
}

// shard is one independently locked segmented LRU.
type shard struct {
	mu      sync.Mutex
	entries map[string]*list.Element // guarded by mu

	// window holds fresh inserts (with admission off it is the only
	// list — the classic LRU order, front = most recent). probation
	// and protected form the main area of the W-TinyLFU layout.
	// All three lists are guarded by mu.
	window    *list.List // guarded by mu
	probation *list.List // guarded by mu
	protected *list.List // guarded by mu

	windowBytes    int64 // guarded by mu
	probationBytes int64 // guarded by mu
	protectedBytes int64 // guarded by mu
	// bytes is the shard's resident total (sum of the segment counts);
	// the steal cap reads it to enforce the per-shard floor.
	bytes int64 // guarded by mu

	// windowCap bounds the window during warmup (spill moves entries
	// to probation); protectedCap bounds the protected segment
	// (overflow demotes to probation). Both 0 with admission off.
	windowCap    int64
	protectedCap int64

	// sk is the frequency sketch; nil means admission off.
	sk *sketch

	hits, misses, evictions, puts, admitted, rejected int64 // guarded by mu
}

// LRU is a thread-safe, sharded, byte-budgeted cache. The name is
// historical: with admission off it is a plain sharded LRU; with
// AdmissionLFU it is a W-TinyLFU admitting cache (see the package
// doc). Recency is tracked per shard; total resident bytes never
// exceed the budget.
type LRU struct {
	shards []*shard
	mask   uint32
	budget int64
	bytes  atomic.Int64
}

// NewLRU creates a plain LRU cache holding up to budget bytes with an
// automatic shard count (derived from GOMAXPROCS, reduced for small
// budgets). budget <= 0 means the cache rejects every Put (a disabled
// cache, used by the A2 ablation).
func NewLRU(budget int64) *LRU {
	return New(Config{Budget: budget})
}

// NewLRUSharded creates a plain LRU cache holding up to budget bytes
// spread over the given number of shards (see Config.Shards for the
// rounding rules).
func NewLRUSharded(budget int64, shards int) *LRU {
	return New(Config{Budget: budget, Shards: shards})
}

// New creates a cache from cfg. Unknown admission values fall back to
// AdmissionOff.
func New(cfg Config) *LRU {
	shards := cfg.Shards
	if shards <= 0 {
		// Serving concurrency routinely exceeds core count (requests
		// block on network I/O), so the default floors at 8 shards;
		// the budget clamp below still collapses small caches.
		shards = 4 * runtime.GOMAXPROCS(0)
		if shards < 8 {
			shards = 8
		}
	}
	n := nextPow2(shards)
	if n > maxShards {
		n = maxShards
	}
	budget := cfg.Budget
	if budget < 0 {
		budget = 0
	}
	for n > 1 && budget/int64(n) < minShardBudget {
		n /= 2
	}
	c := &LRU{shards: make([]*shard, n), mask: uint32(n - 1), budget: budget}
	lfu := cfg.Admission == AdmissionLFU && budget > 0
	var perShardCounters int
	if lfu {
		counters := cfg.SketchCounters
		if counters <= 0 {
			// Assume ~4 KB mean entries; clamp so tiny budgets still
			// discriminate and huge budgets stay a few MB of sketch.
			counters = int(budget / 4096)
			if counters < 1024 {
				counters = 1024
			}
			if counters > 1<<22 {
				counters = 1 << 22
			}
		}
		perShardCounters = counters / n
	}
	share := budget / int64(n)
	for i := range c.shards {
		s := &shard{
			entries:   make(map[string]*list.Element),
			window:    list.New(),
			probation: list.New(),
			protected: list.New(),
		}
		if lfu {
			s.windowCap = share / 8
			s.protectedCap = (share - s.windowCap) * 4 / 5
			s.sk = newSketch(perShardCounters, cfg.Doorkeeper)
		}
		c.shards[i] = s
	}
	return c
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ShardCount returns the number of shards (a power of two).
func (c *LRU) ShardCount() int { return len(c.shards) }

// fnv-1a, inlined to keep the hot path allocation-free.
func fnv32a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *LRU) shardIdx(key string) uint32 {
	if len(c.shards) == 1 {
		return 0
	}
	return fnv32a(key) & c.mask
}

// Get returns the cached value and whether it was present, refreshing
// recency on a hit. With admission enabled every Get — hit or miss —
// also records the key in the frequency sketch, which is how a key
// builds the history that later wins it admission.
func (c *LRU) Get(key string) (any, bool) {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		if s.sk != nil {
			s.sk.add(fnv64a(key))
		}
		s.misses++
		return nil, false
	}
	if s.sk != nil {
		// Hits reuse the hash cached at insert: no re-hashing under
		// the shard lock on the hot path.
		s.sk.add(el.Value.(*cacheEntry).hash)
	}
	s.hits++
	s.touchLocked(el)
	return el.Value.(*cacheEntry).value, true
}

// Peek returns the cached value without refreshing recency, recording
// frequency, or touching hit/miss statistics. Callers that already
// counted a miss for this key (the server's coalescing double-check)
// use it to avoid double-counting.
func (c *LRU) Peek(key string) (any, bool) {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).value, true
}

// EstimateFreq returns the admission sketch's decayed frequency
// estimate for key (0..15, doorkeeper-adjusted), or -1 when the cache
// keeps no sketch (admission off). It does not record an access. The
// cluster's hot-key replication reads it to decide whether a peer-
// filled payload is popular enough to double-cache locally.
func (c *LRU) EstimateFreq(key string) int {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sk == nil {
		return -1
	}
	return s.sk.estimate(fnv64a(key))
}

// Contains reports presence without affecting recency or stats.
func (c *LRU) Contains(key string) bool {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// seglist returns the list an entry's segment lives on.
func (s *shard) seglistLocked(seg segment) *list.List {
	switch seg {
	case segProbation:
		return s.probation
	case segProtected:
		return s.protected
	}
	return s.window
}

func (s *shard) segBytesLocked(seg segment) *int64 {
	switch seg {
	case segProbation:
		return &s.probationBytes
	case segProtected:
		return &s.protectedBytes
	}
	return &s.windowBytes
}

// removeEl unlinks el from its segment and the key map, crediting the
// shard and global byte counts. Caller holds s.mu.
func (s *shard) removeElLocked(el *list.Element, global *atomic.Int64) {
	e := el.Value.(*cacheEntry)
	s.seglistLocked(e.seg).Remove(el)
	delete(s.entries, e.key)
	*s.segBytesLocked(e.seg) -= e.size
	s.bytes -= e.size
	global.Add(-e.size)
}

// evictEl is removeEl plus the eviction counter.
func (s *shard) evictElLocked(el *list.Element, global *atomic.Int64) {
	s.removeElLocked(el, global)
	s.evictions++
}

// moveToSeg relinks el to the front of another segment (bytes stay
// resident; only segment accounting moves). Caller holds s.mu.
func (s *shard) moveToSegLocked(el *list.Element, to segment) *list.Element {
	e := el.Value.(*cacheEntry)
	if e.seg == to {
		s.seglistLocked(to).MoveToFront(el)
		return el
	}
	s.seglistLocked(e.seg).Remove(el)
	*s.segBytesLocked(e.seg) -= e.size
	e.seg = to
	*s.segBytesLocked(to) += e.size
	nel := s.seglistLocked(to).PushFront(e)
	s.entries[e.key] = nel
	return nel
}

// touch refreshes recency for a hit (or re-put): protected entries
// move to their list front; window and probation entries are promoted
// to protected — re-access is the proof of usefulness that graduates
// an entry out of its probationary segment — demoting the protected
// LRU back to probation when the segment overflows its cap. Caller
// holds s.mu. Returns the element (relinked if the segment changed).
func (s *shard) touchLocked(el *list.Element) *list.Element {
	e := el.Value.(*cacheEntry)
	if s.sk == nil || e.seg == segProtected {
		s.seglistLocked(e.seg).MoveToFront(el)
		return el
	}
	nel := s.moveToSegLocked(el, segProtected)
	for s.protectedBytes > s.protectedCap {
		back := s.protected.Back()
		if back == nil || back == nel {
			break
		}
		s.moveToSegLocked(back, segProbation)
	}
	return nel
}

// mainVictim returns the main area's would-be victim: the probation
// LRU entry, falling back to the protected LRU. Caller holds s.mu.
func (s *shard) mainVictimLocked() *list.Element {
	if back := s.probation.Back(); back != nil {
		return back
	}
	return s.protected.Back()
}

// backExcluding returns the shard's preferred victim skipping skip:
// probation LRU first, then protected, then window. Caller holds s.mu.
func (s *shard) backExcludingLocked(skip *list.Element) *list.Element {
	for _, l := range []*list.List{s.probation, s.protected, s.window} {
		back := l.Back()
		if back == skip && back != nil {
			back = back.Prev()
		}
		if back != nil {
			return back
		}
	}
	return nil
}

// freq estimates an element's key frequency. Caller holds s.mu.
func (s *shard) freq(el *list.Element) int {
	return s.sk.estimate(el.Value.(*cacheEntry).hash)
}

// rebalance enforces the byte budget (and, with admission on, the
// segment caps) against the shard's own contents. It never evicts
// inserted except through the admission gate: when the just-inserted
// candidate loses the frequency comparison it is dropped — that IS the
// admission decision. Caller holds s.mu. Returns the current element
// for the inserted entry: moveToSeg relinks elements (container/list
// cannot move an element between lists), so callers must not keep
// using their pre-rebalance pointer.
func (s *shard) rebalanceLocked(c *LRU, inserted *list.Element) *list.Element {
	if s.sk == nil {
		// Plain LRU: evict this shard's LRU entries, never the entry
		// just stored — a value larger than the shard's prior contents
		// spills over to the cross-shard steal (and, failing that, the
		// last-resort fallback in Put).
		for c.bytes.Load() > c.budget {
			back := s.window.Back()
			if back == nil || back == inserted {
				return inserted
			}
			s.evictElLocked(back, &c.bytes)
		}
		return inserted
	}
	// Admission mode. 1) Over the global budget: drain the window
	// through the gate. The candidate is the window's LRU entry; the
	// victim is the main area's LRU entry. Strictly-more-frequent
	// candidates displace the victim into probation; the rest are
	// dropped.
	for c.bytes.Load() > c.budget && s.window.Len() > 0 {
		cand := s.window.Back()
		victim := s.mainVictimLocked()
		if victim == nil {
			if cand == inserted {
				// Nothing else resident in this shard: give the
				// cross-shard steal a chance before dropping it.
				return inserted
			}
			s.evictElLocked(cand, &c.bytes)
			s.rejected++
			continue
		}
		if s.freq(cand) > s.freq(victim) {
			s.evictElLocked(victim, &c.bytes)
			nel := s.moveToSegLocked(cand, segProbation)
			if cand == inserted {
				inserted = nel
			}
			s.admitted++
		} else {
			s.evictElLocked(cand, &c.bytes)
			s.rejected++
			if cand == inserted {
				return nil
			}
		}
	}
	// 2) Still over with an empty window: evict main entries,
	// probation first, never inserted (it may sit in probation or
	// protected after a re-put touch, or have just been admitted
	// above).
	for c.bytes.Load() > c.budget {
		victim := s.backExcludingLocked(inserted)
		if victim == nil {
			return inserted
		}
		s.evictElLocked(victim, &c.bytes)
	}
	// 3) Window over its warmup cap while under budget: spill into
	// probation without evicting anyone (the cache is not full, so
	// everything is admitted while it warms).
	for s.windowBytes > s.windowCap {
		back := s.window.Back()
		if back == nil {
			break
		}
		nel := s.moveToSegLocked(back, segProbation)
		if back == inserted {
			inserted = nel
		}
	}
	return inserted
}

// Put stores value under key with the given size in bytes, evicting
// entries as needed — from the key's own shard first (through the
// admission gate in LFU mode), then via a fair-share-capped steal from
// the other shards, and finally, if the budget still cannot fund the
// insert, by dropping the inserted entry itself, so Stats().Bytes <=
// budget holds after every Put. Values larger than the whole budget
// are not cached. Re-putting a key updates its value, size and
// recency.
func (c *LRU) Put(key string, value any, size int64) {
	if size < 0 {
		size = 0
	}
	if size > c.budget || c.budget <= 0 {
		return
	}
	idx := c.shardIdx(key)
	s := c.shards[idx]
	s.mu.Lock()
	s.puts++
	candFreq := -1
	var h uint64
	if s.sk != nil {
		h = fnv64a(key)
		s.sk.add(h)
		candFreq = s.sk.estimate(h)
	}
	var inserted *list.Element
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		delta := size - e.size
		e.value, e.size = value, size
		*s.segBytesLocked(e.seg) += delta
		s.bytes += delta
		c.bytes.Add(delta)
		inserted = s.touchLocked(el)
	} else {
		e := &cacheEntry{key: key, value: value, size: size, seg: segWindow, hash: h}
		inserted = s.window.PushFront(e)
		s.entries[key] = inserted
		s.windowBytes += size
		s.bytes += size
		c.bytes.Add(size)
	}
	// rebalance may relink the inserted element (segment moves create
	// a new *list.Element) or gate-reject it (nil): track the current
	// element so the fallback below matches the right one.
	inserted = s.rebalanceLocked(c, inserted)
	over := c.bytes.Load() > c.budget
	s.mu.Unlock()

	// The owning shard ran dry (or the gate kept the inserted entry)
	// but the total is still over budget: steal evictions from the
	// other shards, one lock at a time, capped so no neighbor drops
	// below its fair share of what the budget leaves after this value.
	// Cross-shard eviction order is approximate LRU; the byte bound is
	// exact.
	if over && len(c.shards) > 1 {
		c.stealForBudget(idx, size, candFreq)
	}

	// Last resort: the capped steal could not fund the insert (every
	// neighbor at its floor, or their victims out-ranked the
	// candidate). Evict the inserted entry itself rather than leaving
	// the cache over budget — the invariant beats residency. inserted
	// == nil means the gate already rejected it in rebalance.
	if inserted != nil && c.bytes.Load() > c.budget {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok && el == inserted && c.bytes.Load() > c.budget {
			s.evictElLocked(el, &c.bytes)
			s.rejected++
		}
		s.mu.Unlock()
	}
}

// stealForBudget evicts from the other shards until the cache is back
// under budget, leaving each neighbor at least its fair share of the
// post-insert budget, floor = (budget - incoming)/shards. With
// admission on, a neighbor's victim that is estimated more frequent
// than the incoming key refuses the steal (the gate applies across
// shards too), moving on to the next shard.
func (c *LRU) stealForBudget(idx uint32, incoming int64, candFreq int) {
	floor := (c.budget - incoming) / int64(len(c.shards))
	if floor < 0 {
		floor = 0
	}
	for i := 1; i < len(c.shards) && c.bytes.Load() > c.budget; i++ {
		sh := c.shards[(int(idx)+i)%len(c.shards)]
		sh.mu.Lock()
		for c.bytes.Load() > c.budget && sh.bytes > floor {
			victim := sh.backExcludingLocked(nil)
			if victim == nil {
				break
			}
			if sh.bytes-victim.Value.(*cacheEntry).size < floor {
				// Evicting this victim would drain the shard below its
				// floor — the guarantee is hard, not to-within-one-
				// entry, so a shard of few large entries surrenders
				// nothing rather than everything.
				break
			}
			if sh.sk != nil && candFreq >= 0 && sh.freq(victim) > candFreq {
				break
			}
			sh.evictElLocked(victim, &c.bytes)
		}
		sh.mu.Unlock()
	}
}

// Remove drops key if present.
func (c *LRU) Remove(key string) {
	s := c.shards[c.shardIdx(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.removeElLocked(el, &c.bytes)
	}
}

// Clear empties the cache, keeping statistics. With admission on the
// frequency sketch is reset too: Clear follows a data update, after
// which the old popularity histogram no longer describes the data.
func (c *LRU) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		c.bytes.Add(-s.bytes)
		s.bytes = 0
		s.windowBytes, s.probationBytes, s.protectedBytes = 0, 0, 0
		s.entries = make(map[string]*list.Element)
		s.window.Init()
		s.probation.Init()
		s.protected.Init()
		if s.sk != nil {
			s.sk.reset()
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of cache statistics summed across shards.
// The snapshot is per-shard consistent, not globally atomic: shards
// are read one at a time, so concurrent mutation can skew totals
// slightly.
func (c *LRU) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Puts += s.puts
		st.Admitted += s.admitted
		st.Rejected += s.rejected
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	st.Bytes = c.bytes.Load()
	return st
}

// HitRatio returns hits/(hits+misses) from a stats snapshot, 0 when no
// lookups were recorded.
func (st Stats) HitRatio() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// ResetStats zeroes the counters (budget and contents unchanged).
func (c *LRU) ResetStats() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.hits, s.misses, s.evictions, s.puts = 0, 0, 0, 0
		s.admitted, s.rejected = 0, 0
		s.mu.Unlock()
	}
}

// shardBytes reports one shard's resident bytes (tests use it to
// assert the steal floor).
func (c *LRU) shardBytes(i int) int64 {
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
