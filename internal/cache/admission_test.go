package cache

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"kyrix/internal/geom"
	"kyrix/internal/workload"
)

// lfuConfig is the standard admission-enabled test cache: 4 MB over 4
// shards (the smallest budget that still shards).
func lfuConfig() Config {
	return Config{Budget: 4 << 20, Shards: 4, Admission: AdmissionLFU}
}

// replay drives a key stream through the cache the way the server
// does: Get, and Put on a miss. Returns the stream's hit ratio.
func replay(c *LRU, keys []string, size int64) float64 {
	c.ResetStats()
	for _, k := range keys {
		if _, ok := c.Get(k); !ok {
			c.Put(k, k, size)
		}
	}
	return c.Stats().HitRatio()
}

// traceTileKeys flattens a viewport trace into per-step tile keys at
// the given tile size — the request stream the backend cache sees.
func traceTileKeys(prefix string, tr *workload.Trace, tile float64) []string {
	var keys []string
	for _, r := range tr.Steps {
		for ty := math.Floor(r.MinY / tile); ty*tile < r.MaxY; ty++ {
			for tx := math.Floor(r.MinX / tile); tx*tile < r.MaxX; tx++ {
				keys = append(keys, fmt.Sprintf("%s/%g/%g/%g", prefix, tile, tx, ty))
			}
		}
	}
	return keys
}

// mixedZipfScanKeys is the adversarial trace of the admission tests: a
// zipf-hot-set pan/zoom stream with periodic one-shot sequential scan
// bursts, flattened to tile keys.
func mixedZipfScanKeys(seed int64) []string {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 512 * 1024, MaxY: 512 * 1024}
	zipf := workload.ZipfHotSetTrace(workload.ZipfOptions{
		Canvas: canvas, TileSize: 1024, HotSpots: 160, Skew: 1.2,
		Steps: 6000, VpW: 1024, VpH: 1024, LayoutSeed: 11, Seed: seed,
	})
	// The scan sweeps a disjoint region so its tiles never coincide
	// with the hot set.
	scanCanvas := geom.Rect{MinX: 600 * 1024, MinY: 0, MaxX: 664 * 1024, MaxY: 48 * 1024}
	scan := workload.SequentialScanTrace(scanCanvas, 1024, 1024)
	mixed := workload.InterleaveTrace("mixed", zipf, scan, 20, 20, 6000)
	return traceTileKeys("t", mixed, 1024)
}

const tileBytes = 16 << 10 // 256 tiles fit in the 4 MB test budget

func TestAdmissionBasicCaching(t *testing.T) {
	c := New(lfuConfig())
	c.Put("a", 1, 100)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	c.Put("a", 2, 200)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("re-put value = %v", v)
	}
	if st := c.Stats(); st.Bytes != 200 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("a not removed")
	}
}

// An admitting cache under budget admits everything (the warmup
// bypass): admission only gates once the budget is contended.
func TestAdmissionWarmupAdmitsAll(t *testing.T) {
	c := New(lfuConfig())
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("w-%d", i), i, tileBytes)
	}
	st := c.Stats()
	if st.Entries != 100 || st.Rejected != 0 {
		t.Fatalf("warmup stats = %+v", st)
	}
}

// Once full, a one-shot key must not displace a hot entry, and a key
// that keeps being requested must be admitted on a later touch.
func TestAdmissionSecondTouch(t *testing.T) {
	c := New(Config{Budget: 1 << 20, Shards: 1, Admission: AdmissionLFU})
	if c.ShardCount() != 1 {
		t.Fatalf("shards = %d", c.ShardCount())
	}
	const n = 64
	hot := make([]string, n)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot-%d", i)
		c.Put(hot[i], i, tileBytes) // fills the budget exactly
	}
	for round := 0; round < 2; round++ {
		for _, k := range hot {
			if _, ok := c.Get(k); !ok {
				t.Fatalf("hot key %s lost during warmup", k)
			}
		}
	}
	// One-shot insert: rejected (its frequency, 1, does not beat any
	// resident victim), and the budget invariant holds.
	c.Put("cold-once", "x", tileBytes)
	if _, ok := c.Peek("cold-once"); ok {
		t.Fatal("one-shot key displaced a hot entry")
	}
	st := c.Stats()
	if st.Rejected == 0 {
		t.Fatalf("rejection not counted: %+v", st)
	}
	if st.Bytes > 1<<20 {
		t.Fatalf("over budget: %d", st.Bytes)
	}
	// A key that keeps being requested builds sketch frequency on its
	// misses and wins admission.
	for i := 0; i < 8; i++ {
		c.Get("cold-riser")
	}
	c.Put("cold-riser", "y", tileBytes)
	if _, ok := c.Peek("cold-riser"); !ok {
		t.Fatal("repeatedly requested key was never admitted")
	}
	if st := c.Stats(); st.Admitted == 0 {
		t.Fatalf("admission not counted: %+v", st)
	}
}

// Probation entries are promoted to protected on re-access; protected
// overflow demotes back to probation.
func TestProtectedPromotion(t *testing.T) {
	c := New(Config{Budget: 1 << 20, Shards: 1, Admission: AdmissionLFU})
	s := c.shards[0]
	// Fill past the window cap so entries spill into probation.
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("p-%d", i)
		c.Put(keys[i], i, tileBytes)
	}
	seg := func(k string) segment {
		s.mu.Lock()
		defer s.mu.Unlock()
		el, ok := s.entries[k]
		if !ok {
			t.Fatalf("key %s not resident", k)
		}
		return el.Value.(*cacheEntry).seg
	}
	if got := seg(keys[0]); got != segProbation {
		t.Fatalf("spilled entry in segment %d, want probation", got)
	}
	c.Get(keys[0])
	if got := seg(keys[0]); got != segProtected {
		t.Fatalf("re-accessed entry in segment %d, want protected", got)
	}
	// Promote enough entries to overflow protectedCap (~80% of the
	// shard share): early promotions must be demoted back.
	for _, k := range keys {
		c.Get(k)
	}
	s.mu.Lock()
	pb, pc := s.protectedBytes, s.protectedCap
	s.mu.Unlock()
	if pb > pc {
		t.Fatalf("protected segment over its cap: %d > %d", pb, pc)
	}
	if got := seg(keys[0]); got != segProbation {
		t.Fatalf("oldest promotion in segment %d, want demoted to probation", got)
	}
}

// Regression (ISSUE 4 bugfix 1): the eviction loop must never leave
// the cache over budget after a Put — including grown re-puts of a
// shard's sole entry, where the loop's "never evict the entry just
// stored" rule used to have no fallback.
func TestRePutGrownBudgetInvariant(t *testing.T) {
	const budget = 1000
	c := NewLRUSharded(budget, 1)
	check := func(step string) {
		t.Helper()
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("%s: bytes %d > budget %d", step, st.Bytes, budget)
		}
	}
	c.Put("a", 1, 100)
	check("put a=100")
	c.Put("a", 2, 900) // grown re-put of the sole entry
	check("re-put a=900")
	c.Put("b", 3, 500)
	check("put b=500")
	c.Put("a", 4, 1000) // grown re-put to the full budget
	check("re-put a=1000")
	if v, ok := c.Get("a"); !ok || v.(int) != 4 {
		t.Fatalf("a = %v %v", v, ok)
	}
	c.Put("b", 5, 600)
	check("put b=600 after full-budget a")
	// And with admission on.
	c2 := New(Config{Budget: 1 << 20, Shards: 1, Admission: AdmissionLFU})
	c2.Put("a", 1, 100)
	c2.Put("a", 2, 1<<20)
	if st := c2.Stats(); st.Bytes > 1<<20 {
		t.Fatalf("lfu re-put: bytes %d over budget", st.Bytes)
	}
}

// Regression (ISSUE 4 bugfix 1, cross-shard form): when the capped
// steal cannot fund an insert — every neighbor victim out-ranks the
// candidate — the inserted entry itself is evicted rather than leaving
// bytes > budget forever.
func TestInsertEvictedWhenStealRefused(t *testing.T) {
	c := New(lfuConfig())
	// Leave shard 0 empty; fill the other shards to the full budget
	// with hot (frequently accessed) entries.
	var hot []string
	for i := 0; len(hot) < 3*64; i++ {
		k := fmt.Sprintf("hot-%d", i)
		if c.shardIdx(k) != 0 {
			hot = append(hot, k)
		}
	}
	share := int64(4<<20) / 3 / 64
	for _, k := range hot {
		c.Put(k, k, share)
	}
	for round := 0; round < 3; round++ {
		for _, k := range hot {
			c.Get(k)
		}
	}
	// A cold one-shot value lands on the empty shard 0: its own shard
	// has no victims, every neighbor's victim is hotter, so the insert
	// must be dropped to preserve the invariant.
	cold := keysForShard(c, 0, "cold", 1)[0]
	c.Put(cold, "x", 512<<10)
	st := c.Stats()
	if st.Bytes > 4<<20 {
		t.Fatalf("bytes %d over budget after refused steal", st.Bytes)
	}
	if _, ok := c.Peek(cold); ok {
		t.Fatal("cold one-shot value admitted over hot neighbors")
	}
	if st.Rejected == 0 {
		t.Fatalf("fallback rejection not counted: %+v", st)
	}
	// The same key, requested repeatedly, builds frequency and then
	// wins the cross-shard gate.
	for i := 0; i < 20; i++ {
		c.Get(cold)
	}
	c.Put(cold, "y", 512<<10)
	if _, ok := c.Peek(cold); !ok {
		t.Fatal("hot-by-now key still refused across shards")
	}
	if st := c.Stats(); st.Bytes > 4<<20 {
		t.Fatalf("bytes %d over budget after admitted steal", st.Bytes)
	}
}

// keysForShard generates n keys that hash to the given shard.
func keysForShard(c *LRU, shard uint32, prefix string, n int) []string {
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if c.shardIdx(k) == shard {
			keys = append(keys, k)
		}
	}
	return keys
}

// Regression (ISSUE 4 bugfix 2): the cross-shard eviction steal is
// capped at a fair share — one oversized cold insert can no longer
// empty a warm neighbor shard (it used to drain shards to zero in
// order until the budget was met).
func TestStealFloorProtectsNeighbors(t *testing.T) {
	const budget = 16 << 20
	c := NewLRUSharded(budget, 8)
	if c.ShardCount() != 8 {
		t.Fatalf("shards = %d", c.ShardCount())
	}
	// Warm every shard to its 2 MB share.
	const entry = 128 << 10
	for sh := uint32(0); sh < 8; sh++ {
		for _, k := range keysForShard(c, sh, fmt.Sprintf("warm-%d", sh), 16) {
			c.Put(k, k, entry)
		}
	}
	if st := c.Stats(); st.Bytes != budget {
		t.Fatalf("warm fill = %d bytes, want %d", st.Bytes, budget)
	}
	// One 8 MB cold value into shard 0. Fair-share floor:
	// (budget - size) / shards = 1 MB per neighbor.
	big := keysForShard(c, 0, "big", 1)[0]
	c.Put(big, "payload", 8<<20)
	if _, ok := c.Peek(big); !ok {
		t.Fatal("oversized value not cached")
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	const floor = (budget - 8<<20) / 8
	for i := 1; i < 8; i++ {
		if got := c.shardBytes(i); got < floor {
			t.Fatalf("neighbor shard %d drained to %d bytes (floor %d)", i, got, floor)
		}
	}
	// Repeats keep the floor: no sequence of oversized inserts empties
	// a neighbor.
	for r := 0; r < 4; r++ {
		k := keysForShard(c, 0, fmt.Sprintf("big%d", r), 1)[0]
		c.Put(k, "payload", 8<<20)
		for i := 1; i < 8; i++ {
			if got := c.shardBytes(i); got < floor {
				t.Fatalf("round %d: neighbor shard %d drained to %d bytes", r, i, got)
			}
		}
	}
}

// Property: bytes never exceed budget under random op sequences, with
// admission off and on.
func TestQuickBudgetInvariantAdmission(t *testing.T) {
	for _, adm := range []Admission{AdmissionOff, AdmissionLFU} {
		t.Run(string(adm), func(t *testing.T) {
			f := func(ops []struct {
				Key  uint8
				Size uint32
				Get  bool
			}) bool {
				const budget = 4 << 20
				c := New(Config{Budget: budget, Shards: 4, Admission: adm})
				for _, op := range ops {
					k := fmt.Sprintf("k%d", op.Key%64)
					if op.Get {
						c.Get(k)
						continue
					}
					c.Put(k, nil, int64(op.Size%(budget+budget/2)))
					if st := c.Stats(); st.Bytes > budget {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The satellite admission-quality property: replaying the mixed
// zipf+scan trace, the admitting sharded cache must match or beat
// plain sharded LRU and unsharded LRU; on a uniform trace it must be
// no more than 5 points worse than plain LRU.
func TestAdmissionQualityMixedTrace(t *testing.T) {
	keys := mixedZipfScanKeys(1)
	lfuHit := replay(New(lfuConfig()), keys, tileBytes)
	lruHit := replay(New(Config{Budget: 4 << 20, Shards: 4}), keys, tileBytes)
	unshardedHit := replay(New(Config{Budget: 4 << 20, Shards: 1}), keys, tileBytes)
	t.Logf("mixed zipf+scan hit ratios: lfu=%.3f sharded-lru=%.3f unsharded-lru=%.3f",
		lfuHit, lruHit, unshardedHit)
	if lfuHit < lruHit {
		t.Fatalf("admitting cache (%.3f) worse than sharded LRU (%.3f) on the skewed trace",
			lfuHit, lruHit)
	}
	if lfuHit < unshardedHit {
		t.Fatalf("admitting cache (%.3f) worse than unsharded LRU (%.3f) on the skewed trace",
			lfuHit, unshardedHit)
	}
}

func TestAdmissionQualityUniformTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, 12000)
	for i := range keys {
		keys[i] = fmt.Sprintf("u/%d", rng.Intn(400))
	}
	lfuHit := replay(New(lfuConfig()), keys, tileBytes)
	lruHit := replay(New(Config{Budget: 4 << 20, Shards: 4}), keys, tileBytes)
	t.Logf("uniform hit ratios: lfu=%.3f sharded-lru=%.3f", lfuHit, lruHit)
	if lfuHit < lruHit-0.05 {
		t.Fatalf("admitting cache (%.3f) more than 5 pts worse than LRU (%.3f) on uniform",
			lfuHit, lruHit)
	}
}

// -race stress over the admitting cache: concurrent Put/Get/Clear/
// Stats/Remove exercising the sketch under every shard lock.
func TestAdmissionConcurrentStress(t *testing.T) {
	const budget = 4 << 20
	c := New(Config{Budget: budget, Shards: 4, Admission: AdmissionLFU})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(512))
				switch {
				case i%97 == 0:
					c.Clear()
				case i%31 == 0:
					c.Remove(k)
				case i%7 == 0:
					c.Stats()
				case i%2 == 0:
					c.Put(k, i, int64(rng.Intn(64<<10)))
				default:
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > budget {
		t.Fatalf("budget exceeded after stress: %d", st.Bytes)
	}
	if st.Bytes < 0 {
		t.Fatalf("negative byte count after stress: %d", st.Bytes)
	}
}

// BenchmarkHitRatioZipf reports the mixed zipf+scan hit ratio as a
// benchstat custom metric ("hit-ratio"), with admission off vs on —
// the CI bench-regression job tracks it across PRs next to the timing
// columns.
func BenchmarkHitRatioZipf(b *testing.B) {
	keys := mixedZipfScanKeys(1)
	for _, adm := range []Admission{AdmissionOff, AdmissionLFU} {
		b.Run("admission="+string(adm), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				c := New(Config{Budget: 4 << 20, Shards: 4, Admission: adm})
				hit = replay(c, keys, tileBytes)
			}
			b.ReportMetric(hit, "hit-ratio")
			b.ReportMetric(float64(len(keys)), "keys/op")
		})
	}
}

// BenchmarkHitRatioScan replays a pure one-shot sequential scan over a
// warm zipf hot set: the admitting cache should keep its hot-set hit
// ratio through the scan, plain LRU gets flushed.
func BenchmarkHitRatioScan(b *testing.B) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 512 * 1024, MaxY: 512 * 1024}
	warm := traceTileKeys("t", workload.ZipfHotSetTrace(workload.ZipfOptions{
		Canvas: canvas, TileSize: 1024, HotSpots: 160, Skew: 1.2,
		Steps: 4000, VpW: 1024, VpH: 1024, LayoutSeed: 11, Seed: 1,
	}), 1024)
	scanCanvas := geom.Rect{MinX: 600 * 1024, MinY: 0, MaxX: 664 * 1024, MaxY: 48 * 1024}
	scan := traceTileKeys("t", workload.SequentialScanTrace(scanCanvas, 1024, 1024), 1024)
	probe := traceTileKeys("t", workload.ZipfHotSetTrace(workload.ZipfOptions{
		Canvas: canvas, TileSize: 1024, HotSpots: 160, Skew: 1.2,
		Steps: 2000, VpW: 1024, VpH: 1024, LayoutSeed: 11, Seed: 2,
	}), 1024)
	for _, adm := range []Admission{AdmissionOff, AdmissionLFU} {
		b.Run("admission="+string(adm), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				c := New(Config{Budget: 4 << 20, Shards: 4, Admission: adm})
				replay(c, warm, tileBytes)
				replay(c, scan, tileBytes)
				hit = replay(c, probe, tileBytes)
			}
			b.ReportMetric(hit, "hit-ratio")
		})
	}
}

// Regression (post-review): moveToSeg relinks elements, so a
// candidate that WINS admission used to leave Put holding a stale
// `inserted` pointer — the step-2 eviction loop (documented to never
// evict the inserted entry) could then evict the freshly admitted
// entry and drain its shard. A hot key that wins the gate must stay
// resident.
func TestAdmittedInsertSurvivesRebalance(t *testing.T) {
	c := New(lfuConfig())
	// Shard 0 holds a little cold data; shards 1-3 hold the bulk, so
	// after the insert the shard must evict (gate) and then the global
	// budget still needs cross-shard help.
	for _, k := range keysForShard(c, 0, "cold", 8) {
		c.Put(k, k, 64<<10)
	}
	var rest []string
	for i := 0; len(rest) < 3*56; i++ {
		k := fmt.Sprintf("bulk-%d", i)
		if c.shardIdx(k) != 0 {
			rest = append(rest, k)
		}
	}
	for _, k := range rest {
		c.Put(k, k, (4<<20-8*64<<10)/int64(3*56))
	}
	// Build top frequency for the incoming key, then insert 1 MB.
	hot := keysForShard(c, 0, "hot", 1)[0]
	for i := 0; i < 20; i++ {
		c.Get(hot)
	}
	c.Put(hot, "payload", 1<<20)
	if _, ok := c.Peek(hot); !ok {
		t.Fatal("admitted hot insert was evicted by its own rebalance")
	}
	st := c.Stats()
	if st.Bytes > 4<<20 {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	if st.Admitted == 0 {
		t.Fatalf("expected a gate admission: %+v", st)
	}
}

// Regression (post-review): the steal floor is a hard guarantee, not
// to-within-one-entry — a neighbor shard holding ONE large entry must
// not be drained to zero by the cross-shard steal (evicting its only
// entry would land it below the floor, so it surrenders nothing and
// the unfundable insert is dropped instead).
func TestStealFloorHoldsForLargeEntries(t *testing.T) {
	const budget = 16 << 20
	c := NewLRUSharded(budget, 8)
	// Every shard warm with a single 2 MB entry (its full share).
	for sh := uint32(0); sh < 8; sh++ {
		k := keysForShard(c, sh, fmt.Sprintf("whale-%d", sh), 1)[0]
		c.Put(k, k, 2<<20)
	}
	if st := c.Stats(); st.Bytes != budget {
		t.Fatalf("warm fill = %d bytes", st.Bytes)
	}
	// An 8 MB insert into shard 0: floor = 1 MB, and every neighbor
	// can only offer its single 2 MB entry, which would leave it at 0
	// — below the floor. Nothing is surrendered; the insert is dropped
	// by the last-resort fallback and the invariant holds.
	big := keysForShard(c, 0, "big", 1)[0]
	c.Put(big, "payload", 8<<20)
	if st := c.Stats(); st.Bytes > budget {
		t.Fatalf("bytes %d over budget", st.Bytes)
	}
	for i := 1; i < 8; i++ {
		if got := c.shardBytes(i); got != 2<<20 {
			t.Fatalf("neighbor shard %d drained to %d bytes", i, got)
		}
	}
	if _, ok := c.Peek(big); ok {
		t.Fatal("unfundable insert should have been dropped, not funded by draining neighbors")
	}
}
