package cache

// sketch is a 4-bit count-min sketch with periodic halving — the
// frequency histogram behind TinyLFU admission. Each key's access
// count is recorded in `depth` rows of 4-bit saturating counters; the
// estimate is the minimum across rows, so collisions only ever inflate
// a count. After sampleFactor*width recorded accesses every counter is
// halved ("aging"), which turns the raw counts into an exponentially
// decayed frequency: a key that was hot an hour ago but is cold now
// loses its privilege within a few sample periods.
//
// The sketch is NOT internally synchronized: each cache shard owns one
// and mutates it under the shard mutex.
//
// With the doorkeeper enabled (Config.Doorkeeper) a small bloom filter
// sits in front of the counters: a key's FIRST sighting within a decay
// period sets bloom bits and never touches the count-min rows, so
// one-hit wonders (a sequential scan, a crawler) cannot inflate the
// shared counters and — through collisions — make unrelated cold keys
// look warm. Only a key's second and later sightings reach the rows.
// Estimates transparently add the doorkeeper bit back (first sighting
// counts as frequency 1), and the doorkeeper is cleared on every decay
// halving: membership is as perishable as the counts it fronts.
type sketch struct {
	// rows[r] holds width 4-bit counters packed 16 per uint64.
	rows [sketchDepth][]uint64
	// mask = width-1 (width is a power of two).
	mask uint64
	// additions counts recorded accesses since the last halving;
	// resetAt is the halving threshold. Doorkeeper first-sightings
	// count too (the TinyLFU paper's sample counts all accesses), so a
	// pure one-hit stream still cycles the decay and resets the bloom
	// before it saturates into uselessness.
	additions, resetAt int
	// dk is the doorkeeper bloom filter; nil when disabled.
	dk *doorkeeper
}

const (
	sketchDepth = 4
	// sampleFactor scales the aging period: counters are halved after
	// sampleFactor*width additions, keeping estimates a decayed window
	// over roughly that many recent accesses.
	sampleFactor = 8
	// counterMax is the 4-bit saturation ceiling.
	counterMax = 15
)

// newSketch builds a sketch with at least `counters` counters per row
// (rounded up to a power of two, floored at 64 so tiny shards still
// discriminate a handful of keys). doorkeeper adds the bloom filter in
// front of the rows, sized at 8 bits per possible insert in one decay
// period (resetAt) — with 3 probe bits that keeps occupancy under
// ~40% and the false-positive rate in the low percents even when
// every access in the period is a first sighting.
func newSketch(counters int, doorkeeper bool) *sketch {
	if counters < 64 {
		counters = 64
	}
	w := uint64(nextPow2(counters))
	sk := &sketch{mask: w - 1}
	for r := range sk.rows {
		sk.rows[r] = make([]uint64, w/16)
	}
	sk.resetAt = sampleFactor * int(w)
	if sk.resetAt < 256 {
		sk.resetAt = 256
	}
	if doorkeeper {
		sk.dk = newDoorkeeper(8 * sk.resetAt)
	}
	return sk
}

// rowSeeds are odd 64-bit multipliers (splitmix64 constants) that
// derive per-row indexes from one key hash.
var rowSeeds = [sketchDepth]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93,
}

// idx returns the counter index for hash h in row r.
func (sk *sketch) idx(h uint64, r int) uint64 {
	h = (h ^ (h >> 33)) * rowSeeds[r]
	h ^= h >> 29
	return h & sk.mask
}

// counter reads the 4-bit counter at index i of row r.
func (sk *sketch) counter(r int, i uint64) uint64 {
	return (sk.rows[r][i>>4] >> ((i & 15) * 4)) & counterMax
}

// add records one access of the key with hash h, halving all counters
// when the sample period elapses. With the doorkeeper on, a first
// sighting is parked in the bloom filter and the rows stay untouched.
func (sk *sketch) add(h uint64) {
	if sk.dk != nil && sk.dk.firstSighting(h) {
		sk.additions++
		if sk.additions >= sk.resetAt {
			sk.halve()
		}
		return
	}
	bumped := false
	for r := 0; r < sketchDepth; r++ {
		i := sk.idx(h, r)
		if c := sk.counter(r, i); c < counterMax {
			sk.rows[r][i>>4] += 1 << ((i & 15) * 4)
			bumped = true
		}
	}
	if bumped {
		sk.additions++
		if sk.additions >= sk.resetAt {
			sk.halve()
		}
	}
}

// estimate returns the decayed access-frequency estimate for hash h:
// the minimum counter across rows (0..15), plus the doorkeeper bit —
// a key whose only sighting sits in the bloom filter estimates as 1.
func (sk *sketch) estimate(h uint64) int {
	min := uint64(counterMax)
	for r := 0; r < sketchDepth; r++ {
		if c := sk.counter(r, sk.idx(h, r)); c < min {
			min = c
		}
	}
	if sk.dk != nil && sk.dk.contains(h) && min < counterMax {
		min++
	}
	return int(min)
}

// halveMask clears the low bit of every 4-bit lane so a word-wide
// shift-right-by-one halves all 16 counters at once.
const halveMask = 0x7777777777777777

// halve ages the sketch: every counter is divided by two and the
// doorkeeper is cleared — first-sighting memory decays with the counts
// it fronts, and the periodic clear is also what bounds the bloom
// filter's load.
func (sk *sketch) halve() {
	for r := range sk.rows {
		row := sk.rows[r]
		for i := range row {
			row[i] = (row[i] >> 1) & halveMask
		}
	}
	sk.additions /= 2
	if sk.dk != nil {
		sk.dk.reset()
	}
}

// reset zeroes every counter (used by Clear: after an update the old
// popularity histogram no longer describes the data).
func (sk *sketch) reset() {
	for r := range sk.rows {
		row := sk.rows[r]
		for i := range row {
			row[i] = 0
		}
	}
	sk.additions = 0
	if sk.dk != nil {
		sk.dk.reset()
	}
}

// doorkeeper is a small bloom filter recording which keys have been
// seen at least once in the current decay period.
type doorkeeper struct {
	bits []uint64
	mask uint64 // bit-index mask (bit count is a power of two)
}

// dkProbes is the bloom filter's hash-function count.
const dkProbes = 3

func newDoorkeeper(bits int) *doorkeeper {
	if bits < 64 {
		bits = 64
	}
	n := uint64(nextPow2(bits))
	return &doorkeeper{bits: make([]uint64, n/64), mask: n - 1}
}

// probe derives the p-th bit index from a key hash, reusing the
// sketch's per-row seed multipliers.
func (d *doorkeeper) probe(h uint64, p int) uint64 {
	h = (h ^ (h >> 31)) * rowSeeds[p]
	h ^= h >> 33
	return h & d.mask
}

// firstSighting reports whether h was NOT yet present, marking it
// present either way.
func (d *doorkeeper) firstSighting(h uint64) bool {
	fresh := false
	for p := 0; p < dkProbes; p++ {
		i := d.probe(h, p)
		w, b := i>>6, uint64(1)<<(i&63)
		if d.bits[w]&b == 0 {
			d.bits[w] |= b
			fresh = true
		}
	}
	return fresh
}

// contains reports whether h may have been seen this period.
func (d *doorkeeper) contains(h uint64) bool {
	for p := 0; p < dkProbes; p++ {
		i := d.probe(h, p)
		if d.bits[i>>6]&(uint64(1)<<(i&63)) == 0 {
			return false
		}
	}
	return true
}

func (d *doorkeeper) reset() {
	for i := range d.bits {
		d.bits[i] = 0
	}
}

// fnv64a hashes a key for the sketch (distinct from the 32-bit shard
// hash so shard routing and sketch indexes decorrelate).
func fnv64a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}
