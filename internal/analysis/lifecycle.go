package analysis

import (
	"go/ast"
	"go/types"
)

// Lifecycle enforces the close_test goroutine-leak class: background
// goroutines launched by long-lived components must be stoppable, and
// tickers must be stopped.
var Lifecycle = &Analyzer{
	Name: "lifecycle",
	Doc: `check that background goroutines and tickers have a shutdown path

Three shapes are flagged. (1) time.Tick: its ticker can never be
stopped — use time.NewTicker with a deferred Stop. (2) A time.NewTicker
whose result neither has Stop called in the same function nor escapes
it (returned, stored, or passed on) leaks its runtime timer. (3) A
goroutine launched from a method of a long-lived type — one whose
method set includes Close, Stop or Shutdown — must be tied to a drain
mechanism: its body (or the body of the same-package method it runs)
must receive from a channel, select, observe a context, participate in
a sync.WaitGroup, or wait on a sync.Cond. A goroutine with none of
those can outlive Close, which is exactly the leak class the repo's
close tests catch one instance at a time; this check catches the
shape.`,
	Run: runLifecycle,
}

func runLifecycle(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTickers(pass, fd)
			if recvHasShutdown(pass, fd) {
				checkGoroutines(pass, fd)
			}
		}
	}
	return nil
}

func checkTickers(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeIs(pass.Info, call, "time", "Tick") {
			pass.Reportf(call.Pos(),
				"time.Tick leaks its ticker; use time.NewTicker with defer ticker.Stop()")
			return true
		}
		if !calleeIs(pass.Info, call, "time", "NewTicker") {
			return true
		}
		obj := assignedVar(pass, fd, call)
		if obj == nil {
			// Result discarded or used inline: nothing can ever stop it.
			pass.Reportf(call.Pos(), "time.NewTicker result must be retained so Stop can be called")
			return true
		}
		if !tickerHandled(pass, fd, obj) {
			pass.Reportf(call.Pos(),
				"ticker %s is never stopped in %s (defer %s.Stop(), or hand it off)",
				obj.Name(), fd.Name.Name, obj.Name())
		}
		return true
	})
}

// assignedVar finds the variable a call's result is bound to via
// `v := call` (or v, ... :=) in fd, or nil.
func assignedVar(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) == call && i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if o := pass.Info.Defs[id]; o != nil {
						obj = o
					} else if o := pass.Info.Uses[id]; o != nil {
						obj = o
					}
				}
			}
		}
		return true
	})
	return obj
}

// tickerHandled reports whether the ticker variable is stopped in fd
// or escapes it (returned, stored into a field, sent, or passed to a
// call other than its own methods) — escape means some other owner is
// responsible for Stop.
func tickerHandled(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	handled := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok &&
					pass.Info.Uses[id] == obj && sel.Sel.Name == "Stop" {
					handled = true
					return false
				}
			}
			for _, arg := range st.Args {
				if id := rootIdent(arg); id != nil && pass.Info.Uses[id] == obj {
					handled = true // handed off
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if id := rootIdent(res); id != nil && pass.Info.Uses[id] == obj {
					handled = true
					return false
				}
			}
		case *ast.AssignStmt:
			// ticker stored somewhere (field, map, ...): handed off.
			for i, rhs := range st.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || pass.Info.Uses[id] != obj || i >= len(st.Lhs) {
					continue
				}
				if _, isIdent := st.Lhs[i].(*ast.Ident); !isIdent {
					handled = true
					return false
				}
			}
		case *ast.SendStmt:
			if id := rootIdent(st.Value); id != nil && pass.Info.Uses[id] == obj {
				handled = true
				return false
			}
		}
		return true
	})
	return handled
}

// recvHasShutdown reports whether fd is a method on a type whose
// method set includes Close, Stop or Shutdown — the "long-lived
// component" signal.
func recvHasShutdown(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	var recvType types.Type
	if len(fd.Recv.List[0].Names) > 0 {
		if obj := pass.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			recvType = obj.Type()
		}
	}
	if recvType == nil {
		if tv, ok := pass.Info.Types[fd.Recv.List[0].Type]; ok {
			recvType = tv.Type
		}
	}
	n := namedOrigin(recvType)
	if n == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	for _, name := range [...]string{"Close", "Stop", "Shutdown"} {
		if ms.Lookup(pass.Pkg, name) != nil {
			return true
		}
	}
	return false
}

func checkGoroutines(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			body = fun.Body
		default:
			if fn := calleeFunc(pass.Info, gs.Call); fn != nil {
				body = methodBody(pass, fn)
			}
		}
		if body == nil {
			return true // cross-package or dynamic: out of reach
		}
		if !drainTied(pass, body) {
			pass.Reportf(gs.Pos(),
				"goroutine launched from long-lived %s has no shutdown tie (no channel receive, select, ctx, WaitGroup or Cond) — it will outlive Close",
				fd.Name.Name)
		}
		return true
	})
}

// methodBody finds the body of a same-package function/method decl.
func methodBody(pass *Pass, fn *types.Func) *ast.BlockStmt {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pass.Info.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// drainTied reports whether a goroutine body can observe shutdown:
// any channel receive or select, any context value, or participation
// in a sync.WaitGroup / sync.Cond.
func drainTied(pass *Pass, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch st := n.(type) {
		case *ast.SelectStmt:
			tied = true
		case *ast.UnaryExpr:
			if st.Op.String() == "<-" {
				tied = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[st]; obj != nil && isContextType(obj.Type()) {
				tied = true
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, st)
			if fn == nil || fn.Pkg() == nil {
				break
			}
			switch fn.Pkg().Path() {
			case "sync":
				switch fn.Name() {
				case "Done", "Wait", "Add":
					tied = true
				}
			case "net/http":
				// http.Server.Serve / ListenAndServe return when
				// Shutdown or Close is called — the accept loop IS the
				// drain mechanism.
				switch fn.Name() {
				case "Serve", "ListenAndServe", "ServeTLS", "ListenAndServeTLS":
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						if n := namedOrigin(sig.Recv().Type()); n != nil && n.Obj().Name() == "Server" {
							tied = true
						}
					}
				}
			}
		}
		return !tied
	})
	return tied
}
