package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces `// guarded by <mu>` field annotations: the PR 3
// epochMu class, where an update interleaving with a delta plan could
// mix two cache epochs because nothing tied the shared fields to the
// lock that ordered them.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: `check that fields annotated "// guarded by <mu>" are only accessed under that mutex

A struct field whose doc or line comment contains "guarded by <name>"
may only be read or written in functions that lock <name> (Lock, RLock
or TryLock on any receiver ending in that field name) at some point
before the access. Three idioms are recognized as safe without a
visible lock: functions whose name ends in "Locked" (the caller-holds-
lock convention), accesses to a value constructed in the same function
(composite literal, new, or zero-value var — it has not escaped yet),
and the sync.Locker methods of the mutex itself. The check is
intentionally flow-insensitive: it proves lock *presence*, not lock
*coverage*, which is exactly the property the epochMu review fix
restored and cheap enough to gate every PR.`,
	Run: runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`\bguarded by (\w+)\b`)

func runGuardedBy(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardedFields maps field objects to their declared mutex name.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				text := field.Doc.Text() + " " + field.Comment.Text()
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = m[1]
					}
				}
			}
			return true
		})
	}
	return guarded
}

func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	// lockPos[mu] = positions where <something>.mu.Lock/RLock/TryLock()
	// is called inside fd (including nested function literals — the
	// check is presence-based, see the analyzer doc).
	lockPos := make(map[string][]token.Pos)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		switch fn.Name() {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if mu := lockTargetName(sel.X); mu != "" {
			lockPos[mu] = append(lockPos[mu], call.Pos())
		}
		return true
	})

	fresh := locallyConstructed(pass, fd)

	ast.Inspect(fd, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		mu, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			if obj := pass.Info.Uses[root]; obj != nil && fresh[obj] {
				return true
			}
		}
		for _, lp := range lockPos[mu] {
			if lp < sel.Pos() {
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(),
			"access to %s.%s (guarded by %s) without %s.Lock in %s",
			selection.Recv(), sel.Sel.Name, mu, mu, fd.Name.Name)
		return true
	})
}

// lockTargetName names the lock receiver: the final identifier of the
// receiver chain ("s.epochMu" -> "epochMu", "mu" -> "mu").
func lockTargetName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lockTargetName(x.X)
		}
	case *ast.StarExpr:
		return lockTargetName(x.X)
	}
	return ""
}

// locallyConstructed returns the set of variables defined inside fd
// whose value is provably a fresh, unescaped struct: a composite
// literal (optionally via &), a new(T) call, or a zero-value var
// declaration. Accessing guarded fields of such a value is safe — no
// other goroutine can hold a reference yet.
func locallyConstructed(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pass.Info.Defs[id]; obj != nil && isFreshExpr(pass, st.Rhs[i]) {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				obj := pass.Info.Defs[id]
				if obj == nil {
					continue
				}
				if len(st.Values) == 0 {
					fresh[obj] = true // zero value
				} else if i < len(st.Values) && isFreshExpr(pass, st.Values[i]) {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(pass *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	}
	return false
}
