package analysis_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"kyrix/internal/analysis"
	"kyrix/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysis.GuardedBy, filepath.Join("testdata", "src", "guardedby"))
}

func TestBoundedRead(t *testing.T) {
	analysistest.Run(t, analysis.BoundedRead, filepath.Join("testdata", "src", "boundedread"))
}

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, analysis.CtxLoop, filepath.Join("testdata", "src", "ctxloop"))
}

func TestWALErr(t *testing.T) {
	analysistest.Run(t, analysis.WALErr, filepath.Join("testdata", "src", "walerr"))
}

func TestLifecycle(t *testing.T) {
	analysistest.Run(t, analysis.Lifecycle, filepath.Join("testdata", "src", "lifecycle"))
}

// TestIgnoreNeedsReason checks the directive semantics that want
// comments cannot express (any trailing text would read as the
// reason): a reasonless directive leaves the original finding in
// place and adds a malformed-directive finding of its own.
func TestIgnoreNeedsReason(t *testing.T) {
	pkgs, err := analysis.Load(filepath.Join("testdata", "src", "ignorereason"), ".")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	findings, err := analysis.RunAnalyzers(pkgs[0], []*analysis.Analyzer{analysis.WALErr})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "directive needs a reason") {
		t.Errorf("finding 0 = %q, want the malformed-directive report", findings[0].Message)
	}
	if !strings.Contains(findings[1].Message, "Sync ignored") {
		t.Errorf("finding 1 = %q, want the unsuppressed walerr report", findings[1].Message)
	}
}

// TestRepoClean is the smoke test the CI job depends on: the full
// analyzer suite must report nothing on the repository itself. A
// failure here means a genuine violation crept in (fix it) or a new
// idiom needs a //lint:ignore-kyrix with a reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	pkgs, err := analysis.Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern ./... resolved incompletely", len(pkgs))
	}
	for _, pkg := range pkgs {
		findings, err := analysis.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f.String())
		}
	}
}

// TestStandaloneCLI runs the kyrix-vet binary the way a developer
// would, pointed at a fixture that contains violations, and checks the
// non-zero exit and diagnostic output.
func TestStandaloneCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI; skipped with -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/kyrix-vet", "./internal/analysis/testdata/src/walerr")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected findings to fail the run; output:\n%s", out)
	}
	for _, wantSub := range []string{"Sync ignored", "kyrix-vet/walerr"} {
		if !strings.Contains(string(out), wantSub) {
			t.Errorf("output missing %q:\n%s", wantSub, out)
		}
	}
}

// TestVettool drives kyrix-vet through go vet's -vettool protocol
// (-flags, -V=full, vet.cfg) against a fixture with violations.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI and invokes go vet; skipped with -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "kyrix-vet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/kyrix-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build kyrix-vet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/analysis/testdata/src/guardedby")
	vet.Dir = root
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("expected go vet to fail on the fixture; output:\n%s", out)
	}
	if !strings.Contains(string(out), "guarded by mu") {
		t.Errorf("go vet output missing guardedby diagnostic:\n%s", out)
	}
}
