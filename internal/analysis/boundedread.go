package analysis

import (
	"go/ast"
	"go/types"
)

// wirePkgPath is the sanctioned decompression/IO-bounding package;
// inside it the bounded-read rules do not apply (it IS the bound).
const wirePkgPath = "kyrix/internal/wire"

// BoundedRead enforces the PR 3 decompression-bomb fix as a standing
// rule: unbounded reads over readers of unknown size are forbidden.
var BoundedRead = &Analyzer{
	Name: "boundedread",
	Doc: `check that io.ReadAll and decompressor construction are size-bounded

io.ReadAll must not be applied to a reader of unknown length (an HTTP
body, a decompressor, a peer stream): wrap the reader in io.LimitReader
or http.MaxBytesReader first, or read through wire.Decompress, which
enforces a byte budget. Reads from in-memory sources (*bytes.Buffer,
*bytes.Reader, *strings.Reader) are allowed. Constructing a flate/
gzip/zlib reader directly is flagged outside kyrix/internal/wire for
the same reason: a tiny compressed frame can decompress to gigabytes,
and only wire.Decompress applies the repo's bound.`,
	Run: runBoundedRead,
}

func runBoundedRead(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == wirePkgPath {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, dec := range [...]string{"compress/flate", "compress/gzip", "compress/zlib"} {
				if calleeIs(pass.Info, call, dec, "NewReader") {
					pass.Reportf(call.Pos(),
						"direct %s.NewReader: decompress through wire.Decompress, which bounds output bytes", pathBase(dec))
					return true
				}
			}
			if calleeIs(pass.Info, call, "io", "ReadAll") && len(call.Args) == 1 {
				if !boundedReader(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"io.ReadAll on a reader of unknown size: wrap with io.LimitReader (or http.MaxBytesReader) first")
				}
			}
			return true
		})
	}
	return nil
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// boundedReader reports whether e is provably a bounded source: a
// LimitReader/MaxBytesReader call, an in-memory reader, or a local
// variable assigned from one.
func boundedReader(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if calleeIs(pass.Info, call, "io", "LimitReader") ||
			calleeIs(pass.Info, call, "net/http", "MaxBytesReader") {
			return true
		}
	}
	if tv, ok := pass.Info.Types[e]; ok && inMemoryReader(tv.Type) {
		return true
	}
	// One hop through a local definition: r := io.LimitReader(...).
	if id, ok := e.(*ast.Ident); ok {
		if def := definingExpr(pass, id); def != nil {
			if call, ok := ast.Unparen(def).(*ast.CallExpr); ok {
				if calleeIs(pass.Info, call, "io", "LimitReader") ||
					calleeIs(pass.Info, call, "net/http", "MaxBytesReader") {
					return true
				}
			}
		}
	}
	return false
}

func inMemoryReader(t types.Type) bool {
	n := namedOrigin(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "bytes.Buffer", "bytes.Reader", "strings.Reader":
		return true
	}
	return false
}

// definingExpr finds the RHS expression a short-variable-declared
// identifier was initialized from, scanning the file that uses it.
func definingExpr(pass *Pass, use *ast.Ident) ast.Expr {
	obj := pass.Info.Uses[use]
	if obj == nil {
		return nil
	}
	var def ast.Expr
	for _, file := range pass.Files {
		if file.Pos() > obj.Pos() || file.End() < obj.Pos() {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.Info.Defs[id] == obj {
					def = as.Rhs[i]
				}
			}
			return true
		})
	}
	return def
}
