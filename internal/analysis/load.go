package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *listedErr
}

type listedErr struct {
	Err string
}

// Load lists the packages matched by patterns (resolved relative to
// dir), then parses and type-checks each one against the compiled
// export data `go list -export` leaves in the build cache. Only the
// matched packages are parsed; every dependency — standard library or
// module-internal — is imported from export data, which keeps a whole-
// repo run to a few hundred milliseconds and needs no network.
//
// Test files are not loaded: the invariants kyrix-vet enforces are
// production-code rules (tests legitimately use context.Background,
// drop Close errors on temp files, and so on).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.ImportPath != "unsafe" {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := CheckFiles(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// NewExportImporter returns a types.Importer that resolves imports
// from compiled gc export data files. exports maps canonical import
// paths to export data files; importMap (optional) maps import paths
// as written in source to canonical paths first (the vet.cfg
// ImportMap contract).
func NewExportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// CheckFiles parses and type-checks one package from its file list,
// skipping _test.go files (see Load).
func CheckFiles(pkgPath string, fset *token.FileSet, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return &Package{PkgPath: pkgPath, Fset: fset}, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typecheck %s: %w", pkgPath, errors.Join(typeErrs...))
	}
	return &Package{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
