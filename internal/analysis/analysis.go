// Package analysis is kyrix-vet: a suite of project-specific static
// analyzers that mechanize the concurrency and durability invariants
// this codebase has already paid for in review-fix commits — epoch-lock
// ordering, bounded decompression, context-aware row scans, durable
// error handling, and goroutine lifecycle hygiene.
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) but is
// self-contained on the standard library: packages are loaded through
// `go list -export` and type-checked against compiled export data from
// the build cache, so the tool needs no network and no third-party
// modules. See cmd/kyrix-vet for the standalone and `go vet -vettool`
// drivers.
//
// # Suppressions
//
// A diagnostic is suppressed by a directive comment on the flagged
// line, or on the line directly above it:
//
//	//lint:ignore-kyrix <analyzer> <reason>
//
// The reason is mandatory: a directive without one is itself reported.
// Suppressions are deliberately narrow (one line, one analyzer) so an
// accepted exception cannot quietly grow to cover new code.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives (lowercase, one word).
	Name string
	// Doc explains the invariant, the historical bug class behind it,
	// and how to satisfy or suppress the check.
	Doc string
	// Run performs the check over one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Finding is a resolved diagnostic: position mapped through the
// file set and attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [kyrix-vet/%s]", f.Pos, f.Message, f.Analyzer)
}

// ignoreRe matches the suppression directive. The reason group is
// validated separately so a missing reason can be reported.
var ignoreRe = regexp.MustCompile(`lint:ignore-kyrix\s+(\w+)[ \t]*(.*)`)

// suppression is one parsed directive: the analyzer it silences and
// the line whose diagnostics it covers (its own line; a finding on the
// following line is covered too).
type suppression struct {
	analyzer string
	file     string
	line     int
	hasWhy   bool
	pos      token.Pos
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				out = append(out, suppression{
					analyzer: m[1],
					file:     p.Filename,
					line:     p.Line,
					hasWhy:   strings.TrimSpace(m[2]) != "",
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to the package and returns the
// surviving findings, sorted by position. Suppression directives are
// honored here so every driver (standalone, vettool, tests) shares
// identical semantics.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	sups := collectSuppressions(pkg.Fset, pkg.Files)
	var findings []Finding
	covered := make(map[int]bool, len(sups)) // index into sups: directive matched a finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	diags:
		for _, d := range pass.diags {
			p := pkg.Fset.Position(d.Pos)
			for i, s := range sups {
				if s.analyzer == a.Name && s.file == p.Filename && (s.line == p.Line || s.line == p.Line-1) {
					covered[i] = true
					if s.hasWhy {
						continue diags
					}
					// A reasonless directive does not suppress; the
					// malformed-directive finding below explains why.
					break
				}
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: p, Message: d.Message})
		}
	}
	for i, s := range sups {
		if !s.hasWhy && covered[i] {
			findings = append(findings, Finding{
				Analyzer: s.analyzer,
				Pos:      pkg.Fset.Position(s.pos),
				Message:  "lint:ignore-kyrix directive needs a reason (//lint:ignore-kyrix " + s.analyzer + " <why>)",
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// All returns the kyrix-vet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		GuardedBy,
		BoundedRead,
		CtxLoop,
		WALErr,
		Lifecycle,
	}
}

// --- shared AST/type helpers used by several analyzers ---

// inspectStack walks root like ast.Inspect while maintaining the stack
// of open ancestor nodes (not including n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the called function or method object, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeIs reports whether call is a call to pkgPath.name (a package-
// level function or a method whose origin package is pkgPath).
func calleeIs(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// namedOrigin unwraps pointers and aliases to the defining named type,
// or nil for unnamed types.
func namedOrigin(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeFromPackage reports whether t (possibly behind a pointer) is a
// named type declared in the package with the given import path.
func typeFromPackage(t types.Type, pkgPath string) bool {
	n := namedOrigin(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == pkgPath
}

// rootIdent descends a selector/index/paren/star chain to its leftmost
// identifier, or nil (e.g. when the chain is rooted at a call).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// enclosingFuncs returns the stack's function nodes, outermost first.
// Each element is an *ast.FuncDecl or *ast.FuncLit.
func enclosingFuncs(stack []ast.Node) []ast.Node {
	var fns []ast.Node
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fns = append(fns, n)
		}
	}
	return fns
}

// funcType returns the declared type of a FuncDecl or FuncLit node.
func funcType(fn ast.Node) *ast.FuncType {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Type
	case *ast.FuncLit:
		return f.Type
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit node.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedOrigin(t)
	return n != nil && n.Obj().Name() == "Context" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}

// ctxParams returns the objects of every context.Context parameter of
// fn (usually zero or one).
func ctxParams(info *types.Info, fn ast.Node) []types.Object {
	ft := funcType(fn)
	if ft == nil || ft.Params == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// usesAnyObject reports whether any identifier under root resolves to
// one of the given objects.
func usesAnyObject(info *types.Info, root ast.Node, objs []types.Object) bool {
	if root == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := info.Uses[id]
		for _, o := range objs {
			if use == o {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
