// Package ctxloop is an analysistest fixture for the ctxloop analyzer:
// context-taking functions must keep their loops cancellable and must
// not mint fresh root contexts.
package ctxloop

import (
	"context"

	"kyrix/internal/storage"
)

func scanBad(ctx context.Context, rows []storage.Row) int {
	n := 0
	for _, row := range rows { // want `row-scan loop in a context-taking function never observes ctx`
		n += len(row)
	}
	return n
}

func scanGood(ctx context.Context, rows []storage.Row) (int, error) {
	n := 0
	for i, row := range rows {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		n += len(row)
	}
	return n, nil
}

// scanNoCtx takes no context, so there is nothing to observe.
func scanNoCtx(rows []storage.Row) int {
	n := 0
	for _, row := range rows {
		n += len(row)
	}
	return n
}

func pumpBad(ctx context.Context, ch chan int) int {
	total := 0
	for { // want `infinite loop in a context-taking function never observes ctx`
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

func pumpGood(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v, ok := <-ch:
			if !ok {
				return total
			}
			total += v
		}
	}
}

func detach(ctx context.Context) context.Context {
	return context.Background() // want `context.Background inside a context-taking function`
}

func derive(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// root has no inbound context; minting one here is the legitimate use.
func root() context.Context {
	return context.Background()
}

func suppressed(ctx context.Context) context.Context {
	//lint:ignore-kyrix ctxloop fixture: deliberate detach for audit logging
	return context.Background()
}
