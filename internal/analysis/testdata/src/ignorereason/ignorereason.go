// Package ignorereason is a fixture for the suppression-directive
// semantics: a directive without a reason neither suppresses the
// finding nor passes unremarked.
package ignorereason

import "kyrix/internal/wal"

func reasonless(l *wal.Log) {
	//lint:ignore-kyrix walerr
	l.Sync()
}
