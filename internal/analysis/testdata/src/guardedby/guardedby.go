// Package guardedby is an analysistest fixture for the guardedby
// analyzer: fields annotated "guarded by <mu>" must only be touched
// with that mutex held.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	free int // unannotated: never flagged
}

func (c *counter) bad() int {
	return c.n // want `guarded by mu`
}

func (c *counter) badWrite() {
	c.n++ // want `guarded by mu`
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bumpLocked follows the caller-holds-lock naming convention, so its
// accesses are exempt.
func (c *counter) bumpLocked() {
	c.n++
}

func (c *counter) unguarded() int {
	return c.free
}

// fresh constructs the value locally; nothing else can see it yet, so
// lock-free access is fine.
func fresh() int {
	c := &counter{}
	c.n = 7
	return c.n
}

func (c *counter) suppressed() int {
	//lint:ignore-kyrix guardedby fixture: single-goroutine init path
	return c.n
}

type gauge struct {
	rw sync.RWMutex
	v  float64 // guarded by rw
}

func (g *gauge) read() float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

func (g *gauge) peek() float64 {
	return g.v // want `guarded by rw`
}
