// Package boundedread is an analysistest fixture for the boundedread
// analyzer: io.ReadAll over unknown-size readers and direct
// decompressor construction are flagged.
package boundedread

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"io"
	"net/http"
	"strings"
)

func unbounded(r io.Reader) ([]byte, error) {
	return io.ReadAll(r) // want `io.ReadAll on a reader of unknown size`
}

func limited(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, 1<<20))
}

func limitedViaLocal(r io.Reader) ([]byte, error) {
	lr := io.LimitReader(r, 1<<20)
	return io.ReadAll(lr)
}

func maxBytes(w http.ResponseWriter, rc io.ReadCloser) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, rc, 1<<20))
}

func inMemory(buf *bytes.Buffer, s *strings.Reader) {
	_, _ = io.ReadAll(buf)
	_, _ = io.ReadAll(s)
	_, _ = io.ReadAll(bytes.NewReader(nil))
}

func rawFlate(r io.Reader) io.Reader {
	return flate.NewReader(r) // want `direct flate.NewReader`
}

func rawGzip(r io.Reader) (*gzip.Reader, error) {
	return gzip.NewReader(r) // want `direct gzip.NewReader`
}

func suppressed(r io.Reader) ([]byte, error) {
	//lint:ignore-kyrix boundedread fixture: caller pre-limits the stream
	return io.ReadAll(r)
}
