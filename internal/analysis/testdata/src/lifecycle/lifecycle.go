// Package lifecycle is an analysistest fixture for the lifecycle
// analyzer: tickers must be stoppable and goroutines launched from
// long-lived components must have a shutdown tie.
package lifecycle

import (
	"sync"
	"time"
)

func leakyTick() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick leaks its ticker`
}

func leakyTicker(work func()) {
	t := time.NewTicker(time.Second) // want `ticker t is never stopped`
	for range t.C {
		work()
	}
}

func discardedTicker() {
	time.NewTicker(time.Second) // want `time.NewTicker result must be retained`
}

func stoppedTicker(work func(), done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			work()
		}
	}
}

type pool struct {
	done chan struct{}
	wg   sync.WaitGroup
	work chan func()
}

func (p *pool) Close() {
	close(p.done)
	p.wg.Wait()
}

func (p *pool) startBad() {
	go func() { // want `goroutine launched from long-lived startBad has no shutdown tie`
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func (p *pool) startGood() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.done:
				return
			case fn := <-p.work:
				fn()
			}
		}
	}()
}

func (p *pool) startLoop() {
	go p.drain()
}

// drain ranges over a channel, so closing p.work ends it.
func (p *pool) drain() {
	for fn := range p.work {
		fn()
	}
}

func (p *pool) startSuppressed() {
	//lint:ignore-kyrix lifecycle fixture: process-lifetime metrics pump
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}

// freeFunc has no Close/Stop/Shutdown receiver, so its goroutines are
// not checked.
func freeFunc() {
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}
