// Package walerr is an analysistest fixture for the walerr analyzer:
// errors from wal/store methods must be consumed, not silently
// dropped.
package walerr

import (
	"kyrix/internal/wal"
)

func bare(l *wal.Log) {
	l.Sync() // want `error from \(Log\)\.Sync ignored`
}

func deferred(l *wal.Log) {
	defer l.Close() // want `error from \(Log\)\.Close discarded by defer`
}

func goroutine(l *wal.Log) {
	go l.Sync() // want `error from \(Log\)\.Sync discarded by go`
}

func handled(l *wal.Log, payload []byte) error {
	if _, err := l.Append(payload); err != nil {
		return err
	}
	return l.Sync()
}

func explicitDiscard(l *wal.Log) {
	// Visible, greppable decision: durability is deferred to the next
	// commit point.
	_ = l.Sync()
}

// Size returns no error, so a bare call is fine.
func statOnly(l *wal.Log) {
	l.Size()
}

func suppressed(l *wal.Log) {
	//lint:ignore-kyrix walerr fixture: crash-only teardown path
	l.Sync()
}
