package analysis

import (
	"go/ast"
	"go/types"
)

// storagePkgPath declares the repo's row type; loops over []storage.Row
// are the "row scan" shape the PR 6 Materialize fix made cancellable.
const storagePkgPath = "kyrix/internal/storage"

// CtxLoop enforces the PR 6 cancellation fixes: a function that was
// given a context must stay cancellable — its long loops must observe
// ctx, and it must not cut the cancellation chain by minting fresh
// root contexts.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: `check that context-taking functions stay cancellable

Inside any function that takes a context.Context, two shapes are
flagged. (1) Loops that can run for a long time — an unconditional
for{}, or a range over []storage.Row (the row-scan shape precompute
and the LOD pyramid build iterate millions of times) — must reference
the context in their body: a periodic ctx.Err() check, a select on
ctx.Done(), or passing ctx to the per-iteration work all count.
(2) Calls to context.Background() or context.TODO() are flagged: a
function that received a context and spawns work under a fresh root
context has silently detached that work from its caller's
cancellation, which is how the pre-PR 6 Materialize kept scanning rows
for a client that had hung up.`,
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			// ctx objects of every enclosing function, innermost last.
			var ctxs []types.Object
			for _, fn := range enclosingFuncs(stack) {
				ctxs = append(ctxs, ctxParams(pass.Info, fn)...)
			}
			if len(ctxs) == 0 {
				return true
			}
			switch st := n.(type) {
			case *ast.ForStmt:
				if st.Cond == nil && !usesAnyObject(pass.Info, st.Body, ctxs) {
					pass.Reportf(st.For,
						"infinite loop in a context-taking function never observes ctx (check ctx.Err() or select on ctx.Done())")
				}
			case *ast.RangeStmt:
				if rangesOverRows(pass, st) && !usesAnyObject(pass.Info, st.Body, ctxs) {
					pass.Reportf(st.For,
						"row-scan loop in a context-taking function never observes ctx (check ctx.Err() every N rows)")
				}
			case *ast.CallExpr:
				for _, name := range [...]string{"Background", "TODO"} {
					if calleeIs(pass.Info, st, "context", name) {
						pass.Reportf(st.Pos(),
							"context.%s inside a context-taking function detaches downstream work from the caller's cancellation; derive from ctx instead", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// rangesOverRows reports whether the range statement iterates a slice
// of storage.Row values (directly or behind named slice types).
func rangesOverRows(pass *Pass, st *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[st.X]
	if !ok {
		return false
	}
	sl, ok := types.Unalias(tv.Type.Underlying()).(*types.Slice)
	if !ok {
		return false
	}
	elem := namedOrigin(sl.Elem())
	return elem != nil && elem.Obj().Name() == "Row" &&
		elem.Obj().Pkg() != nil && elem.Obj().Pkg().Path() == storagePkgPath
}
