package analysis

import (
	"go/ast"
	"go/types"
)

// Durability-bearing packages: an ignored error from these types means
// an acked write may not actually be on disk.
var walErrPkgs = []string{
	"kyrix/internal/wal",
	"kyrix/internal/store",
}

// WALErr enforces the PR 7/8 durability contract: errors from the
// write-ahead log and the persistent store are load-bearing — an
// Append or Sync that failed means the commit the caller is about to
// ack never became durable.
var WALErr = &Analyzer{
	Name: "walerr",
	Doc: `check that wal/store errors are not silently discarded

A call to any error-returning method on a type from kyrix/internal/wal
or kyrix/internal/store must consume its error: invisible discards — a
bare call statement, or a call hidden behind defer or go — are
flagged. Assigning the error explicitly to _ is allowed: it is a
visible, greppable decision (replog deliberately defers some fsyncs to
commit points), where a bare call reads as "cannot fail". This is the
PR 7/8 class: a dropped wal.Sync error turns a quorum-acked update
into data loss on the next crash.`,
	Run: runWALErr,
}

func runWALErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
				how = "ignored"
			case *ast.DeferStmt:
				call = st.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = st.Call
				how = "discarded by go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !durabilityMethod(fn) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error from (%s).%s %s: wal/store errors are durability signals (handle it, or assign to _ with a comment)",
				recvTypeString(fn), fn.Name(), how)
			return true
		})
	}
	return nil
}

// durabilityMethod reports whether fn is an error-returning method on
// a type from one of the durability packages.
func durabilityMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return false
	}
	for _, p := range walErrPkgs {
		if typeFromPackage(sig.Recv().Type(), p) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n := namedOrigin(t)
	return n != nil && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func recvTypeString(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if n := namedOrigin(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return sig.Recv().Type().String()
}
