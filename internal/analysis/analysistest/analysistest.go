// Package analysistest runs one kyrix-vet analyzer over a testdata
// package and checks its findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework in internal/analysis.
//
// Expectations are written on the flagged line:
//
//	return c.n // want `guarded by mu`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match exactly one finding reported on that
// line; findings on lines without a matching want, and wants without a
// finding, both fail the test. Suppression directives are honored
// before matching, so a //lint:ignore-kyrix'd line wants nothing.
package analysistest

import (
	"fmt"
	"regexp"
	"testing"

	"kyrix/internal/analysis"
)

var wantRe = regexp.MustCompile("//[ \t]*want((?:[ \t]+(?:`[^`]*`|\"[^\"]*\"))+)")
var wantArgRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir (usually testdata/src/<name>),
// applies the analyzer, and diffs findings against want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, ".")
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	// key: file:line
	wants := make(map[string][]*expectation)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					re, err := regexp.Compile(arg[1 : len(arg)-1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", key, arg, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(f.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s", key, f.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, exp.re)
			}
		}
	}
}
