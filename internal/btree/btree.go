// Package btree implements the B+tree used for Kyrix's tuple-id and
// tile-id indexes (the paper's first database design: "Btree/hash
// indexes on the tuple_id column of the first table and the tile_id
// column of the second table").
//
// Entries are (key int64, val uint64) pairs; duplicate keys are allowed
// and are ordered by val, so the tile-id secondary index can hold many
// tuple references per tile. Leaves are linked for range scans.
package btree

import "sort"

// degree is the fan-out: max keys per node. 64 keeps nodes around a
// cache line multiple and trees shallow at the experiment scales.
const degree = 64

type entry struct {
	key int64
	val uint64
}

type node struct {
	leaf     bool
	entries  []entry // leaf: data entries; internal: separator keys in entries[i].key
	children []*node // internal only; len(children) == len(entries)+1
	next     *node   // leaf chain
}

// Tree is a B+tree mapping int64 keys to uint64 payloads with
// duplicates. The zero value is not usable; call New. Not safe for
// concurrent mutation; the DB layer serializes writers.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// search returns the index of the first entry in n.entries whose
// (key,val) is >= (k,v).
func searchEntries(entries []entry, k int64, v uint64) int {
	return sort.Search(len(entries), func(i int) bool {
		e := entries[i]
		return e.key > k || (e.key == k && e.val >= v)
	})
}

// childIndex picks the child to descend into for (k, v). Separators come
// from splits where the right sibling holds entries >= the separator, so
// descent goes right on an exact separator match: the first separator
// strictly greater than (k, v) bounds the correct child.
func childIndex(n *node, k int64, v uint64) int {
	return sort.Search(len(n.entries), func(i int) bool {
		e := n.entries[i]
		return e.key > k || (e.key == k && e.val > v)
	})
}

// Insert adds (key, val). Duplicate (key, val) pairs are stored once
// (idempotent), which makes index rebuilds safe to re-run.
func (t *Tree) Insert(key int64, val uint64) {
	newChild, sep, grew := t.insert(t.root, key, val)
	if grew {
		t.size++
	}
	if newChild != nil {
		t.root = &node{
			entries:  []entry{sep},
			children: []*node{t.root, newChild},
		}
	}
}

// insert descends, splitting children on the way back up. Returns a new
// right sibling and its separator when n split, and whether the tree
// gained an entry.
func (t *Tree) insert(n *node, key int64, val uint64) (*node, entry, bool) {
	if n.leaf {
		i := searchEntries(n.entries, key, val)
		if i < len(n.entries) && n.entries[i].key == key && n.entries[i].val == val {
			return nil, entry{}, false // idempotent
		}
		n.entries = append(n.entries, entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = entry{key, val}
		if len(n.entries) <= degree {
			return nil, entry{}, true
		}
		right := t.splitLeaf(n)
		return right, entry{right.entries[0].key, right.entries[0].val}, true
	}
	ci := childIndex(n, key, val)
	newChild, sep, grew := t.insert(n.children[ci], key, val)
	if newChild == nil {
		return nil, entry{}, grew
	}
	n.entries = append(n.entries, entry{})
	copy(n.entries[ci+1:], n.entries[ci:])
	n.entries[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.entries) <= degree {
		return nil, entry{}, grew
	}
	right, upSep := t.splitInternal(n)
	return right, upSep, grew
}

func (t *Tree) splitLeaf(n *node) *node {
	mid := len(n.entries) / 2
	right := &node{leaf: true, next: n.next}
	right.entries = append(right.entries, n.entries[mid:]...)
	n.entries = n.entries[:mid:mid]
	n.next = right
	return right
}

func (t *Tree) splitInternal(n *node) (*node, entry) {
	mid := len(n.entries) / 2
	sep := n.entries[mid]
	right := &node{}
	right.entries = append(right.entries, n.entries[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.entries = n.entries[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, sep
}

// Delete removes (key, val), reporting whether it was present.
// Underflowed nodes are not rebalanced (deletes are rare in this
// workload: the §4 update model tags rather than removes); lookups stay
// correct because separators remain valid upper bounds.
func (t *Tree) Delete(key int64, val uint64) bool {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, key, val)]
	}
	i := searchEntries(n.entries, key, val)
	if i >= len(n.entries) || n.entries[i].key != key || n.entries[i].val != val {
		return false
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	t.size--
	return true
}

// Lookup calls fn with every payload stored under key, in val order.
// Returning false stops early.
func (t *Tree) Lookup(key int64, fn func(val uint64) bool) {
	t.AscendRange(key, key, func(_ int64, val uint64) bool { return fn(val) })
}

// Contains reports whether at least one entry exists for key.
func (t *Tree) Contains(key int64) bool {
	found := false
	t.Lookup(key, func(uint64) bool { found = true; return false })
	return found
}

// AscendRange calls fn for every entry with lo <= key <= hi in
// ascending (key, val) order. Returning false stops early.
func (t *Tree) AscendRange(lo, hi int64, fn func(key int64, val uint64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n, lo, 0)]
	}
	for n != nil {
		i := searchEntries(n.entries, lo, 0)
		for ; i < len(n.entries); i++ {
			e := n.entries[i]
			if e.key > hi {
				return
			}
			if !fn(e.key, e.val) {
				return
			}
		}
		n = n.next
	}
}

// Ascend visits every entry in ascending order.
func (t *Tree) Ascend(fn func(key int64, val uint64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for _, e := range n.entries {
			if !fn(e.key, e.val) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, or ok=false when empty.
func (t *Tree) Min() (key int64, ok bool) {
	t.Ascend(func(k int64, _ uint64) bool { key, ok = k, true; return false })
	return
}

// Max returns the largest key, or ok=false when empty.
func (t *Tree) Max() (key int64, ok bool) {
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	// The rightmost leaf can be empty after unbalanced deletes; walk
	// back via a full descent scan in that rare case.
	if len(n.entries) > 0 {
		return n.entries[len(n.entries)-1].key, true
	}
	found := false
	var last int64
	t.Ascend(func(k int64, _ uint64) bool { last, found = k, true; return true })
	return last, found
}

// Height returns the tree height (1 for a lone leaf); used in tests to
// check balance.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
