package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("empty Len")
	}
	if tr.Contains(5) {
		t.Fatal("empty Contains")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("empty Min")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("empty Max")
	}
	count := 0
	tr.Ascend(func(int64, uint64) bool { count++; return true })
	if count != 0 {
		t.Fatal("empty Ascend")
	}
}

func TestInsertLookup(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, uint64(i*10))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		var got []uint64
		tr.Lookup(i, func(v uint64) bool { got = append(got, v); return true })
		if len(got) != 1 || got[0] != uint64(i*10) {
			t.Fatalf("Lookup(%d) = %v", i, got)
		}
	}
	if tr.Contains(-1) || tr.Contains(1000) {
		t.Fatal("Contains out of range")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	for v := uint64(0); v < 100; v++ {
		tr.Insert(7, v)
	}
	var got []uint64
	tr.Lookup(7, func(v uint64) bool { got = append(got, v); return true })
	if len(got) != 100 {
		t.Fatalf("dup lookup returned %d", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("dup order: got[%d] = %d", i, v)
		}
	}
}

func TestIdempotentInsert(t *testing.T) {
	tr := New()
	tr.Insert(1, 2)
	tr.Insert(1, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len after duplicate insert = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := int64(0); i < 500; i++ {
		tr.Insert(i, uint64(i))
	}
	for i := int64(0); i < 500; i += 2 {
		if !tr.Delete(i, uint64(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Delete(0, 0) {
		t.Fatal("double delete")
	}
	if tr.Delete(9999, 0) {
		t.Fatal("delete absent")
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := int64(0); i < 500; i++ {
		want := i%2 == 1
		if tr.Contains(i) != want {
			t.Fatalf("Contains(%d) = %v", i, !want)
		}
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(i*2, uint64(i)) // even keys 0..198
	}
	var keys []int64
	tr.AscendRange(10, 20, func(k int64, _ uint64) bool { keys = append(keys, k); return true })
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(keys) != len(want) {
		t.Fatalf("range = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("range = %v", keys)
		}
	}
	// Early stop.
	n := 0
	tr.AscendRange(0, 198, func(int64, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop n = %d", n)
	}
	// Empty range.
	n = 0
	tr.AscendRange(11, 11, func(int64, uint64) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty range visited entries")
	}
}

func TestMinMaxHeight(t *testing.T) {
	tr := New()
	for i := int64(100); i >= 1; i-- {
		tr.Insert(i, 0)
	}
	if mn, _ := tr.Min(); mn != 1 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 100 {
		t.Fatalf("Max = %d", mx)
	}
	// 100k entries with degree 64 must stay shallow (log_32(1e5) ~ 4).
	big := New()
	for i := int64(0); i < 100000; i++ {
		big.Insert(i, uint64(i))
	}
	if h := big.Height(); h > 5 {
		t.Fatalf("height = %d", h)
	}
}

func TestRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New()
	oracle := map[[2]uint64]bool{}
	for i := 0; i < 20000; i++ {
		k := int64(rng.Intn(2000))
		v := uint64(rng.Intn(10))
		key := [2]uint64{uint64(k), v}
		if rng.Intn(3) == 0 {
			want := oracle[key]
			if got := tr.Delete(k, v); got != want {
				t.Fatalf("Delete(%d,%d) = %v want %v", k, v, got, want)
			}
			delete(oracle, key)
		} else {
			tr.Insert(k, v)
			oracle[key] = true
		}
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d oracle %d", tr.Len(), len(oracle))
	}
	// Full ascend matches sorted oracle.
	var want [][2]uint64
	for k := range oracle {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i][0] != want[j][0] {
			return int64(want[i][0]) < int64(want[j][0])
		}
		return want[i][1] < want[j][1]
	})
	i := 0
	tr.Ascend(func(k int64, v uint64) bool {
		if i >= len(want) || int64(want[i][0]) != k || want[i][1] != v {
			t.Fatalf("ascend mismatch at %d: (%d,%d)", i, k, v)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("ascend visited %d of %d", i, len(want))
	}
}

// Property: AscendRange(lo,hi) returns exactly the inserted keys within
// [lo,hi], in order.
func TestQuickRange(t *testing.T) {
	f := func(keys []int64, lo, hi int64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New()
		set := map[int64]bool{}
		for _, k := range keys {
			k %= 1000
			tr.Insert(k, uint64(k))
			set[k] = true
		}
		var want []int64
		for k := range set {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		tr.AscendRange(lo, hi, func(k int64, _ uint64) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New()
	for i := int64(-50); i <= 50; i++ {
		tr.Insert(i, uint64(i+50))
	}
	var got []int64
	tr.AscendRange(-10, 10, func(k int64, _ uint64) bool { got = append(got, k); return true })
	if len(got) != 21 || got[0] != -10 || got[20] != 10 {
		t.Fatalf("negative range = %v", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	tr := New()
	for i := int64(0); i < 1_000_000; i++ {
		tr.Insert(i, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(int64(i%1_000_000), func(uint64) bool { return true })
	}
}
