package prefetch

import (
	"errors"
	"fmt"
	"testing"

	"kyrix/internal/geom"
)

func vp(x, y float64) geom.Rect { return geom.RectXYWH(x, y, 100, 100) }

func TestMomentumNoHistory(t *testing.T) {
	m := NewMomentum(3)
	if _, ok := m.Predict(); ok {
		t.Fatal("no history, no prediction")
	}
	m.Observe(vp(0, 0))
	if _, ok := m.Predict(); ok {
		t.Fatal("single observation, no prediction")
	}
}

func TestMomentumConstantVelocity(t *testing.T) {
	m := NewMomentum(3)
	for i := 0; i <= 4; i++ {
		m.Observe(vp(float64(i)*50, 0))
	}
	got, ok := m.Predict()
	if !ok {
		t.Fatal("expected prediction")
	}
	if got.MinX != 250 || got.MinY != 0 {
		t.Fatalf("prediction = %v", got)
	}
}

func TestMomentumAveragesWindow(t *testing.T) {
	m := NewMomentum(2)
	m.Observe(vp(0, 0))
	m.Observe(vp(100, 0)) // +100
	m.Observe(vp(150, 0)) // +50
	got, ok := m.Predict()
	if !ok || got.MinX != 225 { // 150 + (100+50)/2
		t.Fatalf("prediction = %v ok=%v", got, ok)
	}
	// Window drops old moves: a stationary user stops predicting.
	m2 := NewMomentum(2)
	m2.Observe(vp(0, 0))
	m2.Observe(vp(100, 0))
	m2.Observe(vp(100, 0))
	m2.Observe(vp(100, 0))
	if _, ok := m2.Predict(); ok {
		t.Fatal("stationary user should yield no prediction")
	}
}

func TestMomentumDiagonal(t *testing.T) {
	m := NewMomentum(4)
	for i := 0; i <= 3; i++ {
		m.Observe(vp(float64(i)*10, float64(i)*20))
	}
	got, ok := m.Predict()
	if !ok || got.MinX != 40 || got.MinY != 80 {
		t.Fatalf("diagonal prediction = %v", got)
	}
}

func TestSemanticPredictor(t *testing.T) {
	// Density field: dense on the left half (x<500), sparse right.
	field := func(r geom.Rect) (float64, bool) {
		if r.MinX < 0 {
			return 0, false // unobserved
		}
		if r.Center().X < 500 {
			return 1.0, true
		}
		return 0.1, true
	}
	s := NewSemantic(field)
	if _, ok := s.Predict(); ok {
		t.Fatal("no observations, no prediction")
	}
	// User has been viewing dense regions.
	s.Observe(vp(100, 200))
	s.Observe(vp(200, 200))
	got, ok := s.Predict()
	if !ok {
		t.Fatal("expected prediction")
	}
	// From (200,200): candidates at x=300 (dense), x=100 (dense),
	// y±100 at x=200 (dense). All dense except... all are dense, so
	// any is acceptable; it must at least be a dense one.
	if d, _ := field(got); d != 1.0 {
		t.Fatalf("predicted sparse region %v", got)
	}
	// Now from the dense/sparse boundary the predictor prefers the
	// dense side.
	s2 := NewSemantic(field)
	s2.Observe(vp(350, 200))
	got2, ok := s2.Predict()
	if !ok {
		t.Fatal("expected prediction")
	}
	if got2.Center().X >= 500 {
		t.Fatalf("picked sparse neighbor %v", got2)
	}
}

func TestSemanticUnobservedNeighbors(t *testing.T) {
	field := func(r geom.Rect) (float64, bool) { return 0, false }
	s := NewSemantic(field)
	s.Observe(vp(0, 0))
	if _, ok := s.Predict(); ok {
		t.Fatal("all neighbors unobserved: no prediction")
	}
}

type fakeFetcher struct {
	boxes []geom.Rect
	fail  bool
}

func (f *fakeFetcher) PrefetchBox(layerIdx int, box geom.Rect) error {
	if f.fail {
		return errors.New("boom")
	}
	f.boxes = append(f.boxes, box)
	return nil
}

// fakeBatchFetcher also implements BoxBatchFetcher; the Prefetcher
// must prefer the single multi-layer call over per-layer PrefetchBox.
type fakeBatchFetcher struct {
	fakeFetcher
	batchCalls  int
	batchLayers []int
	batchFail   bool
}

func (f *fakeBatchFetcher) PrefetchBoxes(layers []int, box geom.Rect) error {
	f.batchCalls++
	f.batchLayers = append([]int(nil), layers...)
	if f.batchFail {
		return errors.New("boom")
	}
	f.boxes = append(f.boxes, box)
	return nil
}

func TestPrefetcherUsesBatchFetcher(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	ff := &fakeBatchFetcher{}
	p := NewPrefetcher(NewMomentum(3), ff, []int{0, 1, 2}, bounds)
	p.OnPan(vp(0, 500))
	p.OnPan(vp(100, 500))
	if ff.batchCalls != 1 || len(ff.fakeFetcher.boxes) != 1 {
		t.Fatalf("batch calls = %d, boxes = %d, want one multi-layer call",
			ff.batchCalls, len(ff.fakeFetcher.boxes))
	}
	if len(ff.batchLayers) != 3 {
		t.Fatalf("batched layers = %v", ff.batchLayers)
	}
	if p.Issued != 3 {
		t.Fatalf("Issued = %d, want one per layer", p.Issued)
	}
	// A failing batched prefetch counts one error for the whole call.
	ff.batchFail = true
	p.OnPan(vp(200, 500))
	if p.Errs != 1 {
		t.Fatalf("Errs = %d", p.Errs)
	}
}

func TestPrefetcher(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000}
	ff := &fakeFetcher{}
	p := NewPrefetcher(NewMomentum(3), ff, []int{0}, bounds)
	p.Inflate = 0.5
	p.OnPan(vp(0, 500))
	if p.Issued != 0 {
		t.Fatal("first pan should not prefetch")
	}
	p.OnPan(vp(100, 500))
	if p.Issued != 1 || len(ff.boxes) != 1 {
		t.Fatalf("issued = %d", p.Issued)
	}
	// Predicted location is vp(200,500) inflated by 50%.
	box := ff.boxes[0]
	if box.Center() != (geom.Point{X: 250, Y: 550}) {
		t.Fatalf("prefetch box = %v", box)
	}
	if box.W() != 150 {
		t.Fatalf("inflation missing: %v", box)
	}
}

func TestPrefetcherClampsAndCountsErrors(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500}
	ff := &fakeFetcher{}
	p := NewPrefetcher(NewMomentum(2), ff, []int{0, 1}, bounds)
	// Movement heading off-canvas: prefetch box must stay inside.
	p.OnPan(vp(300, 0))
	p.OnPan(vp(400, 0))
	for _, b := range ff.boxes {
		if !bounds.Contains(b) {
			t.Fatalf("prefetch box %v escapes canvas", b)
		}
	}
	if p.Issued != 2 { // two layers
		t.Fatalf("issued = %d", p.Issued)
	}
	// Errors are counted, not fatal.
	ff.fail = true
	p.OnPan(vp(500, 0))
	if p.Errs == 0 {
		t.Fatal("errors not counted")
	}
}

type recordingTileFetcher struct {
	calls []struct {
		layer int
		size  float64
		tiles []geom.TileID
	}
	fail bool
}

func (r *recordingTileFetcher) PrefetchTiles(li int, size float64, tiles []geom.TileID) error {
	r.calls = append(r.calls, struct {
		layer int
		size  float64
		tiles []geom.TileID
	}{li, size, tiles})
	if r.fail {
		return fmt.Errorf("boom")
	}
	return nil
}

func TestTilePrefetcherWarmsPredictedTiles(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 4096, MaxY: 2048}
	f := &recordingTileFetcher{}
	p := NewTilePrefetcher(NewMomentum(3), f, []int{0, 1}, 256, bounds)

	vp := geom.RectXYWH(0, 0, 512, 512)
	p.OnPan(vp) // first observation: no prediction yet
	if len(f.calls) != 0 {
		t.Fatalf("prefetch before a prediction: %d calls", len(f.calls))
	}
	p.OnPan(vp.Translate(256, 0)) // velocity established
	if len(f.calls) != 2 {
		t.Fatalf("calls = %d, want one per layer", len(f.calls))
	}
	if p.Issued != 2 || p.Errs != 0 || p.Tiles == 0 {
		t.Fatalf("stats = %+v", p)
	}
	// The predicted viewport is one step further right; its tiles must
	// cover x in [512, 1024).
	want := geom.ViewportTiles(vp.Translate(512, 0), 256, bounds.W(), bounds.H())
	got := f.calls[0].tiles
	if len(got) != len(want) {
		t.Fatalf("tiles = %v, want %v", got, want)
	}
	if f.calls[0].size != 256 || f.calls[0].layer != 0 || f.calls[1].layer != 1 {
		t.Fatalf("calls = %+v", f.calls)
	}
}

func TestTilePrefetcherCountsErrors(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 4096, MaxY: 2048}
	f := &recordingTileFetcher{fail: true}
	p := NewTilePrefetcher(NewMomentum(2), f, []int{0}, 256, bounds)
	vp := geom.RectXYWH(0, 0, 512, 512)
	p.OnPan(vp)
	p.OnPan(vp.Translate(300, 0))
	if p.Issued != 1 || p.Errs != 1 {
		t.Fatalf("stats = issued %d errs %d", p.Issued, p.Errs)
	}
}

func TestTilePrefetcherClampsToCanvas(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 1024}
	f := &recordingTileFetcher{}
	p := NewTilePrefetcher(NewMomentum(2), f, []int{0}, 256, bounds)
	// Panning left from the edge predicts a viewport off-canvas; the
	// prefetch clamps to the canvas and still requests valid tiles.
	vp := geom.RectXYWH(512, 0, 512, 512)
	p.OnPan(vp)
	p.OnPan(geom.RectXYWH(0, 0, 512, 512))
	for _, call := range f.calls {
		for _, tid := range call.tiles {
			if tid.Col < 0 || tid.Row < 0 {
				t.Fatalf("off-canvas tile %+v", tid)
			}
		}
	}
}
