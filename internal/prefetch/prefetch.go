// Package prefetch implements the predictive prefetching the paper
// plans in §4: "both momentum-based and semantic-based prefetching were
// considered in a tiling context [ForeCache]. We plan to evaluate the
// effectiveness of momentum-based prefetching in the context of dynamic
// boxes."
//
// MomentumPredictor extrapolates the user's recent pan velocity;
// SemanticPredictor picks the neighboring region whose data
// characteristics (density) most resemble the recently viewed data.
// Both produce a predicted next viewport; a Prefetcher turns the
// prediction into a background cache-warming fetch.
package prefetch

import (
	"math"

	"kyrix/internal/geom"
)

// Predictor forecasts the next viewport from the interaction history.
type Predictor interface {
	// Observe records an actual viewport movement.
	Observe(viewport geom.Rect)
	// Predict returns the expected next viewport and whether a
	// prediction is available.
	Predict() (geom.Rect, bool)
	// Name identifies the predictor in reports.
	Name() string
}

// MomentumPredictor extrapolates from the last k pan deltas:
// "momentum-based prefetching takes the user's recent movements (e.g.,
// pan and zoom) into account".
type MomentumPredictor struct {
	window  int
	history []geom.Rect
}

// NewMomentum creates a momentum predictor averaging the last window
// moves (window >= 1).
func NewMomentum(window int) *MomentumPredictor {
	if window < 1 {
		window = 1
	}
	return &MomentumPredictor{window: window}
}

// Name implements Predictor.
func (m *MomentumPredictor) Name() string { return "momentum" }

// Observe implements Predictor.
func (m *MomentumPredictor) Observe(vp geom.Rect) {
	m.history = append(m.history, vp)
	if len(m.history) > m.window+1 {
		m.history = m.history[len(m.history)-m.window-1:]
	}
}

// Predict implements Predictor: current viewport translated by the mean
// of the recent deltas.
func (m *MomentumPredictor) Predict() (geom.Rect, bool) {
	n := len(m.history)
	if n < 2 {
		return geom.Rect{}, false
	}
	var dx, dy float64
	for i := 1; i < n; i++ {
		dx += m.history[i].MinX - m.history[i-1].MinX
		dy += m.history[i].MinY - m.history[i-1].MinY
	}
	steps := float64(n - 1)
	dx /= steps
	dy /= steps
	if dx == 0 && dy == 0 {
		return geom.Rect{}, false
	}
	return m.history[n-1].Translate(dx, dy), true
}

// DensityField is the semantic predictor's view of the data: a callback
// returning the observed point density of a region (points per px²),
// with ok=false when the region has not been observed yet. The frontend
// supplies it from past fetch reports.
type DensityField func(region geom.Rect) (float64, bool)

// SemanticPredictor chooses among candidate moves (the 4-neighborhood
// one viewport away) the one whose data characteristics are most
// similar to the recently viewed data: "semantic-based prefetching uses
// the similarity to recently viewed data in data characteristics (e.g.,
// distribution)".
type SemanticPredictor struct {
	density DensityField
	last    geom.Rect
	lastOK  bool
	recent  float64 // running mean density of viewed regions
	seen    int
}

// NewSemantic creates a semantic predictor over a density field.
func NewSemantic(field DensityField) *SemanticPredictor {
	return &SemanticPredictor{density: field}
}

// Name implements Predictor.
func (s *SemanticPredictor) Name() string { return "semantic" }

// Observe implements Predictor.
func (s *SemanticPredictor) Observe(vp geom.Rect) {
	s.last, s.lastOK = vp, true
	if d, ok := s.density(vp); ok {
		s.seen++
		s.recent += (d - s.recent) / float64(s.seen)
	}
}

// Predict implements Predictor: the neighbor whose observed density is
// closest to the running mean of viewed regions. Unobserved neighbors
// are ranked last; if none is observed there is no prediction.
func (s *SemanticPredictor) Predict() (geom.Rect, bool) {
	if !s.lastOK || s.seen == 0 {
		return geom.Rect{}, false
	}
	w, h := s.last.W(), s.last.H()
	candidates := []geom.Rect{
		s.last.Translate(w, 0),
		s.last.Translate(-w, 0),
		s.last.Translate(0, h),
		s.last.Translate(0, -h),
	}
	best := geom.Rect{}
	bestDiff := math.Inf(1)
	found := false
	for _, c := range candidates {
		d, ok := s.density(c)
		if !ok {
			continue
		}
		diff := math.Abs(d - s.recent)
		if diff < bestDiff {
			bestDiff, best, found = diff, c, true
		}
	}
	return best, found
}

// BoxFetcher warms a cache with a viewport-shaped region; the frontend
// client's PrefetchBox satisfies it.
type BoxFetcher interface {
	PrefetchBox(layerIdx int, box geom.Rect) error
}

// BoxBatchFetcher warms several layers' prefetch slots with one box in
// a single call; the frontend client's PrefetchBoxes satisfies it,
// riding one framed /batch round trip when a framed protocol (v2/v3)
// is negotiated. Under v3 the fetcher declares each layer's current
// box as the delta base, so a momentum prefetch one viewport ahead —
// which overlaps the current box heavily by construction — ships
// mostly as entering rows instead of a full payload. A Prefetcher
// prefers it over per-layer PrefetchBox.
type BoxBatchFetcher interface {
	PrefetchBoxes(layers []int, box geom.Rect) error
}

// Prefetcher drives a predictor after every observed interaction and
// issues background prefetches.
type Prefetcher struct {
	pred    Predictor
	fetcher BoxFetcher
	layers  []int
	bounds  geom.Rect
	// Inflate grows the predicted viewport before fetching, absorbing
	// prediction error.
	Inflate float64

	// Stats
	Issued int
	Errs   int
}

// NewPrefetcher wires a predictor to a fetcher for the given data
// layers, clamping prefetches to canvas bounds.
func NewPrefetcher(pred Predictor, fetcher BoxFetcher, layers []int, bounds geom.Rect) *Prefetcher {
	return &Prefetcher{pred: pred, fetcher: fetcher, layers: layers, bounds: bounds}
}

// OnPan records the movement and synchronously issues the prefetch for
// the predicted next viewport. (The frontend calls it after reporting
// the user-visible response time, so prefetch cost stays off the
// interaction path, like ForeCache's background fetches.) A fetcher
// that also implements BoxBatchFetcher receives all layers in one
// call — one round trip for the whole prediction under the framed
// batch protocols, delta-encoded against the current boxes under v3 —
// instead of one PrefetchBox per layer.
func (p *Prefetcher) OnPan(viewport geom.Rect) {
	p.pred.Observe(viewport)
	next, ok := p.pred.Predict()
	if !ok {
		return
	}
	box := next.Inflate(p.Inflate).Clamp(p.bounds).Intersection(p.bounds)
	if !box.Valid() || box.Area() == 0 {
		return
	}
	if bf, ok := p.fetcher.(BoxBatchFetcher); ok {
		p.Issued += len(p.layers)
		if err := bf.PrefetchBoxes(p.layers, box); err != nil {
			p.Errs++
		}
		return
	}
	for _, li := range p.layers {
		p.Issued++
		if err := p.fetcher.PrefetchBox(li, box); err != nil {
			p.Errs++
		}
	}
}

// TileFetcher warms a cache with a set of tiles of one layer; the
// frontend client's PrefetchTiles satisfies it (batched over the
// backend's /batch endpoint when the client has a BatchSize).
type TileFetcher interface {
	PrefetchTiles(layerIdx int, size float64, tiles []geom.TileID) error
}

// TilePrefetcher is the static-tile counterpart of Prefetcher: it
// predicts the next viewport and warms every tile it covers, the whole
// predicted region costing one batched round trip.
type TilePrefetcher struct {
	pred    Predictor
	fetcher TileFetcher
	layers  []int
	size    float64
	bounds  geom.Rect
	// Inflate grows the predicted viewport before tiling it.
	Inflate float64

	// Stats
	Issued int // prefetch calls issued (one per layer per prediction)
	Tiles  int // tiles requested across all calls
	Errs   int
}

// NewTilePrefetcher wires a predictor to a tile fetcher for the given
// data layers and tile size, clamping predictions to canvas bounds.
func NewTilePrefetcher(pred Predictor, fetcher TileFetcher, layers []int, size float64, bounds geom.Rect) *TilePrefetcher {
	return &TilePrefetcher{pred: pred, fetcher: fetcher, layers: layers, size: size, bounds: bounds}
}

// OnPan records the movement and warms the tiles of the predicted next
// viewport.
func (p *TilePrefetcher) OnPan(viewport geom.Rect) {
	p.pred.Observe(viewport)
	next, ok := p.pred.Predict()
	if !ok {
		return
	}
	box := next.Inflate(p.Inflate).Clamp(p.bounds).Intersection(p.bounds)
	if !box.Valid() || box.Area() == 0 {
		return
	}
	tiles := geom.ViewportTiles(box, p.size, p.bounds.W(), p.bounds.H())
	if len(tiles) == 0 {
		return
	}
	for _, li := range p.layers {
		p.Issued++
		p.Tiles += len(tiles)
		if err := p.fetcher.PrefetchTiles(li, p.size, tiles); err != nil {
			p.Errs++
		}
	}
}
