package replog

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"kyrix/internal/wal"
)

// Persistence is two internal/wal logs per node:
//
//   - meta.kyx: (term, votedFor) records, appended and fsynced BEFORE
//     the node acts on a term change or casts a vote; last record
//     wins on replay. It lives apart from the entry log because the
//     entry log's tail can be physically truncated on conflict, and
//     a truncation must never be able to roll back a vote.
//   - replog.kyx: one record per log entry in index order. A
//     conflicting suffix is removed with TruncateAt, so replay always
//     yields a dense prefix 1..N.
//
// Records are JSON — updates are rare next to tile traffic, and the
// WAL layer already contributes the CRC framing and torn-tail
// truncation.

type metaRecord struct {
	Term     uint64 `json:"term"`
	VotedFor string `json:"votedFor,omitempty"`
}

// loadLocked replays both logs into memory on Open, which holds mu
// (nothing else can see the node yet, but the guarded fields it fills
// are machine-checked — see internal/analysis, guardedby).
func (n *Node) loadLocked() error {
	if err := n.metaWal.Replay(func(_ wal.LSN, payload []byte) error {
		var m metaRecord
		if err := json.Unmarshal(payload, &m); err != nil {
			return fmt.Errorf("replog: meta record: %w", err)
		}
		n.term, n.votedFor = m.Term, m.VotedFor
		return nil
	}); err != nil {
		return err
	}
	return n.wal.Replay(func(lsn wal.LSN, payload []byte) error {
		var e entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return fmt.Errorf("replog: entry record: %w", err)
		}
		if e.Index != uint64(len(n.log))+1 {
			return fmt.Errorf("replog: entry record index %d at position %d", e.Index, len(n.log)+1)
		}
		n.log = append(n.log, e)
		n.lsns = append(n.lsns, lsn)
		if e.ID != "" {
			n.idIndex[e.ID] = e.Index
		}
		return nil
	})
}

// persistMetaLocked fsyncs the current (term, votedFor) before the
// caller acts on it — the "never vote twice in one term" invariant.
func (n *Node) persistMetaLocked() {
	payload, _ := json.Marshal(metaRecord{Term: n.term, VotedFor: n.votedFor})
	if _, err := n.metaWal.Append(payload); err == nil {
		_ = n.metaWal.Sync()
	}
}

// persistEntryNoSyncLocked appends one entry record; the caller syncs
// once per batch.
func (n *Node) persistEntryNoSyncLocked(e entry) wal.LSN {
	payload, _ := json.Marshal(e)
	lsn, _ := n.wal.Append(payload)
	return lsn
}

// persistEntryLocked appends and fsyncs one entry record (the leader's
// own append path — it acks nothing it could forget).
func (n *Node) persistEntryLocked(e entry) wal.LSN {
	lsn := n.persistEntryNoSyncLocked(e)
	_ = n.wal.Sync()
	return lsn
}

// truncateFromLocked discards entries from index on, both in memory
// and physically in the WAL. Only ever called for uncommitted suffixes
// (committed entries never conflict).
func (n *Node) truncateFromLocked(index uint64) {
	if index < 1 || index > n.lastIndexLocked() {
		return
	}
	_ = n.wal.TruncateAt(n.lsns[index-1])
	for _, e := range n.log[index-1:] {
		if e.ID != "" && n.idIndex[e.ID] == e.Index {
			delete(n.idIndex, e.ID)
		}
	}
	n.log = n.log[:index-1]
	n.lsns = n.lsns[:index-1]
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
