package replog

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kyrix/internal/cluster"
)

// applyRec is one node's state machine: the applied commands in order.
// A restart gets a fresh applyRec — exactly the process semantics the
// server has (in-memory database rebuilt each boot, log replayed).
type applyRec struct {
	mu   sync.Mutex
	cmds []string
}

func (a *applyRec) apply(_ uint64, cmd []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cmds = append(a.cmds, string(cmd))
	return nil
}

func (a *applyRec) snapshot() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.cmds...)
}

// harness is an in-process N-node log cluster over real loopback HTTP,
// with per-node kill/restart (reusing the WAL dir — crash-recovery)
// and transport failpoints (partitions).
type harness struct {
	t       *testing.T
	urls    []string
	addrs   []string
	dirs    []string
	nodes   []*Node
	servers []*http.Server
	trs     []*cluster.Transport
	recs    []*applyRec
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{t: t}
	root := t.TempDir()
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		h.addrs = append(h.addrs, ln.Addr().String())
		h.urls = append(h.urls, "http://"+ln.Addr().String())
		h.dirs = append(h.dirs, filepath.Join(root, fmt.Sprintf("node%d", i)))
	}
	h.nodes = make([]*Node, n)
	h.servers = make([]*http.Server, n)
	h.trs = make([]*cluster.Transport, n)
	h.recs = make([]*applyRec, n)
	for i := 0; i < n; i++ {
		h.start(i, lns[i])
	}
	t.Cleanup(func() {
		for i := range h.nodes {
			if h.nodes[i] != nil {
				h.stop(i)
			}
		}
	})
	return h
}

func (h *harness) start(i int, ln net.Listener) {
	h.t.Helper()
	var others []string
	for j, u := range h.urls {
		if j != i {
			others = append(others, u)
		}
	}
	// Short breaker cooldown so healed partitions are rediscovered
	// fast; chatty RPC failures during induced faults are the point.
	h.trs[i] = cluster.NewTransport(others, cluster.TransportConfig{
		Timeout:         time.Second,
		Retries:         -1,
		BreakerCooldown: 100 * time.Millisecond,
	})
	h.recs[i] = &applyRec{}
	node, err := Open(Config{
		Self:            h.urls[i],
		Peers:           h.urls,
		Dir:             h.dirs[i],
		Transport:       h.trs[i],
		Apply:           h.recs[i].apply,
		ElectionTimeout: 60 * time.Millisecond,
		Heartbeat:       15 * time.Millisecond,
		SubmitTimeout:   3 * time.Second,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.nodes[i] = node
	srv := &http.Server{Handler: node.Handler()}
	h.servers[i] = srv
	go srv.Serve(ln)
}

// stop kills node i: listener and HTTP server torn down, log node
// closed. The WAL dir survives for restart.
func (h *harness) stop(i int) {
	h.t.Helper()
	h.servers[i].Close()
	if err := h.nodes[i].Close(); err != nil && !errors.Is(err, ErrClosed) {
		h.t.Logf("close node %d: %v", i, err)
	}
	h.nodes[i] = nil
}

// restart brings node i back on its old address with its old WAL dir.
func (h *harness) restart(i int) {
	h.t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", h.addrs[i])
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("rebind %s: %v", h.addrs[i], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.start(i, ln)
}

// partition drops all traffic between node i and every other live
// node, both directions.
func (h *harness) partition(i int) {
	for j := range h.urls {
		if j == i {
			continue
		}
		h.trs[i].FailDrop(h.urls[j], true)
		h.trs[j].FailDrop(h.urls[i], true)
	}
}

func (h *harness) heal() {
	for _, tr := range h.trs {
		if tr != nil {
			tr.FailReset()
		}
	}
}

// waitLeader polls until exactly one live node leads and every other
// live node agrees, returning its index.
func (h *harness) waitLeader(timeout time.Duration) int {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		leader := -1
		for i, n := range h.nodes {
			if n != nil && n.IsLeader() {
				leader = i
			}
		}
		if leader >= 0 {
			agreed := true
			for _, n := range h.nodes {
				if n != nil && n.Leader() != h.urls[leader] {
					agreed = false
				}
			}
			if agreed {
				return leader
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("no leader within %v", timeout)
	return -1
}

// waitConverged polls until every live node has applied the same
// command sequence of at least want commands.
func (h *harness) waitConverged(want int, timeout time.Duration) []string {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var ref []string
		ok := true
		for i, n := range h.nodes {
			if n == nil {
				continue
			}
			got := h.recs[i].snapshot()
			if len(got) < want {
				ok = false
				break
			}
			if ref == nil {
				ref = got
			} else if !equalStrings(ref, got) {
				ok = false
				break
			}
		}
		if ok && ref != nil {
			return ref
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, n := range h.nodes {
		if n != nil {
			h.t.Logf("node %d applied: %v", i, h.recs[i].snapshot())
		}
	}
	h.t.Fatalf("nodes did not converge on %d commands within %v", want, timeout)
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestElectionAndOrderedApply: a 3-node cluster elects one leader;
// commands submitted through DIFFERENT nodes (leader and followers —
// followers forward) are applied on every node, in one identical
// order.
func TestElectionAndOrderedApply(t *testing.T) {
	h := newHarness(t, 3)
	h.waitLeader(5 * time.Second)
	const k = 12
	for i := 0; i < k; i++ {
		node := h.nodes[i%3]
		if _, err := node.Submit(context.Background(), []byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatalf("submit %d via node %d: %v", i, i%3, err)
		}
	}
	seq := h.waitConverged(k, 5*time.Second)
	if len(seq) != k {
		t.Fatalf("converged on %d commands, want %d", len(seq), k)
	}
	// Sequential submits through a committed log preserve order.
	for i, c := range seq {
		if want := fmt.Sprintf("cmd-%d", i); c != want {
			t.Fatalf("position %d = %q, want %q", i, c, want)
		}
	}
}

// TestLeaderKillFailover: killing the leader mid-stream elects a new
// one among the survivors; every acknowledged command survives; the
// restarted node replays the full committed prefix in order.
func TestLeaderKillFailover(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(5 * time.Second)
	var acked []string
	submitVia := func(i int, cmd string) bool {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if _, err := h.nodes[i].Submit(ctx, []byte(cmd)); err != nil {
			return false
		}
		acked = append(acked, cmd)
		return true
	}
	for i := 0; i < 5; i++ {
		if !submitVia(lead, fmt.Sprintf("pre-%d", i)) {
			t.Fatalf("pre-kill submit %d failed", i)
		}
	}
	h.stop(lead)
	// Submit through the survivors while the old leader is dead; the
	// first few may fail during the election window — retry until the
	// new leader is serving.
	survivor := (lead + 1) % 3
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < 5 {
		if submitVia(survivor, fmt.Sprintf("post-%d", got)) {
			got++
		} else if time.Now().After(deadline) {
			t.Fatal("survivors never accepted writes after leader kill")
		}
	}
	newLead := h.waitLeader(5 * time.Second)
	if newLead == lead {
		t.Fatalf("dead node %d still counted as leader", lead)
	}
	seq := h.waitConverged(len(acked), 5*time.Second)
	if !equalStrings(seq, acked) {
		t.Fatalf("survivors applied %v, want acked %v", seq, acked)
	}

	// Crash-recovery: the old leader comes back on its WAL dir and
	// replays the whole committed prefix, converging with the others.
	h.restart(lead)
	seq = h.waitConverged(len(acked), 5*time.Second)
	if !equalStrings(seq, acked) {
		t.Fatalf("restarted cluster applied %v, want %v", seq, acked)
	}
}

// TestPartitionedFollowerCatchesUp: with one follower partitioned, the
// majority keeps committing; after healing, the follower replays the
// missed suffix in order.
func TestPartitionedFollowerCatchesUp(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(5 * time.Second)
	follower := (lead + 1) % 3
	h.partition(follower)
	const k = 6
	for i := 0; i < k; i++ {
		if _, err := h.nodes[lead].Submit(context.Background(), []byte(fmt.Sprintf("part-%d", i))); err != nil {
			t.Fatalf("submit during partition: %v", err)
		}
	}
	if got := len(h.recs[follower].snapshot()); got != 0 {
		t.Fatalf("partitioned follower applied %d commands", got)
	}
	h.heal()
	seq := h.waitConverged(k, 5*time.Second)
	for i := 0; i < k; i++ {
		if want := fmt.Sprintf("part-%d", i); seq[i] != want {
			t.Fatalf("position %d = %q, want %q", i, seq[i], want)
		}
	}
}

// TestMinorityCannotCommit: a leader partitioned away from both
// followers steps down (lease) and Submit fails with ErrNoLeader
// rather than acking a write a majority never saw.
func TestMinorityCannotCommit(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(5 * time.Second)
	h.partition(lead)
	// The lease is two election timeouts; wait it out.
	deadline := time.Now().Add(3 * time.Second)
	for h.nodes[lead].IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("partitioned leader never stepped down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	_, err := h.nodes[lead].Submit(ctx, []byte("lost-write"))
	if err == nil {
		t.Fatal("minority-side submit succeeded")
	}
	// Meanwhile the majority side elects and serves.
	h.heal()
	h.waitLeader(5 * time.Second)
}

// TestRestartAllReplaysCommitted: a full-cluster stop and restart
// (fresh state machines, surviving WAL dirs) replays every committed
// command on every node — the durability contract of quorum commit.
func TestRestartAllReplaysCommitted(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(5 * time.Second)
	const k = 8
	for i := 0; i < k; i++ {
		if _, err := h.nodes[lead].Submit(context.Background(), []byte(fmt.Sprintf("dur-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.waitConverged(k, 5*time.Second)
	for i := 0; i < 3; i++ {
		h.stop(i)
	}
	for i := 0; i < 3; i++ {
		h.restart(i)
	}
	h.waitLeader(5 * time.Second)
	seq := h.waitConverged(k, 5*time.Second)
	for i := 0; i < k; i++ {
		if want := fmt.Sprintf("dur-%d", i); seq[i] != want {
			t.Fatalf("after restart, position %d = %q, want %q", i, seq[i], want)
		}
	}
}

// errRPC is a transport to nowhere: every RPC fails. It pins a node in
// the follower/candidate role for white-box RPC-handler tests.
type errRPC struct{}

func (errRPC) PostJSON(context.Context, string, string, any, any) error {
	return errors.New("errRPC: unreachable")
}

// openFollower opens a 3-member node whose peers are unreachable and
// whose election timeout is far beyond the test, so its state evolves
// only through the HandleAppend/HandleVote calls the test makes.
func openFollower(t *testing.T) (*Node, *applyRec) {
	t.Helper()
	rec := &applyRec{}
	n, err := Open(Config{
		Self:            "http://a",
		Peers:           []string{"http://a", "http://b", "http://c"},
		Dir:             t.TempDir(),
		Transport:       errRPC{},
		Apply:           rec.apply,
		ElectionTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, rec
}

// TestAppendCommitClampedToVerifiedPrefix: the follower commit index
// advances only over min(leaderCommit, prevIndex+len(entries)) — the
// prefix this exchange actually verified — never to lastIndex. The
// scenario: a fast-backup hint walks the leader's nextIndex below a
// follower's conflicting uncommitted old-term tail; a matching batch
// ending mid-log must not mark that tail committed.
func TestAppendCommitClampedToVerifiedPrefix(t *testing.T) {
	n, rec := openFollower(t)
	e := func(i, term uint64, cmd string) entry {
		return entry{Index: i, Term: term, Cmd: []byte(cmd)}
	}
	// Term-1 prefix 1..3 (matches every future leader), then an
	// uncommitted term-2 suffix 4..5 from a deposed leader.
	if r := n.HandleAppend(&AppendRequest{Term: 1, Leader: "http://b", Entries: []entry{e(1, 1, "A"), e(2, 1, "B"), e(3, 1, "C")}}); !r.Success {
		t.Fatal("prefix append rejected")
	}
	if r := n.HandleAppend(&AppendRequest{Term: 2, Leader: "http://c", PrevIndex: 3, PrevTerm: 1, Entries: []entry{e(4, 2, "X"), e(5, 2, "Y")}}); !r.Success {
		t.Fatal("suffix append rejected")
	}
	// Term-3 leader (whose own 4..5 differ) sends a batch that ends at
	// index 3, with its commit index already at 5.
	r := n.HandleAppend(&AppendRequest{Term: 3, Leader: "http://b", PrevIndex: 2, PrevTerm: 1, Entries: []entry{e(3, 1, "C")}, Commit: 5})
	if !r.Success {
		t.Fatal("mid-log append rejected")
	}
	if got := n.Snapshot().Commit; got != 3 {
		t.Fatalf("commit = %d after batch verifying through 3, want 3", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Applied() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := rec.snapshot(); !equalStrings(got, []string{"A", "B", "C"}) {
		t.Fatalf("applied %v, want the verified prefix only", got)
	}
}

// TestVoteLeaderStickiness: a vote request with an inflated term is
// refused — without adopting the term — while the follower has heard
// its leader within an election timeout; once the leader goes silent,
// the same request is granted.
func TestVoteLeaderStickiness(t *testing.T) {
	n, _ := openFollower(t)
	n.HandleAppend(&AppendRequest{Term: 1, Leader: "http://b"})
	req := &VoteRequest{Term: 9, Candidate: "http://c", LastIndex: 100, LastTerm: 9}
	if r := n.HandleVote(req); r.Granted {
		t.Fatal("vote granted while the leader is live")
	}
	if got := n.Snapshot().Term; got != 1 {
		t.Fatalf("sticky rejection adopted term %d, want 1", got)
	}
	// Leader silence: age the last contact past the election timeout.
	n.mu.Lock()
	n.lastLeaderSeen = time.Now().Add(-2 * time.Minute)
	n.mu.Unlock()
	if r := n.HandleVote(req); !r.Granted {
		t.Fatal("vote refused after the leader went silent")
	}
	if got := n.Snapshot().Term; got != 9 {
		t.Fatalf("term = %d after granting, want 9", got)
	}
}

// TestSubmitWithIDDedupes: submissions sharing an idempotency key
// occupy one log slot and apply once — directly on a leader, and
// through a follower's forward path (the lost-response retry shape).
func TestSubmitWithIDDedupes(t *testing.T) {
	h := newHarness(t, 3)
	lead := h.waitLeader(5 * time.Second)
	follower := (lead + 1) % 3
	ctx := context.Background()
	i1, err := h.nodes[lead].SubmitWithID(ctx, "k1", []byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	i2, err := h.nodes[lead].SubmitWithID(ctx, "k1", []byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 {
		t.Fatalf("leader retry landed on index %d, want %d", i2, i1)
	}
	// Forwarded retries dedupe at the leader too — including a replay
	// of a key the leader already committed.
	j1, err := h.nodes[follower].SubmitWithID(ctx, "k2", []byte("fwd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, via := range []int{follower, (lead + 2) % 3} {
		j2, err := h.nodes[via].SubmitWithID(ctx, "k2", []byte("fwd"))
		if err != nil {
			t.Fatal(err)
		}
		if j1 != j2 {
			t.Fatalf("forwarded retry via node %d landed on %d, want %d", via, j2, j1)
		}
	}
	seq := h.waitConverged(2, 5*time.Second)
	if !equalStrings(seq, []string{"once", "fwd"}) {
		t.Fatalf("applied %v, want each keyed command exactly once", seq)
	}
}

// TestSingleNodeLog: a one-member log (quorum 1) elects itself and
// commits locally — the degenerate deployment still works.
func TestSingleNodeLog(t *testing.T) {
	rec := &applyRec{}
	n, err := Open(Config{
		Self:            "http://solo",
		Peers:           []string{"http://solo"},
		Dir:             t.TempDir(),
		Apply:           rec.apply,
		ElectionTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Submit(context.Background(), []byte("only")); err != nil {
		t.Fatal(err)
	}
	if got := rec.snapshot(); len(got) != 1 || got[0] != "only" {
		t.Fatalf("applied %v", got)
	}
	st := n.Snapshot()
	if st.Role != "leader" || st.Applied < 1 {
		t.Fatalf("snapshot = %+v", st)
	}
}
