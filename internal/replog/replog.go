// Package replog is a minimal leader-lease replicated log: the
// machinery that turns "/update on any node" into "every node applies
// the same commands in the same order, and a quorum-committed command
// survives any minority of node failures".
//
// It is a deliberately small subset of raft (Ongaro & Ousterhout,
// 2014) with no external dependency, running its three RPCs (vote,
// append, propose-forward) over the cluster's existing peer Transport:
//
//   - Term-numbered leader election with randomized election timeouts.
//     A follower that hears no leader for its (randomized) timeout
//     becomes a candidate, increments the term and solicits votes; a
//     quorum of votes makes it leader. Terms and votes are fsynced to
//     the WAL before they are acted on, so a restarted node can never
//     vote twice in one term.
//   - Append/ack replication with quorum commit. The leader appends
//     commands to its local WAL and streams them to followers with a
//     (prevIndex, prevTerm) consistency check; an entry is committed
//     once a quorum holds it *and* it belongs to the leader's current
//     term (the raft §5.4.2 rule). Followers learn the commit index on
//     the next append/heartbeat.
//   - Follower catch-up by sequential replay: a follower that rejects
//     an append walks the leader's nextIndex back until histories
//     meet, then receives the suffix in order. A conflicting
//     (uncommitted) suffix on the follower is physically truncated
//     from its WAL.
//   - Leader lease: a leader that cannot reach a quorum of followers
//     for two election timeouts steps down to follower rather than
//     serving split-brain writes forever. Elections make the lease
//     safe: a new leader can only be elected where the old one cannot
//     reach a quorum.
//
// Each node applies committed entries, in index order, exactly once
// per process lifetime, through the Apply callback — the server hangs
// its whole invalidation transition (database mutation, cache
// generation bump, L2 store bump, epoch-vector advance) off that
// callback, which is what upgrades best-effort gossip to a
// committed-prefix guarantee.
//
// Persistence is one internal/wal log per node (CRC-framed records,
// torn tail truncated on open) holding interleaved meta records (term,
// vote) and entry records; on restart the node replays it and rejoins
// with its history intact.
package replog

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kyrix/internal/wal"
)

// Role is a node's current consensus role.
type Role int32

const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return fmt.Sprintf("role(%d)", int32(r))
}

// RPC is the transport the log runs over: one JSON request/response
// exchange with a named peer. cluster.Transport implements it; tests
// substitute their own.
type RPC interface {
	PostJSON(ctx context.Context, node, path string, req, resp any) error
}

// Apply is the state-machine callback: called for every committed
// entry exactly once per process lifetime, in index order, never
// concurrently. cmd is nil for the no-op entry a new leader commits to
// establish its term. An Apply error is recorded and returned to the
// Submit waiting on that index, but does not halt the log — the entry
// stays applied (deterministic state machines fail deterministically
// everywhere or nowhere).
type Apply func(index uint64, cmd []byte) error

// Config configures one log node.
type Config struct {
	// Self is this node's identity — its base URL on the cluster
	// transport.
	Self string
	// Peers is the full member list (Self may be included; it is
	// deduplicated). Quorum is len(members)/2 + 1.
	Peers []string
	// Dir is the directory holding this node's WAL (created if
	// needed). Reusing a dir across restarts is what crash-recovery
	// means.
	Dir string
	// Transport carries the RPCs. Required when the member list names
	// anyone besides Self.
	Transport RPC
	// Apply is the state-machine callback. Required.
	Apply Apply
	// ElectionTimeout is the base election timeout; each node
	// randomizes per election in [1x, 2x). 0 = 150ms.
	ElectionTimeout time.Duration
	// Heartbeat is the leader's append interval. 0 = ElectionTimeout/5
	// (clamped to at least 10ms).
	Heartbeat time.Duration
	// SubmitTimeout bounds one Submit end to end when its context has
	// no earlier deadline. 0 = 5s.
	SubmitTimeout time.Duration
	// MaxBatch bounds entries per append RPC. 0 = 64.
	MaxBatch int
}

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("replog: closed")

// ErrNoLeader is returned by Submit when no leader could be reached
// within the deadline — the cluster is mid-election or lacks a quorum.
// Callers surface it as "temporarily unavailable, retry".
var ErrNoLeader = errors.New("replog: no leader")

// entry is one log slot. ID, when nonempty, is the command's
// idempotency key: the leader refuses to append a second entry with
// the same ID, which is what makes Submit's internal retry loop (and a
// client retry carrying its own key) exactly-once at the state machine
// instead of at-least-once.
type entry struct {
	Index uint64 `json:"index"`
	Term  uint64 `json:"term"`
	ID    string `json:"id,omitempty"`
	Cmd   []byte `json:"cmd,omitempty"`
}

// Stats is a point-in-time snapshot for /stats.
type Stats struct {
	Role      string `json:"role"`
	Term      uint64 `json:"term"`
	Leader    string `json:"leader,omitempty"`
	LastIndex uint64 `json:"lastIndex"`
	Commit    uint64 `json:"commit"`
	Applied   uint64 `json:"applied"`
	Members   int    `json:"members"`
}

// Node is one member of the replicated log.
type Node struct {
	cfg     Config
	members []string // deduped, Self included
	others  []string // members minus Self
	quorum  int

	mu       sync.Mutex
	role     Role                 // guarded by mu
	term     uint64               // guarded by mu
	votedFor string               // guarded by mu
	leader   string               // guarded by mu; last known leader this term ("" = unknown)
	log      []entry              // guarded by mu
	lsns     []wal.LSN            // guarded by mu; lsns[i] = WAL offset of log[i]'s record
	idIndex  map[string]uint64    // guarded by mu; log index per nonempty entry ID (dedupe)
	idSeq    uint64               // guarded by mu; Submit's per-process ID counter
	commit   uint64               // guarded by mu
	applied  uint64               // guarded by mu
	next     map[string]uint64    // guarded by mu; leader: next index to send per peer
	match    map[string]uint64    // guarded by mu; leader: highest replicated index per peer
	inflight map[string]bool      // guarded by mu; leader: replication loop running per peer
	lastAck  map[string]time.Time // guarded by mu
	lastBeat time.Time            // guarded by mu; leader: last heartbeat broadcast
	deadline time.Time            // guarded by mu; follower/candidate: election deadline
	// lastLeaderSeen is the last accepted append/heartbeat from a
	// current leader — the leader-stickiness window for HandleVote.
	lastLeaderSeen time.Time        // guarded by mu
	closed         bool             // guarded by mu
	applyErrs      map[uint64]error // guarded by mu; recent apply results, for Submit waiters
	commitCond     *sync.Cond       // commit advanced (applier wakes)
	appliedCond    *sync.Cond       // applied advanced (Submit waiters wake)

	wal     *wal.Log // entry log (suffix-truncatable)
	metaWal *wal.Log // term/vote log (append-only, last wins)
	rng     *rand.Rand
	nonce   uint64 // per-process namespace for generated submit IDs
	stop    chan struct{}
	wg      sync.WaitGroup
}

// Open replays (or creates) the WAL under cfg.Dir and starts the
// node's election timer and apply loop. Committed entries from a
// previous run are NOT re-applied here by the node itself — applied
// tracking is per-process and the commit index is rediscovered from
// the leader — so a restarting node replays its whole committed prefix
// through Apply, which is exactly right for a state machine rebuilt
// from scratch each boot (the in-memory database).
func Open(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("replog: Config.Self required")
	}
	if cfg.Apply == nil {
		return nil, errors.New("replog: Config.Apply required")
	}
	if cfg.Dir == "" {
		return nil, errors.New("replog: Config.Dir required")
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = max(cfg.ElectionTimeout/5, 10*time.Millisecond)
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 5 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	members := []string{cfg.Self}
	for _, p := range cfg.Peers {
		if p != "" && p != cfg.Self && !contains(members, p) {
			members = append(members, p)
		}
	}
	if len(members) > 1 && cfg.Transport == nil {
		return nil, errors.New("replog: Config.Transport required with peers")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replog: mkdir: %w", err)
	}
	w, err := wal.Open(filepath.Join(cfg.Dir, "replog.kyx"))
	if err != nil {
		return nil, err
	}
	mw, err := wal.Open(filepath.Join(cfg.Dir, "meta.kyx"))
	if err != nil {
		_ = w.Close() // already failing; the open error wins
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		members:   members,
		quorum:    len(members)/2 + 1,
		wal:       w,
		metaWal:   mw,
		next:      make(map[string]uint64),
		match:     make(map[string]uint64),
		inflight:  make(map[string]bool),
		lastAck:   make(map[string]time.Time),
		idIndex:   make(map[string]uint64),
		applyErrs: make(map[uint64]error),
		rng:       rand.New(rand.NewSource(int64(seedOf(cfg.Self)) ^ time.Now().UnixNano())),
		stop:      make(chan struct{}),
	}
	n.nonce = n.rng.Uint64()
	for _, m := range members {
		if m != cfg.Self {
			n.others = append(n.others, m)
		}
	}
	n.commitCond = sync.NewCond(&n.mu)
	n.appliedCond = sync.NewCond(&n.mu)
	n.mu.Lock()
	err = n.loadLocked()
	n.mu.Unlock()
	if err != nil {
		_ = w.Close()  // already failing; the open error wins
		_ = mw.Close() // already failing; the open error wins
		return nil, err
	}
	n.resetDeadlineLocked(time.Now())
	n.wg.Add(2)
	go n.run()
	go n.applier()
	return n, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func seedOf(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Self returns this node's identity.
func (n *Node) Self() string { return n.cfg.Self }

// IsLeader reports whether this node currently believes it leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader
}

// Leader returns the last known leader ("" if unknown this term).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// Applied returns the index through which entries have been applied.
func (n *Node) Applied() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applied
}

// Snapshot returns the /stats view.
func (n *Node) Snapshot() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		Role:      n.role.String(),
		Term:      n.term,
		Leader:    n.leader,
		LastIndex: n.lastIndexLocked(),
		Commit:    n.commit,
		Applied:   n.applied,
		Members:   len(n.members),
	}
}

func (n *Node) lastIndexLocked() uint64 { return uint64(len(n.log)) }

func (n *Node) termAtLocked(index uint64) uint64 {
	if index == 0 || index > uint64(len(n.log)) {
		return 0
	}
	return n.log[index-1].Term
}

func (n *Node) resetDeadlineLocked(now time.Time) {
	base := n.cfg.ElectionTimeout
	n.deadline = now.Add(base + time.Duration(n.rng.Int63n(int64(base))))
}

// run is the timer loop: election timeouts for followers/candidates,
// heartbeats and the quorum lease for the leader.
func (n *Node) run() {
	defer n.wg.Done()
	tick := time.NewTicker(min(n.cfg.Heartbeat/2, 10*time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case now := <-tick.C:
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				return
			}
			switch n.role {
			case Leader:
				if !n.quorumReachableLocked(now) {
					// Lease lost: a quorum has been silent for two
					// election timeouts; stop accepting writes so a
					// partitioned majority can elect freely.
					n.becomeFollowerLocked(n.term, "")
				} else if now.Sub(n.lastBeat) >= n.cfg.Heartbeat {
					n.lastBeat = now
					n.broadcastLocked()
				}
			default:
				if now.After(n.deadline) {
					n.startElectionLocked()
				}
			}
			n.mu.Unlock()
		}
	}
}

// quorumReachableLocked: the leader counts itself plus every follower
// acked within two election timeouts.
func (n *Node) quorumReachableLocked(now time.Time) bool {
	reach := 1
	for _, p := range n.others {
		if now.Sub(n.lastAck[p]) <= 2*n.cfg.ElectionTimeout {
			reach++
		}
	}
	return reach >= n.quorum
}

func (n *Node) becomeFollowerLocked(term uint64, leader string) {
	stepping := n.role != Follower || term != n.term
	if term != n.term {
		n.term = term
		n.votedFor = ""
		n.persistMetaLocked()
	}
	n.role = Follower
	n.leader = leader
	if stepping {
		n.resetDeadlineLocked(time.Now())
	}
}

func (n *Node) startElectionLocked() {
	n.role = Candidate
	n.term++
	n.votedFor = n.cfg.Self
	n.leader = ""
	n.persistMetaLocked()
	n.resetDeadlineLocked(time.Now())
	term := n.term
	req := &VoteRequest{
		Term:      term,
		Candidate: n.cfg.Self,
		LastIndex: n.lastIndexLocked(),
		LastTerm:  n.termAtLocked(n.lastIndexLocked()),
	}
	votes := 1 // self
	if votes >= n.quorum {
		n.becomeLeaderLocked()
		return
	}
	for _, p := range n.others {
		peer := p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeout)
			defer cancel()
			var resp VoteResponse
			if err := n.cfg.Transport.PostJSON(ctx, peer, VotePath, req, &resp); err != nil {
				return
			}
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.closed {
				return
			}
			if resp.Term > n.term {
				n.becomeFollowerLocked(resp.Term, "")
				return
			}
			if n.role != Candidate || n.term != term || !resp.Granted {
				return
			}
			votes++
			if votes >= n.quorum {
				n.becomeLeaderLocked()
			}
		}()
	}
}

func (n *Node) becomeLeaderLocked() {
	n.role = Leader
	n.leader = n.cfg.Self
	now := time.Now()
	for _, p := range n.others {
		n.next[p] = n.lastIndexLocked() + 1
		n.match[p] = 0
		n.lastAck[p] = now
	}
	// Commit a no-op immediately: a leader may only count replicas of
	// its *own-term* entries toward commit (§5.4.2), so without this
	// an idle new leader would never learn its predecessors' tail is
	// committed — and neither would anyone else.
	n.appendLocalLocked("", nil)
	n.broadcastLocked()
}

// appendLocalLocked appends one entry with the current term to the
// local log and WAL (synced — a leader acks nothing it could forget).
func (n *Node) appendLocalLocked(id string, cmd []byte) uint64 {
	e := entry{Index: n.lastIndexLocked() + 1, Term: n.term, ID: id, Cmd: cmd}
	lsn := n.persistEntryLocked(e)
	n.log = append(n.log, e)
	n.lsns = append(n.lsns, lsn)
	if id != "" {
		n.idIndex[id] = e.Index
	}
	n.advanceCommitLocked()
	return e.Index
}

// appendCmdLocked is the leader's dedicated command-append path: an ID
// already present in the log returns its existing index instead of a
// second entry. This is what turns a retried propose — forward response
// lost, leader change mid-submit, ambiguous timeout — into the SAME log
// slot. It is safe across failover: a committed entry is in every
// electable leader's log (election restriction), so its ID is found
// here; an uncommitted copy that a new leader lacks is truncated from
// the old leader's log before it could ever apply.
func (n *Node) appendCmdLocked(id string, cmd []byte) uint64 {
	if id != "" {
		if idx, ok := n.idIndex[id]; ok {
			return idx
		}
	}
	return n.appendLocalLocked(id, cmd)
}

// broadcastLocked kicks the per-peer replication loops.
func (n *Node) broadcastLocked() {
	for _, p := range n.others {
		n.replicateLocked(p)
	}
}

// replicateLocked starts (if not already running) the replication loop
// for one peer. The loop sends appends until the peer is caught up or
// an RPC fails; failures are retried by the next heartbeat tick, which
// restarts the loop — the heartbeat IS the retry policy.
func (n *Node) replicateLocked(peer string) {
	if n.inflight[peer] || n.closed {
		return
	}
	n.inflight[peer] = true
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			n.mu.Lock()
			if n.closed || n.role != Leader {
				n.inflight[peer] = false
				n.mu.Unlock()
				return
			}
			term := n.term
			ni := n.next[peer]
			if ni == 0 {
				ni = 1
			}
			prevIndex := ni - 1
			prevTerm := n.termAtLocked(prevIndex)
			var entries []entry
			if last := n.lastIndexLocked(); ni <= last {
				hi := min(last, ni+uint64(n.cfg.MaxBatch)-1)
				entries = append(entries, n.log[ni-1:hi]...)
			}
			req := &AppendRequest{
				Term:      term,
				Leader:    n.cfg.Self,
				PrevIndex: prevIndex,
				PrevTerm:  prevTerm,
				Entries:   entries,
				Commit:    n.commit,
			}
			n.mu.Unlock()

			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeout)
			var resp AppendResponse
			err := n.cfg.Transport.PostJSON(ctx, peer, AppendPath, req, &resp)
			cancel()

			n.mu.Lock()
			if n.closed {
				n.inflight[peer] = false
				n.mu.Unlock()
				return
			}
			if err != nil {
				n.inflight[peer] = false
				n.mu.Unlock()
				return
			}
			if resp.Term > n.term {
				n.becomeFollowerLocked(resp.Term, "")
				n.inflight[peer] = false
				n.mu.Unlock()
				return
			}
			if n.role != Leader || n.term != term {
				n.inflight[peer] = false
				n.mu.Unlock()
				return
			}
			n.lastAck[peer] = time.Now()
			if resp.Success {
				m := prevIndex + uint64(len(entries))
				if m > n.match[peer] {
					n.match[peer] = m
				}
				n.next[peer] = m + 1
				n.advanceCommitLocked()
				if n.next[peer] <= n.lastIndexLocked() {
					n.mu.Unlock()
					continue // more to ship
				}
				n.inflight[peer] = false
				n.mu.Unlock()
				return
			}
			// Consistency reject: walk back (or jump to the
			// follower's hint) and retry immediately.
			nn := n.next[peer]
			if resp.Hint > 0 && resp.Hint < nn {
				nn = resp.Hint
			} else if nn > 1 {
				nn--
			}
			n.next[peer] = max(nn, 1)
			n.mu.Unlock()
		}
	}()
}

// advanceCommitLocked recomputes the commit index: the largest index
// replicated on a quorum whose entry is from the current term.
func (n *Node) advanceCommitLocked() {
	if n.role != Leader {
		return
	}
	idxs := make([]uint64, 0, len(n.members))
	idxs = append(idxs, n.lastIndexLocked()) // self
	for _, p := range n.others {
		idxs = append(idxs, n.match[p])
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	candidate := idxs[n.quorum-1]
	if candidate > n.commit && n.termAtLocked(candidate) == n.term {
		n.commit = candidate
		n.commitCond.Broadcast()
	}
}

// applier applies committed entries in order, one at a time, outside
// the lock.
func (n *Node) applier() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for n.applied >= n.commit && !n.closed {
			n.commitCond.Wait()
		}
		if n.closed && n.applied >= n.commit {
			n.mu.Unlock()
			return
		}
		idx := n.applied + 1
		e := n.log[idx-1]
		n.mu.Unlock()

		var err error
		if len(e.Cmd) > 0 {
			err = n.cfg.Apply(idx, e.Cmd)
		}

		n.mu.Lock()
		n.applied = idx
		if err != nil {
			n.applyErrs[idx] = err
		}
		// Bound the error memory: waiters claim errors promptly; 1024
		// outstanding indexes is far past any in-flight window.
		if len(n.applyErrs) > 1024 {
			for k := range n.applyErrs {
				if k+1024 < idx {
					delete(n.applyErrs, k)
				}
			}
		}
		n.appliedCond.Broadcast()
		n.mu.Unlock()
	}
}

// waitApplied blocks until the local state machine has applied index,
// returning that entry's Apply error (nil for success or the no-op).
func (n *Node) waitApplied(ctx context.Context, index uint64) error {
	stop := context.AfterFunc(ctx, func() {
		n.mu.Lock()
		n.appliedCond.Broadcast()
		n.mu.Unlock()
	})
	defer stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.applied < index {
		if n.closed {
			return ErrClosed
		}
		if ctx.Err() != nil {
			return fmt.Errorf("replog: entry %d not applied: %w", index, ctx.Err())
		}
		n.appliedCond.Wait()
	}
	err := n.applyErrs[index]
	delete(n.applyErrs, index)
	return err
}

// newID mints a process-unique idempotency key for one Submit call.
func (n *Node) newID() string {
	n.mu.Lock()
	n.idSeq++
	seq := n.idSeq
	n.mu.Unlock()
	return fmt.Sprintf("%s/%x.%d", n.cfg.Self, n.nonce, seq)
}

// Submit replicates cmd through the log and returns its index once it
// is committed and applied on THIS node (read-your-writes for the node
// that answered the client). It mints a fresh idempotency key, so one
// Submit call applies cmd at most once no matter how many internal
// retries it takes — but two Submit calls with the same cmd are two
// commands. Callers that need retry-across-calls safety (a client
// re-posting after an ambiguous error) use SubmitWithID.
func (n *Node) Submit(ctx context.Context, cmd []byte) (uint64, error) {
	return n.SubmitWithID(ctx, n.newID(), cmd)
}

// SubmitWithID is Submit under a caller-chosen idempotency key: all
// submissions sharing id occupy at most one log slot, so a retry of a
// non-idempotent command after a lost response cannot double-apply it
// (the key must be unique per logical command). On the leader it
// proposes directly; on a follower it forwards to the last known
// leader and then waits for the entry to arrive and apply locally.
// Retries internally across leader changes until the deadline; returns
// ErrNoLeader (wrapped) when the cluster has no electable quorum
// within it.
func (n *Node) SubmitWithID(ctx context.Context, id string, cmd []byte) (uint64, error) {
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.cfg.SubmitTimeout)
		defer cancel()
	}
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return 0, ErrClosed
		}
		if n.role == Leader {
			idx := n.appendCmdLocked(id, cmd)
			n.broadcastLocked()
			n.mu.Unlock()
			return idx, n.waitApplied(ctx, idx)
		}
		leader := n.leader
		n.mu.Unlock()

		if leader != "" && leader != n.cfg.Self {
			req := &ProposeRequest{ID: id, Cmd: cmd}
			var resp ProposeResponse
			err := n.cfg.Transport.PostJSON(ctx, leader, ProposePath, req, &resp)
			if err == nil {
				switch {
				case resp.Index > 0:
					// Committed at the leader; wait for it to reach
					// and apply on this node (the commit index rides
					// the next heartbeat).
					if werr := n.waitApplied(ctx, resp.Index); werr != nil {
						return 0, werr
					}
					if resp.Err != "" {
						return resp.Index, errors.New(resp.Err)
					}
					return resp.Index, nil
				case resp.NotLeader:
					// Stale hint; adopt the leader's own hint if any.
					n.mu.Lock()
					if resp.Leader != "" && resp.Leader != leader {
						n.leader = resp.Leader
					} else if n.leader == leader {
						n.leader = ""
					}
					n.mu.Unlock()
				case resp.Err != "":
					return 0, errors.New(resp.Err)
				}
			}
		}
		// No leader known (or the forward failed): wait out a slice of
		// the budget and retry — an election is likely in progress.
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("%w: %v", ErrNoLeader, ctx.Err())
		case <-time.After(n.cfg.ElectionTimeout / 4):
		}
	}
}

// Close stops the timer and replication loops, waits for the applier
// to drain every committed entry through Apply, fsyncs and closes the
// WAL. Safe to call once; the server calls it after the HTTP listener
// stops accepting.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.closed = true
	close(n.stop)
	n.commitCond.Broadcast()
	n.appliedCond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
	err := n.wal.Sync()
	if cerr := n.wal.Close(); err == nil {
		err = cerr
	}
	if cerr := n.metaWal.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, wal.ErrClosed) {
		err = nil
	}
	return err
}
