package replog

import (
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// RPC endpoint paths, mounted by the server under the node's HTTP mux
// (Handler serves all three).
const (
	VotePath    = "/replog/vote"
	AppendPath  = "/replog/append"
	ProposePath = "/replog/propose"
)

// VoteRequest solicits a vote for candidate in term.
type VoteRequest struct {
	Term      uint64 `json:"term"`
	Candidate string `json:"candidate"`
	LastIndex uint64 `json:"lastIndex"`
	LastTerm  uint64 `json:"lastTerm"`
}

// VoteResponse grants or denies; Term lets a stale candidate catch up.
type VoteResponse struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

// AppendRequest replicates entries (or, empty, heartbeats) with the
// raft consistency check.
type AppendRequest struct {
	Term      uint64  `json:"term"`
	Leader    string  `json:"leader"`
	PrevIndex uint64  `json:"prevIndex"`
	PrevTerm  uint64  `json:"prevTerm"`
	Entries   []entry `json:"entries,omitempty"`
	Commit    uint64  `json:"commit"`
}

// AppendResponse reports the consistency-check outcome; Hint, when
// set, is the follower's first-possible conflict index so the leader
// can skip the one-by-one walk-back.
type AppendResponse struct {
	Term    uint64 `json:"term"`
	Success bool   `json:"success"`
	Hint    uint64 `json:"hint,omitempty"`
}

// ProposeRequest forwards a command from a follower to the leader. ID
// is the command's idempotency key: a re-forward of the same command
// (after a lost response or a leader change) dedupes onto the entry
// the first forward appended, if it survived.
type ProposeRequest struct {
	ID  string `json:"id,omitempty"`
	Cmd []byte `json:"cmd"`
}

// ProposeResponse carries the committed index (the forwarder waits for
// its own apply of that index) or the leader's refusal.
type ProposeResponse struct {
	Index     uint64 `json:"index,omitempty"`
	NotLeader bool   `json:"notLeader,omitempty"`
	Leader    string `json:"leader,omitempty"`
	Err       string `json:"err,omitempty"`
}

// HandleVote is the vote RPC receiver.
func (n *Node) HandleVote(req *VoteRequest) *VoteResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &VoteResponse{Term: n.term}
	if n.closed || req.Term < n.term {
		return resp
	}
	// Leader stickiness (raft §6 / thesis §4.2.3): while a live leader
	// is heartbeating, deny votes WITHOUT adopting the candidate's term
	// — a briefly partitioned node rejoining with an inflated term must
	// not depose a healthy leader. The check covers both a follower that
	// heard its leader within an election timeout and a leader still
	// holding its quorum lease.
	now := time.Now()
	if req.Term > n.term {
		sticky := now.Sub(n.lastLeaderSeen) < n.cfg.ElectionTimeout ||
			(n.role == Leader && n.quorumReachableLocked(now))
		if sticky {
			return resp
		}
		n.becomeFollowerLocked(req.Term, "")
		resp.Term = n.term
	}
	// Grant only to candidates whose log is at least as up to date
	// (§5.4.1): last terms compare first, lengths break ties.
	lastIdx := n.lastIndexLocked()
	lastTerm := n.termAtLocked(lastIdx)
	upToDate := req.LastTerm > lastTerm || (req.LastTerm == lastTerm && req.LastIndex >= lastIdx)
	if (n.votedFor == "" || n.votedFor == req.Candidate) && upToDate {
		n.votedFor = req.Candidate
		n.persistMetaLocked()
		n.resetDeadlineLocked(time.Now())
		resp.Granted = true
	}
	return resp
}

// HandleAppend is the append/heartbeat RPC receiver.
func (n *Node) HandleAppend(req *AppendRequest) *AppendResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &AppendResponse{Term: n.term}
	if n.closed || req.Term < n.term {
		return resp
	}
	if req.Term > n.term || n.role != Follower {
		n.becomeFollowerLocked(req.Term, req.Leader)
		resp.Term = n.term
	}
	n.leader = req.Leader
	n.lastLeaderSeen = time.Now()
	n.resetDeadlineLocked(n.lastLeaderSeen)

	if req.PrevIndex > 0 {
		if req.PrevIndex > n.lastIndexLocked() {
			resp.Hint = n.lastIndexLocked() + 1
			return resp
		}
		if n.termAtLocked(req.PrevIndex) != req.PrevTerm {
			// First index of the conflicting term: the whole term run
			// must go, so hint its start.
			hint := req.PrevIndex
			ct := n.termAtLocked(req.PrevIndex)
			for hint > 1 && n.termAtLocked(hint-1) == ct {
				hint--
			}
			resp.Hint = hint
			return resp
		}
	}
	dirty := false
	for i := range req.Entries {
		e := req.Entries[i]
		if e.Index <= n.lastIndexLocked() {
			if n.termAtLocked(e.Index) == e.Term {
				continue // already have it
			}
			n.truncateFromLocked(e.Index)
		}
		lsn := n.persistEntryNoSyncLocked(e)
		n.log = append(n.log, e)
		n.lsns = append(n.lsns, lsn)
		if e.ID != "" {
			// Followers track IDs too: whichever node is elected next
			// must dedupe retries against the entries it inherited.
			n.idIndex[e.ID] = e.Index
		}
		dirty = true
	}
	if dirty {
		// One fsync per batch: an acked entry must survive a crash —
		// the leader counts this ack toward quorum commit.
		_ = n.wal.Sync()
	}
	// Advance commit only over the prefix this exchange verified:
	// min(leaderCommit, prevIndex+len(entries)), the raft figure-2 rule.
	// Clamping to lastIndex instead would be wrong — after a fast-backup
	// hint walks the leader's nextIndex below our uncommitted tail, a
	// matching batch ending mid-log would mark a conflicting old-term
	// suffix committed before the leader has overwritten it.
	if c := min(req.Commit, req.PrevIndex+uint64(len(req.Entries))); c > n.commit {
		n.commit = c
		n.commitCond.Broadcast()
	}
	resp.Success = true
	return resp
}

// HandlePropose is the leader-side receiver of forwarded commands: it
// proposes cmd, waits for quorum commit and local apply, and returns
// the index (so the forwarder can wait for its own apply).
func (n *Node) HandlePropose(req *ProposeRequest) *ProposeResponse {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return &ProposeResponse{Err: ErrClosed.Error()}
	}
	if n.role != Leader {
		resp := &ProposeResponse{NotLeader: true, Leader: n.leader}
		n.mu.Unlock()
		return resp
	}
	idx := n.appendCmdLocked(req.ID, req.Cmd)
	n.broadcastLocked()
	n.mu.Unlock()

	ctx, cancel := contextWithTimeout(n.cfg.SubmitTimeout)
	defer cancel()
	if err := n.waitApplied(ctx, idx); err != nil {
		return &ProposeResponse{Index: idx, Err: err.Error()}
	}
	return &ProposeResponse{Index: idx}
}

// Handler serves the three RPC endpoints; the server mounts it at
// /replog/.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(VotePath, func(w http.ResponseWriter, r *http.Request) {
		var req VoteRequest
		if !decodeRPC(w, r, &req) {
			return
		}
		writeRPC(w, n.HandleVote(&req))
	})
	mux.HandleFunc(AppendPath, func(w http.ResponseWriter, r *http.Request) {
		var req AppendRequest
		if !decodeRPC(w, r, &req) {
			return
		}
		writeRPC(w, n.HandleAppend(&req))
	})
	mux.HandleFunc(ProposePath, func(w http.ResponseWriter, r *http.Request) {
		var req ProposeRequest
		if !decodeRPC(w, r, &req) {
			return
		}
		writeRPC(w, n.HandlePropose(&req))
	})
	return mux
}

// maxRPCBody bounds one RPC request body (a batch of update commands
// comfortably fits; anything bigger is hostile or broken).
const maxRPCBody = 8 << 20

func decodeRPC(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxRPCBody)).Decode(into); err != nil {
		http.Error(w, "bad RPC body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeRPC(w http.ResponseWriter, resp any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
