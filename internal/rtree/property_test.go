package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kyrix/internal/geom"
)

// Property: a bulk-loaded tree with random deletions applied still
// answers window queries exactly like brute force.
func TestQuickBulkLoadThenDelete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(300)
		items := randomItems(n, seed, 5000)
		tr := BulkLoad(append([]Item(nil), items...))
		// Delete a random third.
		alive := make([]Item, 0, n)
		for i, it := range items {
			if i%3 == 0 {
				if !tr.Delete(it.Box, it.Val) {
					return false
				}
				continue
			}
			alive = append(alive, it)
		}
		if tr.Len() != len(alive) {
			return false
		}
		for q := 0; q < 30; q++ {
			w := geom.RectXYWH(rng.Float64()*4500, rng.Float64()*4500,
				rng.Float64()*800, rng.Float64()*800)
			if tr.Count(w) != bruteCount(alive, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: insertion order never affects query results.
func TestQuickInsertOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := randomItems(300, seed, 2000)
		a := New()
		for _, it := range items {
			a.Insert(it.Box, it.Val)
		}
		b := New()
		perm := rng.Perm(len(items))
		for _, i := range perm {
			b.Insert(items[i].Box, items[i].Val)
		}
		for q := 0; q < 20; q++ {
			w := geom.RectXYWH(rng.Float64()*1800, rng.Float64()*1800, 300, 300)
			if a.Count(w) != b.Count(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: tree bounds always contain every member item.
func TestQuickBoundsInvariant(t *testing.T) {
	f := func(seed int64) bool {
		items := randomItems(100, seed, 10000)
		tr := New()
		for _, it := range items {
			tr.Insert(it.Box, it.Val)
			if !tr.Bounds().Contains(it.Box) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
