package rtree

import (
	"math/rand"
	"testing"

	"kyrix/internal/geom"
)

func pt(x, y float64) geom.Rect { return geom.RectAround(geom.Point{X: x, Y: y}, 1) }

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("empty Len")
	}
	n := 0
	tr.Search(geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, func(Item) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty search")
	}
	if tr.Bounds().Valid() {
		t.Fatal("empty bounds should be invalid")
	}
	if tr.Delete(pt(1, 1), 1) {
		t.Fatal("delete on empty")
	}
}

func TestInsertSearch(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(pt(float64(i*10), float64(i*10)), uint64(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Window over items 20..29 (x in [200,290]).
	got := map[uint64]bool{}
	tr.Search(geom.Rect{MinX: 199, MinY: 199, MaxX: 291, MaxY: 291}, func(it Item) bool {
		got[it.Val] = true
		return true
	})
	if len(got) != 10 {
		t.Fatalf("window found %d items: %v", len(got), got)
	}
	for i := uint64(20); i < 30; i++ {
		if !got[i] {
			t.Fatalf("missing item %d", i)
		}
	}
}

func TestSearchEdgeTouch(t *testing.T) {
	tr := New()
	tr.Insert(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1)
	// Window touching the max corner must match (inclusive edges).
	if tr.Count(geom.Rect{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}) != 1 {
		t.Fatal("edge-touching window must hit")
	}
	if tr.Count(geom.Rect{MinX: 10.001, MinY: 10, MaxX: 20, MaxY: 20}) != 0 {
		t.Fatal("disjoint window must miss")
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(pt(1, 1), uint64(i))
	}
	n := 0
	tr.Search(geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}, func(Item) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Insert(pt(float64(i), float64(i)), uint64(i))
	}
	for i := 0; i < 200; i += 2 {
		if !tr.Delete(pt(float64(i), float64(i)), uint64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Delete(pt(0, 0), 0) {
		t.Fatal("double delete")
	}
	// Remaining odd items still findable.
	for i := 1; i < 200; i += 2 {
		if tr.Count(pt(float64(i), float64(i))) == 0 {
			t.Fatalf("item %d lost after deletes", i)
		}
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(pt(float64(i%10), float64(i/10)), uint64(i))
	}
	for i := 0; i < 100; i++ {
		if !tr.Delete(pt(float64(i%10), float64(i/10)), uint64(i)) {
			t.Fatalf("delete %d", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Count(geom.Rect{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100}) != 0 {
		t.Fatal("ghost items")
	}
}

func randomItems(n int, seed int64, extent float64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Box: pt(rng.Float64()*extent, rng.Float64()*extent),
			Val: uint64(i),
		}
	}
	return items
}

// bruteCount is the oracle.
func bruteCount(items []Item, w geom.Rect) int {
	n := 0
	for _, it := range items {
		if it.Box.Intersects(w) {
			n++
		}
	}
	return n
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	items := randomItems(2000, 11, 10000)
	tr := New()
	for _, it := range items {
		tr.Insert(it.Box, it.Val)
	}
	rng := rand.New(rand.NewSource(12))
	for q := 0; q < 200; q++ {
		w := geom.RectXYWH(rng.Float64()*9000, rng.Float64()*9000,
			rng.Float64()*1500, rng.Float64()*1500)
		want := bruteCount(items, w)
		if got := tr.Count(w); got != want {
			t.Fatalf("query %v: got %d want %d", w, got, want)
		}
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	items := randomItems(5000, 21, 50000)
	bulk := BulkLoad(append([]Item(nil), items...))
	if bulk.Len() != 5000 {
		t.Fatalf("bulk Len = %d", bulk.Len())
	}
	rng := rand.New(rand.NewSource(22))
	for q := 0; q < 200; q++ {
		w := geom.RectXYWH(rng.Float64()*45000, rng.Float64()*45000,
			rng.Float64()*5000, rng.Float64()*5000)
		want := bruteCount(items, w)
		if got := bulk.Count(w); got != want {
			t.Fatalf("bulk query %v: got %d want %d", w, got, want)
		}
	}
}

func TestBulkLoadSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2, maxEntries, maxEntries + 1, 100} {
		items := randomItems(n, int64(n), 100)
		tr := BulkLoad(append([]Item(nil), items...))
		if tr.Len() != n {
			t.Fatalf("n=%d Len=%d", n, tr.Len())
		}
		if got := tr.Count(geom.Rect{MinX: -10, MinY: -10, MaxX: 110, MaxY: 110}); got != n {
			t.Fatalf("n=%d full count=%d", n, got)
		}
	}
}

func TestBulkLoadBalanced(t *testing.T) {
	tr := BulkLoad(randomItems(100000, 5, 1e6))
	// STR: height <= ceil(log_16(ceil(n/16)))+1; 100k -> leaves=6250,
	// height 4-ish. Anything <= 5 is fine.
	if h := tr.Height(); h > 5 {
		t.Fatalf("bulk height = %d", h)
	}
}

func TestInsertAfterBulkLoad(t *testing.T) {
	items := randomItems(1000, 31, 1000)
	tr := BulkLoad(append([]Item(nil), items...))
	tr.Insert(pt(5000, 5000), 99999)
	if tr.Len() != 1001 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Count(pt(5000, 5000)) != 1 {
		t.Fatal("inserted item not found")
	}
	// Old items survive.
	if got := tr.Count(geom.Rect{MinX: -10, MinY: -10, MaxX: 1010, MaxY: 1010}); got != 1000 {
		t.Fatalf("old items = %d", got)
	}
}

func TestBoundsGrow(t *testing.T) {
	tr := New()
	tr.Insert(pt(10, 10), 1)
	tr.Insert(pt(500, 500), 2)
	b := tr.Bounds()
	if !b.ContainsPoint(geom.Point{X: 10, Y: 10}) || !b.ContainsPoint(geom.Point{X: 500, Y: 500}) {
		t.Fatalf("bounds %v", b)
	}
}

func TestClusteredData(t *testing.T) {
	// Mirror of the Skewed dataset: 80% of points in a hot corner.
	rng := rand.New(rand.NewSource(44))
	var items []Item
	for i := 0; i < 4000; i++ {
		items = append(items, Item{Box: pt(rng.Float64()*200, rng.Float64()*100), Val: uint64(i)})
	}
	for i := 4000; i < 5000; i++ {
		items = append(items, Item{Box: pt(rng.Float64()*1000, rng.Float64()*500), Val: uint64(i)})
	}
	tr := New()
	for _, it := range items {
		tr.Insert(it.Box, it.Val)
	}
	for q := 0; q < 100; q++ {
		w := geom.RectXYWH(rng.Float64()*900, rng.Float64()*450, 120, 80)
		if got, want := tr.Count(w), bruteCount(items, w); got != want {
			t.Fatalf("skewed query: got %d want %d", got, want)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(pt(rng.Float64()*1e6, rng.Float64()*1e5), uint64(i))
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	items := randomItems(100000, 2, 1e6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(append([]Item(nil), items...))
	}
}

func BenchmarkWindowQuery(b *testing.B) {
	tr := BulkLoad(randomItems(1_000_000, 3, 131072))
	w := geom.RectXYWH(60000, 60000, 1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Count(w)
	}
}
