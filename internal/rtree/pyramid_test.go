package rtree

import (
	"math/rand"
	"sync"
	"testing"

	"kyrix/internal/geom"
)

// The aggregation-pyramid access pattern: one STR bulk load of a full
// grid level (every cell a small box, nothing incremental) followed by
// many concurrent window queries — precompute builds each level's index
// once and the serving path only ever reads it. The test property-
// checks concurrent window results against a brute-force scan; run
// under -race it also proves the built tree is safe for concurrent
// readers.
func TestPyramidBulkLoadConcurrentWindows(t *testing.T) {
	const (
		cols, rows = 64, 32
		cell       = 64.0
		readers    = 8
		queries    = 40
	)
	rng := rand.New(rand.NewSource(42))
	// A full level grid, cells slightly inflated the way lod extents
	// are (member boxes poke past the cell edge by the point radius).
	items := make([]Item, 0, cols*rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			pad := rng.Float64() * 2
			items = append(items, Item{
				Box: geom.Rect{
					MinX: float64(c)*cell - pad, MinY: float64(r)*cell - pad,
					MaxX: float64(c+1)*cell + pad, MaxY: float64(r+1)*cell + pad,
				},
				Val: uint64(c*rows + r),
			})
		}
	}
	tr := BulkLoad(items)
	if tr.Len() != len(items) {
		t.Fatalf("bulk load kept %d of %d items", tr.Len(), len(items))
	}

	canvasW, canvasH := float64(cols)*cell, float64(rows)*cell
	brute := func(w geom.Rect) map[uint64]bool {
		out := map[uint64]bool{}
		for _, it := range items {
			if it.Box.Intersects(w) {
				out[it.Val] = true
			}
		}
		return out
	}
	// Windows at every pyramid-ish zoom: cell-sized through full-level,
	// placed randomly (deterministic per reader seed).
	windows := func(seed int64) []geom.Rect {
		wrng := rand.New(rand.NewSource(seed))
		ws := make([]geom.Rect, 0, queries)
		for i := 0; i < queries; i++ {
			scale := []float64{1, 4, 16, 64}[i%4]
			w, h := cell*scale, cell*scale
			if w > canvasW {
				w = canvasW
			}
			if h > canvasH {
				h = canvasH
			}
			ws = append(ws, geom.RectXYWH(
				wrng.Float64()*(canvasW-w), wrng.Float64()*(canvasH-h), w, h))
		}
		return ws
	}

	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for _, w := range windows(seed) {
				got := map[uint64]bool{}
				tr.Search(w, func(it Item) bool {
					got[it.Val] = true
					return true
				})
				want := brute(w)
				if len(got) != len(want) {
					errs <- "result size mismatch"
					return
				}
				for v := range want {
					if !got[v] {
						errs <- "missing item in window result"
						return
					}
				}
				if tr.Count(w) != len(want) {
					errs <- "Count disagrees with Search"
					return
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
