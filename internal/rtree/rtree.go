// Package rtree implements the spatial index behind Kyrix's second
// database design ("we store a bbox attribute ... and build a spatial
// index on the bbox column"). PostgreSQL's GiST-on-box is an R-tree
// variant, so this is a faithful substitute: quadratic-split Guttman
// R-tree for incremental inserts plus Sort-Tile-Recursive (STR) bulk
// loading for the precomputation phase.
package rtree

import (
	"math"
	"sort"

	"kyrix/internal/geom"
)

const (
	// maxEntries is M, the node capacity.
	maxEntries = 16
	// minEntries is m, the minimum fill on split.
	minEntries = 6
)

// Item is one indexed entry: a bounding box and an opaque payload
// (a packed RID in the DB layer).
type Item struct {
	Box geom.Rect
	Val uint64
}

type node struct {
	leaf     bool
	box      geom.Rect
	items    []Item  // leaf
	children []*node // internal
}

// Tree is an R-tree over geom.Rect bounding boxes. Not safe for
// concurrent mutation; the DB layer serializes writers.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Bounds returns the box covering all items; invalid when empty.
func (t *Tree) Bounds() geom.Rect {
	if t.size == 0 {
		return geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
	}
	return t.root.box
}

func (n *node) recomputeBox() {
	if n.leaf {
		if len(n.items) == 0 {
			n.box = geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
			return
		}
		b := n.items[0].Box
		for _, it := range n.items[1:] {
			b = b.Union(it.Box)
		}
		n.box = b
		return
	}
	if len(n.children) == 0 {
		n.box = geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}
		return
	}
	b := n.children[0].box
	for _, c := range n.children[1:] {
		b = b.Union(c.box)
	}
	n.box = b
}

// Insert adds an item.
func (t *Tree) Insert(box geom.Rect, val uint64) {
	item := Item{Box: box, Val: val}
	n1, n2 := t.insert(t.root, item)
	if n2 != nil {
		t.root = &node{children: []*node{n1, n2}}
		t.root.recomputeBox()
	}
	t.size++
}

// insert descends to a leaf; returns the (possibly split) node pair.
func (t *Tree) insert(n *node, item Item) (*node, *node) {
	if n.leaf {
		n.items = append(n.items, item)
		if len(n.items) == 1 {
			n.box = item.Box
		} else {
			n.box = n.box.Union(item.Box)
		}
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return n, nil
	}
	best := chooseChild(n.children, item.Box)
	c1, c2 := t.insert(n.children[best], item)
	n.children[best] = c1
	if c2 != nil {
		n.children = append(n.children, c2)
	}
	n.box = n.box.Union(item.Box)
	if len(n.children) > maxEntries {
		return splitInternal(n)
	}
	return n, nil
}

// chooseChild implements Guttman's ChooseLeaf: least enlargement, ties
// broken by smaller area.
func chooseChild(children []*node, box geom.Rect) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range children {
		enl := c.box.Enlargement(box)
		area := c.box.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// quadratic pick-seeds over a generic box accessor.
func pickSeeds(boxes []geom.Rect) (int, int) {
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			d := boxes[i].Union(boxes[j]).Area() - boxes[i].Area() - boxes[j].Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	return s1, s2
}

func splitLeaf(n *node) (*node, *node) {
	items := n.items
	boxes := make([]geom.Rect, len(items))
	for i, it := range items {
		boxes[i] = it.Box
	}
	g1, g2 := quadraticSplit(boxes)
	a := &node{leaf: true, items: make([]Item, 0, len(g1))}
	b := &node{leaf: true, items: make([]Item, 0, len(g2))}
	for _, i := range g1 {
		a.items = append(a.items, items[i])
	}
	for _, i := range g2 {
		b.items = append(b.items, items[i])
	}
	a.recomputeBox()
	b.recomputeBox()
	return a, b
}

func splitInternal(n *node) (*node, *node) {
	children := n.children
	boxes := make([]geom.Rect, len(children))
	for i, c := range children {
		boxes[i] = c.box
	}
	g1, g2 := quadraticSplit(boxes)
	a := &node{children: make([]*node, 0, len(g1))}
	b := &node{children: make([]*node, 0, len(g2))}
	for _, i := range g1 {
		a.children = append(a.children, children[i])
	}
	for _, i := range g2 {
		b.children = append(b.children, children[i])
	}
	a.recomputeBox()
	b.recomputeBox()
	return a, b
}

// quadraticSplit partitions indices of boxes into two groups per
// Guttman's quadratic algorithm, honoring minEntries.
func quadraticSplit(boxes []geom.Rect) (g1, g2 []int) {
	s1, s2 := pickSeeds(boxes)
	g1, g2 = []int{s1}, []int{s2}
	b1, b2 := boxes[s1], boxes[s2]
	rest := make([]int, 0, len(boxes)-2)
	for i := range boxes {
		if i != s1 && i != s2 {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one group must take all remaining to
		// reach minEntries.
		if len(g1)+len(rest) == minEntries {
			for _, i := range rest {
				g1 = append(g1, i)
				b1 = b1.Union(boxes[i])
			}
			break
		}
		if len(g2)+len(rest) == minEntries {
			for _, i := range rest {
				g2 = append(g2, i)
				b2 = b2.Union(boxes[i])
			}
			break
		}
		// PickNext: max difference of enlargements.
		bestIdx, bestDiff := 0, -1.0
		for k, i := range rest {
			d1 := b1.Enlargement(boxes[i])
			d2 := b2.Enlargement(boxes[i])
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, k
			}
		}
		i := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := b1.Enlargement(boxes[i])
		d2 := b2.Enlargement(boxes[i])
		if d1 < d2 || (d1 == d2 && len(g1) < len(g2)) {
			g1 = append(g1, i)
			b1 = b1.Union(boxes[i])
		} else {
			g2 = append(g2, i)
			b2 = b2.Union(boxes[i])
		}
	}
	return g1, g2
}

// Search calls fn for every item whose box intersects window (edges
// inclusive, matching the paper's tile-overlap rule). Returning false
// stops the search.
func (t *Tree) Search(window geom.Rect, fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	t.search(t.root, window, fn)
}

func (t *Tree) search(n *node, window geom.Rect, fn func(Item) bool) bool {
	if !n.box.Intersects(window) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(window) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.search(c, window, fn) {
			return false
		}
	}
	return true
}

// Count returns the number of items intersecting window.
func (t *Tree) Count(window geom.Rect) int {
	n := 0
	t.Search(window, func(Item) bool { n++; return true })
	return n
}

// Delete removes one item equal to (box, val); reports success. Uses
// Guttman's condense-by-reinsert when a leaf underflows.
func (t *Tree) Delete(box geom.Rect, val uint64) bool {
	var orphans []Item
	found := t.remove(t.root, box, val, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a root with a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	for _, it := range orphans {
		n1, n2 := t.insert(t.root, it)
		if n2 != nil {
			t.root = &node{children: []*node{n1, n2}}
			t.root.recomputeBox()
		}
	}
	return true
}

func (t *Tree) remove(n *node, box geom.Rect, val uint64, orphans *[]Item) bool {
	if !n.box.Intersects(box) {
		return false
	}
	if n.leaf {
		for i, it := range n.items {
			if it.Val == val && it.Box == box {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.recomputeBox()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if t.remove(c, box, val, orphans) {
			// Condense: drop underflowed children, re-insert content.
			under := (c.leaf && len(c.items) < minEntries) ||
				(!c.leaf && len(c.children) < minEntries)
			if under && len(n.children) > 1 {
				collectItems(c, orphans)
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.recomputeBox()
			return true
		}
	}
	return false
}

func collectItems(n *node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}

// BulkLoad builds a tree from items using Sort-Tile-Recursive packing.
// It is dramatically faster than repeated Insert for the experiment
// datasets (millions of points) and produces well-packed leaves.
// The input slice is reordered in place.
func BulkLoad(items []Item) *Tree {
	t := New()
	if len(items) == 0 {
		return t
	}
	t.size = len(items)
	leaves := strPack(items)
	level := leaves
	for len(level) > 1 {
		level = packNodes(level)
	}
	t.root = level[0]
	return t
}

// strPack sorts items into leaf nodes with the STR algorithm.
func strPack(items []Item) []*node {
	n := len(items)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * maxEntries

	sort.Slice(items, func(i, j int) bool {
		return items[i].Box.Center().X < items[j].Box.Center().X
	})
	var leaves []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Box.Center().Y < slice[j].Box.Center().Y
		})
		for o := 0; o < len(slice); o += maxEntries {
			oe := o + maxEntries
			if oe > len(slice) {
				oe = len(slice)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), slice[o:oe]...)}
			leaf.recomputeBox()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups a level of nodes into parents, STR-style.
func packNodes(level []*node) []*node {
	n := len(level)
	parentCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * maxEntries

	sort.Slice(level, func(i, j int) bool {
		return level[i].box.Center().X < level[j].box.Center().X
	})
	var parents []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		slice := level[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].box.Center().Y < slice[j].box.Center().Y
		})
		for o := 0; o < len(slice); o += maxEntries {
			oe := o + maxEntries
			if oe > len(slice) {
				oe = len(slice)
			}
			p := &node{children: append([]*node(nil), slice[o:oe]...)}
			p.recomputeBox()
			parents = append(parents, p)
		}
	}
	return parents
}

// Height returns the tree height (1 = lone leaf). Used by balance tests.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}
