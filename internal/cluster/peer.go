package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"kyrix/internal/wire"
)

// PeerPath is the HTTP endpoint peers fill from; the server mounts its
// handler there.
const PeerPath = "/peer"

// EpochHeader carries the responding node's epoch vector (JSON-encoded
// EpochVector) on every peer response — the gossip channel of the
// invalidation protocol.
const EpochHeader = "X-Kyrix-Epoch"

// PeerContentType is the /peer response body: a one-frame stream in
// the internal/wire v3 framing (header + exactly one frame), so the
// peer protocol reuses the batch codec — per-frame status, bounded
// DEFLATE, the works — instead of inventing a second envelope.
const PeerContentType = "application/x-kyrix-peer-v3"

// FillRequest asks a key's owner to produce one tile or dynamic-box
// payload. It carries the same addressing fields as a /batch item plus
// the canonical cache key (debugging identity; the owner recomputes
// its own) and the requester's epoch vector (gossip flows both ways:
// an owner behind on updates learns from its requesters).
type FillRequest struct {
	Key    string      `json:"key"`
	Canvas string      `json:"canvas"`
	Layer  int         `json:"layer"`
	Kind   string      `json:"kind"` // "tile" | "dbox"
	Codec  string      `json:"codec"`
	Design string      `json:"design,omitempty"`
	Size   float64     `json:"size,omitempty"`
	Col    int         `json:"col,omitempty"`
	Row    int         `json:"row,omitempty"`
	MinX   float64     `json:"minx,omitempty"`
	MinY   float64     `json:"miny,omitempty"`
	MaxX   float64     `json:"maxx,omitempty"`
	MaxY   float64     `json:"maxy,omitempty"`
	Epochs EpochVector `json:"epochs,omitempty"`
}

// peer is one remote node: a shared pooled HTTP client plus a
// per-peer concurrency bound, so one slow or dead peer saturates its
// own slots and nothing else.
type peer struct {
	base string
	sem  chan struct{}
}

// Transport performs peer cache fills over HTTP with pooled
// connections, per-peer bounded concurrency and a hard timeout. It is
// safe for concurrent use.
type Transport struct {
	peers   map[string]*peer
	client  *http.Client
	timeout time.Duration
}

// NewTransport builds a transport to the given peer base URLs.
// perPeer bounds in-flight fills per peer (0 = 32); timeout bounds one
// fill end to end, queue wait included (0 = 2s).
func NewTransport(peers []string, perPeer int, timeout time.Duration) *Transport {
	if perPeer <= 0 {
		perPeer = 32
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	t := &Transport{
		peers:   make(map[string]*peer, len(peers)),
		timeout: timeout,
		client: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        4 * perPeer,
				MaxIdleConnsPerHost: perPeer,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, p := range peers {
		if p != "" {
			t.peers[p] = &peer{base: p, sem: make(chan struct{}, perPeer)}
		}
	}
	return t
}

// Fetch asks node to produce the payload for fr, returning the payload
// and the node's epoch vector. One deadline covers the whole fill —
// semaphore queue wait AND the HTTP exchange share it, so a fill never
// outlives PeerTimeout. Every failure mode — unknown node, a full
// concurrency budget that does not drain in time, transport errors,
// non-OK frames — comes back as an error the caller treats as "fall
// back to a local query"; a peer problem degrades the cluster to N
// independent nodes, never to an outage.
func (t *Transport) Fetch(node string, fr *FillRequest) (payload []byte, epochs EpochVector, err error) {
	p, ok := t.peers[node]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: unknown peer %q", node)
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.timeout)
	defer cancel()
	// Bounded concurrency with a bounded wait: a peer that is slow
	// enough to back its queue up past the deadline is treated as
	// down. Time spent queuing comes out of the same budget the
	// request itself runs under.
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("cluster: peer %s at concurrency limit", node)
	}

	body, err := json.Marshal(fr)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+PeerPath, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: peer %s: %w", node, err)
	}
	defer resp.Body.Close()
	if eh := resp.Header.Get(EpochHeader); eh != "" {
		// A malformed epoch header is ignored, not fatal: the payload
		// is still usable, the gossip just did not advance.
		var v EpochVector
		if perr := json.Unmarshal([]byte(eh), &v); perr == nil {
			epochs = v
		}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, epochs, fmt.Errorf("cluster: peer %s: HTTP %d", node, resp.StatusCode)
	}
	payload, err = readPeerResponse(bufio.NewReader(resp.Body))
	return payload, epochs, err
}

// readPeerResponse decodes the one-frame wire stream of a /peer reply.
func readPeerResponse(br *bufio.Reader) ([]byte, error) {
	version, n, err := wire.ReadHeader(br)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer reply: %w", err)
	}
	if n != 1 {
		return nil, fmt.Errorf("cluster: peer reply has %d frames, want 1", n)
	}
	f, err := wire.ReadFrame(br, version)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer reply: %w", err)
	}
	if f.Status != wire.FrameOK {
		return nil, fmt.Errorf("cluster: peer fill failed (status %d): %s", f.Status, f.Payload)
	}
	payload := f.Payload
	if f.Codec.Compressed() {
		payload, err = wire.Decompress(payload, wire.MaxFramePayload)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer reply: %w", err)
		}
	} else if f.Codec != wire.CodecRaw {
		return nil, fmt.Errorf("cluster: peer reply carries codec %d", f.Codec)
	}
	return payload, nil
}

// WritePeerResponse writes the one-frame wire stream of a /peer reply:
// an OK payload (DEFLATE-compressed when the worth-it heuristic says
// so) or an error frame. kind is the frame kind matching the request.
func WritePeerResponse(w http.ResponseWriter, epochs EpochVector, kind wire.FrameKind, payload []byte, serveErr error, badRequest bool) error {
	w.Header().Set("Content-Type", PeerContentType)
	if eh, err := json.Marshal(epochs); err == nil {
		w.Header().Set(EpochHeader, string(eh))
	}
	f := wire.Frame{Index: 0, Kind: kind, Status: wire.FrameOK, Codec: wire.CodecRaw}
	if serveErr != nil {
		f.Status = wire.FrameInternal
		if badRequest {
			f.Status = wire.FrameBadRequest
		}
		f.Payload = []byte(serveErr.Error())
	} else {
		f.Payload = payload
		if wire.ShouldCompress(payload) {
			if cb, cerr := wire.Compress(payload); cerr == nil && len(cb) < len(payload) {
				f.Payload, f.Codec = cb, wire.CodecFlate
			}
		}
	}
	if err := wire.WriteHeader(w, wire.V3, 1); err != nil {
		return err
	}
	return wire.WriteFrame(w, wire.V3, f)
}
