package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"kyrix/internal/obs"
	"kyrix/internal/wire"
)

// PeerPath is the HTTP endpoint peers fill from; the server mounts its
// handler there.
const PeerPath = "/peer"

// EpochHeader carries the responding node's epoch vector (JSON-encoded
// EpochVector) on every peer response — the gossip channel of the
// invalidation protocol.
const EpochHeader = "X-Kyrix-Epoch"

// PeerContentType is the /peer response body: a one-frame stream in
// the internal/wire v3 framing (header + exactly one frame), so the
// peer protocol reuses the batch codec — per-frame status, bounded
// DEFLATE, the works — instead of inventing a second envelope.
const PeerContentType = "application/x-kyrix-peer-v3"

// ErrBreakerOpen is returned (wrapped) when a peer's circuit breaker is
// rejecting calls: the peer failed BreakerThreshold consecutive times
// and the cooldown has not elapsed (or a half-open probe is already in
// flight). Callers fall back exactly as for any other peer error; the
// point is failing in microseconds instead of burning a timeout per
// request on a peer already known dead.
var ErrBreakerOpen = errors.New("cluster: peer circuit open")

// errFailpointDrop is what an injected drop failpoint reports; it
// counts as a peer failure (feeding the breaker) like a real network
// drop would.
var errFailpointDrop = errors.New("cluster: failpoint: dropped")

// FillRequest asks a key's owner to produce one tile or dynamic-box
// payload. It carries the same addressing fields as a /batch item plus
// the canonical cache key (debugging identity; the owner recomputes
// its own) and the requester's epoch vector (gossip flows both ways:
// an owner behind on updates learns from its requesters).
type FillRequest struct {
	Key    string      `json:"key"`
	Canvas string      `json:"canvas"`
	Layer  int         `json:"layer"`
	Kind   string      `json:"kind"` // "tile" | "dbox"
	Codec  string      `json:"codec"`
	Design string      `json:"design,omitempty"`
	Size   float64     `json:"size,omitempty"`
	Col    int         `json:"col,omitempty"`
	Row    int         `json:"row,omitempty"`
	MinX   float64     `json:"minx,omitempty"`
	MinY   float64     `json:"miny,omitempty"`
	MaxX   float64     `json:"maxx,omitempty"`
	MaxY   float64     `json:"maxy,omitempty"`
	Epochs EpochVector `json:"epochs,omitempty"`
}

// TransportConfig tunes the peer transport. The zero value gets
// sensible defaults everywhere.
type TransportConfig struct {
	// PerPeer bounds in-flight exchanges per peer (0 = 32).
	PerPeer int
	// Timeout bounds one Fetch end to end — queue wait, every retry
	// attempt and backoff sleep included (0 = 2s).
	Timeout time.Duration
	// Retries is the number of extra Fetch attempts after the first
	// fails, each preceded by jittered exponential backoff within the
	// same Timeout budget (0 = 2; < 0 disables retry).
	Retries int
	// BreakerThreshold opens a peer's circuit after this many
	// consecutive failures; while open, exchanges fail fast with
	// ErrBreakerOpen until a cooldown elapses, then a single half-open
	// probe tests recovery (0 = 8; < 0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// allowing the half-open probe (0 = 1s).
	BreakerCooldown time.Duration
}

func (c TransportConfig) withDefaults() TransportConfig {
	if c.PerPeer <= 0 {
		c.PerPeer = 32
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// PeerStats is a point-in-time snapshot of one peer's health counters.
type PeerStats struct {
	// Failures is the lifetime count of failed exchanges (transport
	// errors, timeouts, non-OK statuses, injected drops).
	Failures int64 `json:"failures"`
	// Consecutive is the current run of back-to-back failures; it
	// resets to zero on any success.
	Consecutive int64 `json:"consecutive"`
	// Retries counts Fetch retry attempts (first attempts excluded).
	Retries int64 `json:"retries"`
	// BreakerOpens counts transitions into the open state.
	BreakerOpens int64 `json:"breakerOpens"`
	// BreakerOpen reports whether the circuit is currently rejecting.
	BreakerOpen bool `json:"breakerOpen"`
}

// peer is one remote node: a shared pooled HTTP client plus a per-peer
// concurrency bound (so one slow or dead peer saturates its own slots
// and nothing else) and the circuit-breaker state feeding fail-fast
// behavior when the peer is down.
type peer struct {
	base string
	sem  chan struct{}

	mu          sync.Mutex
	consecutive int64     // guarded by mu; back-to-back failures; 0 = circuit closed
	openUntil   time.Time // guarded by mu; while in the future, reject (open state)
	probing     bool      // guarded by mu; a half-open probe is in flight
	failures    int64     // guarded by mu
	retries     int64     // guarded by mu
	opens       int64     // guarded by mu
}

// allow gates one exchange on the breaker. A nil return either means
// the circuit is closed or grants this call the half-open probe slot.
func (p *peer) allow(threshold int, now time.Time) error {
	if threshold <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.consecutive < int64(threshold) {
		return nil
	}
	if now.Before(p.openUntil) {
		return fmt.Errorf("%w: %s", ErrBreakerOpen, p.base)
	}
	if p.probing {
		return fmt.Errorf("%w: %s (probe in flight)", ErrBreakerOpen, p.base)
	}
	p.probing = true
	return nil
}

// record folds one exchange outcome into the breaker state.
func (p *peer) record(ok bool, threshold int, cooldown time.Duration, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probing = false
	if ok {
		p.consecutive = 0
		return
	}
	p.failures++
	p.consecutive++
	if threshold > 0 && p.consecutive >= int64(threshold) {
		if p.consecutive == int64(threshold) || now.After(p.openUntil) {
			p.opens++ // newly opened, or a failed probe re-opening
		}
		p.openUntil = now.Add(cooldown)
	}
}

func (p *peer) stats() PeerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PeerStats{
		Failures:     p.failures,
		Consecutive:  p.consecutive,
		Retries:      p.retries,
		BreakerOpens: p.opens,
		BreakerOpen:  p.openUntil.After(time.Now()),
	}
}

// Transport performs peer exchanges (cache fills and replicated-log
// RPCs) over HTTP with pooled connections, per-peer bounded
// concurrency, a hard timeout, retry with jittered exponential backoff
// and a per-peer circuit breaker. It also hosts the fault-injection
// failpoints the chaos tests steer. Safe for concurrent use.
type Transport struct {
	peers  map[string]*peer
	client *http.Client
	cfg    TransportConfig

	failMu sync.Mutex
	drops  map[string]bool          // guarded by failMu
	delays map[string]time.Duration // guarded by failMu
}

// NewTransport builds a transport to the given peer base URLs.
func NewTransport(peers []string, cfg TransportConfig) *Transport {
	cfg = cfg.withDefaults()
	t := &Transport{
		peers: make(map[string]*peer, len(peers)),
		cfg:   cfg,
		// No http.Client.Timeout: every exchange already runs under a
		// context deadline (Fetch's own, or the caller's / the default
		// in PostJSON), and a hard client-wide cap would silently clip
		// RPCs whose callers budget more — e.g. a propose forward
		// riding out an election under SubmitTimeout.
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4 * cfg.PerPeer,
				MaxIdleConnsPerHost: cfg.PerPeer,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, p := range peers {
		if p != "" {
			t.peers[p] = &peer{base: p, sem: make(chan struct{}, cfg.PerPeer)}
		}
	}
	return t
}

// FailDrop injects (or clears) a drop failpoint: every exchange with
// node fails immediately as if the network ate it, counting toward the
// breaker like a real failure. Two transports dropping each other's
// node form a symmetric partition. Test hook; cheap when unused.
func (t *Transport) FailDrop(node string, on bool) {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	if t.drops == nil {
		t.drops = make(map[string]bool)
	}
	if on {
		t.drops[node] = true
	} else {
		delete(t.drops, node)
	}
}

// FailDelay injects (or clears, with d <= 0) a latency failpoint:
// every exchange with node first sleeps d (bounded by the exchange's
// own deadline). Test hook.
func (t *Transport) FailDelay(node string, d time.Duration) {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	if t.delays == nil {
		t.delays = make(map[string]time.Duration)
	}
	if d > 0 {
		t.delays[node] = d
	} else {
		delete(t.delays, node)
	}
}

// FailReset clears every failpoint (heals all injected faults).
func (t *Transport) FailReset() {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	t.drops, t.delays = nil, nil
}

func (t *Transport) failState(node string) (drop bool, delay time.Duration) {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	return t.drops[node], t.delays[node]
}

// PeerStatsSnapshot returns per-peer health counters keyed by base URL.
func (t *Transport) PeerStatsSnapshot() map[string]PeerStats {
	out := make(map[string]PeerStats, len(t.peers))
	for name, p := range t.peers {
		out[name] = p.stats()
	}
	return out
}

// exchange runs one attempt against p: failpoint delay, breaker gate
// (when gated), failpoint drop, semaphore, then fn; the outcome is
// recorded into the breaker. Breaker rejections do not count as
// failures (no exchange happened); injected drops do (a real network
// would have failed). Ungated exchanges skip the fail-fast rejection
// but still feed the breaker state, so a recovering peer is noticed by
// whichever traffic reaches it first.
func (t *Transport) exchange(ctx context.Context, p *peer, gated bool, fn func(ctx context.Context) error) error {
	drop, delay := t.failState(p.base)
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			p.record(false, t.cfg.BreakerThreshold, t.cfg.BreakerCooldown, time.Now())
			return fmt.Errorf("cluster: peer %s: %w", p.base, ctx.Err())
		}
	}
	if gated {
		if err := p.allow(t.cfg.BreakerThreshold, time.Now()); err != nil {
			return err
		}
	}
	if drop {
		p.record(false, t.cfg.BreakerThreshold, t.cfg.BreakerCooldown, time.Now())
		return fmt.Errorf("%w: %s", errFailpointDrop, p.base)
	}
	// Bounded concurrency with a bounded wait: a peer that is slow
	// enough to back its queue up past the deadline is treated as
	// down. Time spent queuing comes out of the same budget the
	// request itself runs under.
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		p.record(false, t.cfg.BreakerThreshold, t.cfg.BreakerCooldown, time.Now())
		return fmt.Errorf("cluster: peer %s at concurrency limit", p.base)
	}
	err := fn(ctx)
	p.record(err == nil, t.cfg.BreakerThreshold, t.cfg.BreakerCooldown, time.Now())
	return err
}

// Fetch asks node to produce the payload for fr, returning the payload
// and the node's epoch vector. One deadline covers the whole fill —
// semaphore queue wait, every retry attempt and the backoff sleeps
// between them all share it, so a fill never outlives Timeout. A
// failed attempt is retried up to Retries times with jittered
// exponential backoff (unless the circuit breaker is rejecting, which
// already means the peer is known dead). Every terminal failure mode —
// unknown node, a full concurrency budget that does not drain in time,
// transport errors, non-OK frames, an open breaker — comes back as an
// error the caller treats as "fall back to a local query"; a peer
// problem degrades the cluster to N independent nodes, never to an
// outage.
func (t *Transport) Fetch(node string, fr *FillRequest) (payload []byte, epochs EpochVector, err error) {
	return t.FetchContext(context.Background(), node, fr)
}

// FetchContext is Fetch under the caller's context. The transport's
// Timeout still applies on top of any caller deadline (whichever is
// sooner wins); what the context adds is its values — in particular an
// active obs span, whose trace context rides the request header so the
// owner node's serving spans come back stitched into the caller's trace.
func (t *Transport) FetchContext(ctx context.Context, node string, fr *FillRequest) (payload []byte, epochs EpochVector, err error) {
	p, ok := t.peers[node]
	if !ok {
		return nil, nil, fmt.Errorf("cluster: unknown peer %q", node)
	}
	ctx, cancel := context.WithTimeout(ctx, t.cfg.Timeout)
	defer cancel()
	backoff := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err = t.exchange(ctx, p, true, func(ctx context.Context) error {
			payload, epochs, err = t.fetchOnce(ctx, p, fr)
			return err
		})
		if err == nil {
			return payload, epochs, nil
		}
		if attempt >= t.cfg.Retries || errors.Is(err, ErrBreakerOpen) {
			return nil, epochs, err
		}
		// Jittered exponential backoff: sleep in [backoff/2, backoff],
		// doubling each round, so a brief peer hiccup is ridden out
		// without N requesters hammering it back down in lockstep.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		backoff *= 2
		p.mu.Lock()
		p.retries++
		p.mu.Unlock()
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, epochs, err
		}
	}
}

// fetchOnce is one HTTP exchange of the fill protocol.
func (t *Transport) fetchOnce(ctx context.Context, p *peer, fr *FillRequest) (payload []byte, epochs EpochVector, err error) {
	body, err := json.Marshal(fr)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+PeerPath, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the caller's trace so the owner's serving spans join it.
	obs.InjectHeader(ctx, req.Header)
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: peer %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	// Graft the owner node's finished span subtree (if it sent one) into
	// the caller's active span: the cross-node fill reads as one trace.
	if sh := resp.Header.Get(obs.SpansHeader); sh != "" {
		obs.SpanFromContext(ctx).Graft(obs.DecodeSpansHeader(sh))
	}
	if eh := resp.Header.Get(EpochHeader); eh != "" {
		// A malformed epoch header is ignored, not fatal: the payload
		// is still usable, the gossip just did not advance.
		var v EpochVector
		if perr := json.Unmarshal([]byte(eh), &v); perr == nil {
			epochs = v
		}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, epochs, fmt.Errorf("cluster: peer %s: HTTP %d", p.base, resp.StatusCode)
	}
	payload, err = readPeerResponse(bufio.NewReader(resp.Body))
	return payload, epochs, err
}

// PostJSON performs one JSON request/response exchange with node at
// path — the RPC channel the replicated log (internal/replog) runs
// over. It shares the failpoints and per-peer concurrency bound with
// Fetch but makes a single attempt: the log's own heartbeat/election
// loops are the retry policy there, and layering another one under
// them would only distort their timing. For the same reason it is
// exempt from the breaker's fail-fast gate (the breaker is tuned for
// fill traffic; throttling a rejoining follower's catch-up appends to
// one probe per cooldown would stall consensus), though its outcomes
// still feed the breaker state and per-peer stats. If ctx carries no
// deadline the transport's Timeout applies.
func (t *Transport) PostJSON(ctx context.Context, node, path string, req, resp any) error {
	p, ok := t.peers[node]
	if !ok {
		return fmt.Errorf("cluster: unknown peer %q", node)
	}
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.cfg.Timeout)
		defer cancel()
	}
	return t.exchange(ctx, p, false, func(ctx context.Context) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		obs.InjectHeader(ctx, hreq.Header)
		hresp, err := t.client.Do(hreq)
		if err != nil {
			return fmt.Errorf("cluster: peer %s: %w", p.base, err)
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
			return fmt.Errorf("cluster: peer %s %s: HTTP %d: %s", p.base, path, hresp.StatusCode, bytes.TrimSpace(msg))
		}
		if resp == nil {
			return nil
		}
		if err := json.NewDecoder(io.LimitReader(hresp.Body, 1<<20)).Decode(resp); err != nil {
			return fmt.Errorf("cluster: peer %s %s: decode: %w", p.base, path, err)
		}
		return nil
	})
}

// readPeerResponse decodes the one-frame wire stream of a /peer reply.
func readPeerResponse(br *bufio.Reader) ([]byte, error) {
	version, n, err := wire.ReadHeader(br)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer reply: %w", err)
	}
	if n != 1 {
		return nil, fmt.Errorf("cluster: peer reply has %d frames, want 1", n)
	}
	f, err := wire.ReadFrame(br, version)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer reply: %w", err)
	}
	if f.Status != wire.FrameOK {
		return nil, fmt.Errorf("cluster: peer fill failed (status %d): %s", f.Status, f.Payload)
	}
	payload := f.Payload
	if f.Codec.Compressed() {
		payload, err = wire.Decompress(payload, wire.MaxFramePayload)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer reply: %w", err)
		}
	} else if f.Codec != wire.CodecRaw {
		return nil, fmt.Errorf("cluster: peer reply carries codec %d", f.Codec)
	}
	return payload, nil
}

// WritePeerResponse writes the one-frame wire stream of a /peer reply:
// an OK payload (DEFLATE-compressed when the worth-it heuristic says
// so) or an error frame. kind is the frame kind matching the request.
func WritePeerResponse(w http.ResponseWriter, epochs EpochVector, kind wire.FrameKind, payload []byte, serveErr error, badRequest bool) error {
	w.Header().Set("Content-Type", PeerContentType)
	if eh, err := json.Marshal(epochs); err == nil {
		w.Header().Set(EpochHeader, string(eh))
	}
	f := wire.Frame{Index: 0, Kind: kind, Status: wire.FrameOK, Codec: wire.CodecRaw}
	if serveErr != nil {
		f.Status = wire.FrameInternal
		if badRequest {
			f.Status = wire.FrameBadRequest
		}
		f.Payload = []byte(serveErr.Error())
	} else {
		f.Payload = payload
		if wire.ShouldCompress(payload) {
			if cb, cerr := wire.Compress(payload); cerr == nil && len(cb) < len(payload) {
				f.Payload, f.Codec = cb, wire.CodecFlate
			}
		}
	}
	if err := wire.WriteHeader(w, wire.V3, 1); err != nil {
		return err
	}
	return wire.WriteFrame(w, wire.V3, f)
}
