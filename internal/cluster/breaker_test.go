package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestFetchRetriesTransientFailure: a peer that fails its first two
// exchanges and then recovers is ridden out by the backoff retry — the
// caller sees success, and the retry counter records the extra
// attempts.
func TestFetchRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		_ = WritePeerResponse(w, nil, FrameKindOf("tile"), []byte("ok"), nil, false)
	}))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{Timeout: 5 * time.Second, Retries: 2})
	got, _, err := tr.Fetch(hs.URL, &FillRequest{Key: "k", Kind: "tile"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("payload = %q", got)
	}
	if calls.Load() != 3 {
		t.Fatalf("peer saw %d attempts, want 3", calls.Load())
	}
	st := tr.PeerStatsSnapshot()[hs.URL]
	if st.Retries != 2 || st.Consecutive != 0 {
		t.Fatalf("stats = %+v, want 2 retries and a reset run", st)
	}
}

// TestBreakerOpensAndProbes: consecutive failures past the threshold
// open the circuit (calls fail fast with ErrBreakerOpen, the peer sees
// no more traffic); after the cooldown a half-open probe goes through,
// and a successful probe closes the circuit again.
func TestBreakerOpensAndProbes(t *testing.T) {
	var fail atomic.Bool
	var calls atomic.Int64
	fail.Store(true)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		_ = WritePeerResponse(w, nil, FrameKindOf("tile"), []byte("ok"), nil, false)
	}))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{
		Timeout:          time.Second,
		Retries:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})

	for i := 0; i < 3; i++ {
		if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err == nil {
			t.Fatal("failing peer fetch succeeded")
		}
	}
	seen := calls.Load()
	// Circuit is open: fail fast, no wire traffic.
	_, _, err := tr.Fetch(hs.URL, &FillRequest{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open circuit returned %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != seen {
		t.Fatal("open circuit still sent traffic to the peer")
	}
	st := tr.PeerStatsSnapshot()[hs.URL]
	if !st.BreakerOpen || st.BreakerOpens == 0 || st.Consecutive != 3 {
		t.Fatalf("stats while open = %+v", st)
	}

	// Heal the peer; after the cooldown, the half-open probe closes
	// the circuit and traffic flows again.
	fail.Store(false)
	time.Sleep(60 * time.Millisecond)
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
	st = tr.PeerStatsSnapshot()[hs.URL]
	if st.BreakerOpen || st.Consecutive != 0 {
		t.Fatalf("stats after heal = %+v", st)
	}
}

// TestBreakerFailedProbeReopens: while the peer stays down, each
// cooldown expiry admits exactly one probe; the failed probe re-opens
// the circuit instead of letting traffic through.
func TestBreakerFailedProbeReopens(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{
		Timeout:          time.Second,
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  40 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		_, _, _ = tr.Fetch(hs.URL, &FillRequest{})
	}
	time.Sleep(50 * time.Millisecond)
	_, _, _ = tr.Fetch(hs.URL, &FillRequest{}) // the probe, fails
	seen := calls.Load()
	if seen != 3 {
		t.Fatalf("peer saw %d calls, want 3 (2 openers + 1 probe)", seen)
	}
	// Immediately after the failed probe the circuit is open again.
	_, _, err := tr.Fetch(hs.URL, &FillRequest{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after failed probe: %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != seen {
		t.Fatal("re-opened circuit sent traffic")
	}
}

// TestFailpointDropAndHeal: an injected drop makes every exchange fail
// without touching the network (feeding the breaker like a real
// partition), and FailReset heals it.
func TestFailpointDropAndHeal(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		_ = WritePeerResponse(w, nil, FrameKindOf("tile"), []byte("ok"), nil, false)
	}))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{Timeout: time.Second, Retries: -1, BreakerThreshold: -1})
	tr.FailDrop(hs.URL, true)
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err == nil {
		t.Fatal("dropped exchange succeeded")
	}
	if calls.Load() != 0 {
		t.Fatal("dropped exchange reached the peer")
	}
	if st := tr.PeerStatsSnapshot()[hs.URL]; st.Failures != 1 {
		t.Fatalf("drop not counted as failure: %+v", st)
	}
	tr.FailReset()
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// TestFailpointDelay: an injected delay slows the exchange but within
// the deadline it still completes; past the deadline it fails.
func TestFailpointDelay(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = WritePeerResponse(w, nil, FrameKindOf("tile"), []byte("ok"), nil, false)
	}))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{Timeout: 150 * time.Millisecond, Retries: -1, BreakerThreshold: -1})
	tr.FailDelay(hs.URL, 30*time.Millisecond)
	start := time.Now()
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err != nil {
		t.Fatalf("delayed exchange: %v", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("delay failpoint did not delay")
	}
	tr.FailDelay(hs.URL, 500*time.Millisecond) // beyond the deadline
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err == nil {
		t.Fatal("over-deadline delay succeeded")
	}
}

// TestPostJSONBypassesBreakerGate: an open circuit fails fills fast
// but does not throttle the replog RPC channel — consensus traffic is
// the thing that notices a peer recovering, so it must keep flowing
// (and its successes close the circuit for fills again).
func TestPostJSONBypassesBreakerGate(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PeerPath {
			http.Error(w, "fills down", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{}`))
	}))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{
		Timeout:          time.Second,
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	for i := 0; i < 2; i++ {
		_, _, _ = tr.Fetch(hs.URL, &FillRequest{})
	}
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("fill with open circuit: %v, want ErrBreakerOpen", err)
	}
	var out struct{}
	if err := tr.PostJSON(context.Background(), hs.URL, "/replog/append", struct{}{}, &out); err != nil {
		t.Fatalf("replog RPC throttled by open circuit: %v", err)
	}
	if st := tr.PeerStatsSnapshot()[hs.URL]; st.Consecutive != 0 {
		t.Fatalf("RPC success did not reset the failure run: %+v", st)
	}
}

// TestPostJSONRoundtrip: the generic JSON RPC shares the transport's
// failpoints and works end to end.
func TestPostJSONRoundtrip(t *testing.T) {
	type echo struct {
		N int `json:"n"`
	}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/replog/test" {
			http.NotFound(w, r)
			return
		}
		var in echo
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		in.N++
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(in)
	}))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{Timeout: time.Second})
	var out echo
	if err := tr.PostJSON(context.Background(), hs.URL, "/replog/test", echo{N: 41}, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 42 {
		t.Fatalf("echo = %d, want 42", out.N)
	}
	tr.FailDrop(hs.URL, true)
	if err := tr.PostJSON(context.Background(), hs.URL, "/replog/test", echo{}, &out); err == nil {
		t.Fatal("dropped RPC succeeded")
	}
	if err := tr.PostJSON(context.Background(), "http://unknown", "/x", echo{}, nil); err == nil {
		t.Fatal("unknown peer RPC succeeded")
	}
}
