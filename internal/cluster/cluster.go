package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kyrix/internal/wire"
)

// Options configures one node's membership in the serving cluster.
// The zero value disables clustering (Enabled reports false).
type Options struct {
	// Self is this node's base URL as peers reach it
	// (e.g. "http://10.0.0.3:8080"). Required when clustering.
	Self string
	// Peers are the base URLs of every cluster node. Self may appear in
	// the list (the harness passes one list to every node); it is
	// skipped for transport purposes and deduplicated on the ring.
	Peers []string
	// VirtualNodes is the consistent-hash ring's virtual-node count per
	// physical node (0 = DefaultVirtualNodes).
	VirtualNodes int
	// HotReplicate is the sketch-frequency threshold at which a
	// non-owned key is admitted into the local cache after a peer fill,
	// so cluster-hot keys are served locally everywhere instead of
	// bottlenecking their owner. 0 picks DefaultHotReplicate; < 0
	// disables replication (every non-owned request pays the peer hop).
	HotReplicate int
	// PeerTimeout bounds one peer fill end to end (0 = 2s).
	PeerTimeout time.Duration
	// PeerConcurrency bounds in-flight fills per peer (0 = 32).
	PeerConcurrency int
	// PeerRetries is the number of extra attempts after a failed peer
	// fill, each preceded by jittered exponential backoff inside the
	// same PeerTimeout budget (0 = 2; < 0 disables retry).
	PeerRetries int
	// BreakerThreshold opens a peer's circuit after this many
	// consecutive failures — further exchanges fail fast until a
	// half-open probe succeeds (0 = 8; < 0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects before the
	// half-open probe (0 = 1s).
	BreakerCooldown time.Duration
	// Replog configures the replicated update log (internal/replog).
	// When Replog.Dir is non-empty, the server routes /update through
	// a quorum-committed leader log over this transport instead of
	// best-effort epoch gossip.
	Replog ReplogOptions
}

// ReplogOptions carries the replicated update log's knobs; the server
// maps them onto internal/replog's config. All durations 0 = that
// package's defaults.
type ReplogOptions struct {
	// Dir is the directory holding this node's log WAL. Non-empty
	// enables the replicated log (cluster mode required).
	Dir string
	// ElectionTimeout is the base leader-election timeout; each
	// follower randomizes in [1x, 2x).
	ElectionTimeout time.Duration
	// Heartbeat is the leader's append/heartbeat interval.
	Heartbeat time.Duration
	// SubmitTimeout bounds one /update end to end: forward to leader,
	// quorum commit, local apply.
	SubmitTimeout time.Duration
}

// DefaultHotReplicate is the default hot-key replication threshold:
// a key estimated at this sketch frequency or above (i.e. touched a
// few times within the decay window) is worth double-caching.
const DefaultHotReplicate = 3

// Enabled reports whether the options describe a real cluster: a self
// identity plus at least one other peer.
func (o Options) Enabled() bool {
	if o.Self == "" {
		return false
	}
	for _, p := range o.Peers {
		if p != "" && p != o.Self {
			return true
		}
	}
	return false
}

// Stats counts one node's cluster activity.
type Stats struct {
	// PeerFills counts misses on non-owned keys that were served by the
	// owner; PeerErrors counts peer fetches that failed (and fell back
	// to a local query, counted in LocalFallbacks).
	PeerFills      atomic.Int64
	PeerErrors     atomic.Int64
	LocalFallbacks atomic.Int64
	// PeerServes counts fills this node performed for other nodes.
	PeerServes atomic.Int64
	// HotReplicas counts peer-filled payloads admitted into the local
	// cache because the key's sketch frequency crossed HotReplicate.
	HotReplicas atomic.Int64
	// EpochAdoptions counts times this node observed a newer cluster
	// epoch on a peer exchange and invalidated its cache.
	EpochAdoptions atomic.Int64
}

// EpochVector is the cluster invalidation clock: one monotone counter
// per origin node (a G-counter CRDT). Every /update bumps the updating
// node's own component; peer exchanges gossip the whole vector and
// merge by pointwise max. A scalar max-merged epoch would lose
// concurrent updates — two nodes both bumping 0→1 would each see the
// other's "1" as not-newer and never invalidate — while per-origin
// components can never collide: only the origin advances its own
// counter, so any remotely-larger component is proof of an unseen
// update.
type EpochVector map[string]int64

// Sum flattens the vector for display (total updates observed).
func (v EpochVector) Sum() int64 {
	var s int64
	for _, c := range v {
		s += c
	}
	return s
}

// Node is one member of the serving cluster: the ring it places keys
// on, the transport it fills through, and the epoch vector it gossips.
type Node struct {
	opts Options
	ring *Ring
	tr   *Transport

	// epochMu guards vec. The invalidation hook runs outside the lock,
	// once per merge that advanced any component — a node that adopts
	// invalidates its cache through onEpoch (the server clears + bumps
	// its generation), so a stale node refetches everything at most
	// one exchange after an update.
	epochMu sync.Mutex
	vec     EpochVector // guarded by epochMu
	onEpoch func(epoch EpochVector)

	Stats Stats
}

// New validates opts and builds the node. The caller wires cache
// invalidation with SetEpochHook before serving.
func New(opts Options) (*Node, error) {
	if !opts.Enabled() {
		return nil, fmt.Errorf("cluster: options name no peers (Self=%q, %d peers)", opts.Self, len(opts.Peers))
	}
	if opts.HotReplicate == 0 {
		opts.HotReplicate = DefaultHotReplicate
	}
	members := append(append([]string{}, opts.Peers...), opts.Self)
	var others []string
	for _, p := range opts.Peers {
		if p != "" && p != opts.Self {
			others = append(others, p)
		}
	}
	return &Node{
		opts: opts,
		ring: NewRing(opts.VirtualNodes, members...),
		tr: NewTransport(others, TransportConfig{
			PerPeer:          opts.PeerConcurrency,
			Timeout:          opts.PeerTimeout,
			Retries:          opts.PeerRetries,
			BreakerThreshold: opts.BreakerThreshold,
			BreakerCooldown:  opts.BreakerCooldown,
		}),
		vec: EpochVector{},
	}, nil
}

// Transport exposes the peer transport — the replicated log's RPC
// channel and the chaos tests' failpoint switchboard.
func (n *Node) Transport() *Transport { return n.tr }

// SetEpochHook registers the invalidation callback run (outside any
// cluster lock) each time the node adopts newer epoch components from
// a peer.
func (n *Node) SetEpochHook(fn func(epoch EpochVector)) { n.onEpoch = fn }

// Self returns this node's identity on the ring.
func (n *Node) Self() string { return n.opts.Self }

// Ring exposes the placement ring (read-only).
func (n *Node) Ring() *Ring { return n.ring }

// HotReplicate returns the replication threshold (< 0 = disabled).
func (n *Node) HotReplicate() int { return n.opts.HotReplicate }

// Owner returns the node owning key.
func (n *Node) Owner(key string) string { return n.ring.Owner(key) }

// Owns reports whether this node owns key.
func (n *Node) Owns(key string) bool { return n.ring.Owner(key) == n.opts.Self }

// Epoch returns the sum of the node's epoch components (total updates
// observed cluster-wide — the /stats display value).
func (n *Node) Epoch() int64 {
	n.epochMu.Lock()
	defer n.epochMu.Unlock()
	return n.vec.Sum()
}

// EpochVec returns a snapshot copy of the epoch vector.
func (n *Node) EpochVec() EpochVector {
	n.epochMu.Lock()
	defer n.epochMu.Unlock()
	out := make(EpochVector, len(n.vec))
	for k, v := range n.vec {
		out[k] = v
	}
	return out
}

// Bump advances this node's own epoch component for a local update.
// The local cache transition (generation bump + clear) is the
// caller's: it already owns that machinery for single-node updates.
// Only the origin ever advances its component, so concurrent updates
// at different nodes can neither collide nor be erased by a merge.
func (n *Node) Bump() {
	n.epochMu.Lock()
	n.vec[n.opts.Self]++
	n.epochMu.Unlock()
}

// Observe merges a remotely seen epoch vector into the local one
// (pointwise max). If any component advanced, the invalidation hook
// runs exactly once with the merged vector; an already-covered vector
// is a no-op. Safe for concurrent use.
func (n *Node) Observe(remote EpochVector) {
	if len(remote) == 0 {
		return
	}
	n.epochMu.Lock()
	advanced := false
	for node, c := range remote {
		if c > n.vec[node] {
			n.vec[node] = c
			advanced = true
		}
	}
	var merged EpochVector
	hook := n.onEpoch
	if advanced {
		merged = make(EpochVector, len(n.vec))
		for k, v := range n.vec {
			merged[k] = v
		}
	}
	n.epochMu.Unlock()
	if advanced {
		n.Stats.EpochAdoptions.Add(1)
		if hook != nil {
			hook(merged)
		}
	}
}

// Fetch fills one key from its owner, gossiping epoch vectors both
// ways: the request carries this node's vector, the response's vector
// is folded in (possibly invalidating the local cache) before the
// payload returns.
func (n *Node) Fetch(owner string, fr *FillRequest) ([]byte, error) {
	return n.FetchContext(context.Background(), owner, fr)
}

// FetchContext is Fetch under the caller's context; an active obs span
// on ctx propagates across the hop (see Transport.FetchContext).
func (n *Node) FetchContext(ctx context.Context, owner string, fr *FillRequest) ([]byte, error) {
	fr.Epochs = n.EpochVec()
	payload, remoteEpochs, err := n.tr.FetchContext(ctx, owner, fr)
	n.Observe(remoteEpochs)
	if err != nil {
		n.Stats.PeerErrors.Add(1)
		return nil, err
	}
	n.Stats.PeerFills.Add(1)
	return payload, nil
}

// FrameKindOf maps a fill request kind to its wire frame kind.
func FrameKindOf(kind string) wire.FrameKind {
	if kind == "dbox" {
		return wire.FrameDBox
	}
	return wire.FrameTile
}
