package cluster

import (
	"fmt"
	"math"
	"testing"
)

// ringKeys builds K realistic cache keys (tile-shaped strings, the
// ring's real workload).
func ringKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("json/spatial/tile/main/%d/1024/%d/%d", i%3, i/64, i%64)
	}
	return keys
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return names
}

// TestRingUniformOwnership: across 8 nodes, every node owns its fair
// share of keys within 10% relative deviation (the ISSUE's property).
func TestRingUniformOwnership(t *testing.T) {
	const nodes = 8
	const K = 80_000
	r := NewRing(0, nodeNames(nodes)...)
	counts := make(map[string]int)
	for _, k := range ringKeys(K) {
		counts[r.Owner(k)]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own keys", len(counts), nodes)
	}
	fair := float64(K) / nodes
	for n, c := range counts {
		dev := math.Abs(float64(c)-fair) / fair
		if dev > 0.10 {
			t.Fatalf("node %s owns %d keys (fair %.0f, deviation %.1f%% > 10%%)",
				n, c, fair, 100*dev)
		}
	}
}

// TestRingJoinLeaveRemap: adding or removing one node remaps at most
// ~1.3·K/N keys — the consistent-hashing contract that makes scaling
// the tier cheap.
func TestRingJoinLeaveRemap(t *testing.T) {
	const K = 60_000
	keys := ringKeys(K)
	for _, n := range []int{2, 4, 8} {
		names := nodeNames(n + 1)
		base := NewRing(0, names[:n]...)
		owners := make([]string, K)
		for i, k := range keys {
			owners[i] = base.Owner(k)
		}

		// Join: keys move only onto the new node, and only ~K/(N+1).
		joined := base.With(names[n])
		movedJoin := 0
		for i, k := range keys {
			if o := joined.Owner(k); o != owners[i] {
				movedJoin++
				if o != names[n] {
					t.Fatalf("join moved %q to old node %s (was %s)", k, o, owners[i])
				}
			}
		}
		capJoin := int(1.3 * float64(K) / float64(n+1))
		if movedJoin > capJoin {
			t.Fatalf("join of node %d moved %d keys, cap %d (~1.3·K/N)", n+1, movedJoin, capJoin)
		}
		if movedJoin == 0 {
			t.Fatalf("join moved no keys — new node owns nothing")
		}

		// Leave: exactly the leaving node's keys move, ~K/N.
		left := base.Without(names[0])
		movedLeave := 0
		for i, k := range keys {
			if o := left.Owner(k); o != owners[i] {
				movedLeave++
				if owners[i] != names[0] {
					t.Fatalf("leave moved %q that %s did not own", k, names[0])
				}
			}
		}
		capLeave := int(1.3 * float64(K) / float64(n))
		if movedLeave > capLeave {
			t.Fatalf("leave from %d nodes moved %d keys, cap %d", n, movedLeave, capLeave)
		}
	}
}

// TestRingDeterministic: ownership is a pure function of membership —
// construction order and duplicates must not matter, or two nodes
// could disagree on placement and forward forever.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(64, "n1", "n2", "n3")
	b := NewRing(64, "n3", "n1", "n2", "n2", "")
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("ownership of %q depends on construction order", k)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(8)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	solo := NewRing(8, "only")
	for _, k := range ringKeys(100) {
		if solo.Owner(k) != "only" {
			t.Fatal("single-node ring must own everything")
		}
	}
	if solo.With("other").Size() != 2 || solo.Without("only").Size() != 0 {
		t.Fatal("With/Without membership bookkeeping broken")
	}
}
