package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// peerStub serves /peer with a fixed payload and epoch vector.
func peerStub(t *testing.T, epochs EpochVector, payload []byte, serveErr error) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PeerPath {
			http.NotFound(w, r)
			return
		}
		_ = WritePeerResponse(w, epochs, FrameKindOf("tile"), payload, serveErr, false)
	}))
}

func TestTransportFetchRoundtrip(t *testing.T) {
	payload := []byte(`{"rows":[[1,2.5]]}`)
	hs := peerStub(t, EpochVector{"origin": 7}, payload, nil)
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{PerPeer: 4, Timeout: time.Second})
	got, epochs, err := tr.Fetch(hs.URL, &FillRequest{Key: "k", Kind: "tile"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q", got)
	}
	if epochs["origin"] != 7 {
		t.Fatalf("epochs = %v, want origin:7", epochs)
	}
}

// TestTransportCompressedFill: a payload past the worth-it heuristic
// crosses the wire DEFLATE-compressed and is inflated transparently —
// the wire v3 codec reuse the peer protocol exists for.
func TestTransportCompressedFill(t *testing.T) {
	big := make([]byte, 32<<10)
	for i := range big {
		big[i] = byte("abcd"[i%4]) // compressible
	}
	hs := peerStub(t, EpochVector{"origin": 1}, big, nil)
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{PerPeer: 4, Timeout: time.Second})
	got, _, err := tr.Fetch(hs.URL, &FillRequest{Key: "k", Kind: "tile"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(big) {
		t.Fatal("compressed fill did not round-trip")
	}
}

func TestTransportErrors(t *testing.T) {
	hs := peerStub(t, EpochVector{"origin": 3}, nil, errors.New("no such layer"))
	defer hs.Close()
	tr := NewTransport([]string{hs.URL}, TransportConfig{PerPeer: 4, Timeout: time.Second})
	if _, _, err := tr.Fetch(hs.URL, &FillRequest{}); err == nil {
		t.Fatal("error frame must surface as an error")
	}
	if _, _, err := tr.Fetch("http://not-registered", &FillRequest{}); err == nil {
		t.Fatal("unknown peer must fail")
	}
	// A dead peer fails within the timeout instead of hanging.
	dead := NewTransport([]string{"http://127.0.0.1:1"}, TransportConfig{PerPeer: 1, Timeout: 200 * time.Millisecond, Retries: -1})
	start := time.Now()
	if _, _, err := dead.Fetch("http://127.0.0.1:1", &FillRequest{}); err == nil {
		t.Fatal("dead peer must fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("dead-peer failure took too long")
	}
}

// TestTransportConcurrencyBound: the per-peer semaphore admits at most
// perPeer fills at once; the rest queue (and eventually run).
func TestTransportConcurrencyBound(t *testing.T) {
	const bound = 2
	var inFlight, maxSeen atomic.Int64
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if cur <= m || maxSeen.CompareAndSwap(m, cur) {
				break
			}
		}
		<-release
		inFlight.Add(-1)
		_ = WritePeerResponse(w, nil, FrameKindOf("tile"), []byte("x"), nil, false)
	}))
	defer hs.Close()

	tr := NewTransport([]string{hs.URL}, TransportConfig{PerPeer: bound, Timeout: 5 * time.Second})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = tr.Fetch(hs.URL, &FillRequest{})
		}()
	}
	// Let the first `bound` fills arrive, then release everyone.
	deadline := time.Now().Add(5 * time.Second)
	for inFlight.Load() < bound && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if maxSeen.Load() > bound {
		t.Fatalf("peer saw %d concurrent fills, bound %d", maxSeen.Load(), bound)
	}
}

// TestNodeEpochGossip: Observe merges only advancing components, runs
// the invalidation hook exactly once per adoption, and Fetch folds the
// peer's vector in before returning.
func TestNodeEpochGossip(t *testing.T) {
	hs := peerStub(t, EpochVector{"origin": 5}, []byte("p"), nil)
	defer hs.Close()
	n, err := New(Options{Self: "http://self", Peers: []string{"http://self", hs.URL}})
	if err != nil {
		t.Fatal(err)
	}
	var hookCalls atomic.Int64
	n.SetEpochHook(func(EpochVector) { hookCalls.Add(1) })

	n.Observe(nil) // nothing to merge
	n.Observe(EpochVector{})
	if n.Epoch() != 0 || hookCalls.Load() != 0 {
		t.Fatalf("empty observes changed state: epoch=%d hooks=%d", n.Epoch(), hookCalls.Load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); n.Observe(EpochVector{"a": 3}) }()
	}
	wg.Wait()
	if n.Epoch() != 3 || hookCalls.Load() != 1 {
		t.Fatalf("racing observes: epoch=%d hooks=%d, want 3/1", n.Epoch(), hookCalls.Load())
	}
	n.Observe(EpochVector{"a": 2}) // already covered
	if hookCalls.Load() != 1 {
		t.Fatal("covered vector re-ran the hook")
	}
	if _, err := n.Fetch(hs.URL, &FillRequest{Key: "k", Kind: "tile"}); err != nil {
		t.Fatal(err)
	}
	if n.Epoch() != 8 { // a:3 + origin:5
		t.Fatalf("fetch did not gossip the epoch vector: %d", n.Epoch())
	}
	if n.Stats.PeerFills.Load() != 1 || n.Stats.EpochAdoptions.Load() != 2 {
		t.Fatalf("stats = fills %d adoptions %d", n.Stats.PeerFills.Load(), n.Stats.EpochAdoptions.Load())
	}
	n.Bump()
	if got := n.EpochVec()["http://self"]; got != 1 {
		t.Fatalf("Bump advanced own component to %d, want 1", got)
	}
}

// TestNodeEpochConcurrentOrigins is the regression the vector exists
// for: two nodes updating concurrently both reach "1 update", and a
// scalar max-merged epoch would treat the other's 1 as not-newer —
// silently dropping an invalidation. Per-origin components cannot
// collide: each side adopts the other's update exactly once, and a
// concurrent local Bump is never erased by a merge.
func TestNodeEpochConcurrentOrigins(t *testing.T) {
	a, err := New(Options{Self: "http://a", Peers: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Self: "http://b", Peers: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	var aHooks, bHooks atomic.Int64
	a.SetEpochHook(func(EpochVector) { aHooks.Add(1) })
	b.SetEpochHook(func(EpochVector) { bHooks.Add(1) })

	a.Bump() // concurrent updates at both nodes
	b.Bump()
	a.Observe(b.EpochVec()) // gossip crosses
	b.Observe(a.EpochVec())
	if aHooks.Load() != 1 || bHooks.Load() != 1 {
		t.Fatalf("adoptions = a:%d b:%d, want 1/1 — a concurrent update was dropped", aHooks.Load(), bHooks.Load())
	}
	want := EpochVector{"http://a": 1, "http://b": 1}
	for name, n := range map[string]*Node{"a": a, "b": b} {
		got := n.EpochVec()
		if got["http://a"] != want["http://a"] || got["http://b"] != want["http://b"] {
			t.Fatalf("node %s vector = %v, want %v", name, got, want)
		}
	}

	// A local Bump racing a merge survives it: b observes a's OLD
	// vector while b bumps again; b's own component must end at 2.
	var wg sync.WaitGroup
	old := a.EpochVec()
	wg.Add(2)
	go func() { defer wg.Done(); b.Bump() }()
	go func() { defer wg.Done(); b.Observe(old) }()
	wg.Wait()
	if got := b.EpochVec()["http://b"]; got != 2 {
		t.Fatalf("merge erased a concurrent local bump: own component = %d, want 2", got)
	}
}

func TestOptionsEnabled(t *testing.T) {
	cases := []struct {
		o    Options
		want bool
	}{
		{Options{}, false},
		{Options{Self: "a"}, false},
		{Options{Self: "a", Peers: []string{"a"}}, false},
		{Options{Self: "a", Peers: []string{""}}, false},
		{Options{Self: "a", Peers: []string{"a", "b"}}, true},
		{Options{Peers: []string{"a", "b"}}, false},
	}
	for i, c := range cases {
		if c.o.Enabled() != c.want {
			t.Fatalf("case %d: Enabled = %v", i, c.o.Enabled())
		}
	}
	if _, err := New(Options{Self: "a"}); err == nil {
		t.Fatal("New must reject peerless options")
	}
}
