// Package cluster is the horizontally scaled serving tier: N
// kyrix-server nodes partition tile/dbox cache-key ownership over a
// consistent-hash ring and fill each other's caches instead of each
// hammering the shared backing store. It is the groupcache pattern
// grown onto the Kyrix serving pipeline:
//
//   - A consistent-hash ring with virtual nodes (Ring) maps every
//     canonical cache key (the same strings internal/cache stores) to
//     exactly one owner node. Node join/leave moves only ~K/N keys.
//   - A non-owner that misses its local cache forwards the request to
//     the owner over HTTP (Transport), who serves it through its own
//     cache + singleflight path — so one database query serves the
//     whole cluster per key per generation.
//   - Keys whose sketch frequency crosses a threshold are replicated
//     into the non-owner's local cache ("hot-key replication"), so a
//     viral viewport does not bottleneck its owner.
//   - Every peer exchange gossips a cluster epoch; /update bumps it,
//     and a node observing a newer epoch clears its cache and
//     refetches (epoch.go has the invalidation contract).
//
// The package deliberately knows nothing about HTTP routing or SQL:
// the server wires it in (internal/server/peer.go), this package owns
// placement, transport and epoch state.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the ring's default virtual-node count per
// physical node. More vnodes flatten the ownership distribution (the
// spread shrinks like 1/sqrt(vnodes)); 512 keeps 8-node ownership
// uniform within a few percent while the ring stays a few KB.
const DefaultVirtualNodes = 512

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring: every key hashes to a
// point on a circle and is owned by the first virtual node clockwise
// from it. Immutability keeps lookups lock-free; membership changes
// build a new ring (With/Without), which is how the join/leave
// remapping property is tested.
type Ring struct {
	vnodes int
	points []ringPoint
	nodes  []string
}

// NewRing builds a ring over the given physical nodes with vnodes
// virtual nodes each (0 = DefaultVirtualNodes). Duplicate node names
// collapse; order does not matter.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	var uniq []string
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, nodes: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: pointHash(n + "#" + strconv.Itoa(i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so equal hashes (astronomically
		// rare) cannot make ownership depend on sort stability.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	// First point clockwise (>= h), wrapping to the start.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring's physical nodes, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Size returns the number of physical nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// With returns a new ring with node added (join).
func (r *Ring) With(node string) *Ring {
	return NewRing(r.vnodes, append(append([]string{}, r.nodes...), node)...)
}

// Without returns a new ring with node removed (leave).
func (r *Ring) Without(node string) *Ring {
	var keep []string
	for _, n := range r.nodes {
		if n != node {
			keep = append(keep, n)
		}
	}
	return NewRing(r.vnodes, keep...)
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d nodes, %d vnodes}", len(r.nodes), r.vnodes)
}

// keyHash and pointHash are fnv-1a finished with a splitmix64-style
// avalanche: plain fnv distributes the short "node#N" vnode labels
// (and sequential tile keys) poorly on the high bits the ring search
// compares, which shows up directly as ownership skew.
func keyHash(s string) uint64 { return mix64(fnv64a(s)) }

func pointHash(s string) uint64 { return mix64(fnv64a(s)) }

func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
