package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		Path:            filepath.Join(t.TempDir(), "l2"),
		MaxBytes:        1 << 20,
		SegmentBytes:    64 << 10,
		WriteQueueDepth: 256,
		FlushInterval:   5 * time.Millisecond,
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetFlush(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	defer s.Close()

	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on empty store returned a hit")
	}
	val := []byte("tile payload \x00\xff binary ok")
	if !s.Put("t/0/0/0", val) {
		t.Fatal("Put dropped on an empty queue")
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, ok := s.Get("t/0/0/0")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, val)
	}
	// Last write wins.
	if !s.Put("t/0/0/0", []byte("v2")) {
		t.Fatal("overwrite dropped")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("t/0/0/0"); !ok || string(got) != "v2" {
		t.Fatalf("overwrite: got %q, %v", got, ok)
	}
	snap := s.Snapshot()
	if snap.Puts != 2 || snap.Hits != 2 || snap.Misses != 1 || snap.Keys != 1 {
		t.Fatalf("stats: %+v", snap)
	}
}

func TestPutBufferNotAliased(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	defer s.Close()
	buf := []byte("original")
	s.Put("k", buf)
	copy(buf, "CLOBBER!")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("k"); string(got) != "original" {
		t.Fatalf("flusher read caller-mutated buffer: %q", got)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	want := map[string][]byte{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("tile/%d", i)
		v := bytes.Repeat([]byte{byte(i)}, 100+i)
		want[k] = v
		if !s.Put(k, v) {
			t.Fatalf("Put %s dropped", k)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reopen index size = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("after reopen, Get(%s) = %v, %v", k, got, ok)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 4 << 10 // force many rotations
	s := mustOpen(t, opts)
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 512))
		if i%10 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", snap.Segments)
	}
	for i := 0; i < 100; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d lost across rotation", i)
		}
	}
}

func TestEvictionStaysUnderBudgetAndSalvages(t *testing.T) {
	opts := testOptions(t)
	opts.MaxBytes = 64 << 10
	opts.SegmentBytes = 8 << 10
	s := mustOpen(t, opts)
	defer s.Close()

	// Ten tiny long-lived keys written once up front, then heavy churn
	// over a small cycling key set. Churn records are overwritten by
	// later copies, so evicted segments are mostly garbage and the
	// salvage budget comfortably covers the early keys: they must be
	// carried forward segment to segment, never lost.
	early := map[string][]byte{}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("early/%d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 40)
		early[k] = v
		s.Put(k, v)
	}
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("cold/%d", i%40), bytes.Repeat([]byte("z"), 400))
		if i%5 == 0 {
			// Small batches so a batch never overshoots the budget by
			// more than a segment (which would zero the salvage budget).
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if snap.Bytes > opts.MaxBytes+opts.SegmentBytes {
		t.Fatalf("store grew past budget: %d bytes (budget %d)", snap.Bytes, opts.MaxBytes)
	}
	if snap.Salvaged == 0 {
		t.Fatal("expected live records to be salvaged during eviction")
	}
	for k, v := range early {
		if got, ok := s.Get(k); !ok || !bytes.Equal(got, v) {
			t.Fatalf("early key %s lost to eviction: %v, %v (salvaged=%d evictedLive=%d)",
				k, got, ok, snap.Salvaged, snap.EvictedLive)
		}
	}
	// Integrity invariant regardless of retention: every key the index
	// still claims is readable with correct framing.
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("cold/%d", i)
		if got, ok := s.Get(k); ok {
			for _, b := range got {
				if b != 'z' {
					t.Fatalf("cold key %s served corrupt bytes", k)
				}
			}
		}
	}
}

func TestOversizeDropped(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 4 << 10
	s := mustOpen(t, opts)
	defer s.Close()
	if s.Put("huge", make([]byte, 8<<10)) {
		t.Fatal("oversize Put accepted")
	}
	if s.Snapshot().DroppedOversize != 1 {
		t.Fatal("DroppedOversize not counted")
	}
}

func TestQueueFullDropsNotBlocks(t *testing.T) {
	opts := testOptions(t)
	opts.WriteQueueDepth = 4
	opts.FlushInterval = time.Hour // flusher effectively idle between batches
	s := mustOpen(t, opts)
	defer s.Close()

	dropped := 0
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; dropped == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("never observed a dropped fill with a full queue")
		}
		if !s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("y"), 64)) {
			dropped++
		}
	}
	if s.Snapshot().DroppedFull == 0 {
		t.Fatal("DroppedFull not counted")
	}
}

func TestBumpInvalidates(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	s.Put("a", []byte("1"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	gen, err := s.Bump()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("gen = %d, want 1", gen)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("record visible after Bump")
	}
	// New-generation writes are visible.
	s.Put("a", []byte("2"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("a"); !ok || string(got) != "2" {
		t.Fatalf("post-bump write: %q, %v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Invalidation survives restart: replay must not resurrect "1".
	s2 := mustOpen(t, opts)
	defer s2.Close()
	if s2.Generation() != 1 {
		t.Fatalf("reopen generation = %d, want 1", s2.Generation())
	}
	if got, ok := s2.Get("a"); !ok || string(got) != "2" {
		t.Fatalf("after reopen: %q, %v", got, ok)
	}
}

func TestStaleGenerationFillDropped(t *testing.T) {
	opts := testOptions(t)
	opts.FlushInterval = time.Hour // hold fills in the queue
	s := mustOpen(t, opts)
	defer s.Close()

	s.Put("stale", []byte("old-gen payload")) // enqueued under gen 0
	if _, err := s.Bump(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // flush processes the gen-0 fill under gen 1
		t.Fatal(err)
	}
	if _, ok := s.Get("stale"); ok {
		t.Fatal("stale-generation fill was written and served")
	}
	if s.Snapshot().DroppedStale != 1 {
		t.Fatalf("DroppedStale = %d, want 1", s.Snapshot().DroppedStale)
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	opts := testOptions(t)
	opts.FlushInterval = time.Hour // nothing flushes except via drain
	s := mustOpen(t, opts)
	// Enqueue and immediately Close, without Flush: the Close-drain
	// contract says this fill must still land on disk.
	if !s.Put("last-second", []byte("fill enqueued just before Close")) {
		t.Fatal("Put dropped")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	got, ok := s2.Get("last-second")
	if !ok || string(got) != "fill enqueued just before Close" {
		t.Fatalf("fill lost across Close: %q, %v", got, ok)
	}
}

func TestCloseIdempotentAndPutAfterClose(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Put("k", []byte("v")) {
		t.Fatal("Put accepted after Close")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get hit after Close")
	}
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
}

func TestOpenRequiresPath(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Path succeeded")
	}
}
