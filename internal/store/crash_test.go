package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// lastSegmentPath returns the path of the newest segment file in dir.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	ids, err := listSegmentIDs(dir)
	if err != nil || len(ids) == 0 {
		t.Fatalf("listSegmentIDs: %v (n=%d)", err, len(ids))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return segPath(dir, ids[len(ids)-1])
}

// TestCrashTruncateLastSegment simulates a crash that tears the tail of
// the active segment at every possible byte offset: reopening must (a)
// never serve a torn or corrupt record and (b) keep every record whose
// frame survived the truncation intact.
func TestCrashTruncateLastSegment(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	type entry struct {
		key string
		val []byte
	}
	var entries []entry
	for i := 0; i < 8; i++ {
		e := entry{
			key: fmt.Sprintf("tile/%d", i),
			val: bytes.Repeat([]byte{byte('a' + i)}, 20+i*7),
		}
		entries = append(entries, e)
		if !s.Put(e.key, e.val) {
			t.Fatal("Put dropped")
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segFile := lastSegmentPath(t, opts.Path)
	pristine, err := os.ReadFile(segFile)
	if err != nil {
		t.Fatal(err)
	}

	// Sweep every truncation point (the file is small by design).
	for cut := 0; cut <= len(pristine); cut += 1 {
		if err := os.WriteFile(segFile, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(opts)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		for _, e := range entries {
			got, ok := s2.Get(e.key)
			if ok && !bytes.Equal(got, e.val) {
				t.Fatalf("cut=%d: key %s served corrupt bytes %q", cut, e.key, got)
			}
		}
		// Records wholly before the cut must survive: replay the
		// pristine image to find which frames end before cut.
		survivors := survivingKeys(t, pristine, cut)
		for _, k := range survivors {
			if _, ok := s2.Get(k); !ok {
				t.Fatalf("cut=%d: fully-flushed key %s lost", cut, k)
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
	}
}

// survivingKeys walks the pristine segment image frame by frame and
// returns the keys of put records whose full frame lies before cut.
func survivingKeys(t *testing.T, img []byte, cut int) []string {
	t.Helper()
	var keys []string
	off := 0
	for off+8 <= len(img) {
		length := int(uint32(img[off]) | uint32(img[off+1])<<8 | uint32(img[off+2])<<16 | uint32(img[off+3])<<24)
		end := off + 8 + length
		if end > len(img) {
			break
		}
		if end <= cut {
			rec, err := decodeRecord(img[off+8 : end])
			if err == nil && rec.kind == recordPut {
				keys = append(keys, rec.key)
			}
		}
		off = end
	}
	return keys
}

// TestCrashCorruptMiddleRecord flips bytes inside a flushed record:
// the checksum must reject it at read time (or replay time) and the
// store must degrade to a miss, never serve the damaged payload.
func TestCrashCorruptMiddleRecord(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	want := map[string][]byte{}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 64)
		want[k] = v
		s.Put(k, v)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segFile := lastSegmentPath(t, opts.Path)
	img, err := os.ReadFile(segFile)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file (inside some record's
	// payload region).
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(segFile, img, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, opts)
	defer s2.Close()
	for k, v := range want {
		got, ok := s2.Get(k)
		if ok && !bytes.Equal(got, v) {
			t.Fatalf("key %s served corrupt bytes after bit flip", k)
		}
	}
}

// TestCrashMidEvictionFiles simulates a crash that leaves a gap in the
// segment id sequence (eviction removed seg-0 but the process died
// before anything else): open must cope with non-contiguous ids.
func TestCrashNonContiguousSegments(t *testing.T) {
	opts := testOptions(t)
	opts.SegmentBytes = 2 << 10
	s := mustOpen(t, opts)
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("p"), 256))
		if i%10 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ids, err := listSegmentIDs(opts.Path)
	if err != nil || len(ids) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(ids), err)
	}
	// Delete the oldest file out from under the store.
	if err := os.Remove(segPath(opts.Path, ids[0])); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, opts)
	defer s2.Close()
	// Keys from the deleted segment are misses; everything else must
	// still be intact and the store must keep working.
	s2.Put("after-gap", []byte("ok"))
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("after-gap"); !ok || string(got) != "ok" {
		t.Fatalf("store unusable after id gap: %q %v", got, ok)
	}
}

// TestGenerationInvalidationProperty is the ISSUE's property test: for
// random interleavings of puts and generation bumps, a reopened store
// serves exactly the keys whose LAST write happened in the final
// generation, with their last-written values — never a pre-bump value.
func TestGenerationInvalidationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := Options{
			Path:            filepath.Join(t.TempDir(), "l2"),
			MaxBytes:        1 << 20,
			SegmentBytes:    32 << 10,
			WriteQueueDepth: 256,
			FlushInterval:   time.Millisecond,
		}
		s, err := Open(opts)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		// Model: key -> value written in the CURRENT generation.
		model := map[string]string{}
		nOps := 50 + rng.Intn(150)
		for i := 0; i < nOps; i++ {
			switch {
			case rng.Intn(10) == 0: // bump ~10% of ops
				if err := s.Flush(); err != nil {
					return false
				}
				if _, err := s.Bump(); err != nil {
					return false
				}
				model = map[string]string{}
			default:
				k := fmt.Sprintf("k%d", rng.Intn(20))
				v := fmt.Sprintf("v%d-%d", i, rng.Int63())
				if !s.Put(k, []byte(v)) {
					return false
				}
				model[k] = v
			}
		}
		if err := s.Flush(); err != nil {
			return false
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := Open(opts)
		if err != nil {
			return false
		}
		defer s2.Close()
		for k, v := range model {
			got, ok := s2.Get(k)
			if !ok || string(got) != v {
				t.Logf("seed=%d key=%s: got %q,%v want %q", seed, k, got, ok, v)
				return false
			}
		}
		// And nothing outside the model (a pre-bump survivor) is served.
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, inModel := model[k]; inModel {
				continue
			}
			if got, ok := s2.Get(k); ok {
				t.Logf("seed=%d: pre-bump key %s resurrected as %q", seed, k, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
