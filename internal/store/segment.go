package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"kyrix/internal/wal"
)

// A segment is one size-bounded append-only file of the store, built
// directly on the WAL's length-prefixed checksummed record framing.
// Segments are immutable once rotated out of the active slot; the
// oldest is evicted (after live-record salvage) when the store exceeds
// its byte budget.
type segment struct {
	id   uint64
	path string
	log  *wal.Log
}

const segPrefix = "seg-"
const segSuffix = ".kyx"

func segPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, id, segSuffix))
}

// openSegment opens (creating if absent) the segment file for id,
// truncating any torn tail — exactly the WAL recovery contract.
func openSegment(dir string, id uint64) (*segment, error) {
	p := segPath(dir, id)
	l, err := wal.Open(p)
	if err != nil {
		return nil, err
	}
	return &segment{id: id, path: p, log: l}, nil
}

// listSegmentIDs returns the ids of every segment file in dir, oldest
// (smallest id) first. Unrecognized files are ignored.
func listSegmentIDs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: read dir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		id, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
