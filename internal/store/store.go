// Package store implements the persistent L2 tile store: an embedded
// single-writer log-structured KV tier that sits under the in-memory
// backend cache and holds encoded (post-render, pre-compression)
// tile/box payloads across restarts. At the paper's "500-millisecond
// interactions over billions of rows" bar, a deploy that cold-starts
// the whole fleet against the database is a thundering herd; a
// restarted node re-serves its working set from disk instead.
//
// # Layout
//
// The store is a directory of size-bounded segment files. Each segment
// is an append-only log reusing the internal/wal framing (uint32
// length + CRC-32 + payload), and each record's payload is one row of
// the internal/storage codec: {gen INT, kind INT, key TEXT, val TEXT}.
// An in-memory index maps key → (segment, offset) and is rebuilt on
// open by replaying every segment oldest-first (later records win).
// Reads go through wal.ReadAt, so every payload served is
// checksum-verified — a torn or corrupt record is a miss, never bad
// bytes.
//
// # Write-behind
//
// Put never blocks and never touches disk inline: fills are enqueued
// on a bounded queue and appended by a single flusher goroutine in
// batches (a full batch or the flush interval, whichever first), one
// fsync per batch. When the queue is full the fill is dropped and
// counted — the L2 is a cache; losing a write costs a future disk
// miss, never correctness. Close drains the queue under a deadline so
// a fill enqueued just before shutdown is readable after reopen.
//
// # Generations (invalidation by prefix)
//
// Every record carries the generation it was written under. Bump
// persists a generation marker and makes every earlier record
// invisible — without touching it on disk — which is how /update and
// cluster epoch adoptions invalidate the whole tier in O(1). Replay
// honors markers, so invalidated records stay invisible across
// restarts; compaction reclaims their space when their segment is
// evicted.
//
// # Eviction and compaction
//
// When the store exceeds its byte budget the oldest segment is
// evicted: records still live (indexed, current generation) are
// salvaged — re-appended to the active segment — as long as salvage
// keeps the store under budget, and the rest are dropped from the
// index; then the file is deleted. Stale generations and overwritten
// records are never salvaged, so eviction doubles as compaction.
package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"kyrix/internal/wal"
)

// Options configures a Store. Path is required; every other field has
// a default.
type Options struct {
	// Path is the directory holding the segment files (created if
	// absent).
	Path string
	// MaxBytes is the on-disk budget; the oldest segment is evicted
	// (live records salvaged) when total segment bytes exceed it.
	// Default 1 GiB.
	MaxBytes int64
	// SegmentBytes bounds one segment file; the active segment rotates
	// when it reaches this size. Default MaxBytes/8, clamped to
	// [1 MiB, 64 MiB]. Records larger than a segment are dropped.
	SegmentBytes int64
	// WriteQueueDepth bounds the write-behind queue; a Put finding it
	// full is dropped, not blocked. Default 1024.
	WriteQueueDepth int
	// FlushInterval is the longest an enqueued fill waits before its
	// batch is appended and fsynced. Default 50 ms.
	FlushInterval time.Duration
	// DrainTimeout bounds how long Close waits for the flusher to
	// drain the queue before force-closing the segments. Default 5 s.
	DrainTimeout time.Duration
	// ScrubInterval, when positive, starts a background scrubber that
	// re-verifies every indexed record's checksum each interval and
	// drops records that no longer read back clean (counted in
	// Stats.ScrubbedBad) — bit rot is found proactively instead of at
	// the next unlucky Get. 0 disables; Scrub can still be called
	// directly.
	ScrubInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 1 << 30
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = o.MaxBytes / 8
		if o.SegmentBytes < 1<<20 {
			o.SegmentBytes = 1 << 20
		}
		if o.SegmentBytes > 64<<20 {
			o.SegmentBytes = 64 << 20
		}
	}
	if o.WriteQueueDepth <= 0 {
		o.WriteQueueDepth = 1024
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 50 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// Stats counts store activity. All fields are atomic; read them with
// Snapshot for a consistent-enough view.
type Stats struct {
	Hits            atomic.Int64
	Misses          atomic.Int64
	Puts            atomic.Int64
	DroppedFull     atomic.Int64 // queue full
	DroppedStale    atomic.Int64 // generation moved between enqueue and flush
	DroppedOversize atomic.Int64
	CorruptReads    atomic.Int64 // checksum rejected a record at read time
	BatchFlushes    atomic.Int64
	Evictions       atomic.Int64 // segments evicted
	Salvaged        atomic.Int64 // live records re-appended during eviction
	EvictedLive     atomic.Int64 // live records dropped because salvage was over budget
	Scrubs          atomic.Int64 // completed Scrub passes
	ScrubbedBad     atomic.Int64 // records dropped by Scrub (failed re-verification)
}

// StatsSnapshot is a point-in-time copy of Stats plus the store's
// current shape — what /stats serves under cache.l2.
type StatsSnapshot struct {
	Hits            int64  `json:"hits"`
	Misses          int64  `json:"misses"`
	Puts            int64  `json:"puts"`
	DroppedFull     int64  `json:"droppedFull"`
	DroppedStale    int64  `json:"droppedStale"`
	DroppedOversize int64  `json:"droppedOversize"`
	CorruptReads    int64  `json:"corruptReads"`
	BatchFlushes    int64  `json:"batchFlushes"`
	Evictions       int64  `json:"evictions"`
	Salvaged        int64  `json:"salvaged"`
	EvictedLive     int64  `json:"evictedLive"`
	Scrubs          int64  `json:"scrubs"`
	ScrubbedBad     int64  `json:"scrubbedBad"`
	Bytes           int64  `json:"bytes"`
	Segments        int    `json:"segments"`
	Keys            int    `json:"keys"`
	Generation      uint64 `json:"generation"`
}

// loc addresses one live record.
type loc struct {
	seg uint64
	lsn wal.LSN
}

type putReq struct {
	key  string
	val  []byte
	gen  uint64
	done chan struct{} // non-nil: flush barrier, key/val unused
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Store is the persistent tile store. One flusher goroutine performs
// all disk writes (single-writer); Get is safe for any concurrency.
type Store struct {
	opts Options

	// mu guards index, segs, segByID, totalBytes and all segment
	// mutation. Gets hold the read side across the index lookup AND
	// the file read, so eviction can never delete a file mid-read.
	mu         sync.RWMutex
	segs       []*segment          // guarded by mu; oldest..newest; last is the active (append) segment
	segByID    map[uint64]*segment // guarded by mu
	index      map[string]loc      // guarded by mu
	totalBytes int64               // guarded by mu
	nextSegID  uint64              // guarded by mu
	segsClosed bool                // guarded by mu

	// gen is the current generation; reads/writes outside mu go
	// through the atomic.
	gen atomic.Uint64

	// qmu guards the closed flag vs. closing the queue channel, so a
	// concurrent Put can never send on a closed channel.
	qmu         sync.RWMutex
	closed      bool // guarded by qmu
	queue       chan putReq
	flusherDone chan struct{}
	scrubStop   chan struct{} // non-nil when the background scrubber runs
	scrubDone   chan struct{}

	Stats Stats
}

// Open opens (creating if needed) the store at opts.Path, rebuilding
// the key index by replaying every segment, and starts the write-
// behind flusher.
func Open(opts Options) (*Store, error) {
	if opts.Path == "" {
		return nil, errors.New("store: Options.Path is required")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Path, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir: %w", err)
	}
	s := &Store{
		opts:        opts,
		segByID:     make(map[uint64]*segment),
		index:       make(map[string]loc),
		queue:       make(chan putReq, opts.WriteQueueDepth),
		flusherDone: make(chan struct{}),
	}
	ids, err := listSegmentIDs(opts.Path)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		seg, err := openSegment(opts.Path, id)
		if err != nil {
			s.closeSegsLocked()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		s.segByID[id] = seg
		if err := s.replaySegmentLocked(seg); err != nil {
			s.closeSegsLocked()
			return nil, err
		}
		s.totalBytes += seg.log.Size()
		if id >= s.nextSegID {
			s.nextSegID = id + 1
		}
	}
	// Entries indexed before the final generation marker are stale.
	s.pruneIndexLocked()
	if len(s.segs) == 0 {
		if err := s.rotateLocked(); err != nil {
			return nil, err
		}
	}
	go s.flusher()
	if opts.ScrubInterval > 0 {
		s.scrubStop = make(chan struct{})
		s.scrubDone = make(chan struct{})
		go s.scrubber()
	}
	return s, nil
}

// replaySegment folds one segment's records into the index. Later
// records win (replay is oldest segment first, in-file order); a
// generation marker clears everything indexed so far.
func (s *Store) replaySegmentLocked(seg *segment) error {
	return seg.log.Replay(func(lsn wal.LSN, payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			// A record that framed correctly but does not decode is a
			// foreign or damaged payload: skip it, the index just
			// won't serve it.
			s.Stats.CorruptReads.Add(1)
			return nil
		}
		switch rec.kind {
		case recordGen:
			if rec.gen > s.gen.Load() {
				s.gen.Store(rec.gen)
				s.index = make(map[string]loc)
			}
		case recordPut:
			if rec.gen == s.gen.Load() {
				s.index[rec.key] = loc{seg: seg.id, lsn: lsn}
			}
		}
		return nil
	})
}

// pruneIndexLocked drops index entries from earlier generations (only
// possible transiently during replay).
func (s *Store) pruneIndexLocked() {
	// replaySegment already clears on markers and filters on gen, so
	// this is a no-op safeguard kept cheap by the small index.
}

// Generation returns the current generation.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Get returns the payload stored for key in the current generation.
// The read is checksum-verified end to end: a torn, corrupt, or
// mismatched record counts as a miss (and the bad index entry is
// dropped), never as served bytes.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	l, ok := s.index[key]
	if !ok || s.segsClosed {
		s.mu.RUnlock()
		s.Stats.Misses.Add(1)
		return nil, false
	}
	seg := s.segByID[l.seg]
	payload, err := seg.log.ReadAt(l.lsn)
	var rec decodedRecord
	if err == nil {
		rec, err = decodeRecord(payload)
	}
	s.mu.RUnlock()
	if err != nil || rec.kind != recordPut || rec.key != key || rec.gen != s.gen.Load() {
		s.Stats.CorruptReads.Add(1)
		s.Stats.Misses.Add(1)
		s.dropIndexEntry(key, l)
		return nil, false
	}
	s.Stats.Hits.Add(1)
	return rec.val, true
}

// dropIndexEntry removes key's index entry if it still points at l
// (a corrupt record should not be re-read on every lookup).
func (s *Store) dropIndexEntry(key string, l loc) {
	s.mu.Lock()
	if cur, ok := s.index[key]; ok && cur == l {
		delete(s.index, key)
	}
	s.mu.Unlock()
}

// Put enqueues one fill for asynchronous append. It never blocks: a
// full queue drops the fill (counted in Stats.DroppedFull), and a
// fill that straddles a Bump is dropped at flush time. Returns false
// when the fill was dropped or the store is closed.
func (s *Store) Put(key string, val []byte) bool {
	return s.PutAt(key, val, s.gen.Load())
}

// PutAt is Put with the generation captured by the caller — callers
// that computed val under a known generation (a server answering a
// query) pass the generation they started from, so a fill that raced
// an invalidation is dropped at flush time instead of persisting
// pre-invalidation data under the new generation.
func (s *Store) PutAt(key string, val []byte, gen uint64) bool {
	if int64(len(key)+len(val))+64 > s.opts.SegmentBytes {
		s.Stats.DroppedOversize.Add(1)
		return false
	}
	// Copy: the caller's buffer may be reused before the flusher runs.
	v := make([]byte, len(val))
	copy(v, val)
	req := putReq{key: key, val: v, gen: gen}
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return false
	}
	select {
	case s.queue <- req:
		return true
	default:
		s.Stats.DroppedFull.Add(1)
		return false
	}
}

// Bump advances the generation, persisting a marker record before
// returning: every record written under an earlier generation is
// invisible from now on — and stays invisible after a restart — while
// its disk space is reclaimed lazily by eviction. This is how /update
// and cluster epoch adoptions invalidate the whole tier.
func (s *Store) Bump() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segsClosed {
		return s.gen.Load(), ErrClosed
	}
	next := s.gen.Load() + 1
	rec, err := encodeRecord(next, recordGen, "", nil)
	if err != nil {
		return s.gen.Load(), err
	}
	active := s.segs[len(s.segs)-1]
	before := active.log.Size()
	if _, err := active.log.Append(rec); err != nil {
		return s.gen.Load(), err
	}
	if err := active.log.Sync(); err != nil {
		return s.gen.Load(), err
	}
	s.totalBytes += active.log.Size() - before
	s.gen.Store(next)
	// Every indexed entry belongs to an earlier generation now.
	s.index = make(map[string]loc)
	return next, nil
}

// Flush blocks until every fill enqueued before the call is on disk
// (or dropped by a concurrent Bump). It is the synchronous barrier
// tests and Close use; the serving path never calls it.
func (s *Store) Flush() error {
	done := make(chan struct{})
	s.qmu.RLock()
	if s.closed {
		s.qmu.RUnlock()
		return ErrClosed
	}
	// Blocking send is correct here: the flusher is draining, and a
	// barrier must wait its turn behind the queued fills anyway.
	s.queue <- putReq{done: done}
	s.qmu.RUnlock()
	<-done
	return nil
}

// Close drains the write-behind queue (bounded by DrainTimeout),
// syncs, and closes every segment. Idempotent.
func (s *Store) Close() error {
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		// Wait for the closer that got here first.
		<-s.flusherDone
		return nil
	}
	s.closed = true
	close(s.queue)
	if s.scrubStop != nil {
		close(s.scrubStop)
	}
	s.qmu.Unlock()
	if s.scrubDone != nil {
		<-s.scrubDone
	}

	// The flusher drains the closed channel's remaining fills, then
	// exits. Give it the drain deadline; on expiry force-close the
	// segments — remaining appends fail harmlessly (dropped fills).
	select {
	case <-s.flusherDone:
	case <-time.After(s.opts.DrainTimeout):
	}
	s.mu.Lock()
	s.closeSegsLocked()
	s.mu.Unlock()
	return nil
}

func (s *Store) closeSegsLocked() {
	if s.segsClosed {
		return
	}
	s.segsClosed = true
	for _, seg := range s.segs {
		_ = seg.log.Close()
	}
}

// Snapshot returns a point-in-time copy of the store's counters and
// shape.
func (s *Store) Snapshot() StatsSnapshot {
	s.mu.RLock()
	bytes, segments, keys := s.totalBytes, len(s.segs), len(s.index)
	s.mu.RUnlock()
	return StatsSnapshot{
		Hits:            s.Stats.Hits.Load(),
		Misses:          s.Stats.Misses.Load(),
		Puts:            s.Stats.Puts.Load(),
		DroppedFull:     s.Stats.DroppedFull.Load(),
		DroppedStale:    s.Stats.DroppedStale.Load(),
		DroppedOversize: s.Stats.DroppedOversize.Load(),
		CorruptReads:    s.Stats.CorruptReads.Load(),
		BatchFlushes:    s.Stats.BatchFlushes.Load(),
		Evictions:       s.Stats.Evictions.Load(),
		Salvaged:        s.Stats.Salvaged.Load(),
		EvictedLive:     s.Stats.EvictedLive.Load(),
		Scrubs:          s.Stats.Scrubs.Load(),
		ScrubbedBad:     s.Stats.ScrubbedBad.Load(),
		Bytes:           bytes,
		Segments:        segments,
		Keys:            keys,
		Generation:      s.gen.Load(),
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Scrub re-reads every indexed record and verifies it end to end (WAL
// CRC framing plus record decode, key and kind checks — the same
// verification Get performs). A record that fails is dropped from the
// index and counted in Stats.ScrubbedBad, so latent bit rot surfaces
// here instead of as a corrupt-read miss on some future Get. Returns
// the number of records checked and dropped. Concurrent Puts/Bumps are
// fine: the index is snapshotted first and each drop is conditional on
// the entry still pointing at the record that failed.
func (s *Store) Scrub() (checked, bad int, err error) {
	s.mu.RLock()
	if s.segsClosed {
		s.mu.RUnlock()
		return 0, 0, ErrClosed
	}
	snap := make(map[string]loc, len(s.index))
	for k, l := range s.index {
		snap[k] = l
	}
	s.mu.RUnlock()

	for key, l := range snap {
		s.mu.RLock()
		if s.segsClosed {
			s.mu.RUnlock()
			return checked, bad, ErrClosed
		}
		if cur, ok := s.index[key]; !ok || cur != l {
			// Re-filled or invalidated since the snapshot; nothing to
			// verify.
			s.mu.RUnlock()
			continue
		}
		seg := s.segByID[l.seg]
		payload, rerr := seg.log.ReadAt(l.lsn)
		var rec decodedRecord
		if rerr == nil {
			rec, rerr = decodeRecord(payload)
		}
		s.mu.RUnlock()
		checked++
		if rerr != nil || rec.kind != recordPut || rec.key != key {
			bad++
			s.Stats.ScrubbedBad.Add(1)
			s.dropIndexEntry(key, l)
		}
	}
	s.Stats.Scrubs.Add(1)
	return checked, bad, nil
}

// scrubber runs Scrub every ScrubInterval until Close.
func (s *Store) scrubber() {
	defer close(s.scrubDone)
	ticker := time.NewTicker(s.opts.ScrubInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-ticker.C:
			if _, _, err := s.Scrub(); err != nil {
				return
			}
		}
	}
}

// --- the single writer ---

// flusher is the only goroutine that appends fills. It batches queued
// fills (a full batch or one FlushInterval, whichever first) and
// performs one fsync per batch. When Close closes the queue, the
// channel drains its remaining buffered fills before ok turns false,
// which is exactly the Close-drain contract.
func (s *Store) flusher() {
	defer close(s.flusherDone)
	batchMax := s.opts.WriteQueueDepth / 2
	if batchMax < 1 {
		batchMax = 1
	}
	if batchMax > 256 {
		batchMax = 256
	}
	ticker := time.NewTicker(s.opts.FlushInterval)
	defer ticker.Stop()
	batch := make([]putReq, 0, batchMax)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.appendBatch(batch)
		batch = batch[:0]
	}
	for {
		select {
		case req, ok := <-s.queue:
			if !ok {
				flush()
				return
			}
			if req.done != nil {
				flush()
				close(req.done)
				continue
			}
			batch = append(batch, req)
			if len(batch) >= batchMax {
				flush()
			}
		case <-ticker.C:
			flush()
		}
	}
}

// appendBatch writes one batch under the store lock: rotate if the
// active segment is full, append every still-fresh fill, fsync once,
// then evict while over budget.
func (s *Store) appendBatch(batch []putReq) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segsClosed {
		for range batch {
			s.Stats.DroppedStale.Add(1)
		}
		return
	}
	gen := s.gen.Load()
	wrote := false
	for _, req := range batch {
		if req.gen != gen {
			// The generation moved between enqueue and flush: this
			// payload predates an invalidation and must not be
			// written under the new generation.
			s.Stats.DroppedStale.Add(1)
			continue
		}
		if err := s.appendPutLocked(req.key, req.val, gen); err != nil {
			s.Stats.DroppedStale.Add(1)
			continue
		}
		wrote = true
		s.Stats.Puts.Add(1)
	}
	if wrote {
		active := s.segs[len(s.segs)-1]
		_ = active.log.Sync()
		s.Stats.BatchFlushes.Add(1)
		s.evictLocked()
	}
}

// appendPutLocked appends one put record to the active segment
// (rotating first when full) and indexes it.
func (s *Store) appendPutLocked(key string, val []byte, gen uint64) error {
	active := s.segs[len(s.segs)-1]
	if active.log.Size() >= s.opts.SegmentBytes {
		// Sync the outgoing active segment before rotating: it is
		// immutable from here on and must be durable.
		_ = active.log.Sync()
		if err := s.rotateLocked(); err != nil {
			return err
		}
		active = s.segs[len(s.segs)-1]
	}
	rec, err := encodeRecord(gen, recordPut, key, val)
	if err != nil {
		return err
	}
	before := active.log.Size()
	lsn, err := active.log.Append(rec)
	if err != nil {
		return err
	}
	s.totalBytes += active.log.Size() - before
	s.index[key] = loc{seg: active.id, lsn: lsn}
	return nil
}

// rotateLocked opens a fresh active segment.
func (s *Store) rotateLocked() error {
	seg, err := openSegment(s.opts.Path, s.nextSegID)
	if err != nil {
		return err
	}
	s.nextSegID++
	s.segs = append(s.segs, seg)
	s.segByID[seg.id] = seg
	return nil
}

// evictLocked brings the store back under its byte budget by evicting
// oldest segments. Live current-generation records are salvaged into
// the active segment while salvage keeps the store under budget; the
// rest are dropped from the index (this is a cache — a dropped record
// costs a disk miss, never correctness). Overwritten and stale-
// generation records are simply left behind, so eviction is also the
// store's compaction.
func (s *Store) evictLocked() {
	for s.totalBytes > s.opts.MaxBytes && len(s.segs) > 1 {
		victim := s.segs[0]
		freed := victim.log.Size()
		// Salvage budget: what we may re-append and still land under
		// MaxBytes once the victim's bytes are gone.
		budget := s.opts.MaxBytes - (s.totalBytes - freed)
		gen := s.gen.Load()
		var salvagedBytes int64
		_ = victim.log.Replay(func(lsn wal.LSN, payload []byte) error {
			rec, err := decodeRecord(payload)
			if err != nil || rec.kind != recordPut {
				return nil
			}
			cur, ok := s.index[rec.key]
			if !ok || cur.seg != victim.id || cur.lsn != lsn || rec.gen != gen {
				return nil // overwritten, invalidated, or stale: garbage
			}
			recLen := int64(len(payload)) + 8
			if salvagedBytes+recLen > budget {
				delete(s.index, rec.key)
				s.Stats.EvictedLive.Add(1)
				return nil
			}
			if err := s.appendPutLocked(rec.key, rec.val, gen); err != nil {
				delete(s.index, rec.key)
				s.Stats.EvictedLive.Add(1)
				return nil
			}
			salvagedBytes += recLen
			s.Stats.Salvaged.Add(1)
			return nil
		})
		if salvagedBytes > 0 {
			_ = s.segs[len(s.segs)-1].log.Sync()
		}
		_ = victim.log.Close()
		_ = os.Remove(victim.path)
		s.totalBytes -= freed
		s.segs = s.segs[1:]
		delete(s.segByID, victim.id)
		s.Stats.Evictions.Add(1)
	}
}
