package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAccess drives Get/Put/Bump/Snapshot from many
// goroutines at once; run with -race. Correctness bar: no data race,
// no panic, and every hit returns bytes that some Put actually wrote
// for that key.
func TestConcurrentAccess(t *testing.T) {
	opts := testOptions(t)
	opts.MaxBytes = 256 << 10
	opts.SegmentBytes = 16 << 10
	s := mustOpen(t, opts)

	const (
		writers = 4
		readers = 4
		keys    = 32
		iters   = 300
	)
	valFor := func(k, i int) []byte {
		return bytes.Repeat([]byte{byte(k + 1)}, 16+i%64)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w*iters + i) % keys
				s.Put(fmt.Sprintf("k%d", k), valFor(k, i))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (r*iters + i) % keys
				got, ok := s.Get(fmt.Sprintf("k%d", k))
				if ok {
					// Every byte must be the key's fill byte: a mixed
					// or foreign payload means a torn read.
					for _, b := range got {
						if b != byte(k+1) {
							t.Errorf("torn read for k%d: %x", k, got)
							return
						}
					}
				}
				if i%100 == 0 {
					_ = s.Snapshot()
				}
			}
		}(r)
	}
	// One goroutine bumping the generation mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			time.Sleep(2 * time.Millisecond)
			if _, err := s.Bump(); err != nil {
				t.Errorf("Bump: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after the storm: must come up clean.
	s2 := mustOpen(t, opts)
	defer s2.Close()
	_ = s2.Snapshot()
}

// TestConcurrentCloseVsPut races Close against in-flight Puts; -race
// must stay quiet and no Put may panic on the closed queue.
func TestConcurrentCloseVsPut(t *testing.T) {
	for round := 0; round < 10; round++ {
		s := mustOpen(t, testOptions(t))
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					s.Put(fmt.Sprintf("k%d-%d", w, i), []byte("v"))
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		wg.Wait()
	}
}
