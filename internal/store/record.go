package store

import (
	"fmt"

	"kyrix/internal/storage"
)

// Record layout. Each WAL record (length + CRC-32 framing supplied by
// internal/wal) carries one storage-encoded row of recordSchema:
//
//	gen  INT   generation the record belongs to (see Store.Bump)
//	kind INT   recordPut | recordGen
//	key  TEXT  cache key (empty for recordGen markers)
//	val  TEXT  opaque payload bytes (empty for recordGen markers)
//
// The generation is deliberately the first field — it is the "prefix"
// of the ISSUE's generation-prefix invalidation: a bump makes every
// earlier record invisible without touching it on disk; compaction
// reclaims the space later.
const (
	recordPut = iota
	// recordGen marks a generation bump: gen is the NEW generation.
	// Replay clears the index when it crosses one, so invalidated
	// records can never be resurrected by a restart.
	recordGen
)

var recordSchema = storage.Schema{
	{Name: "gen", Type: storage.TInt64},
	{Name: "kind", Type: storage.TInt64},
	{Name: "key", Type: storage.TString},
	{Name: "val", Type: storage.TString},
}

// encodeRecord serializes one record through the shared row codec.
func encodeRecord(gen uint64, kind int, key string, val []byte) ([]byte, error) {
	return storage.EncodeRow(nil, recordSchema, storage.Row{
		storage.I64(int64(gen)),
		storage.I64(int64(kind)),
		storage.Str(key),
		storage.Bytes(val),
	})
}

// decodedRecord is the parsed form of one WAL record payload.
type decodedRecord struct {
	gen  uint64
	kind int
	key  string
	val  []byte
}

func decodeRecord(buf []byte) (decodedRecord, error) {
	row, err := storage.DecodeRow(buf, recordSchema)
	if err != nil {
		return decodedRecord{}, fmt.Errorf("store: decode record: %w", err)
	}
	return decodedRecord{
		gen:  uint64(row[0].AsInt()),
		kind: int(row[1].AsInt()),
		key:  row[2].S,
		val:  row[3].AsBytes(),
	}, nil
}
