package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

// corruptMidFile flips one byte in the middle of the newest segment
// while the store is open — latent bit rot under a live index.
func corruptMidFile(t *testing.T, dir string) {
	t.Helper()
	ids, err := listSegmentIDs(dir)
	if err != nil || len(ids) == 0 {
		t.Fatalf("listSegmentIDs: %v (%d)", err, len(ids))
	}
	path := segPath(dir, ids[len(ids)-1])
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
}

func TestScrubCleanStore(t *testing.T) {
	s := mustOpen(t, testOptions(t))
	defer s.Close()
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i + 1)}, 128))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checked, bad, err := s.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if checked != 8 || bad != 0 {
		t.Fatalf("Scrub = (%d checked, %d bad); want (8, 0)", checked, bad)
	}
	snap := s.Snapshot()
	if snap.Scrubs != 1 || snap.ScrubbedBad != 0 {
		t.Fatalf("stats after clean scrub: %+v", snap)
	}
}

func TestScrubDropsCorruptRecords(t *testing.T) {
	opts := testOptions(t)
	s := mustOpen(t, opts)
	defer s.Close()
	want := map[string][]byte{}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 128)
		want[k] = v
		s.Put(k, v)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptMidFile(t, opts.Path)

	checked, bad, err := s.Scrub()
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if checked != 16 {
		t.Fatalf("checked = %d, want 16", checked)
	}
	if bad < 1 {
		t.Fatal("Scrub found no bad record after a bit flip")
	}
	if got := s.Stats.ScrubbedBad.Load(); got != int64(bad) {
		t.Fatalf("ScrubbedBad = %d, want %d", got, bad)
	}
	if s.Len() != 16-bad {
		t.Fatalf("Len = %d after dropping %d of 16", s.Len(), bad)
	}
	// Surviving keys still read back clean; scrubbed keys miss rather
	// than serve damage.
	for k, v := range want {
		got, ok := s.Get(k)
		if ok && !bytes.Equal(got, v) {
			t.Fatalf("key %s served corrupt bytes after scrub", k)
		}
	}
	// A second pass over the pruned index finds nothing new.
	checked2, bad2, err := s.Scrub()
	if err != nil || bad2 != 0 || checked2 != 16-bad {
		t.Fatalf("second Scrub = (%d, %d, %v)", checked2, bad2, err)
	}
}

func TestBackgroundScrubberFindsRotWithoutGets(t *testing.T) {
	opts := testOptions(t)
	opts.ScrubInterval = 2 * time.Millisecond
	s := mustOpen(t, opts)
	defer s.Close()
	for i := 0; i < 8; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i + 1)}, 256))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptMidFile(t, opts.Path)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats.ScrubbedBad.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never dropped the corrupt record")
		}
		time.Sleep(time.Millisecond)
	}
}
