// Package wire implements the framed /batch stream shared by the
// backend server and the frontend client: the varint frame codec
// (protocol versions 2 and 3), pooled flate compression with a
// cheap worth-it heuristic, and the v3 delta-frame format for
// dynamic boxes.
//
// Stream layout (all integers are unsigned varints unless noted):
//
//	header:    magic "KYXB" (4 bytes) | version (1 byte, 0x02 or 0x03) |
//	           item count
//	v2 frame:  index | kind (1B) | status (1B) | payload length | payload
//	v3 frame:  index | kind (1B) | status (1B) | frame codec (1B) |
//	           payload length | payload
//
// The only layout difference between v2 and v3 is the per-frame codec
// byte: raw (0), flate (1), delta (2) or delta+flate (3). For flate
// codecs the payload is a DEFLATE stream whose decompressed size is
// bounded by MaxFramePayload; for delta codecs the (decompressed)
// payload is the delta format documented on Delta. Error-status frames
// are always raw.
//
// Versioning rules: the magic identifies the framed-batch family; the
// version byte is bumped on any layout change AND on any new frame
// kind, status or codec, and decoders reject versions, kinds, statuses
// and codecs they do not know — better a loud error than silently
// dropping a sub-result the server believed it delivered.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic opens every framed batch stream.
const Magic = "KYXB"

// Protocol versions of the framed stream.
const (
	// V2 is the original framed stream: raw payloads only.
	V2 = 2
	// V3 adds the per-frame codec byte (compression + delta frames).
	V3 = 3
)

// MaxFramePayload bounds a frame payload both as read off the wire and
// after decompression — a corrupt length prefix or a hostile DEFLATE
// stream must not translate into an unbounded allocation.
const MaxFramePayload = 1 << 28

// FrameKind tags what a frame carries.
type FrameKind byte

// Frame kinds.
const (
	FrameTile FrameKind = 0
	FrameDBox FrameKind = 1
)

// FrameStatus is the per-frame outcome, the framed analogue of the
// HTTP status a single /tile or /dbox request would have returned.
type FrameStatus byte

// Frame statuses.
const (
	FrameOK         FrameStatus = 0
	FrameBadRequest FrameStatus = 1
	FrameInternal   FrameStatus = 2
)

// FrameCodec is the v3 per-frame payload encoding.
type FrameCodec byte

// Frame codecs. V2 streams are implicitly CodecRaw.
const (
	// CodecRaw: the payload is the item's data in the request codec —
	// the same bytes a single GET /tile or /dbox would return.
	CodecRaw FrameCodec = 0
	// CodecFlate: a DEFLATE stream of the raw payload.
	CodecFlate FrameCodec = 1
	// CodecDelta: the delta format (see Delta) against the base box the
	// client declared for this item.
	CodecDelta FrameCodec = 2
	// CodecDeltaFlate: a DEFLATE stream of the delta format.
	CodecDeltaFlate FrameCodec = 3
)

// Compressed reports whether the codec's wire payload is a DEFLATE
// stream.
func (c FrameCodec) Compressed() bool {
	return c == CodecFlate || c == CodecDeltaFlate
}

// IsDelta reports whether the (decompressed) payload is the delta
// format rather than a full data payload.
func (c FrameCodec) IsDelta() bool {
	return c == CodecDelta || c == CodecDeltaFlate
}

// Frame is one decoded stream frame. Codec is always CodecRaw on v2
// streams.
type Frame struct {
	Index   int
	Kind    FrameKind
	Status  FrameStatus
	Codec   FrameCodec
	Payload []byte
}

// ValidVersion reports whether v is a framed-stream version this
// package speaks.
func ValidVersion(v byte) bool { return v == V2 || v == V3 }

// WriteHeader writes the stream header for n frames at the given
// protocol version.
func WriteHeader(w io.Writer, version byte, n int) error {
	if !ValidVersion(version) {
		return fmt.Errorf("wire: cannot write unknown version %d", version)
	}
	var buf [4 + 1 + binary.MaxVarintLen64]byte
	copy(buf[:4], Magic)
	buf[4] = version
	ln := 5 + binary.PutUvarint(buf[5:], uint64(n))
	_, err := w.Write(buf[:ln])
	return err
}

// ReadHeader reads and validates a stream header, returning the
// protocol version and frame count.
func ReadHeader(br *bufio.Reader) (version byte, n int, err error) {
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("wire: batch header: %w", err)
	}
	if string(magic[:4]) != Magic {
		return 0, 0, fmt.Errorf("wire: bad magic %q", magic[:4])
	}
	version = magic[4]
	if !ValidVersion(version) {
		return 0, 0, fmt.Errorf("wire: unknown version %d", version)
	}
	cnt, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("wire: frame count: %w", err)
	}
	if cnt > MaxFramePayload {
		return 0, 0, fmt.Errorf("wire: absurd frame count %d", cnt)
	}
	return version, int(cnt), nil
}

// WriteFrame writes one frame at the given protocol version. A v2
// stream cannot carry a non-raw codec (the byte has nowhere to go);
// asking for one is a caller bug reported as an error.
func WriteFrame(w io.Writer, version byte, f Frame) error {
	if version == V2 && f.Codec != CodecRaw {
		return fmt.Errorf("wire: v2 frame cannot carry codec %d", f.Codec)
	}
	var buf [2*binary.MaxVarintLen64 + 3]byte
	ln := binary.PutUvarint(buf[:], uint64(f.Index))
	buf[ln] = byte(f.Kind)
	buf[ln+1] = byte(f.Status)
	ln += 2
	if version == V3 {
		buf[ln] = byte(f.Codec)
		ln++
	}
	ln += binary.PutUvarint(buf[ln:], uint64(len(f.Payload)))
	if _, err := w.Write(buf[:ln]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame of a stream at the given protocol version.
// io.EOF at the first byte is returned verbatim (a clean between-frames
// boundary); any other failure is a truncated or corrupt stream.
func ReadFrame(br *bufio.Reader, version byte) (Frame, error) {
	var f Frame
	idx, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return f, io.EOF
		}
		return f, fmt.Errorf("wire: frame index: %w", err)
	}
	f.Index = int(idx)
	kb, err := br.ReadByte()
	if err != nil {
		return f, fmt.Errorf("wire: frame kind: %w", eofIsUnexpected(err))
	}
	f.Kind = FrameKind(kb)
	if f.Kind != FrameTile && f.Kind != FrameDBox {
		return f, fmt.Errorf("wire: unknown frame kind %d", kb)
	}
	sb, err := br.ReadByte()
	if err != nil {
		return f, fmt.Errorf("wire: frame status: %w", eofIsUnexpected(err))
	}
	f.Status = FrameStatus(sb)
	if f.Status > FrameInternal {
		return f, fmt.Errorf("wire: unknown frame status %d", sb)
	}
	if version == V3 {
		cb, err := br.ReadByte()
		if err != nil {
			return f, fmt.Errorf("wire: frame codec: %w", eofIsUnexpected(err))
		}
		f.Codec = FrameCodec(cb)
		if f.Codec > CodecDeltaFlate {
			return f, fmt.Errorf("wire: unknown frame codec %d", cb)
		}
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return f, fmt.Errorf("wire: payload length: %w", eofIsUnexpected(err))
	}
	if plen > MaxFramePayload {
		return f, fmt.Errorf("wire: payload of %d bytes exceeds limit", plen)
	}
	f.Payload = make([]byte, plen)
	if _, err := io.ReadFull(br, f.Payload); err != nil {
		return f, fmt.Errorf("wire: payload: %w", err)
	}
	return f, nil
}

// eofIsUnexpected maps a mid-frame EOF to ErrUnexpectedEOF so callers
// can always distinguish truncation from a clean end of stream.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
