package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"testing"
)

func TestHeaderVersions(t *testing.T) {
	for _, v := range []byte{V2, V3} {
		var buf bytes.Buffer
		if err := WriteHeader(&buf, v, 7); err != nil {
			t.Fatal(err)
		}
		gotV, n, err := ReadHeader(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if gotV != v || n != 7 {
			t.Fatalf("header = v%d n=%d, want v%d n=7", gotV, n, v)
		}
	}
	if err := WriteHeader(io.Discard, 9, 1); err == nil {
		t.Fatal("unknown version must not be writable")
	}
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(4)
	buf.WriteByte(1)
	if _, _, err := ReadHeader(bufio.NewReader(&buf)); err == nil {
		t.Fatal("unknown version must not be readable")
	}
}

func TestFrameRoundTripV3(t *testing.T) {
	frames := []Frame{
		{Index: 0, Kind: FrameTile, Status: FrameOK, Codec: CodecRaw, Payload: []byte("raw")},
		{Index: 1, Kind: FrameDBox, Status: FrameOK, Codec: CodecFlate, Payload: []byte("deflated bytes")},
		{Index: 2, Kind: FrameDBox, Status: FrameOK, Codec: CodecDelta, Payload: []byte("delta")},
		{Index: 3, Kind: FrameDBox, Status: FrameOK, Codec: CodecDeltaFlate, Payload: nil},
		{Index: 4, Kind: FrameTile, Status: FrameInternal, Codec: CodecRaw, Payload: []byte("boom")},
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf, V3, len(frames)); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, V3, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	v, n, err := ReadHeader(br)
	if err != nil || v != V3 || n != len(frames) {
		t.Fatalf("header: v=%d n=%d err=%v", v, n, err)
	}
	for i, want := range frames {
		got, err := ReadFrame(br, V3)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Index != want.Index || got.Kind != want.Kind ||
			got.Status != want.Status || got.Codec != want.Codec ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br, V3); err != io.EOF {
		t.Fatalf("read past end = %v, want io.EOF", err)
	}
}

func TestV2CannotCarryCodec(t *testing.T) {
	err := WriteFrame(io.Discard, V2, Frame{Codec: CodecFlate, Payload: []byte("x")})
	if err == nil {
		t.Fatal("v2 frame with a non-raw codec must fail to encode")
	}
	// And an unknown codec byte on a v3 stream is rejected.
	var buf bytes.Buffer
	buf.Write([]byte{0, byte(FrameTile), byte(FrameOK), 9, 0})
	if _, err := ReadFrame(bufio.NewReader(&buf), V3); err == nil {
		t.Fatal("unknown frame codec must fail to decode")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	src := bytes.Repeat([]byte("kyrix rows kyrix rows "), 512)
	comp, err := Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(src) {
		t.Fatalf("redundant payload did not shrink: %d -> %d", len(src), len(comp))
	}
	back, err := Decompress(comp, MaxFramePayload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("round trip mismatch")
	}
}

// TestDecompressionBombBounded is the regression test for the bounded
// inflate: a small compressed payload claiming to expand far past the
// limit must error out instead of allocating the expansion.
func TestDecompressionBombBounded(t *testing.T) {
	// ~1 MB of zeros deflates to ~1 KB: a 1000x bomb relative to a
	// 64 KB limit.
	bomb, err := Compress(make([]byte, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if len(bomb) > 16<<10 {
		t.Fatalf("bomb unexpectedly large: %d bytes", len(bomb))
	}
	if _, err := Decompress(bomb, 64<<10); err == nil {
		t.Fatal("bomb exceeding the limit must be rejected")
	}
	// Exactly at the limit is fine.
	if out, err := Decompress(bomb, 1<<20); err != nil || len(out) != 1<<20 {
		t.Fatalf("at-limit payload rejected: %d bytes, %v", len(out), err)
	}
}

func TestDecompressCorruptAndTruncated(t *testing.T) {
	if _, err := Decompress([]byte{0xde, 0xad, 0xbe, 0xef}, 1<<16); err == nil {
		t.Fatal("garbage must not inflate")
	}
	good, err := Compress(bytes.Repeat([]byte("abc"), 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(good[:len(good)/2], 1<<16); err == nil {
		t.Fatal("truncated stream must not inflate")
	}
}

func TestShouldCompressHeuristic(t *testing.T) {
	if ShouldCompress([]byte("tiny")) {
		t.Fatal("tiny payloads must skip compression")
	}
	redundant := bytes.Repeat([]byte(`{"x":1.5,"y":2.5},`), 200)
	if !ShouldCompress(redundant) {
		t.Fatal("redundant JSON must compress")
	}
	noise := make([]byte, 64<<10)
	rnd := rand.New(rand.NewSource(42))
	rnd.Read(noise)
	if ShouldCompress(noise) {
		t.Fatal("high-entropy payload must skip compression")
	}
	// Sanity: the heuristic agrees with flate on the noise payload.
	var buf bytes.Buffer
	fw, _ := flate.NewWriter(&buf, flateLevel)
	fw.Write(noise)
	fw.Close()
	if buf.Len() < len(noise)*99/100 {
		t.Fatalf("flate shrank noise to %d/%d — heuristic assumption broken", buf.Len(), len(noise))
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := Delta{
		FullLen:    123456,
		NewID:      0xDEADBEEFCAFEF00D,
		Tombstones: []int64{0, 1, -7, 1 << 40, 42},
		Entering:   []byte("entering payload bytes"),
	}
	b := EncodeDelta(d)
	got, err := DecodeDelta(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.FullLen != d.FullLen || got.NewID != d.NewID {
		t.Fatalf("got %+v", got)
	}
	if len(got.Tombstones) != len(d.Tombstones) {
		t.Fatalf("tombstones = %v", got.Tombstones)
	}
	for i := range d.Tombstones {
		if got.Tombstones[i] != d.Tombstones[i] {
			t.Fatalf("tombstone %d = %d, want %d", i, got.Tombstones[i], d.Tombstones[i])
		}
	}
	if !bytes.Equal(got.Entering, d.Entering) {
		t.Fatal("entering payload mismatch")
	}

	// Empty delta (pure overlap, nothing entering or leaving).
	b = EncodeDelta(Delta{FullLen: 10, NewID: 1})
	if got, err := DecodeDelta(b); err != nil || len(got.Tombstones) != 0 || len(got.Entering) != 0 {
		t.Fatalf("empty delta: %+v, %v", got, err)
	}
}

func TestDeltaCorrupt(t *testing.T) {
	d := Delta{FullLen: 64, NewID: 7, Tombstones: []int64{1, 2, 3}, Entering: []byte("x")}
	b := EncodeDelta(d)
	// Every strict prefix must fail or decode without panicking.
	for cut := 0; cut < len(b)-1; cut++ {
		_, _ = DecodeDelta(b[:cut])
	}
	// A tombstone count that exceeds the remaining bytes is corruption,
	// not an allocation.
	bad := []byte{10, 0, 0, 0, 0, 0, 0, 0, 0, // fullLen + id
		0xFF, 0xFF, 0xFF, 0xFF, 0x7F} // absurd tombstone count
	if _, err := DecodeDelta(bad); err == nil {
		t.Fatal("absurd tombstone count must fail")
	}
	if _, err := DecodeDelta(nil); err == nil {
		t.Fatal("empty delta payload must fail")
	}
}

func TestPayloadIDStable(t *testing.T) {
	a := PayloadID([]byte("payload"))
	if a != PayloadID([]byte("payload")) {
		t.Fatal("id not deterministic")
	}
	if a == PayloadID([]byte("payloae")) {
		t.Fatal("distinct payloads collided (fnv64 on 7 bytes)")
	}
}
