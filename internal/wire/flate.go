package wire

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"math"
	"sync"
)

// Per-frame compression. Writers and readers are pooled: a flate
// writer allocates ~hundreds of KB of window state, far too much to
// rebuild per frame on the serving hot path.

// flateLevel trades ratio for speed; frames are latency-sensitive
// (the 500 ms budget), so BestSpeed wins over a few extra percent.
const flateLevel = flate.BestSpeed

var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flateLevel)
		return w
	},
}

var flateReaders = sync.Pool{
	New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	},
}

// Compress deflates src through a pooled writer and returns the
// compressed bytes (a fresh slice; src is not retained).
func Compress(src []byte) ([]byte, error) {
	fw := flateWriters.Get().(*flate.Writer)
	// Detach the writer from the caller's buffer before pooling it, or
	// every idle pool entry would pin the last payload it compressed.
	defer func() {
		fw.Reset(io.Discard)
		flateWriters.Put(fw)
	}()
	var buf bytes.Buffer
	buf.Grow(len(src) / 2)
	fw.Reset(&buf)
	if _, err := fw.Write(src); err != nil {
		return nil, fmt.Errorf("wire: compress: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("wire: compress: %w", err)
	}
	return buf.Bytes(), nil
}

// Decompress inflates src through a pooled reader, refusing to produce
// more than limit bytes: a corrupt or hostile compressed payload must
// not become a decompression bomb. The reader is bounded with an
// io.LimitReader so the overrun is detected without ever allocating
// past the limit.
func Decompress(src []byte, limit int) ([]byte, error) {
	if limit <= 0 || limit > MaxFramePayload {
		limit = MaxFramePayload
	}
	fr := flateReaders.Get().(io.ReadCloser)
	// Detach the reader from src before pooling it — an idle entry
	// must not pin a frame-sized compressed payload until its next use.
	defer func() {
		_ = fr.(flate.Resetter).Reset(bytes.NewReader(nil), nil)
		flateReaders.Put(fr)
	}()
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(src), nil); err != nil {
		return nil, fmt.Errorf("wire: decompress reset: %w", err)
	}
	// Read one byte past the limit: hitting it proves the stream
	// inflates beyond what any legitimate frame may carry.
	var buf bytes.Buffer
	n, err := io.Copy(&buf, io.LimitReader(fr, int64(limit)+1))
	if err != nil {
		return nil, fmt.Errorf("wire: decompress: %w", err)
	}
	if n > int64(limit) {
		return nil, fmt.Errorf("wire: decompressed payload exceeds %d byte limit", limit)
	}
	return buf.Bytes(), nil
}

// compressMinSize is the payload size below which compression cannot
// pay for its own frame-codec overhead and CPU.
const compressMinSize = 128

// entropySample bounds how many bytes the heuristic inspects.
const entropySample = 1024

// ShouldCompress is the cheap worth-it heuristic: skip tiny payloads
// and payloads whose sampled byte entropy says they are already close
// to incompressible (e.g. pre-compressed or encrypted blobs), so the
// hot path never burns CPU deflating bytes that will not shrink.
func ShouldCompress(b []byte) bool {
	if len(b) < compressMinSize {
		return false
	}
	// Sample up to entropySample bytes evenly across the payload.
	stride := 1
	if len(b) > entropySample {
		stride = len(b) / entropySample
	}
	var hist [256]int
	n := 0
	for i := 0; i < len(b); i += stride {
		hist[b[i]]++
		n++
	}
	// Shannon entropy in bits/byte over the sample.
	var h float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	// Above ~7.5 bits/byte DEFLATE reliably fails to earn its keep.
	return h < 7.5
}
