package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Delta is the v3 dynamic-box delta frame: successive viewports of a
// pan session overlap heavily, so instead of re-shipping the whole new
// box the server sends only the rows entering it plus a tombstone list
// for the rows leaving, relative to a base box the client declared it
// already holds.
//
// Rows are identified by their first column (an integer id — the same
// identity the frontend already uses to deduplicate objects across
// tiles). The base is identified by PayloadID of the exact payload
// bytes the client holds; the server only delta-encodes when its cached
// copy of the base hashes identically, so a stale client base (e.g.
// across an /update) degrades to a full frame, never to wrong rows.
//
// Decompressed delta layout:
//
//	full length  (uvarint)  — byte size of the full payload replaced
//	new box id   (8 bytes BE) — PayloadID of that full payload; the
//	             client stores it as its next base id without ever
//	             materializing the full payload
//	tombstones   (uvarint count, then count signed varint row ids)
//	entering     (remaining bytes: a payload in the request codec
//	             holding only the entering rows)
type Delta struct {
	FullLen    int
	NewID      uint64
	Tombstones []int64
	Entering   []byte
}

// PayloadID is the identity of a payload's exact bytes (FNV-64a),
// used to match a client-declared delta base against the server's
// cached copy.
func PayloadID(payload []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(payload)
	return h.Sum64()
}

// EncodeDelta serializes d.
func EncodeDelta(d Delta) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+8+
		len(d.Tombstones)*binary.MaxVarintLen64+len(d.Entering))
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(d.FullLen))
	buf = append(buf, tmp[:n]...)
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], d.NewID)
	buf = append(buf, id[:]...)
	n = binary.PutUvarint(tmp[:], uint64(len(d.Tombstones)))
	buf = append(buf, tmp[:n]...)
	for _, t := range d.Tombstones {
		n = binary.PutVarint(tmp[:], t)
		buf = append(buf, tmp[:n]...)
	}
	return append(buf, d.Entering...)
}

// DecodeDelta parses a delta payload. Counts and lengths are bounded
// by the input size, so a corrupt prefix errors out instead of
// allocating.
func DecodeDelta(b []byte) (Delta, error) {
	var d Delta
	fullLen, n := binary.Uvarint(b)
	if n <= 0 || fullLen > MaxFramePayload {
		return d, fmt.Errorf("wire: delta full length corrupt")
	}
	d.FullLen = int(fullLen)
	b = b[n:]
	if len(b) < 8 {
		return d, fmt.Errorf("wire: delta truncated before box id")
	}
	d.NewID = binary.BigEndian.Uint64(b[:8])
	b = b[8:]
	ntomb, n := binary.Uvarint(b)
	if n <= 0 {
		return d, fmt.Errorf("wire: delta tombstone count corrupt")
	}
	b = b[n:]
	// Each tombstone costs at least one byte; a count beyond the
	// remaining bytes is corruption, caught before the allocation.
	if ntomb > uint64(len(b)) {
		return d, fmt.Errorf("wire: delta claims %d tombstones in %d bytes", ntomb, len(b))
	}
	d.Tombstones = make([]int64, ntomb)
	for i := range d.Tombstones {
		v, n := binary.Varint(b)
		if n <= 0 {
			return d, fmt.Errorf("wire: delta tombstone %d corrupt", i)
		}
		d.Tombstones[i] = v
		b = b[n:]
	}
	d.Entering = b
	return d, nil
}
