// Package fetch implements Kyrix's data-fetching layer (§3.1): the two
// fetching granularities — static tiles and the novel dynamic boxes —
// and the two database designs that serve them — the tuple–tile mapping
// tables with B-tree/hash indexes, and the bbox spatial-index design.
//
// The pure request-planning logic lives here (what to ask the backend
// for, given a viewport move and what is already cached); the HTTP
// halves live in internal/server and internal/frontend.
package fetch

import (
	"fmt"
	"math"

	"kyrix/internal/geom"
)

// Granularity identifies a fetching scheme configuration, matching the
// eight schemes of the paper's Figures 6–7.
type Granularity struct {
	// Kind is "tile" or "dbox".
	Kind string
	// TileSize applies to tiles (256, 1024, 4096 in the paper).
	TileSize float64
	// Design selects the database design answering tile requests:
	// "spatial" (bbox R-tree) or "mapping" (tuple–tile join). Dynamic
	// boxes always use the spatial design ("this design can be used by
	// both static tiles and dynamic boxes").
	Design string
	// Inflate is the dynamic-box growth fraction (0 fetches exactly
	// the viewport; 0.5 is the paper's "50% larger").
	Inflate float64
	// Adaptive makes the dynamic box shrink its inflation in dense
	// regions ("dynamic boxes can adjust their sizes and locations
	// based on data sparsity"). See BoxFor.
	Adaptive bool
	// RowBudget bounds the expected rows per adaptive box.
	RowBudget int
}

// Name returns the scheme's display name as used in the paper's figure
// legends.
func (g Granularity) Name() string {
	switch g.Kind {
	case "dbox":
		switch {
		case g.Adaptive:
			return "dbox adaptive"
		case g.Inflate > 0:
			return fmt.Sprintf("dbox %d%%", int(g.Inflate*100))
		default:
			return "dbox"
		}
	case "tile":
		return fmt.Sprintf("tile %s %d", g.Design, int(g.TileSize))
	}
	return "unknown"
}

// Standard schemes from the paper's evaluation (§3.3).
var (
	DBoxExact = Granularity{Kind: "dbox", Design: "spatial"}
	DBox50    = Granularity{Kind: "dbox", Design: "spatial", Inflate: 0.5}

	TileSpatial256  = Granularity{Kind: "tile", Design: "spatial", TileSize: 256}
	TileSpatial1024 = Granularity{Kind: "tile", Design: "spatial", TileSize: 1024}
	TileSpatial4096 = Granularity{Kind: "tile", Design: "spatial", TileSize: 4096}

	TileMapping256  = Granularity{Kind: "tile", Design: "mapping", TileSize: 256}
	TileMapping1024 = Granularity{Kind: "tile", Design: "mapping", TileSize: 1024}
	TileMapping4096 = Granularity{Kind: "tile", Design: "mapping", TileSize: 4096}
)

// PaperSchemes returns the eight fetching schemes of Figures 6–7, in
// legend order.
func PaperSchemes() []Granularity {
	return []Granularity{
		DBoxExact, DBox50,
		TileSpatial1024, TileSpatial256, TileSpatial4096,
		TileMapping1024, TileMapping256, TileMapping4096,
	}
}

// TileKeyOf builds the canonical cache key of one tile of a layer.
func TileKeyOf(layer string, size float64, id geom.TileID) string {
	return fmt.Sprintf("t/%s/%d/%d/%d", layer, int(size), id.Col, id.Row)
}

// BoxKeyOf builds the cache key of a dynamic-box response, used by the
// backend cache and by prefetched boxes.
func BoxKeyOf(layer string, box geom.Rect) string {
	return fmt.Sprintf("b/%s/%.0f/%.0f/%.0f/%.0f", layer, box.MinX, box.MinY, box.MaxX, box.MaxY)
}

// TilesNeeded returns the tiles of size sz the viewport needs, clipped
// to the canvas — the per-step request set before cache filtering
// ("the frontend then requests the tiles that intersect with the given
// viewport"). Tile coverage is half-open so a tile-aligned viewport
// (the paper's trace-a) requests exactly one tile per tile-sized area;
// record→tile assignment stays edge-inclusive (see geom.CoveringTiles),
// so boundary records are still returned.
func TilesNeeded(viewport geom.Rect, sz, canvasW, canvasH float64) []geom.TileID {
	return geom.ViewportTiles(viewport, sz, canvasW, canvasH)
}

// BoxFor computes the dynamic box to request for a viewport under the
// given scheme ("there are numerous ways to calculate a box, e.g., a
// box centered at the viewport center having width (height) 50% larger
// than the viewport width (height)").
//
// density is the caller's current estimate of data density in
// points per square pixel (used only by adaptive boxes; pass 0 when
// unknown). The box is clamped to the canvas.
func BoxFor(g Granularity, viewport geom.Rect, canvas geom.Rect, density float64) geom.Rect {
	inflate := g.Inflate
	if g.Adaptive && density > 0 && g.RowBudget > 0 {
		// Choose the largest inflation whose expected row count stays
		// within budget: rows ≈ density * area * (1+inflate)^2.
		maxRows := float64(g.RowBudget)
		expect := density * viewport.Area()
		if expect <= 0 {
			inflate = g.Inflate
		} else {
			f := math.Sqrt(maxRows/expect) - 1
			if f < 0 {
				f = 0
			}
			if f > g.Inflate {
				f = g.Inflate
			}
			inflate = f
		}
	}
	return viewport.Inflate(inflate).Clamp(canvas).Intersection(canvas)
}

// NeedNewBox reports whether the viewport escaped the current box
// ("whenever the viewport moves outside the current box, frontend ...
// requests a new box"). A zero current box always needs a fetch.
func NeedNewBox(current, viewport geom.Rect) bool {
	if !current.Valid() || current.Area() == 0 {
		return true
	}
	return !current.Contains(viewport)
}
