package fetch

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"

	"kyrix/internal/geom"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
)

// Auto-LOD aggregation pyramid (the Kyrix-S direction): a layer
// declaring "lod": "auto" gets per-zoom-level materialized tables of
// grid-cell aggregates — count, a sum, the cell's canvas extent, and
// one representative raw row per cell — each indexed by an R-tree over
// the extent columns. A window query routed to the level whose cell
// size matches the window's zoom scans at most ~RowBudget cells, so
// zoomed-out viewports stop touching O(dataset) rows.

// lodAggColumns are the aggregate columns appended AFTER the layer's
// base schema in every level table. Appending (never prepending or
// renaming) keeps the base schema's positional contracts intact: the id
// stays row[0], the separable x/y columns keep their indexes, and a
// frontend decoding the self-describing payload needs no changes.
var lodAggColumns = []storage.Column{
	{Name: "lod_count", Type: storage.TInt64},
	{Name: "lod_sum", Type: storage.TFloat64},
	{Name: "lod_minx", Type: storage.TFloat64},
	{Name: "lod_miny", Type: storage.TFloat64},
	{Name: "lod_maxx", Type: storage.TFloat64},
	{Name: "lod_maxy", Type: storage.TFloat64},
}

// LODLevel is one materialized pyramid level.
type LODLevel struct {
	// Table is the level's materialized table (base schema + aggregate
	// columns, R-tree indexed on the extent columns).
	Table string
	// Cell is the level's grid cell size in canvas units.
	Cell float64
	// Cells counts the materialized (non-empty) cells.
	Cells int64
}

// LODPyramid describes a layer's aggregation pyramid.
type LODPyramid struct {
	// RowBudget is the bounded-row target: a window query should scan
	// at most about this many rows at any zoom.
	RowBudget int
	// Density is the layer's raw rows per square canvas unit at build
	// time — the level-selection rule's estimate of what a raw query
	// over a window would scan.
	Density float64
	// SumCol names the base column lod_sum aggregates (the first float
	// column that is not a placement coordinate; "" sums nothing).
	SumCol string
	// Levels holds the pyramid finest-first: Levels[i].Cell doubles
	// with i, so higher levels cover the same window with 4x fewer
	// cells.
	Levels []LODLevel
}

// LODLevelFor applies the level-selection rule for one window: raw rows
// (-1) while the density estimate says the window affords them, else
// the finest level whose cell count over the window fits the budget,
// else the coarsest level. The rule depends only on the window and the
// build-time pyramid, so every node of a cluster — and a cache key's
// producer and consumer — resolve the same window to the same level.
func (pl *PhysicalLayer) LODLevelFor(window geom.Rect) int {
	p := pl.LOD
	if p == nil || len(p.Levels) == 0 {
		return -1
	}
	area := window.W() * window.H()
	if area <= 0 || p.Density*area <= float64(p.RowBudget) {
		return -1
	}
	for i, lv := range p.Levels {
		cells := (window.W()/lv.Cell + 1) * (window.H()/lv.Cell + 1)
		if cells <= float64(p.RowBudget) {
			return i
		}
	}
	return len(p.Levels) - 1
}

// LODWindowSQL builds the window query against one pyramid level. The
// extent columns are canvas-space, so the window needs no separable
// translation or radius padding (cell extents already include the
// member rows' rendered extents).
func (pl *PhysicalLayer) LODWindowSQL(level int, window geom.Rect) (string, []storage.Value) {
	lv := pl.LOD.Levels[level]
	sql := fmt.Sprintf(
		"SELECT * FROM %s WHERE INTERSECTS(lod_minx, lod_miny, lod_maxx, lod_maxy, ?, ?, ?, ?)",
		lv.Table)
	args := []storage.Value{
		storage.F64(window.MinX), storage.F64(window.MinY),
		storage.F64(window.MaxX), storage.F64(window.MaxY),
	}
	return sql, args
}

// lodCell is one grid cell's aggregate under construction.
type lodCell struct {
	rep   storage.Row
	repID int64
	count int64
	sum   float64
	ext   geom.Rect
}

type lodCellKey struct{ col, row int }

// buildLOD materializes the aggregation pyramid for a separable layer.
// Level 0 is aggregated from the raw table by cell-range (column
// stripe) tasks run on the work-stealing pool — stripes over a skewed
// dataset cost wildly different amounts, which is exactly what stealing
// rebalances — and each higher level folds the previous one 2x2 in
// memory. Level tables are bulk-inserted concurrently and R-tree
// indexed at the end (the index build bulk-loads).
func buildLOD(ctx context.Context, db *sqldb.DB, pl *PhysicalLayer, opts Options) error {
	budget := opts.LODRowBudget
	if budget <= 0 {
		budget = 4096
	}
	baseCell := opts.LODBaseCell
	if baseCell <= 0 {
		baseCell = 64
	}
	workers := opts.LODWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, col := range pl.Schema {
		if strings.HasPrefix(col.Name, "lod_") {
			return fmt.Errorf("fetch: auto-LOD layer %s: base column %q collides with the lod_ aggregate namespace", pl.Table, col.Name)
		}
	}
	t, err := db.Table(pl.Table)
	if err != nil {
		return err
	}
	n := t.RowCount()
	if n == 0 {
		return nil // nothing to aggregate; raw queries are already free
	}
	xi := pl.Schema.ColIndex(pl.XCol)
	yi := pl.Schema.ColIndex(pl.YCol)
	idIdx := pl.Schema.ColIndex(pl.IDCol)
	if xi < 0 || yi < 0 || idIdx < 0 {
		return fmt.Errorf("fetch: auto-LOD layer %s: placement/id columns missing", pl.Table)
	}
	sumIdx, sumCol := -1, ""
	for i, col := range pl.Schema {
		if col.Type == storage.TFloat64 && col.Name != pl.XCol && col.Name != pl.YCol {
			sumIdx, sumCol = i, col.Name
			break
		}
	}

	// Plan the levels: cell size doubles per level until a full-canvas
	// window fits the budget, so zooming all the way out still scans a
	// bounded cell count.
	gridCells := func(cell float64) float64 {
		return math.Ceil(pl.CanvasW/cell) * math.Ceil(pl.CanvasH/cell)
	}
	var cells []float64
	for c := baseCell; len(cells) == 0 || gridCells(cells[len(cells)-1]) > float64(budget); c *= 2 {
		cells = append(cells, c)
		if len(cells) >= 24 {
			break // defensive cap; 64 * 2^24 out-sizes any real canvas
		}
	}

	// Level 0: column-stripe aggregation tasks over the raw table. Each
	// stripe queries its canvas slice through the layer's own window SQL
	// (the point R-tree answers it) and owns a disjoint range of cell
	// columns, so per-task maps merge without conflicts. Rows pulled in
	// by the window's radius padding are filtered by their true cell
	// column, which also keeps stripe-boundary rows from counting twice.
	cell0 := cells[0]
	cols0 := int(math.Ceil(pl.CanvasW / cell0))
	rows0 := int(math.Ceil(pl.CanvasH / cell0))
	stripes := workers * 4
	if stripes > cols0 {
		stripes = cols0
	}
	if stripes < 1 {
		stripes = 1
	}
	perStripe := (cols0 + stripes - 1) / stripes
	stripeCells := make([]map[lodCellKey]*lodCell, stripes)
	tasks := make([]Task, stripes)
	for si := 0; si < stripes; si++ {
		si := si
		lo := si * perStripe
		hi := lo + perStripe
		if hi > cols0 {
			hi = cols0
		}
		tasks[si] = func(ctx context.Context) error {
			window := geom.Rect{
				MinX: float64(lo) * cell0, MinY: 0,
				MaxX: float64(hi) * cell0, MaxY: pl.CanvasH,
			}
			sql, args := pl.WindowSQL(window)
			res, err := db.Query(sql, args...)
			if err != nil {
				return err
			}
			m := make(map[lodCellKey]*lodCell)
			for i, row := range res.Rows {
				if i%1024 == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				cx := row[xi].AsFloat() * pl.XScale
				cy := row[yi].AsFloat() * pl.YScale
				ccol := clampInt(int(cx/cell0), 0, cols0-1)
				if ccol < lo || ccol >= hi {
					continue // the stripe owning this cell aggregates it
				}
				crow := clampInt(int(cy/cell0), 0, rows0-1)
				id := row[idIdx].AsInt()
				box := geom.RectAround(geom.Point{X: cx, Y: cy}, pl.Radius)
				key := lodCellKey{ccol, crow}
				c, ok := m[key]
				if !ok {
					m[key] = &lodCell{rep: row, repID: id, count: 1, sum: weightOf(row, sumIdx), ext: box}
					continue
				}
				c.count++
				c.sum += weightOf(row, sumIdx)
				c.ext = c.ext.Union(box)
				if id < c.repID {
					c.rep, c.repID = row, id
				}
			}
			stripeCells[si] = m
			return nil
		}
	}
	if err := RunTasks(ctx, workers, tasks); err != nil {
		return err
	}
	level := make(map[lodCellKey]*lodCell)
	for _, m := range stripeCells {
		for k, c := range m {
			level[k] = c // stripes own disjoint cell columns: no conflicts
		}
	}

	p := &LODPyramid{
		RowBudget: budget,
		Density:   float64(n) / (pl.CanvasW * pl.CanvasH),
		SumCol:    sumCol,
	}
	for li, cellSize := range cells {
		if li > 0 {
			// Fold the previous level 2x2: counts and sums add, extents
			// union, and the representative of the heaviest child (ties
			// to the smallest id, keeping the fold deterministic)
			// represents the parent.
			parent := make(map[lodCellKey]*lodCell, (len(level)+3)/4)
			for k, c := range level {
				pk := lodCellKey{k.col / 2, k.row / 2}
				pc, ok := parent[pk]
				if !ok {
					cp := *c
					parent[pk] = &cp
					continue
				}
				if c.count > pc.count || (c.count == pc.count && c.repID < pc.repID) {
					pc.rep, pc.repID = c.rep, c.repID
				}
				pc.count += c.count
				pc.sum += c.sum
				pc.ext = pc.ext.Union(c.ext)
			}
			level = parent
		}
		table := fmt.Sprintf("lod_%s_%s_%d_%d", sanitize(pl.App), sanitize(pl.CanvasID), pl.LayerIdx, li)
		if err := createLODTable(db, table, pl.Schema); err != nil {
			return err
		}
		if err := insertLODLevel(ctx, db, table, level, workers); err != nil {
			return err
		}
		if _, err := db.Exec(fmt.Sprintf(
			"CREATE INDEX kyrix_%s_ext ON %s USING RTREE (lod_minx, lod_miny, lod_maxx, lod_maxy)",
			sanitize(table), table)); err != nil {
			return err
		}
		p.Levels = append(p.Levels, LODLevel{Table: table, Cell: cellSize, Cells: int64(len(level))})
	}
	pl.LOD = p
	return nil
}

func weightOf(row storage.Row, sumIdx int) float64 {
	if sumIdx < 0 {
		return 0
	}
	return row[sumIdx].AsFloat()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func createLODTable(db *sqldb.DB, table string, base storage.Schema) error {
	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (", table)
	for i, col := range base {
		if i > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "%s %s", col.Name, col.Type)
	}
	for _, col := range lodAggColumns {
		fmt.Fprintf(&ddl, ", %s %s", col.Name, col.Type)
	}
	ddl.WriteString(")")
	_, err := db.Exec(ddl.String())
	return err
}

// insertLODLevel bulk-loads one level's cells: the cell set is chunked
// and the chunks inserted concurrently through the batched InsertRows
// path (one table-lock acquisition per chunk), again on the
// work-stealing pool.
func insertLODLevel(ctx context.Context, db *sqldb.DB, table string, level map[lodCellKey]*lodCell, workers int) error {
	const chunkRows = 1024
	all := make([]*lodCell, 0, len(level))
	for _, c := range level {
		all = append(all, c)
	}
	var tasks []Task
	for start := 0; start < len(all); start += chunkRows {
		end := start + chunkRows
		if end > len(all) {
			end = len(all)
		}
		chunk := all[start:end]
		tasks = append(tasks, func(ctx context.Context) error {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			rows := make([]storage.Row, len(chunk))
			for i, c := range chunk {
				row := make(storage.Row, 0, len(c.rep)+len(lodAggColumns))
				row = append(row, c.rep...)
				row = append(row,
					storage.I64(c.count), storage.F64(c.sum),
					storage.F64(c.ext.MinX), storage.F64(c.ext.MinY),
					storage.F64(c.ext.MaxX), storage.F64(c.ext.MaxY))
				rows[i] = row
			}
			return db.InsertRows(table, rows)
		})
	}
	return RunTasks(ctx, workers, tasks)
}
