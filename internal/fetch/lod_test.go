package fetch

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// buildLODApp is buildPointsApp with the layer declared "lod": "auto".
func buildLODApp(t testing.TB, n int) (*sqldb.DB, *spec.CompiledApp) {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	d := workload.Uniform(n, 8192, 4096, 7)
	for _, p := range d.Points {
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "pts",
		Canvases: []spec.Canvas{{
			ID: "main", W: 8192, H: 4096,
			Transforms: []spec.Transform{{
				ID:    "ptsTrans",
				Query: "SELECT * FROM points",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "ptsTrans",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
				LOD:         "auto",
			}},
		}},
		InitialCanvas: "main", InitialX: 4096, InitialY: 2048,
		ViewportW: 1024, ViewportH: 1024,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	return db, ca
}

func TestLODPyramidBuild(t *testing.T) {
	const n = 20000
	db, ca := buildLODApp(t, n)
	pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{
		LODRowBudget: 256, LODBaseCell: 64, LODWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pl.LOD
	if p == nil {
		t.Fatal("auto-LOD layer built no pyramid")
	}
	// 8192x4096 at cell 64 is 128*64 = 8192 cells; halving per level,
	// the first level with <= 256 full-grid cells is cell 512 (16*8).
	if len(p.Levels) != 4 {
		t.Fatalf("levels = %d (%+v), want 4", len(p.Levels), p.Levels)
	}
	if p.SumCol != "val" {
		t.Fatalf("SumCol = %q, want val (first non-coordinate float)", p.SumCol)
	}

	// Brute-force level 0 for comparison.
	type agg struct {
		count int64
		sum   float64
		repID int64
	}
	want := map[[2]int]*agg{}
	var valSum float64
	err = db.ScanTable("points", func(row storage.Row) bool {
		cx, cy := row[1].AsFloat(), row[2].AsFloat()
		k := [2]int{int(cx / 64), int(cy / 64)}
		valSum += row[3].AsFloat()
		a, ok := want[k]
		if !ok {
			want[k] = &agg{count: 1, sum: row[3].AsFloat(), repID: row[0].AsInt()}
			return true
		}
		a.count++
		a.sum += row[3].AsFloat()
		if id := row[0].AsInt(); id < a.repID {
			a.repID = id
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	for li, lv := range p.Levels {
		res, err := db.Query("SELECT * FROM " + lv.Table)
		if err != nil {
			t.Fatalf("level %d: %v", li, err)
		}
		if int64(len(res.Rows)) != lv.Cells {
			t.Fatalf("level %d: %d rows, recorded Cells = %d", li, len(res.Rows), lv.Cells)
		}
		sch, err := db.Table(lv.Table)
		if err != nil {
			t.Fatal(err)
		}
		countIdx := sch.Schema().ColIndex("lod_count")
		sumIdx := sch.Schema().ColIndex("lod_sum")
		if countIdx < 0 || sumIdx < 0 {
			t.Fatalf("level %d: aggregate columns missing from %v", li, sch.Schema())
		}
		var total int64
		var sum float64
		for _, row := range res.Rows {
			total += row[countIdx].AsInt()
			sum += row[sumIdx].AsFloat()
		}
		// Every level partitions the full dataset.
		if total != n {
			t.Fatalf("level %d: counts sum to %d, want %d", li, total, n)
		}
		if math.Abs(sum-valSum) > 1e-6*math.Abs(valSum)+1e-9 {
			t.Fatalf("level %d: sums total %g, want %g", li, sum, valSum)
		}
	}

	// Level 0 cells match the brute force exactly (count, sum, rep id),
	// and the rep row is a real member of the cell.
	res, err := db.Query("SELECT * FROM " + p.Levels[0].Table)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("level 0: %d cells, brute force %d", len(res.Rows), len(want))
	}
	sch, _ := db.Table(p.Levels[0].Table)
	countIdx := sch.Schema().ColIndex("lod_count")
	sumIdx := sch.Schema().ColIndex("lod_sum")
	for _, row := range res.Rows {
		cx, cy := row[1].AsFloat(), row[2].AsFloat()
		k := [2]int{int(cx / 64), int(cy / 64)}
		a, ok := want[k]
		if !ok {
			t.Fatalf("cell %v not in brute force (rep outside its cell?)", k)
		}
		if row[countIdx].AsInt() != a.count {
			t.Fatalf("cell %v count = %d, want %d", k, row[countIdx].AsInt(), a.count)
		}
		if math.Abs(row[sumIdx].AsFloat()-a.sum) > 1e-9*math.Abs(a.sum)+1e-9 {
			t.Fatalf("cell %v sum = %g, want %g", k, row[sumIdx].AsFloat(), a.sum)
		}
		if row[0].AsInt() != a.repID {
			t.Fatalf("cell %v rep id = %d, want min id %d", k, row[0].AsInt(), a.repID)
		}
	}
}

func TestLODLevelForAndWindowSQL(t *testing.T) {
	db, ca := buildLODApp(t, 20000)
	pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{
		LODRowBudget: 256, LODBaseCell: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	canvas := pl.CanvasRect()
	// A viewport-sized window affords raw rows at this density
	// (20000/(8192*4096) * 1024^2 ≈ 625 > 256 — actually over budget,
	// so pick a smaller window for the raw case).
	small := geom.RectXYWH(1000, 1000, 256, 256)
	if lvl := pl.LODLevelFor(small); lvl != -1 {
		t.Fatalf("small window level = %d, want -1 (raw)", lvl)
	}
	// The full canvas must route to some pyramid level whose query
	// returns at most RowBudget rows, no matter the dataset size.
	lvl := pl.LODLevelFor(canvas)
	if lvl < 0 {
		t.Fatalf("full-canvas window routed to raw rows")
	}
	sql, args := pl.LODWindowSQL(lvl, canvas)
	plan, err := db.Query("EXPLAIN "+sql, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Rows[0][0].S, "RTree Window Scan") {
		t.Fatalf("pyramid window not using the level R-tree: %v", plan.Rows)
	}
	res, err := db.Query(sql, args...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 256 {
		t.Fatalf("full-canvas pyramid query returned %d rows, want 1..256", len(res.Rows))
	}
	// Zoom monotonicity: growing windows never route to a finer level.
	prev := -1
	for _, scale := range []float64{0.05, 0.1, 0.25, 0.5, 1} {
		w := geom.RectXYWH(0, 0, canvas.W()*scale, canvas.H()*scale)
		l := pl.LODLevelFor(w)
		if l < prev {
			t.Fatalf("level went finer as the window grew: %d after %d at scale %g", l, prev, scale)
		}
		prev = l
	}
}

func TestLODEmptyLayer(t *testing.T) {
	db, ca := buildLODApp(t, 0)
	pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.LOD != nil {
		t.Fatal("empty layer should skip the pyramid (raw queries are free)")
	}
	if lvl := pl.LODLevelFor(pl.CanvasRect()); lvl != -1 {
		t.Fatalf("level = %d, want -1", lvl)
	}
}

// BenchmarkPyramidBuild measures the work-stealing pool's parallel
// speedup on one huge layer: the same pyramid built by 1 vs 4 workers.
// On a multi-core runner the 4-worker build should be at least ~2x
// faster; on a single CPU the two converge (no parallelism to win).
func BenchmarkPyramidBuild(b *testing.B) {
	const n = 50000
	d := workload.Uniform(n, 8192, 4096, 7)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, ca := benchLODApp(b, d)
				b.StartTimer()
				pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{
					LODWorkers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if pl.LOD == nil {
					b.Fatal("no pyramid built")
				}
			}
		})
	}
}

func benchLODApp(b *testing.B, d *workload.Dataset) (*sqldb.DB, *spec.CompiledApp) {
	b.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		b.Fatal(err)
	}
	rows := make([]storage.Row, len(d.Points))
	for i := range d.Points {
		p := &d.Points[i]
		rows[i] = storage.Row{storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val)}
	}
	if err := db.InsertRows("points", rows); err != nil {
		b.Fatal(err)
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "pts",
		Canvases: []spec.Canvas{{
			ID: "main", W: d.CanvasW, H: d.CanvasH,
			Transforms: []spec.Transform{{
				ID:    "ptsTrans",
				Query: "SELECT * FROM points",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "ptsTrans",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
				LOD:         "auto",
			}},
		}},
		InitialCanvas: "main", InitialX: d.CanvasW / 2, InitialY: d.CanvasH / 2,
		ViewportW: 1024, ViewportH: 1024,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		b.Fatal(err)
	}
	return db, ca
}
