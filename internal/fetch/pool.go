package fetch

import (
	"context"
	"sync"
)

// Task is one unit of precompute work run under the work-stealing pool.
// Tasks must honor ctx: the pool cancels it on the first error so
// in-flight work against a doomed build stops instead of running to
// completion.
type Task func(ctx context.Context) error

// taskDeque is one worker's queue. The owner pops newest-first from the
// back (good locality for its own pre-assigned range); thieves steal
// oldest-first from the front, taking the work the owner is furthest
// from reaching. A mutex per deque is plenty here: tasks are
// coarse-grained (a layer materialization, a cell-range aggregation
// pass), so queue operations are nowhere near the critical path.
type taskDeque struct {
	mu    sync.Mutex
	tasks []Task
}

func (q *taskDeque) pop() Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return nil
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	return t
}

func (q *taskDeque) steal() Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return nil
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t
}

// RunTasks executes tasks on a work-stealing pool of the given width:
// tasks are dealt round-robin onto per-worker deques, each worker
// drains its own deque and then steals from the others, so uneven task
// costs (one huge layer among small ones, a dense cell stripe among
// sparse ones) rebalance instead of serializing behind the pre-assigned
// owner. The first error cancels the derived context — remaining queued
// tasks are skipped and in-flight tasks see ctx.Done() — and is
// returned. A cancelled parent context is returned as its ctx.Err().
func RunTasks(ctx context.Context, workers int, tasks []Task) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	queues := make([]*taskDeque, workers)
	for i := range queues {
		queues[i] = &taskDeque{}
	}
	for i, t := range tasks {
		q := queues[i%workers]
		q.tasks = append(q.tasks, t)
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				t := queues[self].pop()
				for off := 1; t == nil && off < workers; off++ {
					t = queues[(self+off)%workers].steal()
				}
				if t == nil {
					// All deques empty. Tasks never spawn tasks, so
					// nothing can appear later: this worker is done.
					return
				}
				if err := t(ctx); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
