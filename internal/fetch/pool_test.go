package fetch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestTaskDequeOrder(t *testing.T) {
	var ran []int
	mk := func(i int) Task {
		return func(context.Context) error { ran = append(ran, i); return nil }
	}
	q := &taskDeque{tasks: []Task{mk(0), mk(1), mk(2)}}
	// Owner pops newest-first from the back...
	_ = q.pop()(context.Background())
	// ...thieves steal oldest-first from the front.
	_ = q.steal()(context.Background())
	_ = q.steal()(context.Background())
	if len(ran) != 3 || ran[0] != 2 || ran[1] != 0 || ran[2] != 1 {
		t.Fatalf("deque order = %v, want [2 0 1]", ran)
	}
	if q.pop() != nil || q.steal() != nil {
		t.Fatal("empty deque must return nil")
	}
}

func TestRunTasksRunsAll(t *testing.T) {
	const n = 57
	var ran atomic.Int64
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = func(context.Context) error { ran.Add(1); return nil }
	}
	for _, workers := range []int{1, 3, 16, 100} {
		ran.Store(0)
		if err := RunTasks(context.Background(), workers, tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != n {
			t.Fatalf("workers=%d: ran %d of %d tasks", workers, ran.Load(), n)
		}
	}
}

func TestRunTasksEmpty(t *testing.T) {
	if err := RunTasks(context.Background(), 4, nil); err != nil {
		t.Fatalf("empty task set: %v", err)
	}
}

// TestRunTasksFirstErrorCancelsInFlight is the regression test for the
// precompute cancellation bug: the first error must not only skip
// queued tasks but also cancel the context of tasks ALREADY RUNNING on
// other workers. The blocking task only returns when it observes
// ctx.Done(); without propagation this test times out.
func TestRunTasksFirstErrorCancelsInFlight(t *testing.T) {
	boom := errors.New("boom")
	started := make(chan struct{})
	tasks := []Task{
		func(ctx context.Context) error {
			close(started)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(10 * time.Second):
				return errors.New("in-flight task never saw cancellation")
			}
		},
		func(ctx context.Context) error {
			<-started // guarantee the sibling is genuinely in flight
			return boom
		},
	}
	done := make(chan error, 1)
	go func() { done <- RunTasks(context.Background(), 2, tasks) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want first error %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunTasks did not return: error did not cancel in-flight work")
	}
}

func TestRunTasksErrorSkipsQueued(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	tasks := make([]Task, 10)
	tasks[0] = func(context.Context) error { ran.Add(1); return boom }
	for i := 1; i < len(tasks); i++ {
		tasks[i] = func(context.Context) error { ran.Add(1); return nil }
	}
	// One worker: the failing task runs first (it is the only deque's
	// back... dealt round-robin, all land on worker 0, which pops from
	// the back — so run the failing task last-dealt to make it first).
	tasks[0], tasks[9] = tasks[9], tasks[0]
	if err := RunTasks(context.Background(), 1, tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if ran.Load() != 1 {
		t.Fatalf("ran %d tasks after error, want 1", ran.Load())
	}
}

func TestRunTasksParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	tasks := []Task{func(context.Context) error { ran.Add(1); return nil }}
	if err := RunTasks(ctx, 2, tasks); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("tasks ran under a cancelled parent context")
	}
}

// TestRunTasksStealsUnevenWork drives the rebalancing claim: all the
// expensive tasks are dealt to one worker, and the test asserts every
// task still runs to completion with more than one goroutine observed
// working (on a multi-core runner idle workers must steal; on one CPU
// the schedule still interleaves).
func TestRunTasksStealsUnevenWork(t *testing.T) {
	const n = 16
	var ran atomic.Int64
	tasks := make([]Task, n)
	for i := range tasks {
		heavy := i%4 == 0 // round-robin deal sends all heavy tasks to worker 0
		tasks[i] = func(context.Context) error {
			if heavy {
				time.Sleep(2 * time.Millisecond)
			}
			ran.Add(1)
			return nil
		}
	}
	if err := RunTasks(context.Background(), 4, tasks); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d of %d", ran.Load(), n)
	}
}
