package fetch

import (
	"context"
	"sort"
	"strings"
	"testing"

	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

func TestSchemeNames(t *testing.T) {
	cases := map[string]Granularity{
		"dbox":              DBoxExact,
		"dbox 50%":          DBox50,
		"tile spatial 1024": TileSpatial1024,
		"tile mapping 256":  TileMapping256,
		"dbox adaptive":     {Kind: "dbox", Adaptive: true},
	}
	for want, g := range cases {
		if g.Name() != want {
			t.Errorf("Name = %q want %q", g.Name(), want)
		}
	}
	if len(PaperSchemes()) != 8 {
		t.Fatalf("paper schemes = %d", len(PaperSchemes()))
	}
}

func TestKeys(t *testing.T) {
	k1 := TileKeyOf("layerA", 1024, geom.TileID{Col: 3, Row: 7})
	k2 := TileKeyOf("layerA", 1024, geom.TileID{Col: 7, Row: 3})
	if k1 == k2 {
		t.Fatal("tile keys must distinguish col/row")
	}
	b1 := BoxKeyOf("layerA", geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})
	b2 := BoxKeyOf("layerA", geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 20})
	if b1 == b2 {
		t.Fatal("box keys must encode the rect")
	}
}

func TestBoxFor(t *testing.T) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 100000, MaxY: 10000}
	vp := geom.RectXYWH(5000, 5000, 1000, 1000)

	exact := BoxFor(DBoxExact, vp, canvas, 0)
	if exact != vp {
		t.Fatalf("exact box = %v", exact)
	}
	half := BoxFor(DBox50, vp, canvas, 0)
	if half.W() != 1500 || half.H() != 1500 || half.Center() != vp.Center() {
		t.Fatalf("50%% box = %v", half)
	}
	// Clamped at the canvas edge: still contains the viewport.
	edgeVP := geom.RectXYWH(0, 0, 1000, 1000)
	edge := BoxFor(DBox50, edgeVP, canvas, 0)
	if !edge.Contains(edgeVP) {
		t.Fatalf("clamped box %v must contain viewport %v", edge, edgeVP)
	}
	if edge.MinX < 0 || edge.MinY < 0 {
		t.Fatalf("box leaves canvas: %v", edge)
	}
}

func TestBoxForAdaptive(t *testing.T) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 100000, MaxY: 100000}
	vp := geom.RectXYWH(5000, 5000, 1000, 1000)
	g := Granularity{Kind: "dbox", Design: "spatial", Inflate: 1.0, Adaptive: true, RowBudget: 2000}

	// Sparse region: density low enough that the full inflation fits
	// the budget.
	sparse := BoxFor(g, vp, canvas, 0.0001) // expect 100 rows/viewport
	if sparse.W() != 2000 {
		t.Fatalf("sparse adaptive box = %v", sparse)
	}
	// Dense region: 0.01 pts/px² = 10k rows per viewport > budget, so
	// the box shrinks to the bare viewport.
	dense := BoxFor(g, vp, canvas, 0.01)
	if dense.W() != 1000 {
		t.Fatalf("dense adaptive box = %v", dense)
	}
	// Unknown density falls back to the configured inflation.
	unknown := BoxFor(g, vp, canvas, 0)
	if unknown.W() != 2000 {
		t.Fatalf("unknown-density box = %v", unknown)
	}
}

func TestNeedNewBox(t *testing.T) {
	box := geom.RectXYWH(0, 0, 3000, 3000)
	if NeedNewBox(box, geom.RectXYWH(1000, 1000, 1000, 1000)) {
		t.Fatal("contained viewport must not refetch")
	}
	if !NeedNewBox(box, geom.RectXYWH(2500, 0, 1000, 1000)) {
		t.Fatal("escaping viewport must refetch")
	}
	if !NeedNewBox(geom.Rect{}, geom.RectXYWH(0, 0, 10, 10)) {
		t.Fatal("zero box must refetch")
	}
}

// buildPointsApp loads a small point dataset and compiles a separable
// single-layer app over it.
func buildPointsApp(t *testing.T, n int) (*sqldb.DB, *spec.CompiledApp) {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	d := workload.Uniform(n, 8192, 4096, 7)
	for _, p := range d.Points {
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "pts",
		Canvases: []spec.Canvas{{
			ID: "main", W: 8192, H: 4096,
			Transforms: []spec.Transform{{
				ID:    "ptsTrans",
				Query: "SELECT * FROM points",
				Columns: []spec.ColumnSpec{
					{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
					{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "ptsTrans",
				Placement:   &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:    "dots",
			}},
		}},
		InitialCanvas: "main", InitialX: 4096, InitialY: 2048,
		ViewportW: 1024, ViewportH: 1024,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	return db, ca
}

func TestMaterializeSeparable(t *testing.T) {
	db, ca := buildPointsApp(t, 3000)
	pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{
		BuildSpatial: true,
		TileSizes:    []float64{1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Separable || pl.Table != "points" {
		t.Fatalf("physical = %+v", pl)
	}
	// The window query must use the R-tree.
	sql, args := pl.WindowSQL(geom.RectXYWH(1000, 1000, 1024, 1024))
	plan, err := db.Query("EXPLAIN "+sql, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Rows[0][0].S, "RTree Window Scan") {
		t.Fatalf("separable window not using rtree: %v", plan.Rows)
	}
	// Result matches a brute-force filter.
	res, err := db.Query(sql, args...)
	if err != nil {
		t.Fatal(err)
	}
	window := geom.RectXYWH(1000, 1000, 1024, 1024)
	want := 0
	err = db.ScanTable("points", func(row storage.Row) bool {
		box := geom.RectAround(geom.Point{X: row[1].AsFloat(), Y: row[2].AsFloat()}, 1)
		if box.Intersects(window) {
			want++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want || want == 0 {
		t.Fatalf("window rows = %d want %d", len(res.Rows), want)
	}
}

func TestTileMappingMatchesSpatial(t *testing.T) {
	db, ca := buildPointsApp(t, 2000)
	pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{
		BuildSpatial: true,
		TileSizes:    []float64{1024},
		MappingIndex: sqldb.IndexBTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tid := range []geom.TileID{{Col: 0, Row: 0}, {Col: 3, Row: 2}, {Col: 7, Row: 3}} {
		sSQL, sArgs := pl.TileSQLSpatial(tid, 1024)
		sRes, err := db.Query(sSQL, sArgs...)
		if err != nil {
			t.Fatal(err)
		}
		mSQL, mArgs, err := pl.TileSQLMapping(tid, 1024)
		if err != nil {
			t.Fatal(err)
		}
		mRes, err := db.Query(mSQL, mArgs...)
		if err != nil {
			t.Fatal(err)
		}
		ids := func(res *sqldb.Result, idCol int) []int64 {
			var out []int64
			for _, r := range res.Rows {
				out = append(out, r[idCol].AsInt())
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		s, m := ids(sRes, 0), ids(mRes, 0)
		if len(s) == 0 {
			t.Fatalf("tile %v: empty spatial result — bad test geometry", tid)
		}
		if len(s) != len(m) {
			t.Fatalf("tile %v: spatial %d rows, mapping %d rows", tid, len(s), len(m))
		}
		for i := range s {
			if s[i] != m[i] {
				t.Fatalf("tile %v: id mismatch at %d: %d vs %d", tid, i, s[i], m[i])
			}
		}
		// The mapping plan must use the tile_id index and an INL join.
		plan, err := db.Query("EXPLAIN "+mSQL, mArgs...)
		if err != nil {
			t.Fatal(err)
		}
		text := ""
		for _, r := range plan.Rows {
			text += r[0].S + "\n"
		}
		if !strings.Contains(text, "Eq Scan") || !strings.Contains(text, "Index Nested Loop") {
			t.Fatalf("mapping plan:\n%s", text)
		}
	}
	// Unknown tile size errors.
	if _, _, err := pl.TileSQLMapping(geom.TileID{}, 512); err == nil {
		t.Fatal("missing mapping table must error")
	}
}

func TestMaterializeFunctional(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE sales (region TEXT, amount DOUBLE, idx INT)"); err != nil {
		t.Fatal(err)
	}
	for i, amt := range []float64{10, 40, 25} {
		if err := db.InsertRow("sales", storage.Row{
			storage.Str([]string{"east", "west", "north"}[i]), storage.F64(amt), storage.I64(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("bars")
	// Non-separable placement: bar chart layout where x depends on the
	// row index and height on the amount (like the paper's pie chart
	// example, the placement is not a raw attribute).
	reg.RegisterPlacement("barLayout", func(r storage.Row) geom.Rect {
		i := r[2].AsFloat()
		return geom.Rect{MinX: i * 100, MinY: 0, MaxX: i*100 + 80, MaxY: r[1].AsFloat() * 10}
	})
	reg.RegisterTransform("double", func(r storage.Row) storage.Row {
		out := append(storage.Row(nil), r...)
		out[1] = storage.F64(r[1].AsFloat() * 2)
		return out
	})
	app := &spec.App{
		Name: "bars",
		Canvases: []spec.Canvas{{
			ID: "c", W: 1000, H: 1000,
			Transforms: []spec.Transform{{
				ID: "t", Query: "SELECT * FROM sales", TransformFunc: "double",
				Columns: []spec.ColumnSpec{
					{Name: "region", Type: "text"},
					{Name: "amount", Type: "double"},
					{Name: "idx", Type: "int"},
				},
			}},
			Layers: []spec.Layer{{
				TransformID: "t",
				Placement:   &spec.Placement{Func: "barLayout"},
				Renderer:    "bars",
			}},
		}},
		InitialCanvas: "c", InitialX: 500, InitialY: 500,
		ViewportW: 100, ViewportH: 100,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{BuildSpatial: true, TileSizes: []float64{512}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Separable {
		t.Fatal("should be non-separable")
	}
	// Window over the tall west bar only (amount 40*2*10 = 800 high,
	// x in [100,180]).
	sql, args := pl.WindowSQL(geom.RectXYWH(110, 500, 10, 10))
	res, err := db.Query(sql, args...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("window rows = %d", len(res.Rows))
	}
	// region column is schema position 1 (after kid).
	if res.Rows[0][1].S != "west" {
		t.Fatalf("wrong bar: %v", res.Rows[0])
	}
	// Transform applied: amount doubled.
	if res.Rows[0][2].AsFloat() != 80 {
		t.Fatalf("transform not applied: %v", res.Rows[0])
	}
	// Mapping design works on materialized layers too.
	mSQL, mArgs, err := pl.TileSQLMapping(geom.TileID{Col: 0, Row: 0}, 512)
	if err != nil {
		t.Fatal(err)
	}
	mRes, err := db.Query(mSQL, mArgs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(mRes.Rows) == 0 {
		t.Fatal("mapping tile empty")
	}
}

func TestMaterializeStaticLegend(t *testing.T) {
	db := sqldb.NewDB()
	reg := spec.NewRegistry()
	reg.RegisterRenderer("legend")
	reg.RegisterRenderer("dots")
	app := &spec.App{
		Name: "leg",
		Canvases: []spec.Canvas{{
			ID: "c", W: 100, H: 100,
			Transforms: []spec.Transform{{ID: "empty"}},
			Layers: []spec.Layer{{
				TransformID: "empty", Static: true, Renderer: "legend",
			}},
		}},
		InitialCanvas: "c", InitialX: 50, InitialY: 50,
		ViewportW: 10, ViewportH: 10,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Materialize(context.Background(), db, ca, 0, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Static || pl.Table != "" {
		t.Fatalf("legend physical = %+v", pl)
	}
}

func TestMaterializeErrors(t *testing.T) {
	db, ca := buildPointsApp(t, 10)
	// Break the query.
	ca.Spec.Canvases[0].Transforms[0].Query = "SELECT * FROM missing_table"
	if _, err := Materialize(context.Background(), db, ca, 0, 0, Options{}); err == nil {
		t.Fatal("missing table must fail")
	}
	ca.Spec.Canvases[0].Transforms[0].Query = "not sql"
	if _, err := Materialize(context.Background(), db, ca, 0, 0, Options{}); err == nil {
		t.Fatal("bad sql must fail")
	}
	// Separable columns that don't exist in the base table.
	db2, ca2 := buildPointsApp(t, 10)
	ca2.Spec.Canvases[0].Layers[0].Placement.XCol = "nope"
	if _, err := Materialize(context.Background(), db2, ca2, 0, 0, Options{}); err == nil {
		t.Fatal("missing separable column must fail")
	}
}

func TestTilesNeeded(t *testing.T) {
	tiles := TilesNeeded(geom.RectXYWH(100, 100, 1000, 1000), 256, 8192, 4096)
	if len(tiles) != 25 {
		t.Fatalf("tiles = %d want 25", len(tiles))
	}
}
