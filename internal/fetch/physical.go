package fetch

import (
	"context"
	"fmt"
	"strings"

	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
)

// PhysicalLayer describes how one canvas layer is stored in the DBMS:
// which table holds its objects, how bounding boxes are derived, and
// which auxiliary structures (spatial index, tuple–tile mapping tables)
// exist. It is the output of the backend's precomputation phase
// ("based on the developer specification, the backend server then
// builds indexes and performs necessary precomputation").
type PhysicalLayer struct {
	App      string
	CanvasID string
	LayerIdx int

	// Table is the data table: the base table for separable layers,
	// or the materialized layer table otherwise.
	Table string
	// IDCol is the unique integer id column used in mapping joins.
	IDCol string
	// Schema is the data table's full schema.
	Schema storage.Schema

	// Separable placement parameters (§3.2): canvas position =
	// (XCol*XScale, YCol*YScale), objects rendered with half-extent
	// Radius. For non-separable layers the materialized table carries
	// explicit bbox columns instead.
	Separable      bool
	XCol, YCol     string
	XScale, YScale float64
	Radius         float64

	// BBoxCols name the bbox columns (materialized layers) or the
	// degenerate point-box columns (separable layers).
	BBoxCols [4]string

	// TileMaps maps tile size to the (tile_id, tuple_id) mapping table
	// name, when the tuple–tile design was precomputed.
	TileMaps map[float64]string

	// LOD is the layer's auto-LOD aggregation pyramid; nil when the
	// layer serves raw rows at every zoom.
	LOD *LODPyramid

	CanvasW, CanvasH float64
	Static           bool
}

// Options configures precomputation.
type Options struct {
	// BuildSpatial builds the bbox R-tree (database design 2, §3.1).
	BuildSpatial bool
	// TileSizes lists the tile sizes to precompute tuple–tile mapping
	// tables for (database design 1, §3.1).
	TileSizes []float64
	// MappingIndex is the index kind on the mapping table's tile_id
	// column (BTREE in the paper's experiments; HASH also supported).
	MappingIndex sqldb.IndexKind

	// LODRowBudget bounds the rows a window query against an auto-LOD
	// layer should scan at any zoom (0 = 4096).
	LODRowBudget int
	// LODBaseCell is the finest pyramid level's grid cell size in
	// canvas units (0 = 64).
	LODBaseCell float64
	// LODWorkers sizes the work-stealing pool building the pyramid
	// (0 = GOMAXPROCS).
	LODWorkers int
}

// CanvasRect returns the layer's canvas extent.
func (pl *PhysicalLayer) CanvasRect() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: pl.CanvasW, MaxY: pl.CanvasH}
}

// RowBox computes the canvas-space bounding box of one data row.
func (pl *PhysicalLayer) RowBox(row storage.Row) (geom.Rect, error) {
	if pl.Separable {
		xi := pl.Schema.ColIndex(pl.XCol)
		yi := pl.Schema.ColIndex(pl.YCol)
		if xi < 0 || yi < 0 {
			return geom.Rect{}, fmt.Errorf("fetch: separable columns %q/%q missing", pl.XCol, pl.YCol)
		}
		p := geom.Point{X: row[xi].AsFloat() * pl.XScale, Y: row[yi].AsFloat() * pl.YScale}
		return geom.RectAround(p, pl.Radius), nil
	}
	var f [4]float64
	for i, col := range pl.BBoxCols {
		ci := pl.Schema.ColIndex(col)
		if ci < 0 {
			return geom.Rect{}, fmt.Errorf("fetch: bbox column %q missing", col)
		}
		f[i] = row[ci].AsFloat()
	}
	return geom.Rect{MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3]}, nil
}

// WindowSQL builds the spatial-design query answering "all objects
// whose canvas bbox intersects window", with its arguments. For
// separable layers the window is translated into raw-attribute space
// (divide by scale, pad by radius) so the base table's point index
// answers it without precomputation — the §3.2 separability
// optimization.
func (pl *PhysicalLayer) WindowSQL(window geom.Rect) (string, []storage.Value) {
	var w geom.Rect
	if pl.Separable {
		w = geom.Rect{
			MinX: (window.MinX - pl.Radius) / pl.XScale,
			MinY: (window.MinY - pl.Radius) / pl.YScale,
			MaxX: (window.MaxX + pl.Radius) / pl.XScale,
			MaxY: (window.MaxY + pl.Radius) / pl.YScale,
		}
	} else {
		w = window
	}
	sql := fmt.Sprintf(
		"SELECT * FROM %s WHERE INTERSECTS(%s, %s, %s, %s, ?, ?, ?, ?)",
		pl.Table, pl.BBoxCols[0], pl.BBoxCols[1], pl.BBoxCols[2], pl.BBoxCols[3])
	args := []storage.Value{
		storage.F64(w.MinX), storage.F64(w.MinY), storage.F64(w.MaxX), storage.F64(w.MaxY),
	}
	return sql, args
}

// TileSQLSpatial answers a tile request with the spatial design: a
// window query over the tile's rectangle.
func (pl *PhysicalLayer) TileSQLSpatial(id geom.TileID, size float64) (string, []storage.Value) {
	return pl.WindowSQL(id.TileRect(size))
}

// TileSQLMapping answers a tile request with the tuple–tile design:
// "tile queries are answered by joining these two tables on the
// tuple_id column".
func (pl *PhysicalLayer) TileSQLMapping(id geom.TileID, size float64) (string, []storage.Value, error) {
	mt, ok := pl.TileMaps[size]
	if !ok {
		return "", nil, fmt.Errorf("fetch: no tile mapping table for size %g on %s", size, pl.Table)
	}
	cols := geom.TileCols(pl.CanvasW, size)
	sql := fmt.Sprintf(
		"SELECT r.* FROM %s m JOIN %s r ON m.tuple_id = r.%s WHERE m.tile_id = ?",
		mt, pl.Table, pl.IDCol)
	return sql, []storage.Value{storage.I64(id.TileKey(cols))}, nil
}

// Materialize performs the backend precomputation for one layer of a
// compiled app: for non-separable layers it executes the transform
// query, applies the transform and placement functions, and stores the
// result in a materialized table with bbox columns; for separable
// layers it reuses the base table. It then builds the requested
// indexes and mapping tables, and — for layers declaring "lod": "auto"
// — the aggregation pyramid. Cancelling ctx aborts the build between
// row batches; server precompute cancels it when a sibling layer's
// build fails so doomed work stops early.
func Materialize(ctx context.Context, db *sqldb.DB, ca *spec.CompiledApp, canvasIdx, layerIdx int, opts Options) (*PhysicalLayer, error) {
	app := ca.Spec
	c := app.Canvases[canvasIdx]
	l := c.Layers[layerIdx]
	tr, ok := c.Transform(l.TransformID)
	if !ok {
		return nil, fmt.Errorf("fetch: layer references unknown transform %q", l.TransformID)
	}
	pl := &PhysicalLayer{
		App:      app.Name,
		CanvasID: c.ID,
		LayerIdx: layerIdx,
		CanvasW:  c.W,
		CanvasH:  c.H,
		Static:   l.Static,
		TileMaps: map[float64]string{},
	}
	if tr.Query == "" {
		// Static data-less layer (legend): nothing to precompute.
		pl.Static = true
		return pl, nil
	}

	if l.Placement.Separable() {
		return materializeSeparable(ctx, db, ca, pl, tr, l, opts)
	}
	if l.LOD == "auto" {
		// The compiler rejects this; recheck for hand-built specs.
		return nil, fmt.Errorf("fetch: lod \"auto\" requires a separable placement")
	}
	return materializeFunctional(ctx, db, ca, canvasIdx, layerIdx, pl, tr, opts)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
}

// materializeSeparable skips the copy: it validates the base table,
// ensures a point R-tree on (xCol, yCol) exists, and derives tile
// mappings directly from the base table when requested.
func materializeSeparable(ctx context.Context, db *sqldb.DB, ca *spec.CompiledApp, pl *PhysicalLayer, tr *spec.Transform, l spec.Layer, opts Options) (*PhysicalLayer, error) {
	st, err := sqldb.Parse(tr.Query)
	if err != nil {
		return nil, fmt.Errorf("fetch: layer query: %w", err)
	}
	sel, ok := st.(*sqldb.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("fetch: layer query must be a SELECT")
	}
	base, err := db.Table(sel.From.Table)
	if err != nil {
		return nil, err
	}
	p := l.Placement
	pl.Separable = true
	pl.Table = base.Name()
	pl.Schema = base.Schema()
	pl.XCol, pl.YCol = p.XCol, p.YCol
	pl.XScale, pl.YScale = p.XScale, p.YScale
	if pl.XScale == 0 {
		pl.XScale = 1
	}
	if pl.YScale == 0 {
		pl.YScale = 1
	}
	pl.Radius = p.Radius
	pl.IDCol = pl.Schema[0].Name
	pl.BBoxCols = [4]string{p.XCol, p.YCol, p.XCol, p.YCol}
	if pl.Schema.ColIndex(p.XCol) < 0 || pl.Schema.ColIndex(p.YCol) < 0 {
		return nil, fmt.Errorf("fetch: separable columns %q/%q not in table %q", p.XCol, p.YCol, pl.Table)
	}

	if opts.BuildSpatial || l.LOD == "auto" {
		// The pyramid build's stripe queries run through this point
		// R-tree, so auto-LOD forces it even when the serving design
		// would not.
		idxName := fmt.Sprintf("kyrix_%s_xy", sanitize(pl.Table))
		sql := fmt.Sprintf("CREATE INDEX %s ON %s USING RTREE (%s, %s, %s, %s)",
			idxName, pl.Table, p.XCol, p.YCol, p.XCol, p.YCol)
		if _, err := db.Exec(sql); err != nil && !strings.Contains(err.Error(), "already exists") {
			return nil, err
		}
	}
	if err := buildTileMaps(ctx, db, pl, opts); err != nil {
		return nil, err
	}
	if l.LOD == "auto" {
		if err := buildLOD(ctx, db, pl, opts); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// materializeFunctional runs the transform query, applies the
// registered transform and placement functions row by row, and stores
// payload + bbox in a fresh table.
func materializeFunctional(ctx context.Context, db *sqldb.DB, ca *spec.CompiledApp, canvasIdx, layerIdx int, pl *PhysicalLayer, tr *spec.Transform, opts Options) (*PhysicalLayer, error) {
	fns := ca.LayerFuncs[canvasIdx][layerIdx]
	if fns.Placement == nil {
		return nil, fmt.Errorf("fetch: non-separable layer needs a placement function")
	}
	res, err := db.Query(tr.Query)
	if err != nil {
		return nil, fmt.Errorf("fetch: layer query: %w", err)
	}
	// Declared output schema + kyrix id + bbox columns.
	schema := storage.Schema{{Name: "kid", Type: storage.TInt64}}
	for _, cs := range tr.Columns {
		ct, err := cs.ColType()
		if err != nil {
			return nil, err
		}
		schema = append(schema, storage.Column{Name: cs.Name, Type: ct})
	}
	for _, b := range [4]string{"kminx", "kminy", "kmaxx", "kmaxy"} {
		schema = append(schema, storage.Column{Name: b, Type: storage.TFloat64})
	}

	table := fmt.Sprintf("layer_%s_%s_%d", sanitize(pl.App), sanitize(pl.CanvasID), layerIdx)
	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (", table)
	for i, col := range schema {
		if i > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "%s %s", col.Name, col.Type)
	}
	ddl.WriteString(")")
	if _, err := db.Exec(ddl.String()); err != nil {
		return nil, err
	}

	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: pl.CanvasW, MaxY: pl.CanvasH}
	for i, row := range res.Rows {
		if i%1024 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		out := row
		if fns.Transform != nil {
			out = fns.Transform(row)
		}
		if len(out) != len(tr.Columns) {
			return nil, fmt.Errorf("fetch: transform produced %d columns, declared %d", len(out), len(tr.Columns))
		}
		box := fns.Placement(out)
		if !box.Valid() {
			return nil, fmt.Errorf("fetch: placement produced invalid box %s for row %d", box, i)
		}
		if !canvas.Intersects(box) {
			return nil, fmt.Errorf("fetch: placement box %s for row %d misses canvas %s", box, i, canvas)
		}
		full := make(storage.Row, 0, len(schema))
		full = append(full, storage.I64(int64(i)))
		full = append(full, out...)
		full = append(full,
			storage.F64(box.MinX), storage.F64(box.MinY),
			storage.F64(box.MaxX), storage.F64(box.MaxY))
		if err := db.InsertRow(table, full); err != nil {
			return nil, err
		}
	}

	pl.Table = table
	pl.Schema = schema
	pl.IDCol = "kid"
	pl.BBoxCols = [4]string{"kminx", "kminy", "kmaxx", "kmaxy"}

	if _, err := db.Exec(fmt.Sprintf(
		"CREATE INDEX kyrix_%s_kid ON %s USING BTREE (kid)", sanitize(table), table)); err != nil {
		return nil, err
	}
	if opts.BuildSpatial {
		if _, err := db.Exec(fmt.Sprintf(
			"CREATE INDEX kyrix_%s_bbox ON %s USING RTREE (kminx, kminy, kmaxx, kmaxy)",
			sanitize(table), table)); err != nil {
			return nil, err
		}
	}
	if err := buildTileMaps(ctx, db, pl, opts); err != nil {
		return nil, err
	}
	return pl, nil
}

// buildTileMaps precomputes the (tile_id, tuple_id) tables: "Each
// record in this table corresponds to a tuple that overlaps a tile.
// Kyrix backend uses placement functions specified by developers to
// precompute the second table."
func buildTileMaps(ctx context.Context, db *sqldb.DB, pl *PhysicalLayer, opts Options) error {
	if len(opts.TileSizes) == 0 {
		return nil
	}
	idIdx := pl.Schema.ColIndex(pl.IDCol)
	if idIdx < 0 {
		return fmt.Errorf("fetch: id column %q missing", pl.IDCol)
	}
	for _, size := range opts.TileSizes {
		// Mapping tables are per canvas layer, not per base table: the
		// same base table can back layers on differently scaled
		// canvases, whose tile coverage differs.
		mt := fmt.Sprintf("map_%s_%s_%d_tiles_%d",
			sanitize(pl.Table), sanitize(pl.CanvasID), pl.LayerIdx, int(size))
		if _, err := db.Exec(fmt.Sprintf(
			"CREATE TABLE %s (tile_id INT, tuple_id INT)", mt)); err != nil {
			return err
		}
		cols := geom.TileCols(pl.CanvasW, size)
		var scanErr error
		scanned := 0
		err := db.ScanTable(pl.Table, func(row storage.Row) bool {
			if scanned++; scanned%1024 == 0 && ctx.Err() != nil {
				scanErr = ctx.Err()
				return false
			}
			box, err := pl.RowBox(row)
			if err != nil {
				scanErr = err
				return false
			}
			for _, tid := range geom.CoveringTiles(box, size, pl.CanvasW, pl.CanvasH) {
				if err := db.InsertRow(mt, storage.Row{
					storage.I64(tid.TileKey(cols)), storage.I64(row[idIdx].AsInt()),
				}); err != nil {
					scanErr = err
					return false
				}
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return err
		}
		kind := "BTREE"
		if opts.MappingIndex == sqldb.IndexHash {
			kind = "HASH"
		}
		if _, err := db.Exec(fmt.Sprintf(
			"CREATE INDEX kyrix_%s_tid ON %s USING %s (tile_id)", sanitize(mt), mt, kind)); err != nil {
			return err
		}
		pl.TileMaps[size] = mt
	}
	// The mapping join also needs the data table indexed on its id.
	idxName := fmt.Sprintf("kyrix_%s_id", sanitize(pl.Table))
	sql := fmt.Sprintf("CREATE INDEX %s ON %s USING BTREE (%s)", idxName, pl.Table, pl.IDCol)
	if _, err := db.Exec(sql); err != nil && !strings.Contains(err.Error(), "already exists") {
		return err
	}
	return nil
}
