// Package geom provides the planar geometry primitives used throughout
// Kyrix: points, axis-aligned rectangles, and the tile arithmetic that
// underpins the static-tile fetching scheme.
//
// All coordinates are float64 canvas pixels. Rectangles are half-open on
// neither side: a Rect contains both its min and max edges, matching the
// paper's treatment of viewports and bounding boxes (a tuple whose bbox
// touches a tile boundary belongs to both tiles).
package geom

import (
	"fmt"
	"math"
)

// Point is a location on a canvas.
type Point struct {
	X, Y float64
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rect is an axis-aligned rectangle with inclusive edges.
// A Rect is valid when MinX <= MaxX and MinY <= MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectXYWH builds a Rect from an origin and a width/height.
func RectXYWH(x, y, w, h float64) Rect {
	return Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// RectAround builds the square Rect of half-width r centered at p.
// It is the bounding box of a point rendered with radius r.
func RectAround(p Point, r float64) Rect {
	return Rect{MinX: p.X - r, MinY: p.Y - r, MaxX: p.X + r, MaxY: p.Y + r}
}

// Valid reports whether r has non-negative extent on both axes.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// W returns the width of r.
func (r Rect) W() float64 { return r.MaxX - r.MinX }

// H returns the height of r.
func (r Rect) H() float64 { return r.MaxY - r.MinY }

// Area returns the area of r; zero for degenerate rectangles.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return r.W() * r.H()
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Intersects reports whether r and s share at least one point
// (touching edges count, mirroring the paper's tile-overlap rule).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside r (edges inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Intersection returns the overlap of r and s. The result is invalid
// (negative extent) when they do not intersect; callers should test
// Intersects first or check Valid on the result.
func (r Rect) Intersection(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest Rect containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.MinX + dx, r.MinY + dy, r.MaxX + dx, r.MaxY + dy}
}

// Inflate returns r grown by frac of its own width and height, keeping
// the same center. Inflate(0.5) yields the paper's "50% larger than the
// viewport" dynamic box. Negative fractions shrink the rectangle but the
// result is clamped to remain valid (it degenerates to the center).
func (r Rect) Inflate(frac float64) Rect {
	dw, dh := r.W()*frac/2, r.H()*frac/2
	out := Rect{r.MinX - dw, r.MinY - dh, r.MaxX + dw, r.MaxY + dh}
	if !out.Valid() {
		c := r.Center()
		return Rect{c.X, c.Y, c.X, c.Y}
	}
	return out
}

// Clamp returns r moved (not resized) so that it lies inside bounds as
// much as possible; if r is larger than bounds on an axis, it is aligned
// to the bounds' min edge on that axis.
func (r Rect) Clamp(bounds Rect) Rect {
	dx, dy := 0.0, 0.0
	switch {
	case r.W() >= bounds.W():
		dx = bounds.MinX - r.MinX
	case r.MinX < bounds.MinX:
		dx = bounds.MinX - r.MinX
	case r.MaxX > bounds.MaxX:
		dx = bounds.MaxX - r.MaxX
	}
	switch {
	case r.H() >= bounds.H():
		dy = bounds.MinY - r.MinY
	case r.MinY < bounds.MinY:
		dy = bounds.MinY - r.MinY
	case r.MaxY > bounds.MaxY:
		dy = bounds.MaxY - r.MaxY
	}
	return r.Translate(dx, dy)
}

// Scale returns r with every coordinate multiplied by f (a geometric
// zoom by factor f about the canvas origin).
func (r Rect) Scale(f float64) Rect {
	return Rect{r.MinX * f, r.MinY * f, r.MaxX * f, r.MaxY * f}
}

// Enlargement returns how much r's area would grow to also cover s.
// It is the R-tree insertion cost metric.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g → %g,%g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// TileID identifies one tile of a fixed-size tiling of a canvas.
// Row-major: ID = Row*columns + Col for a given canvas width.
type TileID struct {
	Col, Row int
}

// TileKey flattens a TileID into a single int64 for index keys, given
// the number of tile columns on the canvas.
func (t TileID) TileKey(cols int) int64 {
	return int64(t.Row)*int64(cols) + int64(t.Col)
}

// TileFromKey inverts TileKey.
func TileFromKey(key int64, cols int) TileID {
	return TileID{Col: int(key % int64(cols)), Row: int(key / int64(cols))}
}

// TileRect returns the rectangle covered by tile t for tile size sz.
func (t TileID) TileRect(sz float64) Rect {
	return RectXYWH(float64(t.Col)*sz, float64(t.Row)*sz, sz, sz)
}

// TileCols returns the number of tile columns for a canvas of width w
// with tiles of size sz (the paper's Fig. 4 partitioning).
func TileCols(w, sz float64) int {
	return int(math.Ceil(w / sz))
}

// ViewportTiles returns the tiles a viewport request needs under
// half-open tile semantics: a viewport whose edge lies exactly on a
// tile boundary does not pull in the neighboring tile (the Google
// Maps/ForeCache convention, and what makes the paper's tile-aligned
// trace-a fetch exactly one 1024-tile per viewport). Record→tile
// assignment stays edge-inclusive (CoveringTiles), so any record whose
// bbox overlaps the viewport's interior is served by a requested tile;
// the only divergence from inclusive INTERSECTS is a record whose bbox
// merely touches the viewport's max edge from outside — a zero-width
// overlap that draws no pixels.
func ViewportTiles(r Rect, sz, w, h float64) []TileID {
	if !r.Valid() || sz <= 0 {
		return nil
	}
	clip := r.Intersection(Rect{0, 0, w, h})
	if !clip.Valid() {
		return nil
	}
	c0 := int(math.Floor(clip.MinX / sz))
	r0 := int(math.Floor(clip.MinY / sz))
	c1 := int(math.Ceil(clip.MaxX/sz)) - 1
	r1 := int(math.Ceil(clip.MaxY/sz)) - 1
	if c1 < c0 {
		c1 = c0
	}
	if r1 < r0 {
		r1 = r0
	}
	maxC := TileCols(w, sz) - 1
	maxR := TileCols(h, sz) - 1
	if c1 > maxC {
		c1 = maxC
	}
	if r1 > maxR {
		r1 = maxR
	}
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	out := make([]TileID, 0, (c1-c0+1)*(r1-r0+1))
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			out = append(out, TileID{Col: col, Row: row})
		}
	}
	return out
}

// CoveringTiles returns every tile of size sz that intersects r, clipped
// to a canvas of extent (w, h). Tiles are returned row-major. Touching a
// tile boundary includes the tile, consistent with Rect.Intersects.
func CoveringTiles(r Rect, sz, w, h float64) []TileID {
	if !r.Valid() || sz <= 0 {
		return nil
	}
	clip := r.Intersection(Rect{0, 0, w, h})
	if !clip.Valid() {
		return nil
	}
	c0 := int(math.Floor(clip.MinX / sz))
	r0 := int(math.Floor(clip.MinY / sz))
	c1 := int(math.Floor(clip.MaxX / sz))
	r1 := int(math.Floor(clip.MaxY / sz))
	maxC := TileCols(w, sz) - 1
	maxR := TileCols(h, sz) - 1
	if c1 > maxC {
		c1 = maxC
	}
	if r1 > maxR {
		r1 = maxR
	}
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	out := make([]TileID, 0, (c1-c0+1)*(r1-r0+1))
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			out = append(out, TileID{Col: col, Row: row})
		}
	}
	return out
}
