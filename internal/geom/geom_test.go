package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	if q := p.Add(1, -2); q != (Point{4, 2}) {
		t.Fatalf("Add = %v", q)
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %g", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectXYWH(10, 20, 30, 40)
	if r.W() != 30 || r.H() != 40 {
		t.Fatalf("W/H = %g/%g", r.W(), r.H())
	}
	if r.Area() != 1200 {
		t.Fatalf("Area = %g", r.Area())
	}
	if c := r.Center(); c != (Point{25, 40}) {
		t.Fatalf("Center = %v", c)
	}
	if !r.Valid() {
		t.Fatal("expected valid")
	}
	bad := Rect{10, 10, 0, 0}
	if bad.Valid() || bad.Area() != 0 {
		t.Fatal("degenerate rect should be invalid with zero area")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Point{5, 5}, 2)
	want := Rect{3, 3, 7, 7}
	if r != want {
		t.Fatalf("RectAround = %v want %v", r, want)
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{5, 5, 15, 15}, true},
		{Rect{10, 10, 20, 20}, true}, // touching corner counts
		{Rect{11, 11, 20, 20}, false},
		{Rect{-5, -5, -1, -1}, false},
		{Rect{2, 2, 3, 3}, true}, // contained
		{Rect{0, 10, 10, 20}, true},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects(%v) = %v want %v", i, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: symmetric Intersects = %v want %v", i, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if !a.Contains(Rect{2, 2, 8, 8}) {
		t.Fatal("should contain inner")
	}
	if !a.Contains(a) {
		t.Fatal("should contain itself")
	}
	if a.Contains(Rect{2, 2, 11, 8}) {
		t.Fatal("should not contain overflowing rect")
	}
	if !a.ContainsPoint(Point{0, 0}) || !a.ContainsPoint(Point{10, 10}) {
		t.Fatal("edges are inclusive")
	}
	if a.ContainsPoint(Point{10.1, 5}) {
		t.Fatal("outside point")
	}
}

func TestIntersectionUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 20, 20}
	got := a.Intersection(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("Intersection = %v", got)
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 20, 20}) {
		t.Fatalf("Union = %v", u)
	}
	// Disjoint intersection is invalid.
	if a.Intersection(Rect{50, 50, 60, 60}).Valid() {
		t.Fatal("disjoint intersection should be invalid")
	}
}

func TestInflate(t *testing.T) {
	v := RectXYWH(100, 100, 100, 100)
	b := v.Inflate(0.5)
	if math.Abs(b.W()-150) > 1e-9 || math.Abs(b.H()-150) > 1e-9 {
		t.Fatalf("Inflate(0.5) dims = %gx%g", b.W(), b.H())
	}
	if b.Center() != v.Center() {
		t.Fatal("Inflate must preserve the center")
	}
	if !b.Contains(v) {
		t.Fatal("inflated box must contain the viewport")
	}
	// Shrinking past zero degenerates to the center.
	d := v.Inflate(-3)
	if d.Area() != 0 || d.Center() != v.Center() {
		t.Fatalf("over-shrunk rect = %v", d)
	}
}

func TestTranslateScaleClamp(t *testing.T) {
	r := RectXYWH(0, 0, 10, 10)
	if got := r.Translate(5, -5); got != (Rect{5, -5, 15, 5}) {
		t.Fatalf("Translate = %v", got)
	}
	if got := r.Scale(2); got != (Rect{0, 0, 20, 20}) {
		t.Fatalf("Scale = %v", got)
	}
	bounds := Rect{0, 0, 100, 100}
	if got := RectXYWH(-10, 50, 20, 20).Clamp(bounds); got != (Rect{0, 50, 20, 70}) {
		t.Fatalf("Clamp left = %v", got)
	}
	if got := RectXYWH(95, 95, 20, 20).Clamp(bounds); got != (Rect{80, 80, 100, 100}) {
		t.Fatalf("Clamp bottomright = %v", got)
	}
	// Oversized rect aligns to min edge.
	if got := RectXYWH(10, 10, 500, 20).Clamp(bounds); got.MinX != 0 {
		t.Fatalf("oversize Clamp = %v", got)
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if e := a.Enlargement(Rect{2, 2, 3, 3}); e != 0 {
		t.Fatalf("contained enlargement = %g", e)
	}
	if e := a.Enlargement(Rect{0, 0, 20, 10}); e != 100 {
		t.Fatalf("enlargement = %g", e)
	}
}

func TestTileKeyRoundtrip(t *testing.T) {
	cols := 129
	for _, id := range []TileID{{0, 0}, {5, 7}, {128, 999}, {17, 0}} {
		k := id.TileKey(cols)
		if got := TileFromKey(k, cols); got != id {
			t.Fatalf("roundtrip %v -> %d -> %v", id, k, got)
		}
	}
}

func TestTileRect(t *testing.T) {
	r := TileID{Col: 2, Row: 3}.TileRect(256)
	if r != (Rect{512, 768, 768, 1024}) {
		t.Fatalf("TileRect = %v", r)
	}
}

func TestCoveringTilesAligned(t *testing.T) {
	// Viewport exactly one tile: expect that tile plus boundary
	// neighbours that share an edge (inclusive intersection).
	w, h := 4096.0, 4096.0
	vp := RectXYWH(1024, 1024, 1024, 1024)
	tiles := CoveringTiles(vp, 1024, w, h)
	// Inclusive edges: cols 1..2, rows 1..2 -> 9 tiles? MaxX=2048 ->
	// floor(2048/1024)=2, so cols 1,2 rows 1,2 -> 4 tiles.
	if len(tiles) != 4 {
		t.Fatalf("aligned tiles = %d (%v)", len(tiles), tiles)
	}
}

func TestCoveringTilesInterior(t *testing.T) {
	w, h := 4096.0, 4096.0
	vp := RectXYWH(1100, 1100, 800, 800) // strictly inside tile (1,1)
	tiles := CoveringTiles(vp, 1024, w, h)
	if len(tiles) != 1 || tiles[0] != (TileID{1, 1}) {
		t.Fatalf("interior tiles = %v", tiles)
	}
}

func TestCoveringTilesUnaligned(t *testing.T) {
	w, h := 4096.0, 4096.0
	vp := RectXYWH(512, 512, 1024, 1024) // spans 2x2 tiles
	tiles := CoveringTiles(vp, 1024, w, h)
	if len(tiles) != 4 {
		t.Fatalf("unaligned tiles = %d", len(tiles))
	}
}

func TestCoveringTilesClipped(t *testing.T) {
	w, h := 2048.0, 2048.0
	// Viewport hanging off the canvas: only on-canvas tiles returned.
	tiles := CoveringTiles(RectXYWH(-500, -500, 1000, 1000), 1024, w, h)
	if len(tiles) != 1 || tiles[0] != (TileID{0, 0}) {
		t.Fatalf("clipped tiles = %v", tiles)
	}
	if got := CoveringTiles(RectXYWH(5000, 5000, 10, 10), 1024, w, h); got != nil {
		t.Fatalf("off-canvas tiles = %v", got)
	}
	if got := CoveringTiles(Rect{10, 10, 0, 0}, 1024, w, h); got != nil {
		t.Fatalf("invalid rect tiles = %v", got)
	}
}

func TestViewportTilesHalfOpen(t *testing.T) {
	w, h := 8192.0, 8192.0
	// A tile-aligned viewport needs exactly one tile (the trace-a
	// property the paper relies on).
	vp := RectXYWH(1024, 1024, 1024, 1024)
	tiles := ViewportTiles(vp, 1024, w, h)
	if len(tiles) != 1 || tiles[0] != (TileID{1, 1}) {
		t.Fatalf("aligned viewport tiles = %v", tiles)
	}
	// Unaligned viewport spans 2x2.
	tiles = ViewportTiles(RectXYWH(512, 512, 1024, 1024), 1024, w, h)
	if len(tiles) != 4 {
		t.Fatalf("unaligned viewport tiles = %d", len(tiles))
	}
	// A 1024 viewport over 256-tiles: exactly 4x4 when aligned.
	tiles = ViewportTiles(vp, 256, w, h)
	if len(tiles) != 16 {
		t.Fatalf("256-tiles for aligned 1024 viewport = %d", len(tiles))
	}
	// Degenerate viewport on a boundary still returns its tile.
	tiles = ViewportTiles(Rect{1024, 1024, 1024, 1024}, 1024, w, h)
	if len(tiles) != 1 || tiles[0] != (TileID{1, 1}) {
		t.Fatalf("degenerate viewport tiles = %v", tiles)
	}
	// Off-canvas and invalid inputs.
	if ViewportTiles(RectXYWH(9000, 0, 10, 10), 1024, w, h) != nil {
		t.Fatal("off-canvas viewport")
	}
	if ViewportTiles(Rect{5, 5, 0, 0}, 1024, w, h) != nil {
		t.Fatal("invalid viewport")
	}
}

// Consistency: every record bbox intersecting the viewport is found in
// at least one viewport tile under inclusive record->tile assignment.
func TestViewportTilesConsistentWithCoveringTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const w, h, sz = 8192.0, 8192.0, 256.0
	for i := 0; i < 200; i++ {
		vp := RectXYWH(rng.Float64()*7000, rng.Float64()*7000, 1024, 1024)
		vpTiles := map[TileID]bool{}
		for _, id := range ViewportTiles(vp, sz, w, h) {
			vpTiles[id] = true
		}
		for j := 0; j < 20; j++ {
			// Random record near the viewport, sometimes exactly on a
			// tile boundary.
			x := math.Floor(vp.MinX/sz)*sz + float64(rng.Intn(6))*sz/2
			y := math.Floor(vp.MinY/sz)*sz + float64(rng.Intn(6))*sz/2
			box := RectAround(Point{x, y}, 1)
			if !box.Intersects(vp) {
				continue
			}
			found := false
			for _, id := range CoveringTiles(box, sz, w, h) {
				if vpTiles[id] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("record %v intersects viewport %v but no requested tile serves it", box, vp)
			}
		}
	}
}

func TestCoveringTilesCanvasEdge(t *testing.T) {
	// Canvas not a multiple of the tile size: last partial tile exists.
	w, h := 1500.0, 1500.0
	tiles := CoveringTiles(Rect{0, 0, 1500, 1500}, 1024, w, h)
	if len(tiles) != 4 {
		t.Fatalf("edge tiles = %d", len(tiles))
	}
}

// Property: intersection area is never larger than either operand, and
// union contains both.
func TestQuickIntersectionUnion(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := RectXYWH(mod(ax, 1e6), mod(ay, 1e6), mod(aw, 1e4), mod(ah, 1e4))
		b := RectXYWH(mod(bx, 1e6), mod(by, 1e6), mod(bw, 1e4), mod(bh, 1e4))
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if a.Intersects(b) {
			i := a.Intersection(b)
			if !i.Valid() {
				return false
			}
			if i.Area() > a.Area()+1e-9 || i.Area() > b.Area()+1e-9 {
				return false
			}
			if !a.Contains(i) || !b.Contains(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every covering tile intersects the query rect, and every
// point sampled inside the query falls in some returned tile.
func TestQuickCoveringTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const w, h, sz = 16384.0, 16384.0, 256.0
	for i := 0; i < 300; i++ {
		q := RectXYWH(rng.Float64()*w, rng.Float64()*h,
			rng.Float64()*2000, rng.Float64()*2000)
		tiles := CoveringTiles(q, sz, w, h)
		seen := make(map[TileID]bool, len(tiles))
		for _, id := range tiles {
			if seen[id] {
				t.Fatalf("duplicate tile %v", id)
			}
			seen[id] = true
			if !id.TileRect(sz).Intersects(q) {
				t.Fatalf("tile %v does not intersect %v", id, q)
			}
		}
		// sample points
		for j := 0; j < 10; j++ {
			p := Point{q.MinX + rng.Float64()*q.W(), q.MinY + rng.Float64()*q.H()}
			if p.X < 0 || p.X > w || p.Y < 0 || p.Y > h {
				continue
			}
			found := false
			for id := range seen {
				if id.TileRect(sz).ContainsPoint(p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("point %v in query %v not covered by tiles", p, q)
			}
		}
	}
}

func mod(v, m float64) float64 {
	v = math.Abs(v)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, m)
}

func BenchmarkCoveringTiles(b *testing.B) {
	q := RectXYWH(4000, 4000, 1024, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CoveringTiles(q, 256, 131072, 16384)
	}
}
