package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tempLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestAppendReplay(t *testing.T) {
	l, _ := tempLog(t)
	defer l.Close()
	var lsns []LSN
	for i := 0; i < 100; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	// LSNs strictly increase.
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("LSN order: %d <= %d", lsns[i], lsns[i-1])
		}
	}
	i := 0
	err := l.Replay(func(lsn LSN, payload []byte) error {
		if lsn != lsns[i] {
			t.Fatalf("replay lsn %d want %d", lsn, lsns[i])
		}
		if want := fmt.Sprintf("record-%d", i); string(payload) != want {
			t.Fatalf("replay payload %q want %q", payload, want)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != 100 {
		t.Fatalf("replayed %d records", i)
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	l, path := tempLog(t)
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	_ = l2.Replay(func(_ LSN, p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("after reopen: %v", got)
	}
	// Appends continue past the old end.
	if _, err := l2.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	if l2.Size() <= 0 {
		t.Fatal("size")
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := tempLog(t)
	if _, err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage half-frame at the end.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xAA}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	_ = l2.Replay(func(_ LSN, p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 1 || got[0] != "good" {
		t.Fatalf("after torn tail: %v", got)
	}
	// And the log accepts new appends cleanly.
	if _, err := l2.Append([]byte("recovered")); err != nil {
		t.Fatal(err)
	}
	got = nil
	_ = l2.Replay(func(_ LSN, p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 2 || got[1] != "recovered" {
		t.Fatalf("after recovery append: %v", got)
	}
}

func TestCorruptPayloadTruncated(t *testing.T) {
	l, path := tempLog(t)
	if _, err := l.Append([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append([]byte("bbbb"))
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload byte of record 2.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[int(lsn2)+frameHeader] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	_ = l2.Replay(func(_ LSN, p []byte) error { got = append(got, string(p)); return nil })
	if len(got) != 1 || got[0] != "aaaa" {
		t.Fatalf("after corruption: %v", got)
	}
}

func TestEmptyAndBinaryPayloads(t *testing.T) {
	l, _ := tempLog(t)
	defer l.Close()
	bin := bytes.Repeat([]byte{0x00, 0xFF}, 500)
	if _, err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(bin); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	_ = l.Replay(func(_ LSN, p []byte) error { sizes = append(sizes, len(p)); return nil })
	if len(sizes) != 2 || sizes[0] != 0 || sizes[1] != 1000 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestClosedErrors(t *testing.T) {
	l, _ := tempLog(t)
	l.Close()
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close = %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("sync after close = %v", err)
	}
	if err := l.Replay(func(LSN, []byte) error { return nil }); err != ErrClosed {
		t.Fatalf("replay after close = %v", err)
	}
	if err := l.Close(); err != ErrClosed {
		t.Fatalf("double close = %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := tempLog(t)
	defer l.Close()
	var wg sync.WaitGroup
	const goroutines, per = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	count := 0
	_ = l.Replay(func(LSN, []byte) error { count++; return nil })
	if count != goroutines*per {
		t.Fatalf("replayed %d want %d", count, goroutines*per)
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReadAt(t *testing.T) {
	l, _ := tempLog(t)
	defer l.Close()
	var lsns []LSN
	for i := 0; i < 20; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	// Random access in arbitrary order returns exactly the appended
	// payloads.
	for _, i := range []int{7, 0, 19, 3, 3, 12} {
		got, err := l.ReadAt(lsns[i])
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("payload-%d", i); string(got) != want {
			t.Fatalf("ReadAt(%d) = %q, want %q", lsns[i], got, want)
		}
	}
	// Out-of-range LSNs error rather than reading garbage.
	if _, err := l.ReadAt(LSN(l.Size())); err == nil {
		t.Fatal("ReadAt(end) succeeded")
	}
	if _, err := l.ReadAt(LSN(-1)); err == nil {
		t.Fatal("ReadAt(-1) succeeded")
	}
}

func TestReadAtCorrupt(t *testing.T) {
	l, path := tempLog(t)
	lsn1, err := l.Append([]byte("intact"))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append([]byte("will-be-corrupted"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record in place.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, int64(lsn2)+frameHeader); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, err := l.ReadAt(lsn1); err != nil || string(got) != "intact" {
		t.Fatalf("ReadAt(intact) = %q, %v", got, err)
	}
	if _, err := l.ReadAt(lsn2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAt(corrupt) err = %v, want ErrCorrupt", err)
	}
}

func TestReadAtMisalignedLSN(t *testing.T) {
	l, _ := tempLog(t)
	defer l.Close()
	lsn, err := l.Append(bytes.Repeat([]byte("ab"), 64))
	if err != nil {
		t.Fatal(err)
	}
	// An LSN landing mid-record reads a bogus header: either the
	// implied record overruns the log or the checksum rejects. Both
	// must error, never return bytes.
	for off := int64(lsn) + 1; off+frameHeader < l.Size(); off += 7 {
		if got, err := l.ReadAt(LSN(off)); err == nil {
			t.Fatalf("ReadAt(misaligned %d) returned %d bytes", off, len(got))
		}
	}
}

func TestTruncateAt(t *testing.T) {
	l, path := tempLog(t)
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	// Cut records 6..9; the log ends after record 5.
	if err := l.TruncateAt(lsns[6]); err != nil {
		t.Fatal(err)
	}
	if l.Size() != int64(lsns[6]) {
		t.Fatalf("size after truncate = %d want %d", l.Size(), lsns[6])
	}
	if _, err := l.ReadAt(lsns[6]); err == nil {
		t.Fatal("ReadAt of truncated record succeeded")
	}
	// Appends resume at the cut point with fresh contents.
	nl, err := l.Append([]byte("replacement"))
	if err != nil {
		t.Fatal(err)
	}
	if nl != lsns[6] {
		t.Fatalf("append after truncate at %d want %d", nl, lsns[6])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen sees records 0..5 plus the replacement, nothing else.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(_ LSN, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"record-0", "record-1", "record-2", "record-3", "record-4", "record-5", "replacement"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q want %q", i, got[i], want[i])
		}
	}
	// Out-of-range truncation is rejected.
	if err := l2.TruncateAt(LSN(l2.Size() + 1)); err == nil {
		t.Fatal("TruncateAt beyond end succeeded")
	}
}
