// Package wal implements the append-only write-ahead log that backs the
// update model of the paper's §4 ("MGH wants an update model for Kyrix
// so they can edit and tag relevant data"), where edits must survive a
// crash of the backend server.
//
// Record framing: each record is
//
//	uint32 length | uint32 CRC-32 (IEEE) of payload | payload
//
// Recovery replays records in order and stops at the first torn or
// corrupt frame, truncating the tail — the standard redo-log contract.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// LSN is a log sequence number: the byte offset of a record's frame.
type LSN int64

// ErrClosed is returned after Close.
var ErrClosed = errors.New("wal: closed")

// ErrCorrupt is returned by ReadAt when a record's stored checksum does
// not match its payload (torn write, bit rot, or a bad LSN landing
// mid-record). Random-access readers must treat it as "record absent",
// never serve the bytes.
var ErrCorrupt = errors.New("wal: corrupt record")

const frameHeader = 8

// Log is an append-only write-ahead log. Safe for concurrent appends.
type Log struct {
	mu     sync.Mutex
	f      *os.File // guarded by mu
	end    int64    // guarded by mu
	closed bool     // guarded by mu
}

// Open opens (creating if needed) the log at path and validates the
// existing contents, truncating any torn tail so appends start at a
// clean boundary.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	end, err := validate(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, end: end}, nil
}

// validate scans the log and returns the offset after the last intact
// record.
func validate(f *os.File) (int64, error) {
	var off int64
	hdr := make([]byte, frameHeader)
	for {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return off, nil // EOF or short read: clean end / torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, off+frameHeader); err != nil {
			return off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil // corrupt payload
		}
		off += frameHeader + int64(length)
	}
}

// Append writes one record and returns its LSN. The record is flushed
// to the OS; call Sync for durability to stable storage.
func (l *Log) Append(payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	lsn := LSN(l.end)
	if _, err := l.f.WriteAt(frame, l.end); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.end += int64(len(frame))
	return lsn, nil
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// ReadAt reads the single record at lsn, verifying its checksum — the
// random-access counterpart of Replay, for callers that keep an
// external key→LSN index (the persistent tile store). A record whose
// stored CRC does not match returns ErrCorrupt; an LSN outside the
// validated log returns an error. The returned slice is freshly
// allocated and owned by the caller.
func (l *Log) ReadAt(lsn LSN) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	off := int64(lsn)
	if off < 0 || off+frameHeader > l.end {
		return nil, fmt.Errorf("wal: ReadAt %d: beyond log end %d", off, l.end)
	}
	hdr := make([]byte, frameHeader)
	if _, err := l.f.ReadAt(hdr, off); err != nil {
		return nil, fmt.Errorf("wal: ReadAt header at %d: %w", off, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if off+frameHeader+int64(length) > l.end {
		return nil, fmt.Errorf("wal: ReadAt %d: record overruns log end", off)
	}
	payload := make([]byte, length)
	if _, err := l.f.ReadAt(payload, off+frameHeader); err != nil {
		return nil, fmt.Errorf("wal: ReadAt payload at %d: %w", off, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("wal: ReadAt %d: %w", off, ErrCorrupt)
	}
	return payload, nil
}

// Replay calls fn for every intact record in LSN order.
func (l *Log) Replay(fn func(lsn LSN, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var off int64
	hdr := make([]byte, frameHeader)
	for off < l.end {
		if _, err := l.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("wal: replay header at %d: %w", off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+frameHeader); err != nil {
			return fmt.Errorf("wal: replay payload at %d: %w", off, err)
		}
		if err := fn(LSN(off), payload); err != nil {
			return err
		}
		off += frameHeader + int64(length)
	}
	return nil
}

// TruncateAt discards the record at lsn and everything after it, so
// the next Append lands at lsn. The replicated log uses this to drop a
// conflicting suffix when a new leader's history diverges from a
// follower's (committed prefixes never conflict, so only uncommitted
// bytes are ever cut). lsn must lie on a record boundary at or before
// the current end.
func (l *Log) TruncateAt(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	off := int64(lsn)
	if off < 0 || off > l.end {
		return fmt.Errorf("wal: TruncateAt %d: outside log [0, %d]", off, l.end)
	}
	if err := l.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: TruncateAt %d: %w", off, err)
	}
	l.end = off
	return nil
}

// Size returns the current log length in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
