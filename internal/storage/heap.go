package storage

import (
	"fmt"
	"sync"
)

// RID is a record identifier: page number plus slot within the page.
// RIDs are stable for the life of the record (deleted slots are never
// reused), so indexes can store them durably.
type RID struct {
	Page PageID
	Slot SlotID
}

// Pack flattens a RID into a uint64 for index payloads.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID inverts Pack.
func UnpackRID(v uint64) RID {
	return RID{Page: PageID(v >> 16), Slot: SlotID(v & 0xFFFF)}
}

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile is an unordered collection of tuples stored in slotted pages
// obtained from a buffer pool. Inserts append to the last page with
// room; scans walk pages in order.
//
// A HeapFile owns a contiguous range of pages conceptually, but since
// each table gets its own DiskManager in this engine, a heap file simply
// uses every page of its pool's disk.
type HeapFile struct {
	bp     *BufferPool
	schema Schema

	mu       sync.Mutex
	lastPage PageID // last page known to have had room
	count    int64  // live tuples
}

// NewHeapFile creates a heap file over bp for rows of schema.
func NewHeapFile(bp *BufferPool, schema Schema) (*HeapFile, error) {
	h := &HeapFile{bp: bp, schema: schema, lastPage: InvalidPageID}
	return h, nil
}

// Schema returns the row schema.
func (h *HeapFile) Schema() Schema { return h.schema }

// Count returns the number of live tuples.
func (h *HeapFile) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Insert encodes row and stores it, returning its RID.
func (h *HeapFile) Insert(row Row) (RID, error) {
	buf, err := EncodeRow(nil, h.schema, row)
	if err != nil {
		return RID{}, err
	}
	return h.InsertBytes(buf)
}

// InsertBytes stores a pre-encoded tuple.
func (h *HeapFile) InsertBytes(tuple []byte) (RID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastPage != InvalidPageID {
		data, err := h.bp.Pin(h.lastPage)
		if err != nil {
			return RID{}, err
		}
		slot, err := AsSlotted(data).Insert(tuple)
		if err == nil {
			h.count++
			rid := RID{Page: h.lastPage, Slot: slot}
			return rid, h.bp.Unpin(h.lastPage, true)
		}
		if uerr := h.bp.Unpin(h.lastPage, false); uerr != nil {
			return RID{}, uerr
		}
		if err != ErrPageFull {
			return RID{}, err
		}
	}
	id, data, err := h.bp.NewPage()
	if err != nil {
		return RID{}, err
	}
	slot, err := InitSlotted(data).Insert(tuple)
	if err != nil {
		_ = h.bp.Unpin(id, true)
		return RID{}, err
	}
	h.lastPage = id
	h.count++
	return RID{Page: id, Slot: slot}, h.bp.Unpin(id, true)
}

// Get decodes the row at rid.
func (h *HeapFile) Get(rid RID) (Row, error) {
	row := make(Row, len(h.schema))
	if err := h.GetInto(rid, row); err != nil {
		return nil, err
	}
	return row, nil
}

// GetInto decodes the row at rid into dst (len == schema arity).
func (h *HeapFile) GetInto(rid RID, dst Row) error {
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return err
	}
	defer func() { _ = h.bp.Unpin(rid.Page, false) }()
	tuple, err := AsSlotted(data).Get(rid.Slot)
	if err != nil {
		return err
	}
	return DecodeRowInto(tuple, h.schema, dst)
}

// Delete removes the tuple at rid.
func (h *HeapFile) Delete(rid RID) error {
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return err
	}
	sp := AsSlotted(data)
	err = sp.Delete(rid.Slot)
	if uerr := h.bp.Unpin(rid.Page, err == nil); uerr != nil && err == nil {
		err = uerr
	}
	if err == nil {
		h.mu.Lock()
		h.count--
		h.mu.Unlock()
	}
	return err
}

// Update replaces the tuple at rid with row. The row must still fit in
// the page (same-page update); this engine's fixed-width-dominated rows
// make that the common case. ErrPageFull otherwise.
func (h *HeapFile) Update(rid RID, row Row) error {
	buf, err := EncodeRow(nil, h.schema, row)
	if err != nil {
		return err
	}
	data, err := h.bp.Pin(rid.Page)
	if err != nil {
		return err
	}
	sp := AsSlotted(data)
	err = sp.Update(rid.Slot, buf)
	if uerr := h.bp.Unpin(rid.Page, err == nil); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

// Scan calls fn for every live tuple in RID order. The row passed to fn
// is reused between calls; copy it to retain. Returning false stops.
func (h *HeapFile) Scan(fn func(rid RID, row Row) bool) error {
	n := h.bp.Disk().NumPages()
	row := make(Row, len(h.schema))
	for p := 0; p < n; p++ {
		id := PageID(p)
		data, err := h.bp.Pin(id)
		if err != nil {
			return err
		}
		stop := false
		var scanErr error
		AsSlotted(data).ForEach(func(slot SlotID, tuple []byte) bool {
			if err := DecodeRowInto(tuple, h.schema, row); err != nil {
				scanErr = err
				return false
			}
			if !fn(RID{Page: id, Slot: slot}, row) {
				stop = true
				return false
			}
			return true
		})
		if err := h.bp.Unpin(id, false); err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
		if stop {
			return nil
		}
	}
	return nil
}
