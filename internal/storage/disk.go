package storage

import (
	"fmt"
	"os"
	"sync"
)

// DiskManager abstracts page-granular persistent storage. Implementations
// must be safe for concurrent use.
type DiskManager interface {
	// ReadPage fills buf (PageSize bytes) with the page's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (PageSize bytes) as the page's contents.
	WritePage(id PageID, buf []byte) error
	// AllocatePage reserves a fresh zeroed page and returns its id.
	AllocatePage() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases resources; the manager is unusable afterwards.
	Close() error
}

// MemDisk is an in-memory DiskManager: the default for experiments,
// standing in for a warmed OS page cache.
type MemDisk struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemDisk returns an empty in-memory disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// ReadPage implements DiskManager.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements DiskManager.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(d.pages[id], buf)
	return nil
}

// AllocatePage implements DiskManager.
func (d *MemDisk) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, PageSize))
	return PageID(len(d.pages) - 1), nil
}

// NumPages implements DiskManager.
func (d *MemDisk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// Close implements DiskManager.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a file-backed DiskManager storing pages contiguously.
type FileDisk struct {
	mu   sync.Mutex
	f    *os.File
	next PageID
}

// OpenFileDisk opens (or creates) the page file at path. Existing pages
// are preserved; the page count is derived from the file length.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s has torn length %d", path, st.Size())
	}
	return &FileDisk{f: f, next: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements DiskManager.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.next {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	_, err := d.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements DiskManager.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= d.next {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if _, err := d.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// AllocatePage implements DiskManager.
func (d *FileDisk) AllocatePage() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	zero := make([]byte, PageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	d.next++
	return id, nil
}

// NumPages implements DiskManager.
func (d *FileDisk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.next)
}

// Sync flushes the file to stable storage.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// Close implements DiskManager.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}
