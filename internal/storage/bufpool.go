package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// BufPoolStats counts buffer-pool activity for the experiment reports.
type BufPoolStats struct {
	Hits      atomic.Int64
	Misses    atomic.Int64
	Evictions atomic.Int64
	Flushes   atomic.Int64
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	// lruElem is non-nil iff the frame is unpinned and eligible for
	// eviction; it points at its entry in the LRU list.
	lruElem *list.Element
}

// BufferPool caches pages from a DiskManager with pin-count based LRU
// eviction. All methods are safe for concurrent use; a pinned page's
// buffer is stable until Unpin.
type BufferPool struct {
	disk DiskManager

	mu     sync.Mutex
	frames map[PageID]*frame
	lru    *list.List // of PageID; front = most recent
	cap    int

	Stats BufPoolStats
}

// NewBufferPool creates a pool holding up to capacity pages of disk.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		frames: make(map[PageID]*frame, capacity),
		lru:    list.New(),
		cap:    capacity,
	}
}

// Disk exposes the underlying disk manager (for allocation).
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// NewPage allocates a fresh page on disk and returns it pinned.
func (bp *BufferPool) NewPage() (PageID, []byte, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return 0, nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.ensureRoomLocked(); err != nil {
		return 0, nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1, dirty: true}
	bp.frames[id] = f
	return id, f.data, nil
}

// Pin fetches the page into the pool (reading from disk on a miss) and
// returns its buffer with the pin count incremented.
func (bp *BufferPool) Pin(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.Stats.Hits.Add(1)
		f.pins++
		if f.lruElem != nil {
			bp.lru.Remove(f.lruElem)
			f.lruElem = nil
		}
		return f.data, nil
	}
	bp.Stats.Misses.Add(1)
	if err := bp.ensureRoomLocked(); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1}
	if err := bp.disk.ReadPage(id, f.data); err != nil {
		return nil, err
	}
	bp.frames[id] = f
	return f.data, nil
}

// Unpin releases one pin. dirty marks the page as modified so eviction
// writes it back.
func (bp *BufferPool) Unpin(id PageID, dirty bool) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	f.dirty = f.dirty || dirty
	f.pins--
	if f.pins == 0 {
		f.lruElem = bp.lru.PushFront(id)
	}
	return nil
}

// ensureRoomLocked evicts the least recently used unpinned frame if the
// pool is at capacity. Caller holds bp.mu.
func (bp *BufferPool) ensureRoomLocked() error {
	if len(bp.frames) < bp.cap {
		return nil
	}
	back := bp.lru.Back()
	if back == nil {
		return fmt.Errorf("storage: buffer pool exhausted (%d pages all pinned)", bp.cap)
	}
	victimID := back.Value.(PageID)
	victim := bp.frames[victimID]
	if victim.dirty {
		if err := bp.disk.WritePage(victimID, victim.data); err != nil {
			return fmt.Errorf("storage: evicting page %d: %w", victimID, err)
		}
		bp.Stats.Flushes.Add(1)
	}
	bp.lru.Remove(back)
	delete(bp.frames, victimID)
	bp.Stats.Evictions.Add(1)
	return nil
}

// FlushAll writes every dirty resident page back to disk. Pages remain
// cached. Used at load-boundary checkpoints.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.WritePage(id, f.data); err != nil {
				return err
			}
			f.dirty = false
			bp.Stats.Flushes.Add(1)
		}
	}
	return nil
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
