package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed size of every page, matching the classic 8 KB
// default of PostgreSQL (the paper's backing DBMS).
const PageSize = 8192

// PageID identifies a page within one disk file.
type PageID uint32

// InvalidPageID marks an unset page reference.
const InvalidPageID = PageID(0xFFFFFFFF)

// SlotID indexes a tuple slot within a page.
type SlotID uint16

// slottedHeader layout (little endian):
//
//	offset 0: uint16 slot count
//	offset 2: uint16 free-space start (grows up)
//	offset 4: uint16 free-space end   (grows down; tuples packed at end)
//
// Each slot is 4 bytes appended after the header: uint16 tuple offset,
// uint16 tuple length. A slot with offset 0xFFFF is a dead (deleted)
// slot whose number is never reused, so RIDs stay stable.
const (
	headerSize    = 6
	slotSize      = 4
	deadSlotMark  = 0xFFFF
	maxTupleBytes = PageSize - headerSize - slotSize
)

// ErrPageFull is returned when a tuple does not fit in a page.
var ErrPageFull = errors.New("storage: page full")

// ErrTupleTooLarge is returned for tuples that can never fit any page.
var ErrTupleTooLarge = errors.New("storage: tuple exceeds page capacity")

// ErrNoSuchTuple is returned when a slot is out of range or deleted.
var ErrNoSuchTuple = errors.New("storage: no such tuple")

// SlottedPage wraps a raw page buffer with tuple-level operations. It
// does not own the buffer; the buffer pool does.
type SlottedPage struct {
	data []byte
}

// AsSlotted interprets buf (length PageSize) as a slotted page.
func AsSlotted(buf []byte) *SlottedPage {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: slotted page needs %d bytes, got %d", PageSize, len(buf)))
	}
	return &SlottedPage{data: buf}
}

// InitSlotted formats buf as an empty slotted page.
func InitSlotted(buf []byte) *SlottedPage {
	p := AsSlotted(buf)
	p.setSlotCount(0)
	p.setFreeStart(headerSize)
	p.setFreeEnd(PageSize)
	return p
}

func (p *SlottedPage) slotCount() uint16     { return binary.LittleEndian.Uint16(p.data[0:]) }
func (p *SlottedPage) setSlotCount(n uint16) { binary.LittleEndian.PutUint16(p.data[0:], n) }
func (p *SlottedPage) freeStart() uint16     { return binary.LittleEndian.Uint16(p.data[2:]) }
func (p *SlottedPage) setFreeStart(n uint16) { binary.LittleEndian.PutUint16(p.data[2:], n) }
func (p *SlottedPage) freeEnd() uint16       { return binary.LittleEndian.Uint16(p.data[4:]) }
func (p *SlottedPage) setFreeEnd(n uint16)   { binary.LittleEndian.PutUint16(p.data[4:], n) }

func (p *SlottedPage) slotAt(i SlotID) (off, length uint16) {
	base := headerSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(p.data[base:]), binary.LittleEndian.Uint16(p.data[base+2:])
}

func (p *SlottedPage) setSlotAt(i SlotID, off, length uint16) {
	base := headerSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(p.data[base:], off)
	binary.LittleEndian.PutUint16(p.data[base+2:], length)
}

// NumSlots returns the number of slots ever allocated (live + dead).
func (p *SlottedPage) NumSlots() int { return int(p.slotCount()) }

// FreeSpace returns the bytes available for one more tuple (including
// its slot entry).
func (p *SlottedPage) FreeSpace() int {
	free := int(p.freeEnd()) - int(p.freeStart()) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores tuple and returns its slot. ErrPageFull when it does not
// fit; ErrTupleTooLarge when it could never fit.
func (p *SlottedPage) Insert(tuple []byte) (SlotID, error) {
	if len(tuple) > maxTupleBytes {
		return 0, ErrTupleTooLarge
	}
	if p.FreeSpace() < len(tuple) {
		return 0, ErrPageFull
	}
	newEnd := p.freeEnd() - uint16(len(tuple))
	copy(p.data[newEnd:], tuple)
	slot := SlotID(p.slotCount())
	p.setSlotAt(slot, newEnd, uint16(len(tuple)))
	p.setSlotCount(uint16(slot) + 1)
	p.setFreeStart(p.freeStart() + slotSize)
	p.setFreeEnd(newEnd)
	return slot, nil
}

// Get returns the stored tuple bytes for slot. The returned slice
// aliases the page buffer; callers must copy or decode before unpinning.
func (p *SlottedPage) Get(slot SlotID) ([]byte, error) {
	if int(slot) >= p.NumSlots() {
		return nil, ErrNoSuchTuple
	}
	off, length := p.slotAt(slot)
	if off == deadSlotMark {
		return nil, ErrNoSuchTuple
	}
	return p.data[off : off+length], nil
}

// Delete marks slot dead. Space is not compacted (RID stability beats
// space reuse for this workload); Vacuum reclaims it.
func (p *SlottedPage) Delete(slot SlotID) error {
	if int(slot) >= p.NumSlots() {
		return ErrNoSuchTuple
	}
	off, _ := p.slotAt(slot)
	if off == deadSlotMark {
		return ErrNoSuchTuple
	}
	p.setSlotAt(slot, deadSlotMark, 0)
	return nil
}

// Update replaces the tuple in slot. If the new tuple fits in the old
// tuple's space it is updated in place; otherwise it is re-appended to
// the page's free space. ErrPageFull if neither is possible.
func (p *SlottedPage) Update(slot SlotID, tuple []byte) error {
	if int(slot) >= p.NumSlots() {
		return ErrNoSuchTuple
	}
	off, length := p.slotAt(slot)
	if off == deadSlotMark {
		return ErrNoSuchTuple
	}
	if len(tuple) <= int(length) {
		copy(p.data[off:], tuple)
		p.setSlotAt(slot, off, uint16(len(tuple)))
		return nil
	}
	if int(p.freeEnd())-int(p.freeStart()) < len(tuple) {
		return ErrPageFull
	}
	newEnd := p.freeEnd() - uint16(len(tuple))
	copy(p.data[newEnd:], tuple)
	p.setSlotAt(slot, newEnd, uint16(len(tuple)))
	p.setFreeEnd(newEnd)
	return nil
}

// ForEach calls fn for every live tuple in slot order. Returning false
// stops the scan early.
func (p *SlottedPage) ForEach(fn func(slot SlotID, tuple []byte) bool) {
	n := p.NumSlots()
	for i := 0; i < n; i++ {
		off, length := p.slotAt(SlotID(i))
		if off == deadSlotMark {
			continue
		}
		if !fn(SlotID(i), p.data[off:off+length]) {
			return
		}
	}
}
