// Package storage implements the on-disk substrate of the embedded
// DBMS used by Kyrix: a typed tuple codec, 8 KB slotted pages, pluggable
// disk managers, an LRU buffer pool with pin counts, and heap files
// addressed by record IDs.
//
// The layering mirrors a classical relational storage engine so that the
// fetching-scheme experiments in the paper (tile joins vs. spatial
// window queries) run against realistic storage costs rather than a map
// lookup.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ColType enumerates the column types supported by the engine.
type ColType uint8

const (
	// TInt64 is a 64-bit signed integer column.
	TInt64 ColType = iota + 1
	// TFloat64 is a 64-bit IEEE-754 column.
	TFloat64
	// TString is a variable-length UTF-8 column.
	TString
	// TBool is a boolean column.
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt64:
		return "INT"
	case TFloat64:
		return "DOUBLE"
	case TString:
		return "TEXT"
	case TBool:
		return "BOOL"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is a dynamically typed cell. The zero Value is an INT 0; use the
// constructors to build well-formed values.
type Value struct {
	Kind ColType
	I    int64
	F    float64
	S    string
	B    bool
}

// I64 builds an integer value.
func I64(v int64) Value { return Value{Kind: TInt64, I: v} }

// F64 builds a float value.
func F64(v float64) Value { return Value{Kind: TFloat64, F: v} }

// Str builds a string value.
func Str(v string) Value { return Value{Kind: TString, S: v} }

// Bool builds a boolean value.
func Bool(v bool) Value { return Value{Kind: TBool, B: v} }

// Bytes builds a TEXT value holding arbitrary binary data. TString
// cells are length-prefixed raw bytes on disk and on the wire, so they
// carry opaque payloads (encoded tile responses in the persistent tile
// store) as well as UTF-8 text; the bytes are copied in.
func Bytes(v []byte) Value { return Value{Kind: TString, S: string(v)} }

// AsBytes returns a TEXT value's contents as a byte slice (copied, the
// inverse of Bytes). Non-string kinds return nil.
func (v Value) AsBytes() []byte {
	if v.Kind != TString {
		return nil
	}
	return []byte(v.S)
}

// AsFloat coerces numeric values to float64 (integers widen losslessly
// for the magnitudes used here). Non-numeric kinds return 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case TFloat64:
		return v.F
	case TInt64:
		return float64(v.I)
	}
	return 0
}

// AsInt coerces numeric values to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case TInt64:
		return v.I
	case TFloat64:
		return int64(v.F)
	}
	return 0
}

// Equal reports deep equality with numeric cross-kind comparison
// (1 == 1.0 is true, matching SQL semantics).
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		switch v.Kind {
		case TInt64:
			return v.I == o.I
		case TFloat64:
			return v.F == o.F
		case TString:
			return v.S == o.S
		case TBool:
			return v.B == o.B
		}
	}
	if v.isNumeric() && o.isNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare orders two values: -1, 0, +1. Cross-kind numeric comparisons
// use float semantics; comparing incomparable kinds orders by kind so
// sorting stays total.
func (v Value) Compare(o Value) int {
	if v.isNumeric() && o.isNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case TString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	case TBool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
		return 0
	}
	return 0
}

func (v Value) isNumeric() bool { return v.Kind == TInt64 || v.Kind == TFloat64 }

func (v Value) String() string {
	switch v.Kind {
	case TInt64:
		return fmt.Sprintf("%d", v.I)
	case TFloat64:
		return fmt.Sprintf("%g", v.F)
	case TString:
		return v.S
	case TBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// Row is one tuple's worth of values, ordered by schema.
type Row []Value

// EncodeRow serializes row per schema into buf (appending) and returns
// the extended slice. The encoding is schema-directed: fixed 8 bytes for
// INT/DOUBLE, 1 byte for BOOL, uvarint length + bytes for TEXT.
func EncodeRow(buf []byte, schema Schema, row Row) ([]byte, error) {
	if len(row) != len(schema) {
		return nil, fmt.Errorf("storage: row arity %d != schema arity %d", len(row), len(schema))
	}
	var tmp [binary.MaxVarintLen64]byte
	for i, col := range schema {
		v := row[i]
		switch col.Type {
		case TInt64:
			binary.LittleEndian.PutUint64(tmp[:8], uint64(v.AsInt()))
			buf = append(buf, tmp[:8]...)
		case TFloat64:
			binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(v.AsFloat()))
			buf = append(buf, tmp[:8]...)
		case TBool:
			b := byte(0)
			if v.B {
				b = 1
			}
			buf = append(buf, b)
		case TString:
			n := binary.PutUvarint(tmp[:], uint64(len(v.S)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, v.S...)
		default:
			return nil, fmt.Errorf("storage: unknown column type %v", col.Type)
		}
	}
	return buf, nil
}

// DecodeRow parses a row previously produced by EncodeRow. The returned
// row does not alias buf for strings (they are copied), so pages can be
// evicted safely afterwards.
func DecodeRow(buf []byte, schema Schema) (Row, error) {
	row := make(Row, len(schema))
	if err := DecodeRowInto(buf, schema, row); err != nil {
		return nil, err
	}
	return row, nil
}

// DecodeRowInto is DecodeRow writing into a caller-provided row slice to
// avoid allocation in scan loops. len(dst) must equal len(schema).
func DecodeRowInto(buf []byte, schema Schema, dst Row) error {
	_, err := DecodeRowNext(buf, schema, dst)
	return err
}

// DecodeRowNext decodes one row from the front of buf and returns the
// number of bytes consumed, allowing sequential decoding of
// concatenated rows (the binary wire codec).
func DecodeRowNext(buf []byte, schema Schema, dst Row) (int, error) {
	if len(dst) != len(schema) {
		return 0, fmt.Errorf("storage: dst arity %d != schema arity %d", len(dst), len(schema))
	}
	off := 0
	for i, col := range schema {
		switch col.Type {
		case TInt64:
			if off+8 > len(buf) {
				return off, fmt.Errorf("storage: truncated INT at col %d", i)
			}
			dst[i] = I64(int64(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case TFloat64:
			if off+8 > len(buf) {
				return off, fmt.Errorf("storage: truncated DOUBLE at col %d", i)
			}
			dst[i] = F64(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case TBool:
			if off+1 > len(buf) {
				return off, fmt.Errorf("storage: truncated BOOL at col %d", i)
			}
			dst[i] = Bool(buf[off] != 0)
			off++
		case TString:
			n, sz := binary.Uvarint(buf[off:])
			if sz <= 0 || off+sz+int(n) > len(buf) {
				return off, fmt.Errorf("storage: truncated TEXT at col %d", i)
			}
			off += sz
			dst[i] = Str(string(buf[off : off+int(n)]))
			off += int(n)
		default:
			return off, fmt.Errorf("storage: unknown column type %v", col.Type)
		}
	}
	return off, nil
}
