package storage

import (
	"path/filepath"
	"testing"
)

func memHeap(t *testing.T, capacity int) *HeapFile {
	t.Helper()
	bp := NewBufferPool(NewMemDisk(), capacity)
	h, err := NewHeapFile(bp, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDiskManagers(t *testing.T) {
	run := func(t *testing.T, d DiskManager) {
		id, err := d.AllocatePage()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, PageSize)
		buf[0], buf[PageSize-1] = 0xDE, 0xAD
		if err := d.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, PageSize)
		if err := d.ReadPage(id, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != 0xDE || got[PageSize-1] != 0xAD {
			t.Fatal("page contents lost")
		}
		if d.NumPages() != 1 {
			t.Fatalf("NumPages = %d", d.NumPages())
		}
		if err := d.ReadPage(99, got); err == nil {
			t.Fatal("read of unallocated page must fail")
		}
		if err := d.WritePage(99, got); err == nil {
			t.Fatal("write of unallocated page must fail")
		}
	}
	t.Run("mem", func(t *testing.T) { run(t, NewMemDisk()) })
	t.Run("file", func(t *testing.T) {
		d, err := OpenFileDisk(filepath.Join(t.TempDir(), "pages.db"))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		run(t, d)
	})
}

func TestFileDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := d.AllocatePage()
	buf := make([]byte, PageSize)
	buf[42] = 7
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("NumPages after reopen = %d", d2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := d2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[42] != 7 {
		t.Fatal("persisted byte lost")
	}
}

func TestBufferPoolEviction(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPool(disk, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, data, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i + 1)
		if err := bp.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if bp.Resident() != 2 {
		t.Fatalf("resident = %d", bp.Resident())
	}
	if bp.Stats.Evictions.Load() != 1 {
		t.Fatalf("evictions = %d", bp.Stats.Evictions.Load())
	}
	// The evicted dirty page must have been flushed; re-pin and verify.
	data, err := bp.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 {
		t.Fatalf("evicted page lost write: %d", data[0])
	}
	_ = bp.Unpin(ids[0], false)
}

func TestBufferPoolPinBlocksEviction(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 1)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	// Pool full with a pinned page: another allocation must fail.
	if _, _, err := bp.NewPage(); err == nil {
		t.Fatal("expected exhaustion error")
	}
	if err := bp.Unpin(id, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bp.NewPage(); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 2)
	if err := bp.Unpin(5, false); err == nil {
		t.Fatal("unpin of absent page must fail")
	}
	id, _, _ := bp.NewPage()
	_ = bp.Unpin(id, false)
	if err := bp.Unpin(id, false); err == nil {
		t.Fatal("double unpin must fail")
	}
}

func TestBufferPoolHitStats(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 4)
	id, _, _ := bp.NewPage()
	_ = bp.Unpin(id, true)
	if _, err := bp.Pin(id); err != nil {
		t.Fatal(err)
	}
	_ = bp.Unpin(id, false)
	if bp.Stats.Hits.Load() != 1 {
		t.Fatalf("hits = %d", bp.Stats.Hits.Load())
	}
}

func TestHeapInsertGetScan(t *testing.T) {
	h := memHeap(t, 64)
	const n = 1000
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert(sampleRow(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if h.Count() != n {
		t.Fatalf("Count = %d", h.Count())
	}
	for i, rid := range rids {
		row, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if row[0].AsInt() != int64(i) {
			t.Fatalf("rid %v: id %d want %d", rid, row[0].AsInt(), i)
		}
	}
	// Scan sees each tuple once in insert order.
	next := int64(0)
	err := h.Scan(func(rid RID, row Row) bool {
		if row[0].AsInt() != next {
			t.Fatalf("scan order: got %d want %d", row[0].AsInt(), next)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("scan visited %d", next)
	}
}

func TestHeapSpillsPages(t *testing.T) {
	h := memHeap(t, 64)
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert(sampleRow(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.bp.Disk().NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.bp.Disk().NumPages())
	}
}

func TestHeapDelete(t *testing.T) {
	h := memHeap(t, 8)
	rid, _ := h.Insert(sampleRow(1))
	rid2, _ := h.Insert(sampleRow(2))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Fatal("get after delete must fail")
	}
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	seen := 0
	_ = h.Scan(func(r RID, row Row) bool {
		seen++
		if r != rid2 {
			t.Fatalf("scan saw %v", r)
		}
		return true
	})
	if seen != 1 {
		t.Fatalf("scan saw %d", seen)
	}
}

func TestHeapUpdate(t *testing.T) {
	h := memHeap(t, 8)
	rid, _ := h.Insert(sampleRow(1))
	updated := sampleRow(1)
	updated[3] = Str("changed")
	if err := h.Update(rid, updated); err != nil {
		t.Fatal(err)
	}
	row, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[3].S != "changed" {
		t.Fatalf("update lost: %v", row[3])
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h := memHeap(t, 8)
	for i := 0; i < 100; i++ {
		_, _ = h.Insert(sampleRow(int64(i)))
	}
	count := 0
	_ = h.Scan(func(RID, Row) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestHeapWithTinyBufferPool(t *testing.T) {
	// Pool of 2 frames forces constant eviction during insert + scan.
	h := memHeap(t, 2)
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := h.Insert(sampleRow(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sum := int64(0)
	if err := h.Scan(func(_ RID, row Row) bool { sum += row[0].AsInt(); return true }); err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d want %d", sum, want)
	}
	if h.bp.Stats.Evictions.Load() == 0 {
		t.Fatal("expected evictions with tiny pool")
	}
}

func TestHeapFileBacked(t *testing.T) {
	d, err := OpenFileDisk(filepath.Join(t.TempDir(), "heap.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	bp := NewBufferPool(d, 4)
	h, err := NewHeapFile(bp, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 500; i++ {
		rid, err := h.Insert(sampleRow(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		row, err := h.Get(rid)
		if err != nil || row[0].AsInt() != int64(i) {
			t.Fatalf("rid %v: %v %v", rid, row, err)
		}
	}
}

func TestRIDPack(t *testing.T) {
	for _, r := range []RID{{0, 0}, {1, 2}, {0xFFFFFF, 0xFFFF}, {12345, 678}} {
		if got := UnpackRID(r.Pack()); got != r {
			t.Fatalf("roundtrip %v -> %v", r, got)
		}
	}
	if (RID{1, 2}).String() != "(1,2)" {
		t.Fatal("RID String")
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	bp := NewBufferPool(NewMemDisk(), 1024)
	h, _ := NewHeapFile(bp, testSchema)
	row := sampleRow(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	bp := NewBufferPool(NewMemDisk(), 4096)
	h, _ := NewHeapFile(bp, testSchema)
	for i := 0; i < 100000; i++ {
		_, _ = h.Insert(sampleRow(int64(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_ = h.Scan(func(RID, Row) bool { n++; return true })
	}
}
