package storage

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// faultDisk wraps a MemDisk and fails operations after a countdown —
// the failure-injection harness for buffer pool and heap paths.
type faultDisk struct {
	inner      *MemDisk
	mu         sync.Mutex
	failReads  int // fail reads once countdown reaches 0
	failWrites int
	armed      bool
}

var errInjected = errors.New("injected disk fault")

func (d *faultDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	if d.armed {
		d.failReads--
		if d.failReads < 0 {
			d.mu.Unlock()
			return errInjected
		}
	}
	d.mu.Unlock()
	return d.inner.ReadPage(id, buf)
}

func (d *faultDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	if d.armed {
		d.failWrites--
		if d.failWrites < 0 {
			d.mu.Unlock()
			return errInjected
		}
	}
	d.mu.Unlock()
	return d.inner.WritePage(id, buf)
}

func (d *faultDisk) AllocatePage() (PageID, error) { return d.inner.AllocatePage() }
func (d *faultDisk) NumPages() int                 { return d.inner.NumPages() }
func (d *faultDisk) Close() error                  { return d.inner.Close() }

func (d *faultDisk) arm(reads, writes int) {
	d.mu.Lock()
	d.failReads, d.failWrites, d.armed = reads, writes, true
	d.mu.Unlock()
}

func TestHeapSurfacesReadFaults(t *testing.T) {
	fd := &faultDisk{inner: NewMemDisk()}
	bp := NewBufferPool(fd, 2) // tiny pool: reads go to disk
	h, err := NewHeapFile(bp, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 2000; i++ {
		rid, err := h.Insert(sampleRow(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	fd.arm(0, 1<<30) // next read fails
	// Get of an evicted page must surface the injected error, not
	// corrupt data.
	_, err = h.Get(rids[0])
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("expected injected fault, got %v", err)
	}
	// After the fault clears, the same read succeeds.
	fd.mu.Lock()
	fd.armed = false
	fd.mu.Unlock()
	row, err := h.Get(rids[0])
	if err != nil || row[0].AsInt() != 0 {
		t.Fatalf("recovery read: %v %v", row, err)
	}
}

func TestEvictionSurfacesWriteFaults(t *testing.T) {
	fd := &faultDisk{inner: NewMemDisk()}
	bp := NewBufferPool(fd, 1)
	id1, data, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	InitSlotted(data)
	if err := bp.Unpin(id1, true); err != nil {
		t.Fatal(err)
	}
	fd.arm(1<<30, 0) // next write fails
	// Allocating a second page must evict the dirty first page; the
	// flush failure must surface.
	_, _, err = bp.NewPage()
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("expected injected flush fault, got %v", err)
	}
}

func TestScanSurfacesFaults(t *testing.T) {
	fd := &faultDisk{inner: NewMemDisk()}
	bp := NewBufferPool(fd, 2)
	h, _ := NewHeapFile(bp, testSchema)
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert(sampleRow(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	fd.arm(1, 1<<30) // second read fails mid-scan
	err := h.Scan(func(RID, Row) bool { return true })
	if err == nil {
		t.Fatal("mid-scan fault must surface")
	}
}

func TestFlushAllSurfacesFaults(t *testing.T) {
	fd := &faultDisk{inner: NewMemDisk()}
	bp := NewBufferPool(fd, 8)
	id, _, _ := bp.NewPage()
	_ = bp.Unpin(id, true)
	fd.arm(1<<30, 0)
	if err := bp.FlushAll(); err == nil {
		t.Fatal("FlushAll must surface write fault")
	}
}
