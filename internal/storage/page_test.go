package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func newPage() *SlottedPage {
	return InitSlotted(make([]byte, PageSize))
}

func TestSlottedInsertGet(t *testing.T) {
	p := newPage()
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("slots must differ")
	}
	got, err := p.Get(s1)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get(s1) = %q, %v", got, err)
	}
	got, err = p.Get(s2)
	if err != nil || string(got) != "world!" {
		t.Fatalf("Get(s2) = %q, %v", got, err)
	}
}

func TestSlottedFull(t *testing.T) {
	p := newPage()
	tuple := make([]byte, 1000)
	n := 0
	for {
		_, err := p.Insert(tuple)
		if err == ErrPageFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	// 8192 - 6 header = 8186; each tuple costs 1004 -> 8 tuples.
	if n != 8 {
		t.Fatalf("fit %d tuples, want 8", n)
	}
	// Page stays usable after the failed insert.
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
}

func TestSlottedTooLarge(t *testing.T) {
	p := newPage()
	if _, err := p.Insert(make([]byte, PageSize)); err != ErrTupleTooLarge {
		t.Fatalf("err = %v, want ErrTupleTooLarge", err)
	}
}

func TestSlottedDelete(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("x"))
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s); err != ErrNoSuchTuple {
		t.Fatalf("Get after delete = %v", err)
	}
	if err := p.Delete(s); err != ErrNoSuchTuple {
		t.Fatalf("double delete = %v", err)
	}
	if err := p.Delete(99); err != ErrNoSuchTuple {
		t.Fatalf("delete oob = %v", err)
	}
	// Slot numbers are not reused.
	s2, _ := p.Insert([]byte("y"))
	if s2 == s {
		t.Fatal("deleted slot was reused")
	}
}

func TestSlottedUpdate(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("abcdef"))
	// In-place shrink.
	if err := p.Update(s, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); string(got) != "ab" {
		t.Fatalf("after shrink: %q", got)
	}
	// Grow (re-append).
	big := bytes.Repeat([]byte("z"), 100)
	if err := p.Update(s, big); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, big) {
		t.Fatalf("after grow: %q", got)
	}
	if err := p.Update(99, []byte("q")); err != ErrNoSuchTuple {
		t.Fatalf("update oob = %v", err)
	}
	// Grow beyond free space fails.
	for {
		if _, err := p.Insert(make([]byte, 512)); err != nil {
			break
		}
	}
	if err := p.Update(s, make([]byte, 2000)); err != ErrPageFull {
		t.Fatalf("oversize grow = %v", err)
	}
}

func TestSlottedForEach(t *testing.T) {
	p := newPage()
	for i := 0; i < 5; i++ {
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_ = p.Delete(2)
	var seen []byte
	p.ForEach(func(slot SlotID, tuple []byte) bool {
		seen = append(seen, tuple[0])
		return true
	})
	if fmt.Sprint(seen) != "[0 1 3 4]" {
		t.Fatalf("ForEach saw %v", seen)
	}
	// Early stop.
	count := 0
	p.ForEach(func(SlotID, []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestSlottedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := newPage()
	type rec struct {
		slot SlotID
		data []byte
		live bool
	}
	var recs []rec
	for i := 0; i < 500; i++ {
		op := rng.Intn(3)
		switch {
		case op == 0 || len(recs) == 0:
			data := make([]byte, 1+rng.Intn(64))
			rng.Read(data)
			slot, err := p.Insert(data)
			if err == ErrPageFull {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec{slot, append([]byte(nil), data...), true})
		case op == 1:
			r := &recs[rng.Intn(len(recs))]
			if r.live {
				if err := p.Delete(r.slot); err != nil {
					t.Fatal(err)
				}
				r.live = false
			}
		default:
			r := recs[rng.Intn(len(recs))]
			got, err := p.Get(r.slot)
			if r.live {
				if err != nil || !bytes.Equal(got, r.data) {
					t.Fatalf("slot %d: %q vs %q (%v)", r.slot, got, r.data, err)
				}
			} else if err != ErrNoSuchTuple {
				t.Fatalf("dead slot %d returned %v", r.slot, err)
			}
		}
	}
}

func TestAsSlottedPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AsSlotted(make([]byte, 10))
}
