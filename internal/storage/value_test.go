package storage

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

var testSchema = Schema{
	{Name: "id", Type: TInt64},
	{Name: "x", Type: TFloat64},
	{Name: "y", Type: TFloat64},
	{Name: "name", Type: TString},
	{Name: "flag", Type: TBool},
}

func sampleRow(id int64) Row {
	return Row{I64(id), F64(float64(id) * 1.5), F64(-float64(id)), Str("row"), Bool(id%2 == 0)}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	row := Row{I64(-42), F64(3.14159), F64(math.Inf(1)), Str("héllo\x00world"), Bool(true)}
	buf, err := EncodeRow(nil, testSchema, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(buf, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !got[i].Equal(row[i]) {
			t.Fatalf("col %d: got %v want %v", i, got[i], row[i])
		}
	}
}

func TestEncodeArityMismatch(t *testing.T) {
	if _, err := EncodeRow(nil, testSchema, Row{I64(1)}); err == nil {
		t.Fatal("expected arity error")
	}
	if err := DecodeRowInto(nil, testSchema, make(Row, 1)); err == nil {
		t.Fatal("expected dst arity error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	row := sampleRow(7)
	buf, err := EncodeRow(nil, testSchema, row)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeRow(buf[:cut], testSchema); err == nil {
			t.Fatalf("expected error at cut %d", cut)
		}
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf, err := EncodeRow(prefix, Schema{{Name: "v", Type: TInt64}}, Row{I64(9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 10 || buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatalf("append semantics broken: %v", buf)
	}
}

func TestValueCoercions(t *testing.T) {
	if I64(7).AsFloat() != 7.0 {
		t.Fatal("int AsFloat")
	}
	if F64(7.9).AsInt() != 7 {
		t.Fatal("float AsInt truncation")
	}
	if Str("x").AsFloat() != 0 || Bool(true).AsInt() != 0 {
		t.Fatal("non-numeric coercions should be zero")
	}
}

func TestValueEqual(t *testing.T) {
	if !I64(1).Equal(F64(1.0)) {
		t.Fatal("cross-kind numeric equality")
	}
	if I64(1).Equal(F64(1.5)) {
		t.Fatal("unequal numerics")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Fatal("string equality")
	}
	if Str("1").Equal(I64(1)) {
		t.Fatal("string/int must not be equal")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Fatal("bool equality")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I64(1), I64(2), -1},
		{I64(2), I64(2), 0},
		{F64(2.5), I64(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: Compare(%v,%v) = %d want %d", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("case %d: antisymmetry broken", i)
		}
	}
}

func TestValueString(t *testing.T) {
	if I64(3).String() != "3" || F64(1.5).String() != "1.5" ||
		Str("hi").String() != "hi" || Bool(true).String() != "true" {
		t.Fatal("String formatting")
	}
}

func TestColTypeString(t *testing.T) {
	for ct, want := range map[ColType]string{TInt64: "INT", TFloat64: "DOUBLE", TString: "TEXT", TBool: "BOOL"} {
		if ct.String() != want {
			t.Fatalf("%d.String() = %s", ct, ct.String())
		}
	}
}

func TestSchemaColIndex(t *testing.T) {
	if testSchema.ColIndex("y") != 2 {
		t.Fatal("ColIndex y")
	}
	if testSchema.ColIndex("missing") != -1 {
		t.Fatal("ColIndex missing")
	}
}

// Property: any (int, float, string, bool) tuple round-trips.
func TestQuickRowRoundtrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN; excluded from equality check
		}
		row := Row{I64(i), F64(fl), F64(fl / 3), Str(s), Bool(b)}
		buf, err := EncodeRow(nil, testSchema, row)
		if err != nil {
			return false
		}
		got, err := DecodeRow(buf, testSchema)
		if err != nil {
			return false
		}
		for k := range row {
			if !got[k].Equal(row[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesValueRoundtrip(t *testing.T) {
	raw := []byte{0x00, 0xff, 0x7f, 'k', 'y', 0x01}
	v := Bytes(raw)
	if v.Kind != TString {
		t.Fatalf("Bytes kind = %v", v.Kind)
	}
	got := v.AsBytes()
	if !bytes.Equal(got, raw) {
		t.Fatalf("AsBytes = %x, want %x", got, raw)
	}
	// The value owns its copy: mutating the source must not leak in,
	// and mutating the output must not corrupt the value.
	raw[0] = 0xaa
	got[1] = 0xbb
	if !bytes.Equal(v.AsBytes(), []byte{0x00, 0xff, 0x7f, 'k', 'y', 0x01}) {
		t.Fatalf("value aliased caller memory: %x", v.AsBytes())
	}
	// Binary payloads survive the row codec unchanged.
	schema := Schema{{Name: "payload", Type: TString}}
	buf, err := EncodeRow(nil, schema, Row{Bytes([]byte{0, 1, 2, 0xfe})})
	if err != nil {
		t.Fatal(err)
	}
	row, err := DecodeRow(buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(row[0].AsBytes(), []byte{0, 1, 2, 0xfe}) {
		t.Fatalf("roundtrip = %x", row[0].AsBytes())
	}
	if I64(7).AsBytes() != nil {
		t.Fatal("AsBytes on INT returned non-nil")
	}
}
