// Package workload generates the synthetic datasets and viewport
// movement traces of the paper's §3.3 evaluation, plus the domain
// datasets used by the examples (US crime map of §2.2, MGH EEG of §4).
//
// Everything is seeded and deterministic so experiment tables reproduce
// run-to-run.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"kyrix/internal/geom"
)

// Point is one dot of a scatter dataset: the paper's record table
// carries raw attributes (here x, y and a measurement value) plus an
// auto-increment tuple id.
type Point struct {
	ID   int64
	X, Y float64
	Val  float64
}

// Dataset is a point dataset on a canvas.
type Dataset struct {
	Name    string
	CanvasW float64
	CanvasH float64
	// DenseRect is the hot region of a skewed dataset (invalid Rect
	// for uniform data).
	DenseRect geom.Rect
	Points    []Point
}

// Canvas returns the dataset's canvas rectangle.
func (d *Dataset) Canvas() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: d.CanvasW, MaxY: d.CanvasH}
}

// Uniform generates n points uniformly distributed on a w×h canvas
// (the paper's Uniform: "100M random dots evenly distributed on a
// 1M×0.1M canvas", scaled per config).
func Uniform(n int, w, h float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:      "uniform",
		CanvasW:   w,
		CanvasH:   h,
		DenseRect: geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0},
		Points:    make([]Point, n),
	}
	for i := range d.Points {
		d.Points[i] = Point{
			ID:  int64(i),
			X:   rng.Float64() * w,
			Y:   rng.Float64() * h,
			Val: rng.NormFloat64(),
		}
	}
	return d
}

// Skewed generates n points where denseFrac of them lie in a dense
// rectangle covering denseW×denseH of the canvas at the origin corner
// (the paper's Skewed: "80M dots lie in 20% of the canvas area (a
// 0.4M×0.05M rectangle) and 20M dots lie in the rest").
func Skewed(n int, w, h float64, seed int64) *Dataset {
	const denseFrac = 0.8
	dense := geom.Rect{MinX: 0, MinY: 0, MaxX: 0.4 * w, MaxY: 0.5 * h}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:      "skewed",
		CanvasW:   w,
		CanvasH:   h,
		DenseRect: dense,
		Points:    make([]Point, n),
	}
	nDense := int(float64(n) * denseFrac)
	for i := 0; i < nDense; i++ {
		d.Points[i] = Point{
			ID:  int64(i),
			X:   dense.MinX + rng.Float64()*dense.W(),
			Y:   dense.MinY + rng.Float64()*dense.H(),
			Val: rng.NormFloat64(),
		}
	}
	// Sparse points: rejection-sample the complement of the dense rect.
	for i := nDense; i < n; i++ {
		for {
			x, y := rng.Float64()*w, rng.Float64()*h
			if !dense.ContainsPoint(geom.Point{X: x, Y: y}) {
				d.Points[i] = Point{ID: int64(i), X: x, Y: y, Val: rng.NormFloat64()}
				break
			}
		}
	}
	return d
}

// Trace is a sequence of viewport positions. Steps[0] is the initial
// viewport (the application load); each subsequent entry is one pan
// step whose response time the experiments measure.
type Trace struct {
	Name  string
	Steps []geom.Rect
}

// NumPans returns the number of measured pan steps.
func (tr *Trace) NumPans() int {
	if len(tr.Steps) == 0 {
		return 0
	}
	return len(tr.Steps) - 1
}

// TraceA is the paper's trace (a): the viewport is always aligned with
// tile boundaries; it moves leftwards six steps of one tile length,
// then vertically up six steps (Fig. 5). start is the tile-aligned
// origin of the first viewport.
func TraceA(start geom.Point, tileSize, vpW, vpH float64) *Trace {
	return lTrace("trace-a", start, tileSize, vpW, vpH)
}

// TraceB is trace (b): the same L-shaped movement but the viewport is
// never aligned with tiles — the start is offset by half a tile.
func TraceB(start geom.Point, tileSize, vpW, vpH float64) *Trace {
	off := start.Add(tileSize/2, tileSize/2)
	tr := lTrace("trace-b", off, tileSize, vpW, vpH)
	return tr
}

func lTrace(name string, start geom.Point, step, vpW, vpH float64) *Trace {
	tr := &Trace{Name: name}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < 6; i++ { // leftwards
		cur = cur.Translate(-step, 0)
		tr.Steps = append(tr.Steps, cur)
	}
	for i := 0; i < 6; i++ { // upwards
		cur = cur.Translate(0, step)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// TraceC is trace (c): the viewport moves diagonally from bottom left
// to top right in six steps (Fig. 5).
func TraceC(start geom.Point, step, vpW, vpH float64) *Trace {
	tr := &Trace{Name: "trace-c"}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < 6; i++ {
		cur = cur.Translate(step, step)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// ConstantVelocityTrace pans in a fixed direction for n steps — the
// best case for momentum prefetching (§4).
func ConstantVelocityTrace(start geom.Point, dx, dy float64, n int, vpW, vpH float64) *Trace {
	tr := &Trace{Name: "constant-velocity"}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < n; i++ {
		cur = cur.Translate(dx, dy)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// RandomWalkTrace pans in a uniformly random direction each step with
// the given step length — the adversarial case for prefetching.
func RandomWalkTrace(start geom.Point, stepLen float64, n int, vpW, vpH float64, seed int64, bounds geom.Rect) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "random-walk"}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < n; i++ {
		ang := rng.Float64() * 2 * math.Pi
		cur = cur.Translate(stepLen*math.Cos(ang), stepLen*math.Sin(ang)).Clamp(bounds)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// RevisitTrace pans back and forth between two viewports n times — the
// best case for caching (ablation A2).
func RevisitTrace(a, b geom.Point, n int, vpW, vpH float64) *Trace {
	tr := &Trace{Name: "revisit"}
	ra := geom.RectXYWH(a.X, a.Y, vpW, vpH)
	rb := geom.RectXYWH(b.X, b.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, ra)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			tr.Steps = append(tr.Steps, rb)
		} else {
			tr.Steps = append(tr.Steps, ra)
		}
	}
	return tr
}

// PaperTraces builds traces a, b, c positioned for the given dataset
// the way Fig. 5 places them: for skewed data, traces a and b run near
// the dense-region boundary and trace c crosses from the dense corner
// into the sparse area; for uniform data they sit mid-canvas.
func PaperTraces(d *Dataset, tileSize, vpW, vpH float64) []*Trace {
	var aStart, cStart geom.Point
	if d.DenseRect.Valid() {
		// Start inside the dense region, far enough from its left edge
		// that six leftward steps stay on-canvas and mostly dense.
		col := math.Floor(d.DenseRect.MaxX/tileSize) - 2
		if col < 7 {
			col = 7
		}
		aStart = geom.Point{X: col * tileSize, Y: tileSize}
		cStart = geom.Point{X: d.DenseRect.MaxX - 3*tileSize, Y: tileSize}
	} else {
		midCol := math.Floor(d.CanvasW / 2 / tileSize)
		aStart = geom.Point{X: midCol * tileSize, Y: tileSize}
		cStart = geom.Point{X: midCol * tileSize, Y: tileSize}
	}
	return []*Trace{
		TraceA(aStart, tileSize, vpW, vpH),
		TraceB(aStart, tileSize, vpW, vpH),
		TraceC(cStart, tileSize, vpW, vpH),
	}
}

// Validate checks that every step of tr lies within canvas (with a
// small tolerance for trace-b's half-tile offset), returning an error
// naming the first violating step.
func (tr *Trace) Validate(canvas geom.Rect) error {
	for i, s := range tr.Steps {
		if !canvas.Contains(s) {
			return fmt.Errorf("workload: %s step %d (%s) leaves canvas %s", tr.Name, i, s, canvas)
		}
	}
	return nil
}
