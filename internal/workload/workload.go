// Package workload generates the synthetic datasets and viewport
// movement traces of the paper's §3.3 evaluation, plus the domain
// datasets used by the examples (US crime map of §2.2, MGH EEG of §4).
//
// Everything is seeded and deterministic so experiment tables reproduce
// run-to-run.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"kyrix/internal/geom"
)

// Point is one dot of a scatter dataset: the paper's record table
// carries raw attributes (here x, y and a measurement value) plus an
// auto-increment tuple id.
type Point struct {
	ID   int64
	X, Y float64
	Val  float64
}

// Dataset is a point dataset on a canvas.
type Dataset struct {
	Name    string
	CanvasW float64
	CanvasH float64
	// DenseRect is the hot region of a skewed dataset (invalid Rect
	// for uniform data).
	DenseRect geom.Rect
	Points    []Point
}

// Canvas returns the dataset's canvas rectangle.
func (d *Dataset) Canvas() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: d.CanvasW, MaxY: d.CanvasH}
}

// Uniform generates n points uniformly distributed on a w×h canvas
// (the paper's Uniform: "100M random dots evenly distributed on a
// 1M×0.1M canvas", scaled per config).
func Uniform(n int, w, h float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:      "uniform",
		CanvasW:   w,
		CanvasH:   h,
		DenseRect: geom.Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0},
		Points:    make([]Point, n),
	}
	for i := range d.Points {
		d.Points[i] = Point{
			ID:  int64(i),
			X:   rng.Float64() * w,
			Y:   rng.Float64() * h,
			Val: rng.NormFloat64(),
		}
	}
	return d
}

// Skewed generates n points where denseFrac of them lie in a dense
// rectangle covering denseW×denseH of the canvas at the origin corner
// (the paper's Skewed: "80M dots lie in 20% of the canvas area (a
// 0.4M×0.05M rectangle) and 20M dots lie in the rest").
func Skewed(n int, w, h float64, seed int64) *Dataset {
	const denseFrac = 0.8
	dense := geom.Rect{MinX: 0, MinY: 0, MaxX: 0.4 * w, MaxY: 0.5 * h}
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Name:      "skewed",
		CanvasW:   w,
		CanvasH:   h,
		DenseRect: dense,
		Points:    make([]Point, n),
	}
	nDense := int(float64(n) * denseFrac)
	for i := 0; i < nDense; i++ {
		d.Points[i] = Point{
			ID:  int64(i),
			X:   dense.MinX + rng.Float64()*dense.W(),
			Y:   dense.MinY + rng.Float64()*dense.H(),
			Val: rng.NormFloat64(),
		}
	}
	// Sparse points: rejection-sample the complement of the dense rect.
	for i := nDense; i < n; i++ {
		for {
			x, y := rng.Float64()*w, rng.Float64()*h
			if !dense.ContainsPoint(geom.Point{X: x, Y: y}) {
				d.Points[i] = Point{ID: int64(i), X: x, Y: y, Val: rng.NormFloat64()}
				break
			}
		}
	}
	return d
}

// Trace is a sequence of viewport positions. Steps[0] is the initial
// viewport (the application load); each subsequent entry is one pan
// step whose response time the experiments measure.
type Trace struct {
	Name  string
	Steps []geom.Rect
}

// NumPans returns the number of measured pan steps.
func (tr *Trace) NumPans() int {
	if len(tr.Steps) == 0 {
		return 0
	}
	return len(tr.Steps) - 1
}

// TraceA is the paper's trace (a): the viewport is always aligned with
// tile boundaries; it moves leftwards six steps of one tile length,
// then vertically up six steps (Fig. 5). start is the tile-aligned
// origin of the first viewport.
func TraceA(start geom.Point, tileSize, vpW, vpH float64) *Trace {
	return lTrace("trace-a", start, tileSize, vpW, vpH)
}

// TraceB is trace (b): the same L-shaped movement but the viewport is
// never aligned with tiles — the start is offset by half a tile.
func TraceB(start geom.Point, tileSize, vpW, vpH float64) *Trace {
	off := start.Add(tileSize/2, tileSize/2)
	tr := lTrace("trace-b", off, tileSize, vpW, vpH)
	return tr
}

func lTrace(name string, start geom.Point, step, vpW, vpH float64) *Trace {
	tr := &Trace{Name: name}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < 6; i++ { // leftwards
		cur = cur.Translate(-step, 0)
		tr.Steps = append(tr.Steps, cur)
	}
	for i := 0; i < 6; i++ { // upwards
		cur = cur.Translate(0, step)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// TraceC is trace (c): the viewport moves diagonally from bottom left
// to top right in six steps (Fig. 5).
func TraceC(start geom.Point, step, vpW, vpH float64) *Trace {
	tr := &Trace{Name: "trace-c"}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < 6; i++ {
		cur = cur.Translate(step, step)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// ConstantVelocityTrace pans in a fixed direction for n steps — the
// best case for momentum prefetching (§4).
func ConstantVelocityTrace(start geom.Point, dx, dy float64, n int, vpW, vpH float64) *Trace {
	tr := &Trace{Name: "constant-velocity"}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < n; i++ {
		cur = cur.Translate(dx, dy)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// RandomWalkTrace pans in a uniformly random direction each step with
// the given step length — the adversarial case for prefetching.
func RandomWalkTrace(start geom.Point, stepLen float64, n int, vpW, vpH float64, seed int64, bounds geom.Rect) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "random-walk"}
	cur := geom.RectXYWH(start.X, start.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, cur)
	for i := 0; i < n; i++ {
		ang := rng.Float64() * 2 * math.Pi
		cur = cur.Translate(stepLen*math.Cos(ang), stepLen*math.Sin(ang)).Clamp(bounds)
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// RevisitTrace pans back and forth between two viewports n times — the
// best case for caching (ablation A2).
func RevisitTrace(a, b geom.Point, n int, vpW, vpH float64) *Trace {
	tr := &Trace{Name: "revisit"}
	ra := geom.RectXYWH(a.X, a.Y, vpW, vpH)
	rb := geom.RectXYWH(b.X, b.Y, vpW, vpH)
	tr.Steps = append(tr.Steps, ra)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			tr.Steps = append(tr.Steps, rb)
		} else {
			tr.Steps = append(tr.Steps, ra)
		}
	}
	return tr
}

// ZipfOptions configures ZipfHotSetTrace.
type ZipfOptions struct {
	// Canvas bounds every viewport.
	Canvas geom.Rect
	// TileSize aligns the hot-spot anchors (and the one-tile dwell
	// pans) with the tile grid, so revisits produce identical tile
	// keys.
	TileSize float64
	// HotSpots is the number of anchor viewports; Skew is the zipf
	// exponent over their ranks (must be > 1; higher = more skewed).
	HotSpots int
	Skew     float64
	// Steps is the number of measured pan steps (Steps+1 viewports).
	Steps int
	// VpW, VpH size the viewport.
	VpW, VpH float64
	// LayoutSeed fixes the anchor placement — clients sharing a
	// LayoutSeed share one hot set (the multi-tenant case) while Seed
	// varies their visit order.
	LayoutSeed int64
	Seed       int64
}

// ZipfHotSetTrace is the skewed-revisit adversary for cache admission:
// the viewport jumps among HotSpots tile-aligned anchors whose
// popularity follows a zipf law (rank 0 most popular), and dwells
// after each jump with a one-tile pan around the anchor — the
// pan/zoom-around-a-hot-region pattern of a multi-tenant deployment.
// A byte-budgeted cache that protects the high-rank anchors' tiles
// keeps its hit ratio; one that admits everything gets its hot set
// flushed by whatever else shares the cache.
func ZipfHotSetTrace(o ZipfOptions) *Trace {
	// Fail loudly on misuse: rand.NewZipf silently returns nil for
	// skew <= 1, which would surface as an opaque nil dereference mid
	// trace generation.
	if o.HotSpots < 1 {
		panic(fmt.Sprintf("workload: ZipfHotSetTrace needs HotSpots >= 1, got %d", o.HotSpots))
	}
	if o.Skew <= 1 {
		panic(fmt.Sprintf("workload: ZipfHotSetTrace needs Skew > 1 (rand.NewZipf requirement), got %g", o.Skew))
	}
	layout := rand.New(rand.NewSource(o.LayoutSeed))
	cols := int((o.Canvas.W() - o.VpW) / o.TileSize)
	rows := int((o.Canvas.H() - o.VpH) / o.TileSize)
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	anchors := make([]geom.Point, o.HotSpots)
	for i := range anchors {
		anchors[i] = geom.Point{
			X: o.Canvas.MinX + float64(layout.Intn(cols))*o.TileSize,
			Y: o.Canvas.MinY + float64(layout.Intn(rows))*o.TileSize,
		}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	z := rand.NewZipf(rng, o.Skew, 1, uint64(o.HotSpots-1))
	tr := &Trace{Name: "zipf-hot-set"}
	cur := geom.RectXYWH(anchors[0].X, anchors[0].Y, o.VpW, o.VpH)
	tr.Steps = append(tr.Steps, cur)
	for len(tr.Steps) < o.Steps+1 {
		if len(tr.Steps)%3 == 0 {
			// Dwell: pan one tile in a random axis direction, staying
			// on the tile grid near the current anchor.
			dx, dy := 0.0, 0.0
			if rng.Intn(2) == 0 {
				dx = o.TileSize * float64(1-2*rng.Intn(2))
			} else {
				dy = o.TileSize * float64(1-2*rng.Intn(2))
			}
			cur = cur.Translate(dx, dy).Clamp(o.Canvas)
		} else {
			a := anchors[z.Uint64()]
			cur = geom.RectXYWH(a.X, a.Y, o.VpW, o.VpH).Clamp(o.Canvas)
		}
		tr.Steps = append(tr.Steps, cur)
	}
	return tr
}

// ZipfZoomOptions configures ZipfZoomTrace.
type ZipfZoomOptions struct {
	// Canvas bounds every viewport.
	Canvas geom.Rect
	// HotSpots is the number of zoom centers; Skew is the zipf exponent
	// over their ranks (must be > 1; higher = more skewed).
	HotSpots int
	Skew     float64
	// Steps is the number of measured pan/zoom steps (Steps+1
	// viewports).
	Steps int
	// VpW, VpH size the fully zoomed-in viewport; zoom level z shows a
	// viewport 2^z times that size.
	VpW, VpH float64
	// ZoomLevels is the deepest zoom-out level (0 = only the base
	// viewport size).
	ZoomLevels int
	// LayoutSeed fixes the center placement (clients sharing it share
	// one hot set); Seed varies the visit order.
	LayoutSeed int64
	Seed       int64
}

// ZipfZoomTrace is the zoom-heavy adversary for level-of-detail
// serving: the viewport zooms in and out around zipf-popular centers —
// each step either moves one zoom level (a random walk over levels, the
// common case) or jumps to a newly drawn center at a fresh level. A
// viewport at level z covers 2^z times the base extent per axis, so
// without LOD the rows behind a step grow 4^z; with an aggregation
// pyramid every level's viewport should scan a bounded row count.
func ZipfZoomTrace(o ZipfZoomOptions) *Trace {
	if o.HotSpots < 1 {
		panic(fmt.Sprintf("workload: ZipfZoomTrace needs HotSpots >= 1, got %d", o.HotSpots))
	}
	if o.Skew <= 1 {
		panic(fmt.Sprintf("workload: ZipfZoomTrace needs Skew > 1 (rand.NewZipf requirement), got %g", o.Skew))
	}
	if o.ZoomLevels < 0 {
		panic(fmt.Sprintf("workload: ZipfZoomTrace needs ZoomLevels >= 0, got %d", o.ZoomLevels))
	}
	layout := rand.New(rand.NewSource(o.LayoutSeed))
	centers := make([]geom.Point, o.HotSpots)
	for i := range centers {
		centers[i] = geom.Point{
			X: o.Canvas.MinX + layout.Float64()*o.Canvas.W(),
			Y: o.Canvas.MinY + layout.Float64()*o.Canvas.H(),
		}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	z := rand.NewZipf(rng, o.Skew, 1, uint64(o.HotSpots-1))

	center := centers[0]
	level := 0
	at := func() geom.Rect {
		scale := math.Pow(2, float64(level))
		w, h := o.VpW*scale, o.VpH*scale
		if w > o.Canvas.W() {
			w = o.Canvas.W()
		}
		if h > o.Canvas.H() {
			h = o.Canvas.H()
		}
		return geom.RectXYWH(center.X-w/2, center.Y-h/2, w, h).Clamp(o.Canvas)
	}
	tr := &Trace{Name: "zipf-zoom"}
	tr.Steps = append(tr.Steps, at())
	for len(tr.Steps) < o.Steps+1 {
		if len(tr.Steps)%5 == 4 {
			// Jump: a new zipf-popular center at a fresh random level —
			// the "fly to another region" gesture.
			center = centers[z.Uint64()]
			level = rng.Intn(o.ZoomLevels + 1)
		} else {
			// Walk one zoom level in or out around the current center.
			if rng.Intn(2) == 0 {
				level++
			} else {
				level--
			}
			level = clampLevel(level, 0, o.ZoomLevels)
		}
		tr.Steps = append(tr.Steps, at())
	}
	return tr
}

func clampLevel(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SequentialScanTrace sweeps the whole canvas once in row-major
// viewport-sized strides — the one-shot scan adversary: every tile is
// requested exactly once and never again, so an admitting cache should
// let almost none of it displace resident hot entries.
func SequentialScanTrace(canvas geom.Rect, vpW, vpH float64) *Trace {
	tr := &Trace{Name: "sequential-scan"}
	for y := canvas.MinY; y < canvas.MaxY; y += vpH {
		for x := canvas.MinX; x < canvas.MaxX; x += vpW {
			tr.Steps = append(tr.Steps,
				geom.RectXYWH(x, y, vpW, vpH).Clamp(canvas))
		}
	}
	return tr
}

// InterleaveTrace mixes two traces: period steps of primary, then
// burstLen steps of burst, repeating (and cycling either trace when it
// runs out) until the result has steps+1 viewports — the mixed
// zipf+scan workload where a shared cache either protects the hot set
// or collapses.
func InterleaveTrace(name string, primary, burst *Trace, period, burstLen, steps int) *Trace {
	tr := &Trace{Name: name}
	pi, bi := 0, 0
	next := func(src *Trace, i *int) geom.Rect {
		r := src.Steps[*i%len(src.Steps)]
		*i++
		return r
	}
	for len(tr.Steps) < steps+1 {
		for k := 0; k < period && len(tr.Steps) < steps+1; k++ {
			tr.Steps = append(tr.Steps, next(primary, &pi))
		}
		for k := 0; k < burstLen && len(tr.Steps) < steps+1; k++ {
			tr.Steps = append(tr.Steps, next(burst, &bi))
		}
	}
	return tr
}

// PaperTraces builds traces a, b, c positioned for the given dataset
// the way Fig. 5 places them: for skewed data, traces a and b run near
// the dense-region boundary and trace c crosses from the dense corner
// into the sparse area; for uniform data they sit mid-canvas.
func PaperTraces(d *Dataset, tileSize, vpW, vpH float64) []*Trace {
	var aStart, cStart geom.Point
	if d.DenseRect.Valid() {
		// Start inside the dense region, far enough from its left edge
		// that six leftward steps stay on-canvas and mostly dense.
		col := math.Floor(d.DenseRect.MaxX/tileSize) - 2
		if col < 7 {
			col = 7
		}
		aStart = geom.Point{X: col * tileSize, Y: tileSize}
		cStart = geom.Point{X: d.DenseRect.MaxX - 3*tileSize, Y: tileSize}
	} else {
		midCol := math.Floor(d.CanvasW / 2 / tileSize)
		aStart = geom.Point{X: midCol * tileSize, Y: tileSize}
		cStart = geom.Point{X: midCol * tileSize, Y: tileSize}
	}
	return []*Trace{
		TraceA(aStart, tileSize, vpW, vpH),
		TraceB(aStart, tileSize, vpW, vpH),
		TraceC(cStart, tileSize, vpW, vpH),
	}
}

// Validate checks that every step of tr lies within canvas (with a
// small tolerance for trace-b's half-tile offset), returning an error
// naming the first violating step.
func (tr *Trace) Validate(canvas geom.Rect) error {
	for i, s := range tr.Steps {
		if !canvas.Contains(s) {
			return fmt.Errorf("workload: %s step %d (%s) leaves canvas %s", tr.Name, i, s, canvas)
		}
	}
	return nil
}
