package workload

import (
	"math"
	"testing"

	"kyrix/internal/geom"
)

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(1000, 10000, 1000, 42)
	b := Uniform(1000, 10000, 1000, 42)
	if len(a.Points) != 1000 {
		t.Fatalf("n = %d", len(a.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed must give identical datasets")
		}
	}
	c := Uniform(1000, 10000, 1000, 43)
	same := true
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical datasets")
	}
}

func TestUniformInBounds(t *testing.T) {
	d := Uniform(5000, 10000, 1000, 1)
	for _, p := range d.Points {
		if p.X < 0 || p.X > 10000 || p.Y < 0 || p.Y > 1000 {
			t.Fatalf("point out of canvas: %+v", p)
		}
	}
	if d.DenseRect.Valid() {
		t.Fatal("uniform must have no dense rect")
	}
	if d.Canvas() != (geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 1000}) {
		t.Fatal("canvas")
	}
}

func TestSkewedDistribution(t *testing.T) {
	d := Skewed(10000, 10000, 1000, 7)
	if !d.DenseRect.Valid() {
		t.Fatal("skewed must expose its dense rect")
	}
	// Dense rect covers 20% of area (0.4W x 0.5H).
	wantArea := 0.2 * 10000 * 1000
	if math.Abs(d.DenseRect.Area()-wantArea) > 1 {
		t.Fatalf("dense area = %g want %g", d.DenseRect.Area(), wantArea)
	}
	inDense := 0
	for _, p := range d.Points {
		if p.X < 0 || p.X > 10000 || p.Y < 0 || p.Y > 1000 {
			t.Fatalf("point out of canvas: %+v", p)
		}
		if d.DenseRect.ContainsPoint(geom.Point{X: p.X, Y: p.Y}) {
			inDense++
		}
	}
	frac := float64(inDense) / float64(len(d.Points))
	if frac < 0.79 || frac > 0.81 {
		t.Fatalf("dense fraction = %g want ~0.8", frac)
	}
	// Unique ascending IDs.
	for i, p := range d.Points {
		if p.ID != int64(i) {
			t.Fatal("ids must be ascending tuple ids")
		}
	}
}

func TestTraceA(t *testing.T) {
	tr := TraceA(geom.Point{X: 10240, Y: 1024}, 1024, 1024, 1024)
	if tr.NumPans() != 12 {
		t.Fatalf("pans = %d want 12", tr.NumPans())
	}
	// Every step tile-aligned.
	for i, s := range tr.Steps {
		if math.Mod(s.MinX, 1024) != 0 || math.Mod(s.MinY, 1024) != 0 {
			t.Fatalf("step %d not aligned: %v", i, s)
		}
	}
	// Six leftward then six upward steps.
	for i := 1; i <= 6; i++ {
		if tr.Steps[i].MinX != tr.Steps[i-1].MinX-1024 || tr.Steps[i].MinY != tr.Steps[i-1].MinY {
			t.Fatalf("step %d should move left", i)
		}
	}
	for i := 7; i <= 12; i++ {
		if tr.Steps[i].MinY != tr.Steps[i-1].MinY+1024 || tr.Steps[i].MinX != tr.Steps[i-1].MinX {
			t.Fatalf("step %d should move up", i)
		}
	}
}

func TestTraceBNeverAligned(t *testing.T) {
	tr := TraceB(geom.Point{X: 10240, Y: 1024}, 1024, 1024, 1024)
	if tr.NumPans() != 12 {
		t.Fatalf("pans = %d", tr.NumPans())
	}
	for i, s := range tr.Steps {
		if math.Mod(s.MinX, 1024) == 0 || math.Mod(s.MinY, 1024) == 0 {
			t.Fatalf("step %d unexpectedly aligned: %v", i, s)
		}
	}
}

func TestTraceCDiagonal(t *testing.T) {
	tr := TraceC(geom.Point{X: 0, Y: 0}, 1024, 1024, 1024)
	if tr.NumPans() != 6 {
		t.Fatalf("pans = %d want 6", tr.NumPans())
	}
	for i := 1; i < len(tr.Steps); i++ {
		dx := tr.Steps[i].MinX - tr.Steps[i-1].MinX
		dy := tr.Steps[i].MinY - tr.Steps[i-1].MinY
		if dx != 1024 || dy != 1024 {
			t.Fatalf("step %d not diagonal: dx=%g dy=%g", i, dx, dy)
		}
	}
}

func TestPaperTracesStayOnCanvas(t *testing.T) {
	for _, d := range []*Dataset{
		Uniform(10, 131072, 16384, 1),
		Skewed(10, 131072, 16384, 1),
	} {
		for _, tr := range PaperTraces(d, 1024, 1024, 1024) {
			if err := tr.Validate(d.Canvas()); err != nil {
				t.Errorf("%s on %s: %v", tr.Name, d.Name, err)
			}
		}
	}
}

func TestPaperTracesSkewedPlacement(t *testing.T) {
	d := Skewed(10, 131072, 16384, 1)
	traces := PaperTraces(d, 1024, 1024, 1024)
	// Trace a starts inside the dense region (Fig. 5 places a/b near
	// the dense-area boundary).
	if !d.DenseRect.ContainsPoint(traces[0].Steps[0].Center()) {
		t.Fatalf("trace-a start %v outside dense %v", traces[0].Steps[0], d.DenseRect)
	}
	// Trace c must cross the dense boundary: starts in, ends out.
	c := traces[2]
	if !d.DenseRect.ContainsPoint(c.Steps[0].Center()) {
		t.Fatal("trace-c should start dense")
	}
	if d.DenseRect.ContainsPoint(c.Steps[len(c.Steps)-1].Center()) {
		t.Fatal("trace-c should end sparse")
	}
}

func TestSpecialTraces(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 100000, MaxY: 10000}
	cv := ConstantVelocityTrace(geom.Point{X: 5000, Y: 5000}, 500, 0, 10, 1024, 1024)
	if cv.NumPans() != 10 {
		t.Fatal("cv pans")
	}
	if cv.Steps[10].MinX != 10000 {
		t.Fatalf("cv end = %v", cv.Steps[10])
	}
	rw := RandomWalkTrace(geom.Point{X: 5000, Y: 5000}, 700, 50, 1024, 1024, 9, bounds)
	if rw.NumPans() != 50 {
		t.Fatal("rw pans")
	}
	if err := rw.Validate(bounds); err != nil {
		t.Fatal(err)
	}
	rv := RevisitTrace(geom.Point{X: 0, Y: 0}, geom.Point{X: 5000, Y: 0}, 6, 1024, 1024)
	if rv.NumPans() != 6 {
		t.Fatal("rv pans")
	}
	if rv.Steps[1] != rv.Steps[3] || rv.Steps[0] != rv.Steps[2] {
		t.Fatal("revisit must alternate")
	}
}

func TestTraceValidate(t *testing.T) {
	tr := TraceA(geom.Point{X: 1024, Y: 1024}, 1024, 1024, 1024)
	// Moving left 6 steps from x=1024 goes negative: must be caught.
	if err := tr.Validate(geom.Rect{MinX: 0, MinY: 0, MaxX: 100000, MaxY: 100000}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestCrimeData(t *testing.T) {
	cd := Crime(60, 3)
	if len(cd.States) != 50 {
		t.Fatalf("states = %d", len(cd.States))
	}
	if len(cd.Counties) != 50*60 {
		t.Fatalf("counties = %d", len(cd.Counties))
	}
	if cd.CountyCanvas.W() != cd.StateCanvas.W()*cd.ZoomFactor {
		t.Fatal("county canvas must be zoomFactor larger")
	}
	names := map[string]bool{}
	for _, s := range cd.States {
		if !cd.StateCanvas.Contains(s.Box) {
			t.Fatalf("state %s box %v outside canvas", s.Name, s.Box)
		}
		if s.CrimeRate <= 0 {
			t.Fatal("rate must be positive")
		}
		if names[s.Name] {
			t.Fatalf("duplicate state %s", s.Name)
		}
		names[s.Name] = true
	}
	for _, c := range cd.Counties {
		if c.ParentID < 0 || c.ParentID >= 50 {
			t.Fatalf("county parent = %d", c.ParentID)
		}
		parent := cd.States[c.ParentID]
		if !parent.Box.Scale(cd.ZoomFactor).Contains(c.Box) {
			t.Fatalf("county %s outside its state's zoomed box", c.Name)
		}
		if !cd.CountyCanvas.Contains(c.Box) {
			t.Fatalf("county %s outside county canvas", c.Name)
		}
	}
}

func TestEEGData(t *testing.T) {
	d := EEG(4, 60, 32, 5)
	if len(d.Samples) != 4*60*32 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	if d.TemporalW != 600 || d.TemporalH != 400 {
		t.Fatalf("canvas = %gx%g", d.TemporalW, d.TemporalH)
	}
	canvas := geom.Rect{MinX: -100, MinY: -200, MaxX: d.TemporalW + 100, MaxY: d.TemporalH + 200}
	for _, s := range d.Samples {
		if s.Delta < 0 || s.Theta < 0 || s.Alpha < 0 || s.Beta < 0 {
			t.Fatal("band powers must be non-negative")
		}
		box := d.TemporalBox(s)
		if !canvas.Intersects(box) {
			t.Fatalf("temporal box %v far off canvas", box)
		}
	}
	// Band powers vary over time (sleep cycle), so delta should span a
	// real range.
	minD, maxD := math.Inf(1), math.Inf(-1)
	for _, s := range d.Samples {
		minD = math.Min(minD, s.Delta)
		maxD = math.Max(maxD, s.Delta)
	}
	if maxD-minD < 10 {
		t.Fatalf("delta power range too flat: %g..%g", minD, maxD)
	}
}

func BenchmarkUniform1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Uniform(1_000_000, 131072, 16384, 1)
	}
}

func TestZipfHotSetTrace(t *testing.T) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 32768, MaxY: 16384}
	o := ZipfOptions{
		Canvas: canvas, TileSize: 1024, HotSpots: 16, Skew: 1.2,
		Steps: 400, VpW: 1024, VpH: 1024, LayoutSeed: 7, Seed: 1,
	}
	a := ZipfHotSetTrace(o)
	if a.NumPans() != 400 {
		t.Fatalf("pans = %d", a.NumPans())
	}
	if err := a.Validate(canvas); err != nil {
		t.Fatal(err)
	}
	// Deterministic for the same seeds.
	b := ZipfHotSetTrace(o)
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatal("same seeds must give identical traces")
		}
	}
	// Different draw seed, same layout: the visited viewport SET must
	// overlap heavily (shared hot set) while the order differs.
	o2 := o
	o2.Seed = 99
	c := ZipfHotSetTrace(o2)
	seen := map[geom.Rect]bool{}
	for _, s := range a.Steps {
		seen[s] = true
	}
	shared := 0
	for _, s := range c.Steps {
		if seen[s] {
			shared++
		}
	}
	if shared < len(c.Steps)/2 {
		t.Fatalf("shared layout overlap too low: %d/%d", shared, len(c.Steps))
	}
	// Skew: the most common viewport must dominate a uniform share.
	counts := map[geom.Rect]int{}
	for _, s := range a.Steps {
		counts[s]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < len(a.Steps)/8 {
		t.Fatalf("trace not skewed: top viewport count %d of %d", max, len(a.Steps))
	}
}

func TestSequentialScanTrace(t *testing.T) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 8192, MaxY: 4096}
	tr := SequentialScanTrace(canvas, 1024, 1024)
	if got, want := len(tr.Steps), 8*4; got != want {
		t.Fatalf("steps = %d, want %d", got, want)
	}
	if err := tr.Validate(canvas); err != nil {
		t.Fatal(err)
	}
	// One-shot: every viewport distinct.
	seen := map[geom.Rect]bool{}
	for _, s := range tr.Steps {
		if seen[s] {
			t.Fatalf("scan revisited %v", s)
		}
		seen[s] = true
	}
}

func TestInterleaveTrace(t *testing.T) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 8192, MaxY: 4096}
	zipf := ZipfHotSetTrace(ZipfOptions{
		Canvas: canvas, TileSize: 1024, HotSpots: 8, Skew: 1.3,
		Steps: 100, VpW: 1024, VpH: 1024, LayoutSeed: 3, Seed: 4,
	})
	scan := SequentialScanTrace(canvas, 1024, 1024)
	mixed := InterleaveTrace("mixed", zipf, scan, 5, 2, 300)
	if mixed.NumPans() != 300 {
		t.Fatalf("pans = %d", mixed.NumPans())
	}
	if err := mixed.Validate(canvas); err != nil {
		t.Fatal(err)
	}
	// The first period comes from the primary, then a burst from scan.
	for i := 0; i < 5; i++ {
		if mixed.Steps[i] != zipf.Steps[i] {
			t.Fatalf("step %d should come from the primary trace", i)
		}
	}
	if mixed.Steps[5] != scan.Steps[0] || mixed.Steps[6] != scan.Steps[1] {
		t.Fatal("burst steps should come from the scan trace")
	}
}

func TestZipfZoomTrace(t *testing.T) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 32768, MaxY: 16384}
	o := ZipfZoomOptions{
		Canvas: canvas, HotSpots: 16, Skew: 1.2, Steps: 400,
		VpW: 1024, VpH: 1024, ZoomLevels: 5, LayoutSeed: 7, Seed: 1,
	}
	a := ZipfZoomTrace(o)
	if a.NumPans() != 400 {
		t.Fatalf("pans = %d", a.NumPans())
	}
	if err := a.Validate(canvas); err != nil {
		t.Fatal(err)
	}
	// Deterministic for the same seeds.
	b := ZipfZoomTrace(o)
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Fatal("same seeds must give identical traces")
		}
	}
	// The trace actually zooms: every level's viewport width must
	// appear, from the base size up to the deepest zoom-out (capped at
	// the canvas).
	widths := map[float64]bool{}
	for _, s := range a.Steps {
		widths[s.W()] = true
	}
	for z := 0; z <= o.ZoomLevels; z++ {
		w := o.VpW * math.Pow(2, float64(z))
		if w > canvas.W() {
			w = canvas.W()
		}
		if !widths[w] {
			t.Fatalf("zoom level %d (width %g) never visited; widths = %v", z, w, widths)
		}
	}
	// Steps mostly move one level at a time: consecutive widths differ
	// by at most 2x except at the periodic jump steps.
	for i := 1; i < len(a.Steps); i++ {
		if i%5 == 4 {
			continue // jump step: any level allowed
		}
		r := a.Steps[i].W() / a.Steps[i-1].W()
		if r > 2.001 || r < 1/2.001 {
			t.Fatalf("step %d walked more than one level: %g -> %g", i, a.Steps[i-1].W(), a.Steps[i].W())
		}
	}
}

func TestZipfZoomTracePanics(t *testing.T) {
	canvas := geom.Rect{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 1024}
	base := ZipfZoomOptions{
		Canvas: canvas, HotSpots: 4, Skew: 1.2, Steps: 10,
		VpW: 128, VpH: 128, ZoomLevels: 2,
	}
	for _, c := range []struct {
		name   string
		mutate func(*ZipfZoomOptions)
	}{
		{"no hotspots", func(o *ZipfZoomOptions) { o.HotSpots = 0 }},
		{"skew at one", func(o *ZipfZoomOptions) { o.Skew = 1 }},
		{"negative levels", func(o *ZipfZoomOptions) { o.ZoomLevels = -1 }},
	} {
		t.Run(c.name, func(t *testing.T) {
			o := base
			c.mutate(&o)
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			ZipfZoomTrace(o)
		})
	}
}
