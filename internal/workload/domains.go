package workload

import (
	"fmt"
	"math"
	"math/rand"

	"kyrix/internal/geom"
)

// Region is one polygon-less administrative region for the US crime
// map example (§2.2): rendered as a filled rectangle on a schematic
// grid map, which exercises exactly the same canvas/layer/jump code
// paths as real geography.
type Region struct {
	ID        int64
	Name      string
	ParentID  int64 // -1 for states
	Box       geom.Rect
	CrimeRate float64 // incidents per 100k population
	Pop       int64
}

// CrimeData is the two-level crime dataset: a state-level canvas and a
// county-level canvas, linked by a semantic-zoom jump.
type CrimeData struct {
	States   []Region
	Counties []Region
	// StateCanvas and CountyCanvas are the two canvas sizes; the county
	// canvas is ZoomFactor times larger (the paper's Fig. 3 uses 5x).
	StateCanvas  geom.Rect
	CountyCanvas geom.Rect
	ZoomFactor   float64
}

// stateNames gives the example readable jump names ("County map of
// Massachusetts"), matching the paper's Fig. 3 jumpName function.
var stateNames = []string{
	"Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
	"Connecticut", "Delaware", "Florida", "Georgia", "Hawaii", "Idaho",
	"Illinois", "Indiana", "Iowa", "Kansas", "Kentucky", "Louisiana",
	"Maine", "Maryland", "Massachusetts", "Michigan", "Minnesota",
	"Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
	"New Hampshire", "New Jersey", "New Mexico", "New York",
	"North Carolina", "North Dakota", "Ohio", "Oklahoma", "Oregon",
	"Pennsylvania", "Rhode Island", "South Carolina", "South Dakota",
	"Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
	"West Virginia", "Wisconsin", "Wyoming",
}

// Crime generates the synthetic two-level crime dataset: 50 states laid
// out on a 10×5 schematic grid, each subdivided into countiesPerState
// counties. Rates are log-normal, spatially correlated within a state.
func Crime(countiesPerState int, seed int64) *CrimeData {
	rng := rand.New(rand.NewSource(seed))
	const (
		stateW, stateH = 100.0, 100.0
		cols           = 10
	)
	zoom := 5.0
	cd := &CrimeData{
		StateCanvas:  geom.Rect{MinX: 0, MinY: 0, MaxX: cols * stateW, MaxY: 5 * stateH},
		ZoomFactor:   zoom,
		CountyCanvas: geom.Rect{MinX: 0, MinY: 0, MaxX: cols * stateW * zoom, MaxY: 5 * stateH * zoom},
	}
	side := int(math.Ceil(math.Sqrt(float64(countiesPerState))))
	countyID := int64(0)
	for i, name := range stateNames {
		col, row := i%cols, i/cols
		box := geom.RectXYWH(float64(col)*stateW, float64(row)*stateH, stateW, stateH)
		base := math.Exp(rng.NormFloat64()*0.5 + math.Log(400))
		st := Region{
			ID:        int64(i),
			Name:      name,
			ParentID:  -1,
			Box:       box,
			CrimeRate: base,
			Pop:       int64(1e6 + rng.Intn(9e6)),
		}
		cd.States = append(cd.States, st)
		// Counties: subdivide the zoomed state box into a side×side grid.
		zb := box.Scale(zoom)
		cw, ch := zb.W()/float64(side), zb.H()/float64(side)
		made := 0
		for r := 0; r < side && made < countiesPerState; r++ {
			for c := 0; c < side && made < countiesPerState; c++ {
				rate := base * math.Exp(rng.NormFloat64()*0.35)
				cd.Counties = append(cd.Counties, Region{
					ID:        countyID,
					Name:      fmt.Sprintf("%s County %d", name, made+1),
					ParentID:  st.ID,
					Box:       geom.RectXYWH(zb.MinX+float64(c)*cw, zb.MinY+float64(r)*ch, cw, ch),
					CrimeRate: rate,
					Pop:       int64(1e4 + rng.Intn(5e5)),
				})
				countyID++
				made++
			}
		}
	}
	return cd
}

// EEGSample is one (channel, time-window) observation of the MGH EEG
// scenario (§4): the raw amplitude trace plus the spectral band powers
// the collaborators' spectral view displays.
type EEGSample struct {
	ID      int64
	Channel int64
	T       float64 // seconds from recording start
	Amp     float64 // microvolts
	// Band powers for the spectral view.
	Delta, Theta, Alpha, Beta float64
}

// EEGData is a synthetic multi-channel sleep EEG recording.
type EEGData struct {
	Channels   int
	SampleRate float64 // Hz of the generated (downsampled) series
	Duration   float64 // seconds
	Samples    []EEGSample
	// TemporalCanvas maps (t, channel) to canvas coordinates: x = t *
	// PxPerSec, one horizontal band per channel.
	PxPerSec   float64
	BandHeight float64
	TemporalW  float64
	TemporalH  float64
}

// EEG generates channels of duration seconds at sampleRate Hz. Each
// channel is a mixture of the four classical bands (delta 0.5–4 Hz,
// theta 4–8, alpha 8–13, beta 13–30) whose weights drift through sleep
// stages, plus white noise — enough structure for the spectral view to
// show stage transitions.
func EEG(channels int, duration, sampleRate float64, seed int64) *EEGData {
	rng := rand.New(rand.NewSource(seed))
	n := int(duration * sampleRate)
	d := &EEGData{
		Channels:   channels,
		SampleRate: sampleRate,
		Duration:   duration,
		PxPerSec:   10,
		BandHeight: 100,
	}
	d.TemporalW = duration * d.PxPerSec
	d.TemporalH = float64(channels) * d.BandHeight
	id := int64(0)
	for ch := 0; ch < channels; ch++ {
		phase := rng.Float64() * 2 * math.Pi
		for i := 0; i < n; i++ {
			t := float64(i) / sampleRate
			// Sleep stage drifts on a ~90s cycle (scaled): deeper sleep
			// -> more delta, less beta.
			stage := 0.5 + 0.5*math.Sin(2*math.Pi*t/90+phase)
			delta := 30 * stage
			theta := 15 * (0.5 + 0.5*math.Sin(2*math.Pi*t/47))
			alpha := 20 * (1 - stage)
			beta := 10 * (1 - stage)
			amp := delta*math.Sin(2*math.Pi*2*t) +
				theta*math.Sin(2*math.Pi*6*t) +
				alpha*math.Sin(2*math.Pi*10*t+phase) +
				beta*math.Sin(2*math.Pi*20*t) +
				rng.NormFloat64()*5
			d.Samples = append(d.Samples, EEGSample{
				ID:      id,
				Channel: int64(ch),
				T:       t,
				Amp:     amp,
				Delta:   delta,
				Theta:   theta,
				Alpha:   alpha,
				Beta:    beta,
			})
			id++
		}
	}
	return d
}

// TemporalBox returns the bounding box of sample s on the temporal
// canvas (one pixel-wide mark in a channel band).
func (d *EEGData) TemporalBox(s EEGSample) geom.Rect {
	x := s.T * d.PxPerSec
	yMid := float64(s.Channel)*d.BandHeight + d.BandHeight/2
	y := yMid - s.Amp // amplitude displaces the mark within its band
	return geom.RectAround(geom.Point{X: x, Y: y}, 1)
}
