package hashidx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	ix := New()
	if ix.Len() != 0 || ix.Contains(1) {
		t.Fatal("empty index misbehaves")
	}
	if ix.Delete(1, 1) {
		t.Fatal("delete on empty")
	}
}

func TestInsertLookup(t *testing.T) {
	ix := New()
	for i := int64(0); i < 10000; i++ {
		ix.Insert(i, uint64(i*3))
	}
	if ix.Len() != 10000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i := int64(0); i < 10000; i++ {
		var got []uint64
		ix.Lookup(i, func(v uint64) bool { got = append(got, v); return true })
		if len(got) != 1 || got[0] != uint64(i*3) {
			t.Fatalf("Lookup(%d) = %v", i, got)
		}
	}
	if ix.Contains(-5) {
		t.Fatal("absent key")
	}
}

func TestDuplicates(t *testing.T) {
	ix := New()
	for v := uint64(0); v < 50; v++ {
		ix.Insert(42, v)
	}
	ix.Insert(42, 0) // idempotent
	if ix.Len() != 50 {
		t.Fatalf("Len = %d", ix.Len())
	}
	var got []uint64
	ix.Lookup(42, func(v uint64) bool { got = append(got, v); return true })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 50 || got[0] != 0 || got[49] != 49 {
		t.Fatalf("dups = %v", got)
	}
}

func TestDelete(t *testing.T) {
	ix := New()
	ix.Insert(1, 10)
	ix.Insert(1, 11)
	if !ix.Delete(1, 10) {
		t.Fatal("delete present")
	}
	if ix.Delete(1, 10) {
		t.Fatal("double delete")
	}
	if !ix.Contains(1) {
		t.Fatal("other payload lost")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestEarlyStop(t *testing.T) {
	ix := New()
	for v := uint64(0); v < 10; v++ {
		ix.Insert(7, v)
	}
	n := 0
	ix.Lookup(7, func(uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestNegativeAndExtremeKeys(t *testing.T) {
	ix := New()
	keys := []int64{-1, 0, 1, -1 << 62, 1<<62 - 1}
	for i, k := range keys {
		ix.Insert(k, uint64(i))
	}
	for i, k := range keys {
		found := false
		ix.Lookup(k, func(v uint64) bool { found = v == uint64(i); return false })
		if !found {
			t.Fatalf("key %d lost", k)
		}
	}
}

func TestRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := New()
	oracle := map[[2]uint64]bool{}
	for i := 0; i < 30000; i++ {
		k := int64(rng.Intn(500))
		v := uint64(rng.Intn(20))
		key := [2]uint64{uint64(k), v}
		if rng.Intn(4) == 0 {
			if got := ix.Delete(k, v); got != oracle[key] {
				t.Fatalf("Delete(%d,%d) = %v", k, v, got)
			}
			delete(oracle, key)
		} else {
			ix.Insert(k, v)
			oracle[key] = true
		}
	}
	if ix.Len() != len(oracle) {
		t.Fatalf("Len = %d oracle %d", ix.Len(), len(oracle))
	}
}

// Property: after inserting a set, every key's payload multiset matches.
func TestQuickPayloads(t *testing.T) {
	f := func(pairs [][2]int16) bool {
		ix := New()
		want := map[int64]map[uint64]bool{}
		for _, p := range pairs {
			k, v := int64(p[0]), uint64(uint16(p[1]))
			ix.Insert(k, v)
			if want[k] == nil {
				want[k] = map[uint64]bool{}
			}
			want[k][v] = true
		}
		for k, vs := range want {
			got := map[uint64]bool{}
			ix.Lookup(k, func(v uint64) bool { got[v] = true; return true })
			if len(got) != len(vs) {
				return false
			}
			for v := range vs {
				if !got[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	ix := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Insert(int64(i), uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	ix := New()
	for i := int64(0); i < 1_000_000; i++ {
		ix.Insert(i, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(int64(i%1_000_000), func(uint64) bool { return true })
	}
}
