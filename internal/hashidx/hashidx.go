// Package hashidx implements the bucket-chained hash index the paper
// lists alongside the B-tree for the tuple-tile mapping design
// ("Btree/hash indexes on the tuple_id column").
//
// Keys are int64; payloads are uint64 (packed RIDs). Duplicate keys are
// supported. The directory doubles when the load factor exceeds 4
// entries per bucket.
package hashidx

// Index is an equality-only hash index. Not safe for concurrent
// mutation; the DB layer serializes writers.
type Index struct {
	buckets [][]pair
	mask    uint64
	size    int
}

type pair struct {
	key int64
	val uint64
}

// New returns an empty index.
func New() *Index {
	return &Index{buckets: make([][]pair, 16), mask: 15}
}

// Len returns the number of stored entries.
func (ix *Index) Len() int { return ix.size }

// fnv-1a over the 8 key bytes; good enough dispersion for sequential ids.
func hash(k int64) uint64 {
	h := uint64(14695981039346656037)
	u := uint64(k)
	for i := 0; i < 8; i++ {
		h ^= u & 0xFF
		h *= 1099511628211
		u >>= 8
	}
	return h
}

// Insert adds (key, val). Duplicate (key, val) pairs are stored once.
func (ix *Index) Insert(key int64, val uint64) {
	b := hash(key) & ix.mask
	for _, p := range ix.buckets[b] {
		if p.key == key && p.val == val {
			return
		}
	}
	ix.buckets[b] = append(ix.buckets[b], pair{key, val})
	ix.size++
	if ix.size > len(ix.buckets)*4 {
		ix.grow()
	}
}

func (ix *Index) grow() {
	old := ix.buckets
	ix.buckets = make([][]pair, len(old)*2)
	ix.mask = uint64(len(ix.buckets) - 1)
	for _, bucket := range old {
		for _, p := range bucket {
			b := hash(p.key) & ix.mask
			ix.buckets[b] = append(ix.buckets[b], p)
		}
	}
}

// Delete removes (key, val), reporting whether it was present.
func (ix *Index) Delete(key int64, val uint64) bool {
	b := hash(key) & ix.mask
	bucket := ix.buckets[b]
	for i, p := range bucket {
		if p.key == key && p.val == val {
			bucket[i] = bucket[len(bucket)-1]
			ix.buckets[b] = bucket[:len(bucket)-1]
			ix.size--
			return true
		}
	}
	return false
}

// Lookup calls fn with every payload stored under key. Order is
// unspecified. Returning false stops early.
func (ix *Index) Lookup(key int64, fn func(val uint64) bool) {
	b := hash(key) & ix.mask
	for _, p := range ix.buckets[b] {
		if p.key == key {
			if !fn(p.val) {
				return
			}
		}
	}
}

// Contains reports whether any entry exists for key.
func (ix *Index) Contains(key int64) bool {
	found := false
	ix.Lookup(key, func(uint64) bool { found = true; return false })
	return found
}
