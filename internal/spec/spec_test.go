package spec

import (
	"strings"
	"testing"

	"kyrix/internal/geom"
	"kyrix/internal/storage"
)

// usmapApp builds the paper's Fig. 3 application: a state-map canvas
// with a static legend layer and a pannable border layer, a county-map
// canvas, and a geometric+semantic zoom jump between them.
func usmapApp() *App {
	return &App{
		Name:     "usmap",
		DBConfig: "config.txt",
		Canvases: []Canvas{
			{
				ID: "statemap", W: 1000, H: 500,
				Transforms: []Transform{
					{ID: "empty"},
					{ID: "stateMapTrans",
						Query:         "SELECT id, name, rate, minx, miny, maxx, maxy FROM states",
						TransformFunc: "stateMapTransform",
						Columns: []ColumnSpec{
							{Name: "id", Type: "int"}, {Name: "name", Type: "text"},
							{Name: "rate", Type: "double"},
							{Name: "minx", Type: "double"}, {Name: "miny", Type: "double"},
							{Name: "maxx", Type: "double"}, {Name: "maxy", Type: "double"},
						}},
				},
				Layers: []Layer{
					{TransformID: "empty", Static: true, Renderer: "stateMapLegendRendering"},
					{TransformID: "stateMapTrans", Static: false,
						Placement: &Placement{XCol: "minx", YCol: "miny", Radius: 50},
						Renderer:  "stateMapRendering"},
				},
			},
			{
				ID: "countymap", W: 5000, H: 2500,
				Transforms: []Transform{
					{ID: "countyMapTrans",
						Query: "SELECT id, name, rate, minx, miny, maxx, maxy FROM counties",
						Columns: []ColumnSpec{
							{Name: "id", Type: "int"}, {Name: "name", Type: "text"},
							{Name: "rate", Type: "double"},
							{Name: "minx", Type: "double"}, {Name: "miny", Type: "double"},
							{Name: "maxx", Type: "double"}, {Name: "maxy", Type: "double"},
						}},
				},
				Layers: []Layer{
					{TransformID: "countyMapTrans",
						Placement: &Placement{XCol: "minx", YCol: "miny", Radius: 25},
						Renderer:  "countyMapRendering"},
				},
			},
		},
		Jumps: []Jump{{
			From: "statemap", To: "countymap", Type: GeometricSemanticZoom,
			Selector: "stateSelector", NewViewport: "countyViewport", Name: "countyName",
		}},
		InitialCanvas: "statemap",
		InitialX:      500, InitialY: 250,
		ViewportW: 400, ViewportH: 300,
	}
}

func usmapRegistry() *Registry {
	reg := NewRegistry()
	reg.RegisterTransform("stateMapTransform", func(r storage.Row) storage.Row { return r })
	reg.RegisterSelector("stateSelector", func(r storage.Row, layerIdx int) bool { return layerIdx == 1 })
	reg.RegisterViewport("countyViewport", func(r storage.Row) geom.Point {
		return geom.Point{X: r[1].AsFloat()*5 - 1000, Y: r[2].AsFloat()*5 - 500}
	})
	reg.RegisterName("countyName", func(r storage.Row) string {
		return "County map of " + r[1].S
	})
	for _, r := range []string{"stateMapLegendRendering", "stateMapRendering", "countyMapRendering"} {
		reg.RegisterRenderer(r)
	}
	return reg
}

func TestCompileValidApp(t *testing.T) {
	ca, err := Compile(usmapApp(), usmapRegistry())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if ca.CanvasIdx["statemap"] != 0 || ca.CanvasIdx["countymap"] != 1 {
		t.Fatalf("canvas idx = %v", ca.CanvasIdx)
	}
	if ca.JumpFuncs[0].ZoomFactor != 5 {
		t.Fatalf("zoom factor = %g", ca.JumpFuncs[0].ZoomFactor)
	}
	if !ca.JumpFuncs[0].Selector(nil, 1) || ca.JumpFuncs[0].Selector(nil, 0) {
		t.Fatal("selector resolution wrong")
	}
	vp := ca.InitialViewport()
	if vp.W() != 400 || vp.H() != 300 || vp.Center() != (geom.Point{X: 500, Y: 250}) {
		t.Fatalf("initial viewport = %v", vp)
	}
	// Legend layer (static, empty transform) resolved with nil funcs.
	if ca.LayerFuncs[0][0].Transform != nil || ca.LayerFuncs[0][0].Placement != nil {
		t.Fatal("legend layer should have nil funcs")
	}
}

func TestJSONRoundtrip(t *testing.T) {
	app := usmapApp()
	data, err := app.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != app.Name || len(back.Canvases) != 2 || len(back.Jumps) != 1 {
		t.Fatalf("roundtrip lost structure: %+v", back)
	}
	if back.Canvases[0].Layers[1].Placement.XCol != "minx" {
		t.Fatal("placement lost")
	}
	if _, err := Compile(back, usmapRegistry()); err != nil {
		t.Fatalf("recompiled roundtrip: %v", err)
	}
	if _, err := FromJSON([]byte("{bad json")); err == nil {
		t.Fatal("bad json must fail")
	}
}

// Each case mutates the valid app in one way and names the expected
// error fragment — the compiler's constraint checks one by one.
func TestCompileConstraints(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*App)
		want   string
	}{
		{"empty name", func(a *App) { a.Name = "" }, "app name"},
		{"no canvases", func(a *App) { a.Canvases = nil }, "at least one canvas"},
		{"bad viewport", func(a *App) { a.ViewportW = 0 }, "viewport dimensions"},
		{"dup canvas", func(a *App) { a.Canvases[1].ID = "statemap" }, "duplicate canvas id"},
		{"bad dims", func(a *App) { a.Canvases[0].W = -5 }, "positive dimensions"},
		{"no layers", func(a *App) { a.Canvases[1].Layers = nil }, "no layers"},
		{"dup transform", func(a *App) {
			a.Canvases[0].Transforms[1].ID = "empty"
		}, "duplicate transform id"},
		{"unknown transform ref", func(a *App) {
			a.Canvases[0].Layers[1].TransformID = "nope"
		}, "unknown transform"},
		{"unregistered transform func", func(a *App) {
			a.Canvases[0].Transforms[1].TransformFunc = "missingFn"
		}, "unregistered transform func"},
		{"query without placement", func(a *App) {
			a.Canvases[0].Layers[1].Placement = nil
		}, "no placement"},
		{"query without columns", func(a *App) {
			a.Canvases[0].Transforms[1].Columns = nil
		}, "no declared columns"},
		{"bad column type", func(a *App) {
			a.Canvases[0].Transforms[1].Columns[0].Type = "varchar"
		}, "unknown column type"},
		{"separable missing ycol", func(a *App) {
			a.Canvases[0].Layers[1].Placement.YCol = ""
		}, "needs xCol and yCol"},
		{"negative radius", func(a *App) {
			a.Canvases[0].Layers[1].Placement.Radius = -1
		}, "negative radius"},
		{"unregistered placement func", func(a *App) {
			a.Canvases[0].Layers[1].Placement = &Placement{Func: "missing"}
		}, "unregistered placement func"},
		{"both placement forms", func(a *App) {
			p := a.Canvases[0].Layers[1].Placement
			a.Canvases[0].Layers[1].Placement = &Placement{Func: "pieLayout", XCol: p.XCol, YCol: p.YCol}
		}, "both separable and functional"},
		{"no renderer", func(a *App) {
			a.Canvases[0].Layers[1].Renderer = ""
		}, "no renderer"},
		{"undeclared renderer", func(a *App) {
			a.Canvases[0].Layers[1].Renderer = "ghost"
		}, "undeclared renderer"},
		{"bad jump type", func(a *App) { a.Jumps[0].Type = "teleport" }, "invalid type"},
		{"jump from missing", func(a *App) { a.Jumps[0].From = "mars" }, "from unknown canvas"},
		{"jump to missing", func(a *App) { a.Jumps[0].To = "mars" }, "to unknown canvas"},
		{"unregistered selector", func(a *App) { a.Jumps[0].Selector = "ghost" }, "unregistered selector"},
		{"unregistered viewport", func(a *App) { a.Jumps[0].NewViewport = "ghost" }, "unregistered viewport func"},
		{"unregistered name", func(a *App) { a.Jumps[0].Name = "ghost" }, "unregistered name func"},
		{"no initial canvas", func(a *App) { a.InitialCanvas = "" }, "initial canvas is required"},
		{"bad initial canvas", func(a *App) { a.InitialCanvas = "mars" }, "does not exist"},
		{"initial center outside", func(a *App) { a.InitialX = 99999 }, "outside canvas"},
		{"viewport bigger than canvas", func(a *App) {
			a.ViewportW = 5000
		}, "larger than initial canvas"},
		{"geometric zoom equal widths", func(a *App) {
			a.Jumps[0].Type = GeometricZoom
			a.Canvases[1].W = 1000
		}, "equal widths"},
		{"unknown lod", func(a *App) {
			a.Canvases[0].Layers[1].LOD = "pyramid"
		}, "unknown lod"},
		{"lod on functional placement", func(a *App) {
			a.Canvases[0].Layers[1].Placement = &Placement{Func: "pieLayout"}
			a.Canvases[0].Layers[1].LOD = "auto"
		}, "separable placement"},
		{"lod on static layer", func(a *App) {
			a.Canvases[0].Layers[0].LOD = "auto"
		}, "separable placement"},
		{"lod without query", func(a *App) {
			a.Canvases[0].Transforms[1].Query = ""
			a.Canvases[0].Layers[1].LOD = "auto"
		}, "transform with a query"},
	}
	reg := usmapRegistry()
	reg.RegisterPlacement("pieLayout", func(storage.Row) geom.Rect { return geom.Rect{} })
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			app := usmapApp()
			c.mutate(app)
			_, err := Compile(app, reg)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCompileLODAuto(t *testing.T) {
	app := usmapApp()
	app.Canvases[0].Layers[1].LOD = "auto"
	if _, err := Compile(app, usmapRegistry()); err != nil {
		t.Fatalf(`lod "auto" on a separable layer with a query must compile: %v`, err)
	}
	// The knob rides the spec JSON to precompute.
	data, err := app.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Canvases[0].Layers[1].LOD != "auto" {
		t.Fatalf("lod knob lost in roundtrip: %+v", back.Canvases[0].Layers[1])
	}
}

func TestCompileCollectsMultipleErrors(t *testing.T) {
	app := usmapApp()
	app.Name = ""
	app.Jumps[0].Type = "bogus"
	app.InitialCanvas = "mars"
	_, err := Compile(app, usmapRegistry())
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{"app name", "invalid type", "does not exist"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
}

func TestNilRegistryDefaults(t *testing.T) {
	// An app using no named functions compiles against a nil registry.
	app := &App{
		Name: "minimal",
		Canvases: []Canvas{{
			ID: "c", W: 100, H: 100,
			Transforms: []Transform{{ID: "t", Query: "SELECT x, y FROM pts",
				Columns: []ColumnSpec{{Name: "x", Type: "double"}, {Name: "y", Type: "double"}}}},
			Layers: []Layer{{TransformID: "t",
				Placement: &Placement{XCol: "x", YCol: "y", Radius: 1},
				Renderer:  "dots"}},
		}},
		InitialCanvas: "c", InitialX: 50, InitialY: 50,
		ViewportW: 10, ViewportH: 10,
	}
	_, err := Compile(app, nil)
	if err == nil || !strings.Contains(err.Error(), "undeclared renderer") {
		t.Fatalf("nil registry should only fail on renderer: %v", err)
	}
	reg := NewRegistry()
	reg.RegisterRenderer("dots")
	ca, err := Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Default selector accepts everything; default name is empty.
	if len(ca.JumpFuncs) != 0 {
		t.Fatal("no jumps expected")
	}
}

func TestZoomFactor(t *testing.T) {
	app := usmapApp()
	zf, err := app.ZoomFactor(app.Jumps[0])
	if err != nil || zf != 5 {
		t.Fatalf("zoom = %g, %v", zf, err)
	}
	if _, err := app.ZoomFactor(Jump{From: "x", To: "statemap"}); err == nil {
		t.Fatal("unknown from must fail")
	}
	if _, err := app.ZoomFactor(Jump{From: "statemap", To: "x"}); err == nil {
		t.Fatal("unknown to must fail")
	}
}

func TestJumpsFrom(t *testing.T) {
	app := usmapApp()
	if got := app.JumpsFrom("statemap"); len(got) != 1 || got[0].To != "countymap" {
		t.Fatalf("JumpsFrom = %v", got)
	}
	if got := app.JumpsFrom("countymap"); len(got) != 0 {
		t.Fatalf("JumpsFrom county = %v", got)
	}
}

func TestInitialViewportClamped(t *testing.T) {
	app := usmapApp()
	app.InitialX, app.InitialY = 10, 10 // near corner: would hang off
	ca, err := Compile(app, usmapRegistry())
	if err != nil {
		t.Fatal(err)
	}
	vp := ca.InitialViewport()
	if vp.MinX < 0 || vp.MinY < 0 {
		t.Fatalf("viewport not clamped: %v", vp)
	}
}
