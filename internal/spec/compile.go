package spec

import (
	"errors"
	"fmt"

	"kyrix/internal/geom"
)

// CompiledApp is a validated spec with function names resolved: the
// output of the Kyrix compiler ("the compiler parses developers'
// specification and performs basic constraint checkings", §1).
type CompiledApp struct {
	Spec     *App
	Registry *Registry

	// CanvasIdx maps canvas id to index in Spec.Canvases.
	CanvasIdx map[string]int
	// LayerFuncs[c][l] are the resolved functions of layer l of canvas
	// index c.
	LayerFuncs [][]LayerFuncs
	// JumpFuncs[i] are the resolved functions of Spec.Jumps[i].
	JumpFuncs []JumpFuncs
}

// LayerFuncs holds a layer's resolved callbacks.
type LayerFuncs struct {
	Transform TransformFunc // nil = identity
	Placement PlacementFunc // nil for separable placements
}

// JumpFuncs holds a jump's resolved callbacks.
type JumpFuncs struct {
	Selector    SelectorFunc
	NewViewport ViewportFunc // nil = default (scale clicked center)
	Name        NameFunc
	ZoomFactor  float64
}

// Compile validates app against reg and resolves every referenced
// function. All constraint violations found are reported together.
func Compile(app *App, reg *Registry) (*CompiledApp, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if app.Name == "" {
		fail("spec: app name is required")
	}
	if len(app.Canvases) == 0 {
		fail("spec: app needs at least one canvas")
	}
	if app.ViewportW <= 0 || app.ViewportH <= 0 {
		fail("spec: viewport dimensions must be positive (got %gx%g)", app.ViewportW, app.ViewportH)
	}

	ca := &CompiledApp{
		Spec:      app,
		Registry:  reg,
		CanvasIdx: make(map[string]int, len(app.Canvases)),
	}

	for i, c := range app.Canvases {
		if c.ID == "" {
			fail("spec: canvas %d has empty id", i)
			continue
		}
		if _, dup := ca.CanvasIdx[c.ID]; dup {
			fail("spec: duplicate canvas id %q", c.ID)
			continue
		}
		ca.CanvasIdx[c.ID] = i
		if c.W <= 0 || c.H <= 0 {
			fail("spec: canvas %q must have positive dimensions (got %gx%g)", c.ID, c.W, c.H)
		}
		if len(c.Layers) == 0 {
			fail("spec: canvas %q has no layers", c.ID)
		}
		seenT := map[string]bool{}
		for _, tr := range c.Transforms {
			if tr.ID == "" {
				fail("spec: canvas %q has a transform with empty id", c.ID)
			}
			if seenT[tr.ID] {
				fail("spec: canvas %q has duplicate transform id %q", c.ID, tr.ID)
			}
			seenT[tr.ID] = true
			for _, col := range tr.Columns {
				if _, err := col.ColType(); err != nil {
					fail("spec: canvas %q transform %q: %v", c.ID, tr.ID, err)
				}
			}
		}

		var layerFns []LayerFuncs
		for li, l := range c.Layers {
			var fns LayerFuncs
			tr, ok := c.Transform(l.TransformID)
			if !ok {
				fail("spec: canvas %q layer %d references unknown transform %q", c.ID, li, l.TransformID)
			} else {
				fn, err := reg.Transform(tr.TransformFunc)
				if err != nil {
					fail("spec: canvas %q layer %d: %v", c.ID, li, err)
				}
				fns.Transform = fn
				// A layer with a query needs a placement; a static
				// legend layer with an empty query does not.
				if tr.Query != "" && l.Placement == nil {
					fail("spec: canvas %q layer %d has a query but no placement", c.ID, li)
				}
				if tr.Query != "" && len(tr.Columns) == 0 {
					fail("spec: canvas %q transform %q has a query but no declared columns", c.ID, tr.ID)
				}
			}
			if l.Placement != nil {
				p := l.Placement
				switch {
				case p.Separable():
					if p.XCol == "" || p.YCol == "" {
						fail("spec: canvas %q layer %d separable placement needs xCol and yCol", c.ID, li)
					}
					if p.Radius < 0 {
						fail("spec: canvas %q layer %d negative radius", c.ID, li)
					}
				default:
					fn, err := reg.Placement(p.Func)
					if err != nil {
						fail("spec: canvas %q layer %d: %v", c.ID, li, err)
					}
					fns.Placement = fn
					if p.XCol != "" || p.YCol != "" {
						fail("spec: canvas %q layer %d placement is both separable and functional", c.ID, li)
					}
				}
			}
			if l.Renderer == "" {
				fail("spec: canvas %q layer %d has no renderer", c.ID, li)
			} else if !reg.HasRenderer(l.Renderer) {
				fail("spec: canvas %q layer %d references undeclared renderer %q", c.ID, li, l.Renderer)
			}
			switch l.LOD {
			case "":
			case "auto":
				if !l.Placement.Separable() {
					fail("spec: canvas %q layer %d: lod \"auto\" requires a separable placement", c.ID, li)
				} else if ok && tr.Query == "" {
					fail("spec: canvas %q layer %d: lod \"auto\" requires a transform with a query", c.ID, li)
				}
			default:
				fail("spec: canvas %q layer %d has unknown lod %q (want \"auto\" or empty)", c.ID, li, l.LOD)
			}
			layerFns = append(layerFns, fns)
		}
		ca.LayerFuncs = append(ca.LayerFuncs, layerFns)
	}

	for i, j := range app.Jumps {
		var fns JumpFuncs
		if !j.Type.valid() {
			fail("spec: jump %d has invalid type %q", i, j.Type)
		}
		_, fromOK := ca.CanvasIdx[j.From]
		_, toOK := ca.CanvasIdx[j.To]
		if !fromOK {
			fail("spec: jump %d from unknown canvas %q", i, j.From)
		}
		if !toOK {
			fail("spec: jump %d to unknown canvas %q", i, j.To)
		}
		if fromOK && toOK {
			zf, err := app.ZoomFactor(j)
			if err != nil {
				fail("spec: jump %d: %v", i, err)
			}
			fns.ZoomFactor = zf
			if j.Type == GeometricZoom && zf == 1 {
				fail("spec: jump %d is a geometric zoom but canvases have equal widths", i)
			}
		}
		sel, err := reg.Selector(j.Selector)
		if err != nil {
			fail("spec: jump %d: %v", i, err)
		}
		fns.Selector = sel
		vp, err := reg.Viewport(j.NewViewport)
		if err != nil {
			fail("spec: jump %d: %v", i, err)
		}
		fns.NewViewport = vp
		nameFn, err := reg.Name(j.Name)
		if err != nil {
			fail("spec: jump %d: %v", i, err)
		}
		fns.Name = nameFn
		ca.JumpFuncs = append(ca.JumpFuncs, fns)
	}

	if app.InitialCanvas == "" {
		fail("spec: initial canvas is required")
	} else if idx, ok := ca.CanvasIdx[app.InitialCanvas]; !ok {
		fail("spec: initial canvas %q does not exist", app.InitialCanvas)
	} else {
		c := app.Canvases[idx]
		if !c.Rect().ContainsPoint(geom.Point{X: app.InitialX, Y: app.InitialY}) {
			fail("spec: initial viewport center (%g,%g) outside canvas %q", app.InitialX, app.InitialY, app.InitialCanvas)
		}
		if app.ViewportW > c.W || app.ViewportH > c.H {
			fail("spec: viewport %gx%g larger than initial canvas %q (%gx%g)",
				app.ViewportW, app.ViewportH, app.InitialCanvas, c.W, c.H)
		}
	}

	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return ca, nil
}

// InitialViewport returns the app's starting viewport, clamped to the
// initial canvas.
func (ca *CompiledApp) InitialViewport() geom.Rect {
	app := ca.Spec
	c := app.Canvases[ca.CanvasIdx[app.InitialCanvas]]
	vp := geom.RectXYWH(app.InitialX-app.ViewportW/2, app.InitialY-app.ViewportH/2,
		app.ViewportW, app.ViewportH)
	return vp.Clamp(c.Rect())
}
