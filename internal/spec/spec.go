// Package spec implements Kyrix's declarative model (§2.1): an App is a
// set of canvases — arbitrary-size worksheets with overlaid layers —
// connected by jumps, customized transitions between canvases. A layer
// is specified by (1) the data it needs: a SQL query plus an optional
// transform function, (2) the location of each returned object: a
// placement, and (3) a rendering function.
//
// Specs serialize to JSON (the Go-side builder mirrors the JavaScript
// snippet of the paper's Fig. 3); functions are referenced by name and
// resolved against a Registry at compile time, since "the compiler
// parses developers' specification and performs basic constraint
// checkings".
package spec

import (
	"encoding/json"
	"fmt"

	"kyrix/internal/geom"
	"kyrix/internal/storage"
)

// JumpType enumerates transition types ("right now it can be geometric
// zoom, semantic zoom or both").
type JumpType string

// Jump transition types.
const (
	GeometricZoom         JumpType = "geometric_zoom"
	SemanticZoom          JumpType = "semantic_zoom"
	GeometricSemanticZoom JumpType = "geometric_semantic_zoom"
)

func (jt JumpType) valid() bool {
	switch jt {
	case GeometricZoom, SemanticZoom, GeometricSemanticZoom:
		return true
	}
	return false
}

// App is the root of a Kyrix specification.
type App struct {
	Name string `json:"name"`
	// DBConfig names the backing database configuration (the paper's
	// "config.txt"); interpreted by the server, opaque here.
	DBConfig string `json:"dbConfig,omitempty"`

	Canvases []Canvas `json:"canvases"`
	Jumps    []Jump   `json:"jumps,omitempty"`

	// InitialCanvas and the initial viewport center correspond to
	// app.initialCanvas(id, x, y) in Fig. 3.
	InitialCanvas string  `json:"initialCanvas"`
	InitialX      float64 `json:"initialX"`
	InitialY      float64 `json:"initialY"`

	// ViewportW/H is the fixed frontend viewport size.
	ViewportW float64 `json:"viewportW"`
	ViewportH float64 `json:"viewportH"`
}

// Canvas is a fixed-size worksheet with one or more overlaid layers.
type Canvas struct {
	ID string  `json:"id"`
	W  float64 `json:"w"`
	H  float64 `json:"h"`

	// Transforms are the data transforms registered on this canvas
	// (canvas.addTransform in Fig. 3); layers reference them by ID.
	Transforms []Transform `json:"transforms,omitempty"`
	Layers     []Layer     `json:"layers"`
}

// Transform is a layer's data specification: a SQL query against the
// DBMS plus an optional row-transform function applied to each result
// row. The empty transform (no query) backs static layers such as
// legends.
type Transform struct {
	ID string `json:"id"`
	// Query is a SELECT executed against the backing database.
	Query string `json:"query,omitempty"`
	// TransformFunc names a registered func(Row) Row post-processing
	// each query row ("developers can use existing visualization
	// libraries to specify a desired transform function").
	TransformFunc string `json:"transformFunc,omitempty"`
	// Columns declares the output schema after TransformFunc; the
	// backend materializes precomputed layers with this schema.
	Columns []ColumnSpec `json:"columns,omitempty"`
}

// ColumnSpec names one output column of a transform.
type ColumnSpec struct {
	Name string `json:"name"`
	Type string `json:"type"` // "int" | "double" | "text" | "bool"
}

// ColType converts the JSON type name to a storage type.
func (c ColumnSpec) ColType() (storage.ColType, error) {
	switch c.Type {
	case "int":
		return storage.TInt64, nil
	case "double":
		return storage.TFloat64, nil
	case "text":
		return storage.TString, nil
	case "bool":
		return storage.TBool, nil
	}
	return 0, fmt.Errorf("spec: unknown column type %q", c.Type)
}

// Layer is one overlaid layer of a canvas.
type Layer struct {
	// TransformID references a transform of the enclosing canvas
	// (new Layer("stateMapTrans", false) in Fig. 3).
	TransformID string `json:"transform"`
	// Static layers do not need to be re-rendered (or re-fetched) when
	// the user pans; the legend layer of Fig. 3 is static.
	Static bool `json:"static"`
	// Placement locates each data object on the canvas.
	Placement *Placement `json:"placement,omitempty"`
	// Renderer names a registered rendering function.
	Renderer string `json:"renderer"`
	// LOD selects level-of-detail serving for this layer: "auto" makes
	// precompute build an aggregation pyramid (per-zoom-level grid cells
	// carrying count/sum/extent plus a representative row) so any
	// viewport scans a bounded row count regardless of dataset size.
	// Empty serves raw rows at every zoom. Only separable layers with a
	// query support "auto".
	LOD string `json:"lod,omitempty"`
}

// Placement locates data objects on the canvas. Exactly one of the two
// forms is used:
//
//   - Separable (§3.2): the (x, y) placement of objects are raw data
//     attributes or a simple scaling thereof. Kyrix skips
//     precomputation and queries the base table's spatial index
//     directly.
//   - Functional: a registered func(Row) Rect computes each object's
//     bounding box; the backend precomputes a materialized layer table.
type Placement struct {
	// Separable placement.
	XCol   string  `json:"xCol,omitempty"`
	YCol   string  `json:"yCol,omitempty"`
	XScale float64 `json:"xScale,omitempty"` // 0 means 1
	YScale float64 `json:"yScale,omitempty"`
	Radius float64 `json:"radius,omitempty"` // object half-extent in px

	// Functional placement.
	Func string `json:"func,omitempty"`
}

// Separable reports whether p is a separable placement.
func (p *Placement) Separable() bool { return p != nil && p.Func == "" }

// Jump is a customized transition between two canvases (Fig. 3:
// app.addJump(new Jump(from, to, type, selector, newViewport, name))).
type Jump struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Type JumpType `json:"type"`
	// Selector names a registered func(row, layerIdx) bool choosing
	// which objects on the from-canvas can trigger this jump.
	Selector string `json:"selector,omitempty"`
	// NewViewport names a registered func(row) Point giving the
	// viewport center on the to-canvas.
	NewViewport string `json:"newViewport,omitempty"`
	// Name names a registered func(row) string labelling the jump
	// ("County map of " + row[3] in Fig. 3).
	Name string `json:"nameFunc,omitempty"`
}

// MarshalJSON/Unmarshal helpers — the spec is plain JSON already; these
// entry points just fix the signatures used by the compiler and tools.

// ToJSON serializes the app spec.
func (a *App) ToJSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// FromJSON parses an app spec.
func FromJSON(data []byte) (*App, error) {
	var a App
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &a, nil
}

// Canvas lookup.
func (a *App) Canvas(id string) (*Canvas, bool) {
	for i := range a.Canvases {
		if a.Canvases[i].ID == id {
			return &a.Canvases[i], true
		}
	}
	return nil, false
}

// Transform lookup within a canvas.
func (c *Canvas) Transform(id string) (*Transform, bool) {
	for i := range c.Transforms {
		if c.Transforms[i].ID == id {
			return &c.Transforms[i], true
		}
	}
	return nil, false
}

// Rect returns the canvas extent.
func (c *Canvas) Rect() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: c.W, MaxY: c.H}
}

// JumpsFrom returns the jumps whose From is canvasID.
func (a *App) JumpsFrom(canvasID string) []Jump {
	var out []Jump
	for _, j := range a.Jumps {
		if j.From == canvasID {
			out = append(out, j)
		}
	}
	return out
}

// ZoomFactor returns the geometric zoom factor of a jump from canvas
// from to canvas to (the ratio of canvas widths; 5x in the crime-map
// example).
func (a *App) ZoomFactor(j Jump) (float64, error) {
	from, ok := a.Canvas(j.From)
	if !ok {
		return 0, fmt.Errorf("spec: jump from unknown canvas %q", j.From)
	}
	to, ok := a.Canvas(j.To)
	if !ok {
		return 0, fmt.Errorf("spec: jump to unknown canvas %q", j.To)
	}
	if from.W == 0 {
		return 0, fmt.Errorf("spec: zero-width canvas %q", j.From)
	}
	return to.W / from.W, nil
}
