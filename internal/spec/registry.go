package spec

import (
	"fmt"
	"sort"
	"sync"

	"kyrix/internal/geom"
	"kyrix/internal/storage"
)

// TransformFunc post-processes one query result row (the paper lets
// developers use D3/Vega here; in Go it is any row mapper).
type TransformFunc func(storage.Row) storage.Row

// PlacementFunc computes a data object's bounding box on the canvas
// (used for non-separable placements like pie charts, §3.2).
type PlacementFunc func(storage.Row) geom.Rect

// SelectorFunc decides whether an object on a given layer can trigger a
// jump (Fig. 3's selector(row, layerId)).
type SelectorFunc func(row storage.Row, layerIdx int) bool

// ViewportFunc maps a clicked object to the new viewport center on the
// destination canvas (Fig. 3's newViewport(row)).
type ViewportFunc func(storage.Row) geom.Point

// NameFunc labels a jump for UI display (Fig. 3's jumpName(row)).
type NameFunc func(storage.Row) string

// Registry resolves the function names used in a spec. It is safe for
// concurrent use; registration typically happens at init time.
type Registry struct {
	mu         sync.RWMutex
	transforms map[string]TransformFunc
	placements map[string]PlacementFunc
	selectors  map[string]SelectorFunc
	viewports  map[string]ViewportFunc
	names      map[string]NameFunc
	renderers  map[string]bool // renderers live in the frontend; the registry tracks declared names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		transforms: make(map[string]TransformFunc),
		placements: make(map[string]PlacementFunc),
		selectors:  make(map[string]SelectorFunc),
		viewports:  make(map[string]ViewportFunc),
		names:      make(map[string]NameFunc),
		renderers:  make(map[string]bool),
	}
}

// RegisterTransform adds a named transform function.
func (r *Registry) RegisterTransform(name string, fn TransformFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transforms[name] = fn
}

// RegisterPlacement adds a named placement function.
func (r *Registry) RegisterPlacement(name string, fn PlacementFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.placements[name] = fn
}

// RegisterSelector adds a named jump selector.
func (r *Registry) RegisterSelector(name string, fn SelectorFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.selectors[name] = fn
}

// RegisterViewport adds a named new-viewport function.
func (r *Registry) RegisterViewport(name string, fn ViewportFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.viewports[name] = fn
}

// RegisterName adds a named jump-name function.
func (r *Registry) RegisterName(name string, fn NameFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names[name] = fn
}

// RegisterRenderer declares a renderer name as available. The actual
// drawing function lives in the frontend's renderer table; the compiler
// only checks the name exists.
func (r *Registry) RegisterRenderer(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.renderers[name] = true
}

// Transform resolves a transform by name ("" resolves to nil, the
// identity).
func (r *Registry) Transform(name string) (TransformFunc, error) {
	if name == "" {
		return nil, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.transforms[name]
	if !ok {
		return nil, fmt.Errorf("spec: unregistered transform func %q (have %v)", name, keys(r.transforms))
	}
	return fn, nil
}

// Placement resolves a placement function by name.
func (r *Registry) Placement(name string) (PlacementFunc, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.placements[name]
	if !ok {
		return nil, fmt.Errorf("spec: unregistered placement func %q (have %v)", name, keys(r.placements))
	}
	return fn, nil
}

// Selector resolves a selector ("" resolves to always-true).
func (r *Registry) Selector(name string) (SelectorFunc, error) {
	if name == "" {
		return func(storage.Row, int) bool { return true }, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.selectors[name]
	if !ok {
		return nil, fmt.Errorf("spec: unregistered selector %q (have %v)", name, keys(r.selectors))
	}
	return fn, nil
}

// Viewport resolves a new-viewport function ("" centers on the clicked
// object scaled by the jump's zoom factor; the frontend applies that
// default).
func (r *Registry) Viewport(name string) (ViewportFunc, error) {
	if name == "" {
		return nil, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.viewports[name]
	if !ok {
		return nil, fmt.Errorf("spec: unregistered viewport func %q (have %v)", name, keys(r.viewports))
	}
	return fn, nil
}

// Name resolves a jump-name function ("" resolves to a constant label).
func (r *Registry) Name(name string) (NameFunc, error) {
	if name == "" {
		return func(storage.Row) string { return "" }, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.names[name]
	if !ok {
		return nil, fmt.Errorf("spec: unregistered name func %q (have %v)", name, keys(r.names))
	}
	return fn, nil
}

// HasRenderer reports whether a renderer name was declared.
func (r *Registry) HasRenderer(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.renderers[name]
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
