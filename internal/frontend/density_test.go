package frontend

import (
	"testing"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/prefetch"
	"kyrix/internal/server"
)

func TestDensityFieldLearnsFromFetches(t *testing.T) {
	c, _ := newTestClient(t, DefaultOptions())
	field := c.DensityField(1)
	// Before any fetch: nothing observed.
	if _, ok := field(c.Viewport()); ok {
		t.Fatal("density known before any fetch")
	}
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	d, ok := field(c.Viewport())
	if !ok || d <= 0 {
		t.Fatalf("density after load = %g ok=%v", d, ok)
	}
	// The uniform test dataset: observed density should be near
	// n/(W*H) = 3000/(2048*1024).
	want := 3000.0 / (2048 * 1024)
	if d < want/3 || d > want*3 {
		t.Fatalf("density = %g want ~%g", d, want)
	}
	// A far-away unobserved region is still unknown.
	if _, ok := field(geom.RectXYWH(999999, 999999, 10, 10)); ok {
		t.Fatal("unobserved region should be unknown")
	}
}

func TestDensityFieldFromTiles(t *testing.T) {
	c, _ := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.DensityField(1)(c.Viewport()); !ok {
		t.Fatal("tile fetches must feed the density field")
	}
}

func TestSemanticPrefetchIntegration(t *testing.T) {
	c, _ := newTestClient(t, DefaultOptions())
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	// Walk around to populate the density grid.
	for i := 0; i < 4; i++ {
		if _, err := c.PanBy(600, 0); err != nil {
			t.Fatal(err)
		}
	}
	sem := prefetch.NewSemantic(c.DensityField(1))
	pf := prefetch.NewPrefetcher(sem, c, []int{1},
		geom.Rect{MinX: 0, MinY: 0, MaxX: c.Canvas().W, MaxY: c.Canvas().H})
	pf.OnPan(c.Viewport())
	// With observed neighbors the semantic predictor issues a
	// prefetch; it must not error against the live backend.
	if pf.Errs != 0 {
		t.Fatalf("semantic prefetch errors = %d", pf.Errs)
	}
}

func TestParallelTileFetch(t *testing.T) {
	seq, _ := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
	})
	par, _ := newTestClient(t, Options{
		Scheme:           fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:            server.CodecJSON,
		CacheBytes:       16 << 20,
		FetchConcurrency: 6,
	})
	repSeq, err := seq.Load()
	if err != nil {
		t.Fatal(err)
	}
	repPar, err := par.Load()
	if err != nil {
		t.Fatal(err)
	}
	// Same tiles, same rows, either way.
	if repSeq.Requests != repPar.Requests {
		t.Fatalf("requests: seq %d par %d", repSeq.Requests, repPar.Requests)
	}
	if repSeq.Rows != repPar.Rows {
		t.Fatalf("rows: seq %d par %d", repSeq.Rows, repPar.Rows)
	}
	// Objects visible identically.
	a, _ := seq.ObjectsInViewport(1)
	b, _ := par.ObjectsInViewport(1)
	if len(a) != len(b) {
		t.Fatalf("objects: seq %d par %d", len(a), len(b))
	}
	// And panning keeps working in parallel mode.
	if _, err := par.PanBy(256, 0); err != nil {
		t.Fatal(err)
	}
}
