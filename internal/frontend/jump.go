package frontend

import (
	"encoding/json"
	"fmt"

	"kyrix/internal/geom"
	"kyrix/internal/spec"
	"kyrix/internal/storage"
)

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

// JumpChoice is one jump a clicked object can trigger, with its display
// label (the paper's Fig. 2b shows these as a menu during the zoom
// transition).
type JumpChoice struct {
	Index int // index into Meta().Jumps
	Label string
	To    string
}

// JumpsFor returns the jumps available from the current canvas for a
// clicked object on layer layerIdx, applying each jump's selector
// ("developers can specify a subset of objects on the from canvas that
// can trigger this jump").
func (c *Client) JumpsFor(row storage.Row, layerIdx int) ([]JumpChoice, error) {
	if c.ca == nil {
		return nil, fmt.Errorf("frontend: jumps need a compiled app (NewClient got nil)")
	}
	var out []JumpChoice
	for i, j := range c.meta.Jumps {
		if j.From != c.canvas.ID {
			continue
		}
		fns := c.ca.JumpFuncs[i]
		if !fns.Selector(row, layerIdx) {
			continue
		}
		out = append(out, JumpChoice{Index: i, Label: fns.Name(row), To: j.To})
	}
	return out, nil
}

// Jump executes jump jumpIdx triggered by the clicked row: it switches
// to the destination canvas, computes the new viewport (via the jump's
// newViewport function, or by scaling the clicked point by the zoom
// factor for plain geometric zooms), and fetches the new viewport's
// data ("a jump to a different canvas").
func (c *Client) Jump(jumpIdx int, row storage.Row) (FetchReport, error) {
	if c.ca == nil {
		return FetchReport{}, fmt.Errorf("frontend: jumps need a compiled app (NewClient got nil)")
	}
	if jumpIdx < 0 || jumpIdx >= len(c.meta.Jumps) {
		return FetchReport{}, fmt.Errorf("frontend: no jump %d", jumpIdx)
	}
	j := c.meta.Jumps[jumpIdx]
	if j.From != c.canvas.ID {
		return FetchReport{}, fmt.Errorf("frontend: jump %d starts from %q, current canvas is %q", jumpIdx, j.From, c.canvas.ID)
	}
	fns := c.ca.JumpFuncs[jumpIdx]

	var center geom.Point
	switch {
	case fns.NewViewport != nil && row != nil:
		center = fns.NewViewport(row)
	case row != nil:
		// Default: keep the clicked point centered, scaled to the
		// destination canvas (geometric zoom semantics).
		lm := &c.canvas.Layers[0]
		for li := range c.canvas.Layers {
			if c.canvas.Layers[li].HasData {
				lm = &c.canvas.Layers[li]
				break
			}
		}
		p := lm.RowBox(row).Center()
		center = geom.Point{X: p.X * fns.ZoomFactor, Y: p.Y * fns.ZoomFactor}
	default:
		center = c.viewport.Center()
	}

	if err := c.setCanvas(j.To); err != nil {
		return FetchReport{}, err
	}
	c.viewport = geom.RectXYWH(
		center.X-c.meta.ViewportW/2, center.Y-c.meta.ViewportH/2,
		c.meta.ViewportW, c.meta.ViewportH,
	).Clamp(c.canvasRect())
	return c.Load()
}

// compiledAppOf is a test hook.
func (c *Client) compiledAppOf() *spec.CompiledApp { return c.ca }
