package frontend

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/server"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// multiLayerApp builds a single canvas with TWO data layers over the
// same points (dots and halos) — the multi-layer viewport the framed
// batch protocol serves in one round trip.
func multiLayerApp(t testing.TB, n int) (*sqldb.DB, *spec.CompiledApp) {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	d := workload.Uniform(n, 2048, 1024, 7)
	for _, p := range d.Points {
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	reg.RegisterRenderer("halos")
	cols := []spec.ColumnSpec{
		{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
		{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
	}
	app := &spec.App{
		Name: "twolayer",
		Canvases: []spec.Canvas{{
			ID: "main", W: 2048, H: 1024,
			Transforms: []spec.Transform{
				{ID: "pts", Query: "SELECT * FROM points", Columns: cols},
			},
			Layers: []spec.Layer{
				{TransformID: "pts",
					Placement: &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
					Renderer:  "dots"},
				{TransformID: "pts",
					Placement: &spec.Placement{XCol: "x", YCol: "y", Radius: 4},
					Renderer:  "halos"},
			},
		}},
		InitialCanvas: "main", InitialX: 1024, InitialY: 512,
		ViewportW: 512, ViewportH: 512,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	return db, ca
}

// countingTransport counts round trips by URL path.
type countingTransport struct {
	mu    sync.Mutex
	calls map[string]int
}

func (ct *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ct.mu.Lock()
	if ct.calls == nil {
		ct.calls = make(map[string]int)
	}
	ct.calls[req.URL.Path]++
	ct.mu.Unlock()
	return http.DefaultTransport.RoundTrip(req)
}

func (ct *countingTransport) count(path string) int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.calls[path]
}

func (ct *countingTransport) reset() {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.calls = nil
}

// TestMultiLayerViewportOneRoundTrip is the tentpole acceptance test:
// a viewport over a canvas with two dbox layers is served in exactly
// one /batch v2 round trip — v1 needed one /dbox per layer.
func TestMultiLayerViewportOneRoundTrip(t *testing.T) {
	db, ca := multiLayerApp(t, 2500)
	srv, hs := startBackend(t, db, ca)
	ct := &countingTransport{}
	c, err := NewClient(hs.URL, ca, Options{
		Scheme:     fetch.DBox50,
		Codec:      server.CodecBinary,
		CacheBytes: 16 << 20,
		BatchSize:  8,
		HTTPClient: &http.Client{Transport: ct},
	})
	if err != nil {
		t.Fatal(err)
	}
	ct.reset()

	rep, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.count("/batch"); got != 1 {
		t.Fatalf("initial load used %d /batch round trips, want exactly 1", got)
	}
	if got := ct.count("/dbox"); got != 0 {
		t.Fatalf("initial load leaked %d /dbox round trips", got)
	}
	if rep.Requests != 1 {
		t.Fatalf("rep.Requests = %d, want 1", rep.Requests)
	}
	if rep.FirstFrame <= 0 || rep.FirstFrame > rep.Duration {
		t.Fatalf("FirstFrame = %v (duration %v)", rep.FirstFrame, rep.Duration)
	}
	if rep.WireBytes <= 0 {
		t.Fatalf("WireBytes = %d", rep.WireBytes)
	}
	for li := 0; li < 2; li++ {
		rows, err := c.ObjectsInViewport(li)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatalf("layer %d empty after batched load", li)
		}
	}
	if got := srv.Stats.BoxRequests.Load(); got != 2 {
		t.Fatalf("server counted %d box items, want 2 (one per layer)", got)
	}

	// A pan that escapes both boxes refetches both layers — still one
	// round trip.
	ct.reset()
	if _, err := c.PanBy(700, 0); err != nil {
		t.Fatal(err)
	}
	if got := ct.count("/batch"); got != 1 {
		t.Fatalf("pan used %d /batch round trips, want 1", got)
	}

	// A pan inside the current boxes costs zero round trips.
	ct.reset()
	rep, err = c.PanBy(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.count("/batch") + ct.count("/dbox") + ct.count("/tile"); got != 0 {
		t.Fatalf("in-box pan hit the network %d times", got)
	}
	if rep.CacheHits != 2 {
		t.Fatalf("in-box pan CacheHits = %d, want 2", rep.CacheHits)
	}
}

// TestV2MatchesV1Results cross-checks the two protocols: the same
// trace over tiles and boxes yields the same visible objects.
func TestV2MatchesV1Results(t *testing.T) {
	for _, scheme := range []fetch.Granularity{
		fetch.DBox50,
		{Kind: "tile", Design: "spatial", TileSize: 256},
	} {
		db, ca := multiLayerApp(t, 2000)
		_, hs := startBackend(t, db, ca)
		v2c, err := NewClient(hs.URL, ca, Options{
			Scheme: scheme, Codec: server.CodecJSON,
			CacheBytes: 16 << 20, BatchSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		v1c, err := NewClient(hs.URL, ca, Options{
			Scheme: scheme, Codec: server.CodecJSON,
			CacheBytes: 16 << 20, BatchSize: 8, BatchProtocol: ProtocolV1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, cli := range []*Client{v2c, v1c} {
			if _, err := cli.Load(); err != nil {
				t.Fatal(err)
			}
			if _, err := cli.PanBy(400, 100); err != nil {
				t.Fatal(err)
			}
		}
		for li := 0; li < 2; li++ {
			a, _ := v2c.ObjectsInViewport(li)
			b, _ := v1c.ObjectsInViewport(li)
			if len(a) != len(b) || len(a) == 0 {
				t.Fatalf("scheme %s layer %d: v2 sees %d objects, v1 %d",
					scheme.Name(), li, len(a), len(b))
			}
		}
	}
}

// v1OnlyProxy forwards to a real backend but rejects v2 batch bodies
// the way a pre-v2 server would (it never learned the "items" field,
// finds no tiles, answers 400).
func v1OnlyProxy(t *testing.T, backend http.Handler) *httptest.Server {
	t.Helper()
	var rejected int
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/batch" {
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			// A v1 server never learned the version field: any framed
			// request decodes to zero tiles and is rejected.
			if strings.Contains(string(body), `"v":2`) || strings.Contains(string(body), `"v":3`) {
				rejected++
				http.Error(w, "empty batch", http.StatusBadRequest)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		backend.ServeHTTP(w, r)
	})
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs
}

// TestV2FallsBackToV1 covers negotiation: against a v1-only server the
// client downgrades once, remembers it, and keeps working through the
// v1 paths.
func TestV2FallsBackToV1(t *testing.T) {
	db, ca := multiLayerApp(t, 1500)
	srv, err := server.New(db, ca, server.Options{
		CacheBytes: 8 << 20,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{256},
			MappingIndex: sqldb.IndexBTree,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := v1OnlyProxy(t, srv.Handler())

	c, err := NewClient(hs.URL, ca, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
		BatchSize:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Load()
	if err != nil {
		t.Fatalf("load should downgrade to v1, got: %v", err)
	}
	if !c.v1Fallback {
		t.Fatal("client should remember the v1 downgrade")
	}
	if rep.Rows == 0 || rep.Requests == 0 {
		t.Fatalf("fallback load fetched nothing: %+v", rep)
	}
	if rep.FirstFrame != 0 {
		t.Fatalf("v1 fallback should not report FirstFrame, got %v", rep.FirstFrame)
	}
	// Later interactions go straight to v1 (no second rejected v2
	// attempt): pan and confirm it still works.
	if _, err := c.PanBy(600, 0); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ObjectsInViewport(0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("fallback client sees %d objects, %v", len(rows), err)
	}

	// Forcing v2 against the same server is a hard error, not a
	// silent downgrade.
	fc, err := NewClient(hs.URL, ca, Options{
		Scheme:        fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:         server.CodecJSON,
		CacheBytes:    16 << 20,
		BatchProtocol: ProtocolV2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Load(); err == nil {
		t.Fatal("forced v2 against a v1-only server must fail")
	}
}

// TestV2PerFrameErrorIsolation: one failing item must not discard its
// siblings — the good layers still land, and the error surfaces.
func TestV2PerFrameErrorIsolation(t *testing.T) {
	db, ca := multiLayerApp(t, 1500)
	_, hs := startBackend(t, db, ca)
	c, err := NewClient(hs.URL, ca, Options{
		Scheme:     fetch.DBoxExact,
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
		BatchSize:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build a batch with one good and one broken item through the
	// internal path the viewport fetch uses.
	var got []int
	subs := []v2Sub{
		{item: server.BatchItem{Kind: "dbox", Layer: 0, MinX: 0, MinY: 0, MaxX: 500, MaxY: 500},
			merge: func(fr frameResult) { got = append(got, len(fr.dr.Rows)) }},
		{item: server.BatchItem{Kind: "dbox", Layer: 9, MinX: 0, MinY: 0, MaxX: 500, MaxY: 500},
			merge: func(fr frameResult) { t.Error("broken item must not merge") }},
	}
	var rep FetchReport
	err = c.runBatchV2(subs, &rep, time.Now())
	if err == nil {
		t.Fatal("batch with a broken item should surface the error")
	}
	if len(got) != 1 || got[0] == 0 {
		t.Fatalf("good sibling did not merge: %v", got)
	}
	// The server accepted the protocol and streamed the batch; a
	// per-frame error must still settle negotiation, or chunked
	// fetches would re-negotiate (and never overlap) forever.
	if !c.protoConfirmed {
		t.Fatal("per-frame error left the protocol unconfirmed")
	}
}

// TestPrefetchBoxesOneRoundTrip: warming every layer's prefetch slot
// costs one framed round trip, and the prefetched boxes serve a later
// pan without the network.
func TestPrefetchBoxesOneRoundTrip(t *testing.T) {
	db, ca := multiLayerApp(t, 2000)
	_, hs := startBackend(t, db, ca)
	ct := &countingTransport{}
	c, err := NewClient(hs.URL, ca, Options{
		Scheme:     fetch.DBoxExact,
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
		BatchSize:  8,
		HTTPClient: &http.Client{Transport: ct},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}

	// Predict the viewport one step right and warm both layers.
	next := c.Viewport().Translate(600, 0).Inflate(0.5)
	ct.reset()
	if err := c.PrefetchBoxes([]int{0, 1}, next); err != nil {
		t.Fatal(err)
	}
	if got := ct.count("/batch"); got != 1 {
		t.Fatalf("prefetching 2 layers used %d round trips, want 1", got)
	}

	// The pan into the predicted region is served from the prefetch
	// slots: zero network.
	ct.reset()
	rep, err := c.Pan(c.Viewport().Translate(600, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.count("/batch") + ct.count("/dbox"); got != 0 {
		t.Fatalf("prefetched pan hit the network %d times", got)
	}
	if rep.CacheHits != 2 {
		t.Fatalf("prefetched pan CacheHits = %d, want 2", rep.CacheHits)
	}
}
