// Package frontend implements the Kyrix frontend as a headless
// simulator: it tracks the viewport, keeps the frontend cache, issues
// pan and jump interactions against the backend over HTTP, and renders
// fetched objects through registered rendering functions.
//
// The frontend is "responsible for listening to users' activities,
// communicating with the backend server to fetch data and rendering
// the visualizations" (§1). Here user activities are driven
// programmatically (by examples, experiments and tests) instead of by
// mouse events; everything else — caches, request patterns, response
// handling — matches the paper's architecture.
package frontend

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"context"

	"kyrix/internal/cache"
	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/obs"
	"kyrix/internal/render"
	"kyrix/internal/server"
	"kyrix/internal/spec"
	"kyrix/internal/storage"
)

// InteractiveBudget is the paper's interactivity threshold: "the
// interactivity problem in Kyrix is to achieve a 500 ms response time".
const InteractiveBudget = 500 * time.Millisecond

// RenderFunc draws one data object onto the image. Static data-less
// layers (legends) are invoked once with a nil row.
type RenderFunc func(img *render.Image, meta *server.LayerMeta, row storage.Row, box geom.Rect)

// Options configures a frontend client.
type Options struct {
	// Scheme is the fetching granularity for every data layer.
	Scheme fetch.Granularity
	// Codec selects the wire encoding.
	Codec server.Codec
	// CacheBytes is the frontend cache budget (tiles; 0 disables).
	CacheBytes int64
	// CacheShards is the frontend cache shard count. The default (0)
	// is a single shard with exact LRU order — a Client runs on one
	// goroutine, so there is no lock contention to shard away. Set it
	// only when sharing one client's cache across goroutines.
	CacheShards int
	// HTTPClient overrides the default client (tests inject one).
	HTTPClient *http.Client
	// FetchConcurrency issues up to this many tile requests in
	// parallel (browsers open ~6 connections per host; the paper's
	// §3.2 notes frontend work "can also be easily parallelized").
	// 0 or 1 fetches sequentially, the conservative default matching
	// "every tile is individually fetched and rendered".
	FetchConcurrency int
	// BatchSize groups missing tiles into POST /batch requests of up
	// to this many tiles per round trip, replacing per-tile GETs.
	// 0 or 1 keeps the one-request-per-tile protocol.
	BatchSize int
	// BatchProtocol selects the /batch wire protocol: ProtocolAuto
	// (default) negotiates v3 — the binary framed stream covering both
	// tiles and dynamic boxes with per-frame compression and
	// delta-encoded boxes — stepping down to v2 and then v1 against
	// older servers (each downgrade remembered); ProtocolV1,
	// ProtocolV2 and ProtocolV3 force a version. In auto mode the
	// framed path engages for dbox schemes always and for tile schemes
	// when BatchSize > 1, mirroring the v1 batching opt-in.
	BatchProtocol int
	// Compression selects v3 per-frame compression: CompressionAuto
	// (default) lets the server DEFLATE-compress frames that pass its
	// worth-it heuristic, CompressionOff asks for raw frames.
	Compression int
	// Tracer, when non-nil, opens one client-side "interaction" span per
	// Load/Pan/Jump covering the whole viewport fetch (time-to-first-
	// frame and duration land as attributes), and stamps the trace
	// context onto /batch POSTs so the server's http.batch spans stitch
	// under the client's interaction trace.
	Tracer *obs.Tracer
}

// DefaultOptions uses dynamic boxes with a 64 MB frontend cache.
func DefaultOptions() Options {
	return Options{
		Scheme:     fetch.DBoxExact,
		Codec:      server.CodecJSON,
		CacheBytes: 64 << 20,
	}
}

// FetchReport describes one interaction's data fetching, the quantity
// the paper's experiments measure.
type FetchReport struct {
	Canvas    string
	Viewport  geom.Rect
	Duration  time.Duration
	Requests  int
	CacheHits int
	Rows      int
	// Bytes counts logical payload bytes: what a raw (uncompressed,
	// un-delta'd) frame would have carried, so the number is comparable
	// across protocol versions.
	Bytes int64
	// WireBytes counts bytes actually read off the wire by batch round
	// trips, envelope and framing included — the quantity v2 shrinks
	// by dropping base64 and v3 shrinks further with per-frame
	// compression and delta boxes (WireBytes/Bytes is the achieved
	// ratio). Zero for unbatched fetches (where it would equal Bytes).
	WireBytes int64
	// FirstFrame is the time from interaction start to the first
	// decoded batch frame — how long before the first layer could
	// render. Zero outside the framed protocols.
	FirstFrame time.Duration
	OverBudget bool // exceeded the 500 ms interactivity budget
}

// boxState is the dynamic-box state of one layer: the current box and
// its data ("whenever the viewport moves outside the current box,
// frontend sends the current viewport location to backend and requests
// a new box").
// A boxState's box, data and wireID are immutable once the state is
// published into Client.boxes (merges replace whole states); overlapped
// batch chunks rely on that to read declared delta bases off the
// client goroutine.
type boxState struct {
	box  geom.Rect
	data *server.DataResponse
	// wireID identifies the exact payload bytes data decodes from
	// (wire.PayloadID) — the delta-base id declared to v3 servers.
	// Zero when unknown (v1 fetches), which just disables deltas.
	wireID uint64
	// prefetched holds a box fetched ahead of need (momentum
	// prefetching, §4); promoted when the viewport enters it.
	prefetched *boxState
}

// Client is a frontend instance bound to one backend and one app.
type Client struct {
	base string
	hc   *http.Client
	opts Options

	meta        *server.AppMeta
	ca          *spec.CompiledApp // for jump function resolution (may be nil)
	canvas      *server.CanvasMeta
	viewport    geom.Rect
	fcache      *cache.LRU
	boxes       map[int]*boxState
	density     map[int]float64 // scalar rows per px², per layer
	densityGrid map[int]map[cellKey]float64
	renderers   map[string]RenderFunc
	// The negotiation ladder's memory: v2Fallback records that the
	// server rejected a v3 batch (it speaks at most v2), v1Fallback
	// that it rejected framed batches entirely, and protoConfirmed
	// that one framed exchange has succeeded — from then on chunks may
	// overlap without risking a mid-flight downgrade.
	v1Fallback     bool
	v2Fallback     bool
	protoConfirmed bool

	// ictx carries the current interaction's obs span (context.Background
	// when Options.Tracer is nil or between interactions). Written only
	// at the top of fetchViewport, before any fetch goroutine launches,
	// and read-only until the interaction completes — overlapped batch
	// chunks may safely read it concurrently.
	ictx context.Context

	// TotalReports accumulates every interaction's report.
	TotalReports []FetchReport
}

// NewClient connects to a backend, downloads the app metadata and
// positions the viewport at the app's initial location. The compiled
// app may be nil when jumps are not used (the experiments).
func NewClient(baseURL string, ca *spec.CompiledApp, opts Options) (*Client, error) {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	c := &Client{
		base:        baseURL,
		hc:          hc,
		opts:        opts,
		ca:          ca,
		fcache:      cache.NewLRUSharded(opts.CacheBytes, max(opts.CacheShards, 1)),
		boxes:       make(map[int]*boxState),
		density:     make(map[int]float64),
		densityGrid: make(map[int]map[cellKey]float64),
		renderers:   make(map[string]RenderFunc),
		ictx:        context.Background(),
	}
	resp, err := hc.Get(baseURL + "/app")
	if err != nil {
		return nil, fmt.Errorf("frontend: fetch app meta: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := readBounded(resp.Body, 4096)
		return nil, fmt.Errorf("frontend: /app: %s: %s", resp.Status, body)
	}
	var meta server.AppMeta
	if err := decodeJSON(resp.Body, &meta); err != nil {
		return nil, err
	}
	c.meta = &meta
	if err := c.setCanvas(meta.InitialCanvas); err != nil {
		return nil, err
	}
	c.viewport = geom.RectXYWH(
		meta.InitialX-meta.ViewportW/2, meta.InitialY-meta.ViewportH/2,
		meta.ViewportW, meta.ViewportH,
	).Clamp(c.canvasRect())
	return c, nil
}

// maxResponseBytes bounds any single server response read into memory
// (64 MiB, far above any real tile or batch payload): a haywire or
// hostile server cannot OOM a client. The bound is machine-checked —
// every ReadAll must flow through a limit (internal/analysis,
// boundedread).
const maxResponseBytes = 64 << 20

// readBounded reads r to EOF, failing if the payload exceeds limit.
func readBounded(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("frontend: response exceeds %d-byte limit", limit)
	}
	return data, nil
}

func decodeJSON(r io.Reader, v any) error {
	data, err := readBounded(r, maxResponseBytes)
	if err != nil {
		return fmt.Errorf("frontend: read body: %w", err)
	}
	if err := jsonUnmarshal(data, v); err != nil {
		return fmt.Errorf("frontend: decode: %w", err)
	}
	return nil
}

// Meta returns the app metadata.
func (c *Client) Meta() *server.AppMeta { return c.meta }

// Canvas returns the current canvas metadata.
func (c *Client) Canvas() *server.CanvasMeta { return c.canvas }

// Viewport returns the current viewport.
func (c *Client) Viewport() geom.Rect { return c.viewport }

// FrontendCache exposes cache stats for experiment reports.
func (c *Client) FrontendCache() *cache.LRU { return c.fcache }

// RegisterRenderer installs the drawing function for a renderer name.
func (c *Client) RegisterRenderer(name string, fn RenderFunc) {
	c.renderers[name] = fn
}

func (c *Client) canvasRect() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: c.canvas.W, MaxY: c.canvas.H}
}

func (c *Client) setCanvas(id string) error {
	for i := range c.meta.Canvases {
		if c.meta.Canvases[i].ID == id {
			c.canvas = &c.meta.Canvases[i]
			c.boxes = make(map[int]*boxState)
			return nil
		}
	}
	return fmt.Errorf("frontend: no canvas %q", id)
}

// Load fetches the data for the current viewport (the initial
// application load, and the reload after a jump).
func (c *Client) Load() (FetchReport, error) {
	return c.fetchViewport(c.viewport, true)
}

// Pan moves the viewport to a new location on the same canvas and
// fetches whatever the viewport now needs ("a pan to a different
// location on the same canvas").
func (c *Client) Pan(to geom.Rect) (FetchReport, error) {
	to = to.Clamp(c.canvasRect())
	return c.fetchViewport(to, false)
}

// PanBy pans by a delta.
func (c *Client) PanBy(dx, dy float64) (FetchReport, error) {
	return c.Pan(c.viewport.Translate(dx, dy))
}

// fetchViewport is the core of the details-on-demand loop. When the
// framed batch protocol is on, the whole viewport — every layer's
// missing tiles and dynamic boxes — rides one /batch v2 round trip;
// otherwise (or after a negotiation fallback) each layer fetches
// through its own v1 path.
func (c *Client) fetchViewport(vp geom.Rect, includeStatic bool) (FetchReport, error) {
	start := time.Now()
	rep := FetchReport{Canvas: c.canvas.ID, Viewport: vp}
	ictx, isp := c.opts.Tracer.Start(context.Background(), "interaction")
	isp.Attr("canvas", c.canvas.ID)
	isp.Attr("load", includeStatic)
	c.ictx = ictx
	defer func() {
		isp.Attr("requests", rep.Requests)
		isp.Attr("cacheHits", rep.CacheHits)
		if rep.FirstFrame > 0 {
			isp.Attr("ttffUS", rep.FirstFrame.Microseconds())
		}
		isp.Attr("overBudget", rep.OverBudget)
		isp.End()
		c.ictx = context.Background()
	}()
	if c.useBatchV2() {
		err := c.fetchViewportV2(vp, includeStatic, &rep, start)
		if err == nil {
			c.viewport = vp
			rep.Duration = time.Since(start)
			rep.OverBudget = rep.Duration > InteractiveBudget
			c.TotalReports = append(c.TotalReports, rep)
			return rep, nil
		}
		if !errors.Is(err, errServerIsV1) {
			return rep, err
		}
		if c.forcedFramed() {
			return rep, fmt.Errorf("frontend: framed batch forced but %w", err)
		}
		// Downgrade once and re-plan from scratch: nothing merged, but
		// the planning pass counted cache hits — reset the report so
		// the v1 pass below counts everything exactly once.
		c.v1Fallback = true
		rep = FetchReport{Canvas: c.canvas.ID, Viewport: vp}
	}
	for li := range c.canvas.Layers {
		lm := &c.canvas.Layers[li]
		if !lm.HasData {
			continue
		}
		if lm.Static && !includeStatic {
			continue // §2.2: static layers are not re-fetched on pan
		}
		var err error
		if lm.Static {
			// A static data layer loads its full canvas once.
			err = c.fetchBoxInto(li, lm, c.canvasRect(), &rep)
		} else {
			switch c.opts.Scheme.Kind {
			case "tile":
				err = c.fetchTiles(li, lm, vp, &rep)
			case "dbox":
				err = c.fetchDBox(li, lm, vp, &rep)
			default:
				err = fmt.Errorf("frontend: unknown scheme kind %q", c.opts.Scheme.Kind)
			}
		}
		if err != nil {
			return rep, err
		}
	}
	c.viewport = vp
	rep.Duration = time.Since(start)
	rep.OverBudget = rep.Duration > InteractiveBudget
	c.TotalReports = append(c.TotalReports, rep)
	return rep, nil
}

// fetchTiles requests the tiles intersecting vp that are not cached,
// sequentially by default or with bounded parallelism when
// FetchConcurrency > 1.
func (c *Client) fetchTiles(li int, lm *server.LayerMeta, vp geom.Rect, rep *FetchReport) error {
	sz := c.opts.Scheme.TileSize
	missing := c.missingTiles(li, sz, vp, rep)
	if len(missing) == 0 {
		return nil
	}
	if c.opts.BatchSize > 1 && len(missing) > 1 {
		return c.fetchTileBatches(li, sz, missing, rep, true)
	}
	conc := c.opts.FetchConcurrency
	if conc <= 1 || len(missing) == 1 {
		for _, tid := range missing {
			dr, n, err := c.getTile(li, sz, tid)
			if err != nil {
				return err
			}
			rep.Requests++
			rep.Rows += len(dr.Rows)
			rep.Bytes += n
			c.fcache.Put(c.tileCacheKey(li, sz, tid), dr, n)
			c.observeDensity(li, tid.TileRect(sz), len(dr.Rows))
		}
		return nil
	}
	type tileData struct {
		dr *server.DataResponse
		n  int64
	}
	return parallelCollect(len(missing), conc, func(i int) (tileData, error) {
		dr, n, err := c.getTile(li, sz, missing[i])
		return tileData{dr, n}, err
	}, func(i int, td tileData) error {
		rep.Requests++
		rep.Rows += len(td.dr.Rows)
		rep.Bytes += td.n
		c.fcache.Put(c.tileCacheKey(li, sz, missing[i]), td.dr, td.n)
		c.observeDensity(li, missing[i].TileRect(sz), len(td.dr.Rows))
		return nil
	})
}

// parallelCollect fans fetch out over n items with at most conc
// concurrent calls, merging each result on the caller's goroutine
// (merge may touch unsynchronized client state). Failed items are
// skipped, the rest still merge, and the first fetch or merge error is
// returned after every item settles.
func parallelCollect[T any](n, conc int, fetch func(i int) (T, error), merge func(i int, v T) error) error {
	type result struct {
		idx int
		v   T
		err error
	}
	sem := make(chan struct{}, conc)
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		i := i
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			v, err := fetch(i)
			results <- result{i, v, err}
		}()
	}
	var firstErr error
	for j := 0; j < n; j++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if err := merge(r.idx, r.v); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fetchTileBatches fetches missing tiles through POST /batch — many
// tiles for the price of one HTTP exchange. Chunks are capped at the
// server's MaxBatchTiles, and multiple chunks go out in parallel under
// FetchConcurrency, matching the per-tile path's parallelism. observe
// controls density bookkeeping: viewport fetches record it, prefetches
// of predicted (never-viewed) regions do not, matching the per-tile
// paths.
func (c *Client) fetchTileBatches(li int, sz float64, missing []geom.TileID, rep *FetchReport, observe bool) error {
	batch := c.opts.BatchSize
	if batch > server.MaxBatchTiles {
		batch = server.MaxBatchTiles
	}
	var chunks [][]geom.TileID
	for start := 0; start < len(missing); start += batch {
		end := start + batch
		if end > len(missing) {
			end = len(missing)
		}
		chunks = append(chunks, missing[start:end])
	}

	// merge folds one fetched chunk into the cache and report; it runs
	// only on this goroutine (rep, density and boxes are not locked).
	// Per-tile failures don't discard the chunk's other tiles — they
	// are cached like the per-tile GET path would, and the first
	// error is reported after the merge.
	merge := func(chunk []geom.TileID, res batchResult) error {
		tiles := res.tiles
		rep.Requests++
		rep.WireBytes += res.wire
		var firstErr error
		for i, bt := range tiles {
			if bt.Err != "" {
				if firstErr == nil {
					firstErr = fmt.Errorf("frontend: batch tile %d/%d: %s", bt.Col, bt.Row, bt.Err)
				}
				continue
			}
			dr, err := server.Decode(bt.Data, c.opts.Codec)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			n := int64(len(bt.Data))
			rep.Rows += len(dr.Rows)
			rep.Bytes += n
			c.fcache.Put(c.tileCacheKey(li, sz, chunk[i]), dr, n)
			if observe {
				c.observeDensity(li, chunk[i].TileRect(sz), len(dr.Rows))
			}
		}
		return firstErr
	}

	// conc = 1 serializes the chunks through the same code path; a
	// per-tile failure in one chunk never abandons the others' tiles.
	return parallelCollect(len(chunks), max(c.opts.FetchConcurrency, 1), func(i int) (batchResult, error) {
		return c.postBatch(li, sz, chunks[i])
	}, func(i int, res batchResult) error {
		return merge(chunks[i], res)
	})
}

// batchResult is one v1 batch round trip: per-tile results plus the
// size of the JSON envelope as read off the wire.
type batchResult struct {
	tiles []server.BatchTile
	wire  int64
}

// postBatch issues one POST /batch round trip and returns the per-tile
// results in request order. Per-tile failures are returned in the
// slice (BatchTile.Err set, Data empty) for the caller to merge
// around; the error return covers transport and envelope failures
// only.
func (c *Client) postBatch(li int, sz float64, tiles []geom.TileID) (batchResult, error) {
	req := server.BatchRequest{
		Canvas: c.canvas.ID,
		Layer:  li,
		Size:   sz,
		Design: c.opts.Scheme.Design,
		Codec:  c.opts.Codec,
		Tiles:  make([]server.TileRef, len(tiles)),
	}
	for i, tid := range tiles {
		req.Tiles[i] = server.TileRef{Col: tid.Col, Row: tid.Row}
	}
	body, err := jsonMarshal(req)
	if err != nil {
		return batchResult{}, fmt.Errorf("frontend: encode batch: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return batchResult{}, fmt.Errorf("frontend: batch: %w", err)
	}
	defer resp.Body.Close()
	data, err := readBounded(resp.Body, maxResponseBytes)
	if err != nil {
		return batchResult{}, fmt.Errorf("frontend: batch read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return batchResult{}, fmt.Errorf("frontend: batch: %s: %s", resp.Status, data)
	}
	var out server.BatchResponse
	if err := jsonUnmarshal(data, &out); err != nil {
		return batchResult{}, fmt.Errorf("frontend: decode batch: %w", err)
	}
	if len(out.Tiles) != len(tiles) {
		return batchResult{}, fmt.Errorf("frontend: batch returned %d tiles, asked %d", len(out.Tiles), len(tiles))
	}
	// Per-tile errors are left in the slice for the caller to merge
	// around: one failed tile must not discard its siblings.
	return batchResult{tiles: out.Tiles, wire: int64(len(data))}, nil
}

func (c *Client) tileCacheKey(li int, sz float64, tid geom.TileID) string {
	return fmt.Sprintf("%s/%s", c.canvas.ID, fetch.TileKeyOf(fmt.Sprint(li), sz, tid))
}

func (c *Client) getTile(li int, sz float64, tid geom.TileID) (*server.DataResponse, int64, error) {
	u := fmt.Sprintf("%s/tile?canvas=%s&layer=%d&size=%g&col=%d&row=%d&design=%s&codec=%s",
		c.base, url.QueryEscape(c.canvas.ID), li, sz, tid.Col, tid.Row,
		c.opts.Scheme.Design, c.opts.Codec)
	return c.getData(u)
}

// missingTiles scans the frontend cache for the tiles vp needs,
// counting hits on rep and returning the misses — the request-planning
// step shared by the per-tile/v1-batch path and the v2 framed path.
func (c *Client) missingTiles(li int, sz float64, vp geom.Rect, rep *FetchReport) []geom.TileID {
	var missing []geom.TileID
	for _, tid := range fetch.TilesNeeded(vp, sz, c.canvas.W, c.canvas.H) {
		if c.fcache.Contains(c.tileCacheKey(li, sz, tid)) {
			rep.CacheHits++
			continue
		}
		missing = append(missing, tid)
	}
	return missing
}

// nextDBox applies the dynamic-box reuse rules for one layer: promote
// a prefetched box the viewport entered, report a cache hit while the
// current box still covers vp, and otherwise return the box to
// request. Shared by the per-layer (v1) and batched (v2) paths so the
// two protocols can never disagree on what to fetch.
func (c *Client) nextDBox(li int, vp geom.Rect, rep *FetchReport) (geom.Rect, bool) {
	st := c.boxes[li]
	want := fetch.BoxFor(c.opts.Scheme, vp, c.canvasRect(), c.density[li])
	if st != nil {
		// Promote a prefetched box when the viewport entered it.
		if st.prefetched != nil && st.prefetched.box.Contains(vp) {
			promoted := st.prefetched
			promoted.prefetched = nil
			c.boxes[li] = promoted
			st = promoted
		}
		if !fetch.NeedNewBox(st.box, vp) {
			// An auto-LOD layer's rows are zoom-dependent: a box fetched
			// zoomed-out holds coarse aggregate cells, so reusing it after
			// a deep zoom-in would pin that coarse detail on screen
			// forever (the zoomed-in viewport stays inside the big box).
			// Refetch once the held box is far larger than the box this
			// viewport would request; 4x area exceeds any inflate
			// scheme's natural held-to-requested ratio, so pure panning
			// never trips it.
			if !c.canvas.Layers[li].LOD || st.box.Area() < 4*want.Area() {
				rep.CacheHits++
				return geom.Rect{}, false
			}
		}
	}
	return want, true
}

// fetchDBox applies the dynamic-box protocol for one layer.
func (c *Client) fetchDBox(li int, lm *server.LayerMeta, vp geom.Rect, rep *FetchReport) error {
	box, need := c.nextDBox(li, vp, rep)
	if !need {
		return nil
	}
	return c.fetchBoxInto(li, lm, box, rep)
}

func (c *Client) fetchBoxInto(li int, lm *server.LayerMeta, box geom.Rect, rep *FetchReport) error {
	dr, n, err := c.getBox(li, box)
	if err != nil {
		return err
	}
	rep.Requests++
	rep.Rows += len(dr.Rows)
	rep.Bytes += n
	prev := c.boxes[li]
	st := &boxState{box: box, data: dr}
	if prev != nil {
		st.prefetched = prev.prefetched
	}
	c.boxes[li] = st
	c.observeDensity(li, box, len(dr.Rows))
	return nil
}

func (c *Client) getBox(li int, box geom.Rect) (*server.DataResponse, int64, error) {
	u := fmt.Sprintf("%s/dbox?canvas=%s&layer=%d&minx=%g&miny=%g&maxx=%g&maxy=%g&codec=%s",
		c.base, url.QueryEscape(c.canvas.ID), li, box.MinX, box.MinY, box.MaxX, box.MaxY, c.opts.Codec)
	return c.getData(u)
}

func (c *Client) getData(u string) (*server.DataResponse, int64, error) {
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, 0, fmt.Errorf("frontend: %w", err)
	}
	defer resp.Body.Close()
	body, err := readBounded(resp.Body, maxResponseBytes)
	if err != nil {
		return nil, 0, fmt.Errorf("frontend: read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("frontend: %s: %s", resp.Status, body)
	}
	dr, err := server.Decode(body, c.opts.Codec)
	if err != nil {
		return nil, 0, err
	}
	return dr, int64(len(body)), nil
}

// PrefetchBox fetches a box for a layer ahead of need and parks it in
// the layer's prefetch slot (momentum-based prefetching, §4). It does
// not count toward interaction reports.
func (c *Client) PrefetchBox(li int, box geom.Rect) error {
	lm := &c.canvas.Layers[li]
	if !lm.HasData || lm.Static {
		return nil
	}
	dr, _, err := c.getBox(li, box)
	if err != nil {
		return err
	}
	st := c.boxes[li]
	if st == nil {
		st = &boxState{}
		c.boxes[li] = st
	}
	st.prefetched = &boxState{box: box, data: dr}
	return nil
}

// PrefetchTiles warms the frontend tile cache, using the batch
// endpoint when BatchSize allows so a whole predicted viewport costs
// one round trip (a framed v2 trip when the protocol is negotiated).
func (c *Client) PrefetchTiles(li int, sz float64, tiles []geom.TileID) error {
	var missing []geom.TileID
	for _, tid := range tiles {
		if !c.fcache.Contains(c.tileCacheKey(li, sz, tid)) {
			missing = append(missing, tid)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if c.useBatchV2() {
		subs := make([]v2Sub, len(missing))
		for i, tid := range missing {
			tid := tid
			subs[i] = v2Sub{
				item: server.BatchItem{
					Kind: "tile", Layer: li, Size: sz,
					Design: c.opts.Scheme.Design, Col: tid.Col, Row: tid.Row,
				},
				merge: func(fr frameResult) {
					c.fcache.Put(c.tileCacheKey(li, sz, tid), fr.dr, fr.rawN)
				},
			}
		}
		var rep FetchReport // prefetches do not count toward interaction reports
		err := c.runBatchV2(subs, &rep, time.Now())
		if !errors.Is(err, errServerIsV1) || c.forcedFramed() {
			return err
		}
		c.v1Fallback = true // downgrade and fall through to the v1 paths
	}
	if c.opts.BatchSize > 1 && len(missing) > 1 {
		var rep FetchReport // prefetches do not count toward interaction reports
		return c.fetchTileBatches(li, sz, missing, &rep, false)
	}
	for _, tid := range missing {
		dr, n, err := c.getTile(li, sz, tid)
		if err != nil {
			return err
		}
		c.fcache.Put(c.tileCacheKey(li, sz, tid), dr, n)
	}
	return nil
}

// ObjectsInViewport returns the (deduplicated) data objects of a layer
// whose bounding boxes intersect the current viewport, from frontend
// state only — exactly what the renderer draws.
func (c *Client) ObjectsInViewport(li int) ([]storage.Row, error) {
	lm := &c.canvas.Layers[li]
	if !lm.HasData {
		return nil, nil
	}
	var rows []storage.Row
	seen := make(map[int64]bool)
	add := func(dr *server.DataResponse) {
		for _, row := range dr.Rows {
			box := lm.RowBox(row)
			if !box.Intersects(c.viewport) {
				continue
			}
			id := row[0].AsInt()
			if seen[id] {
				continue // objects overlapping several tiles appear once
			}
			seen[id] = true
			rows = append(rows, row)
		}
	}
	if lm.Static || c.opts.Scheme.Kind == "dbox" {
		if st := c.boxes[li]; st != nil && st.data != nil {
			add(st.data)
		}
		return rows, nil
	}
	sz := c.opts.Scheme.TileSize
	for _, tid := range fetch.TilesNeeded(c.viewport, sz, c.canvas.W, c.canvas.H) {
		if v, ok := c.fcache.Get(c.tileCacheKey(li, sz, tid)); ok {
			add(v.(*server.DataResponse))
		}
	}
	return rows, nil
}

// Render rasterizes the current viewport at the given pixel size,
// invoking each layer's registered renderer bottom-up.
func (c *Client) Render(pxW, pxH int) (*render.Image, error) {
	img := render.New(pxW, pxH, c.viewport)
	for li := range c.canvas.Layers {
		lm := &c.canvas.Layers[li]
		fn, ok := c.renderers[lm.Renderer]
		if !ok {
			return nil, fmt.Errorf("frontend: no renderer %q registered", lm.Renderer)
		}
		if !lm.HasData {
			fn(img, lm, nil, geom.Rect{})
			continue
		}
		rows, err := c.ObjectsInViewport(li)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			fn(img, lm, row, lm.RowBox(row))
		}
	}
	return img, nil
}
