package frontend

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kyrix/internal/fetch"
	"kyrix/internal/server"
	"kyrix/internal/storage"
	"kyrix/internal/wire"
)

// v2OnlyProxy forwards to a real backend but rejects v3 batch bodies
// the way a v2-era server does (unknown protocol version at dispatch).
func v2OnlyProxy(t *testing.T, backend http.Handler) (*httptest.Server, *int) {
	t.Helper()
	rejected := new(int)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/batch" {
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if strings.Contains(string(body), `"v":3`) {
				*rejected++
				http.Error(w, "unsupported batch protocol v3", http.StatusBadRequest)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		backend.ServeHTTP(w, r)
	})
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs, rejected
}

// TestV3AgainstV3Server: the happy path — compressed frames, wire
// bytes below the logical payload bytes, and the same visible objects
// as a forced-v1 client replaying the same trace.
func TestV3AgainstV3Server(t *testing.T) {
	db, ca := multiLayerApp(t, 4000)
	_, hs := startBackend(t, db, ca)
	v3c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBox50, Codec: server.CodecJSON, CacheBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBox50, Codec: server.CodecJSON, CacheBytes: 16 << 20,
		BatchProtocol: ProtocolV1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wireTotal, rawTotal int64
	for _, cli := range []*Client{v3c, v1c} {
		if _, err := cli.Load(); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.PanBy(300, 80); err != nil {
			t.Fatal(err)
		}
	}
	for _, rep := range v3c.TotalReports {
		wireTotal += rep.WireBytes
		rawTotal += rep.Bytes
	}
	if !v3c.protoConfirmed || v3c.v2Fallback || v3c.v1Fallback {
		t.Fatalf("v3 negotiation state: confirmed=%v v2Fallback=%v v1Fallback=%v",
			v3c.protoConfirmed, v3c.v2Fallback, v3c.v1Fallback)
	}
	if wireTotal <= 0 || rawTotal <= 0 || wireTotal >= rawTotal {
		t.Fatalf("v3 JSON wire bytes %d not below logical bytes %d", wireTotal, rawTotal)
	}
	for li := 0; li < 2; li++ {
		a, _ := v3c.ObjectsInViewport(li)
		b, _ := v1c.ObjectsInViewport(li)
		if len(a) != len(b) || len(a) == 0 {
			t.Fatalf("layer %d: v3 sees %d objects, v1 %d", li, len(a), len(b))
		}
	}
}

// TestV3FallsBackToV2 covers the middle rung of the ladder: a server
// that speaks v2 but not v3 costs exactly one rejected v3 attempt,
// the downgrade is remembered, and the framed path keeps working.
func TestV3FallsBackToV2(t *testing.T) {
	db, ca := multiLayerApp(t, 2000)
	srv, _ := startBackend(t, db, ca)
	hs, rejected := v2OnlyProxy(t, srv.Handler())

	c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Load()
	if err != nil {
		t.Fatalf("load should downgrade to v2: %v", err)
	}
	if !c.v2Fallback || c.v1Fallback {
		t.Fatalf("fallback state: v2Fallback=%v v1Fallback=%v", c.v2Fallback, c.v1Fallback)
	}
	if *rejected != 1 {
		t.Fatalf("server saw %d rejected v3 attempts, want 1", *rejected)
	}
	if rep.Rows == 0 || rep.FirstFrame == 0 {
		t.Fatalf("v2 fallback load fetched nothing: %+v", rep)
	}
	// Later interactions go straight to v2: no second v3 attempt.
	if _, err := c.PanBy(600, 0); err != nil {
		t.Fatal(err)
	}
	if *rejected != 1 {
		t.Fatalf("pan retried v3: %d rejections", *rejected)
	}
	rows, err := c.ObjectsInViewport(0)
	if err != nil || len(rows) == 0 {
		t.Fatalf("fallback client sees %d objects, %v", len(rows), err)
	}

	// Forcing v3 against the same server is a hard error, not a
	// silent downgrade.
	fc, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
		BatchProtocol: ProtocolV3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Load(); err == nil {
		t.Fatal("forced v3 against a v2-only server must fail")
	}
}

// TestV3DoubleDowngradeToV1: a v1-only server walks the whole ladder
// (v3 rejected, v2 rejected, per-layer v1 path) in one Load.
func TestV3DoubleDowngradeToV1(t *testing.T) {
	db, ca := multiLayerApp(t, 1500)
	srv, _ := startBackend(t, db, ca)
	hs := v1OnlyProxy(t, srv.Handler())
	c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Load()
	if err != nil {
		t.Fatalf("load should walk down to v1: %v", err)
	}
	if !c.v1Fallback {
		t.Fatal("client should remember the v1 downgrade")
	}
	if rep.Rows == 0 {
		t.Fatalf("v1 fallback load fetched nothing: %+v", rep)
	}
}

// TestV3CompressionOffOverride: CompressionOff is honored end to end —
// the stream still works and ships exactly raw-sized payloads.
func TestV3CompressionOffOverride(t *testing.T) {
	db, ca := multiLayerApp(t, 3000)
	srv, hs := startBackend(t, db, ca)
	c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBox50, Codec: server.CodecJSON, CacheBytes: 16 << 20,
		Compression: CompressionOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WireBytes < rep.Bytes {
		t.Fatalf("comp-off wire bytes %d below payload bytes %d — something compressed", rep.WireBytes, rep.Bytes)
	}
	if got := srv.Stats.CompressedFrames.Load(); got != 0 {
		t.Fatalf("server compressed %d frames under comp=off", got)
	}
}

// TestV3DeltaPan: an overlapping pan sequence ships deltas — fewer
// wire bytes than the same pans over v2 — and reconstructs exactly the
// rows a v1 client fetches in full. This covers tombstone apply: rows
// leaving the box must disappear client-side.
func TestV3DeltaPan(t *testing.T) {
	for _, codec := range []server.Codec{server.CodecJSON, server.CodecBinary} {
		db, ca := multiLayerApp(t, 5000)
		srv, hs := startBackend(t, db, ca)
		newC := func(proto int) *Client {
			c, err := NewClient(hs.URL, ca, Options{
				Scheme: fetch.DBoxExact, Codec: codec, CacheBytes: 16 << 20,
				BatchProtocol: proto,
			})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		pans := func(c *Client) int64 {
			if _, err := c.Load(); err != nil {
				t.Fatal(err)
			}
			var wire int64
			for i := 0; i < 4; i++ {
				rep, err := c.PanBy(120, 30) // ~70% overlap per step
				if err != nil {
					t.Fatal(err)
				}
				wire += rep.WireBytes
			}
			return wire
		}
		v3c, v2c, v1c := newC(ProtocolV3), newC(ProtocolV2), newC(ProtocolV1)
		wireV3 := pans(v3c)
		deltas := srv.Stats.DeltaFrames.Load()
		wireV2 := pans(v2c)
		_ = pans(v1c)
		if deltas == 0 {
			t.Fatalf("codec %s: overlapping pans produced no delta frames", codec)
		}
		if wireV3 >= wireV2 {
			t.Fatalf("codec %s: v3 pan wire bytes %d not below v2's %d", codec, wireV3, wireV2)
		}
		for li := 0; li < 2; li++ {
			a, _ := v3c.ObjectsInViewport(li)
			b, _ := v1c.ObjectsInViewport(li)
			if len(a) != len(b) || len(a) == 0 {
				t.Fatalf("codec %s layer %d: v3 sees %d objects, v1 %d", codec, li, len(a), len(b))
			}
			ids := make(map[int64]bool, len(a))
			for _, row := range a {
				ids[row[0].AsInt()] = true
			}
			for _, row := range b {
				if !ids[row[0].AsInt()] {
					t.Fatalf("codec %s layer %d: v3 missing row %d", codec, li, row[0].AsInt())
				}
			}
		}
	}
}

// TestV3DeltaBaseEvicted: when the server can no longer prove the
// declared base (cache cleared under it), pans still produce correct
// full-frame results — the delta is an optimization, never a
// correctness dependency.
func TestV3DeltaBaseEvicted(t *testing.T) {
	db, ca := multiLayerApp(t, 3000)
	srv, hs := startBackend(t, db, ca)
	c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
		BatchProtocol: ProtocolV1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cli := range []*Client{c, v1c} {
		if _, err := cli.Load(); err != nil {
			t.Fatal(err)
		}
	}
	srv.BackendCache().Clear() // evict every would-be delta base
	deltasBefore := srv.Stats.DeltaFrames.Load()
	for _, cli := range []*Client{c, v1c} {
		if _, err := cli.PanBy(150, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats.DeltaFrames.Load(); got != deltasBefore {
		t.Fatalf("server delta-encoded %d frames against an evicted base", got-deltasBefore)
	}
	a, _ := c.ObjectsInViewport(0)
	b, _ := v1c.ObjectsInViewport(0)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("full-frame fallback sees %d objects, v1 %d", len(a), len(b))
	}
}

// TestV3PrefetchDeclaresDeltaBase: a momentum-style prefetch of a box
// overlapping the current one rides a delta frame, and the promoted
// prefetched box both renders correctly and seeds the next delta base.
func TestV3PrefetchDeclaresDeltaBase(t *testing.T) {
	db, ca := multiLayerApp(t, 4000)
	srv, hs := startBackend(t, db, ca)
	c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
		BatchProtocol: ProtocolV1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	next := c.Viewport().Translate(150, 0) // heavy overlap with current box
	deltasBefore := srv.Stats.DeltaFrames.Load()
	if err := c.PrefetchBoxes([]int{0, 1}, next); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats.DeltaFrames.Load() - deltasBefore; got != 2 {
		t.Fatalf("overlapping prefetch shipped %d delta frames, want 2", got)
	}
	// Pan into the prefetched region; the promoted box must hold the
	// same rows a v1 client fetches in full.
	if _, err := c.Pan(next); err != nil {
		t.Fatal(err)
	}
	if _, err := v1c.Load(); err != nil {
		t.Fatal(err)
	}
	if _, err := v1c.Pan(next); err != nil {
		t.Fatal(err)
	}
	for li := 0; li < 2; li++ {
		a, _ := c.ObjectsInViewport(li)
		b, _ := v1c.ObjectsInViewport(li)
		if len(a) != len(b) || len(a) == 0 {
			t.Fatalf("layer %d: prefetched-delta sees %d objects, v1 %d", li, len(a), len(b))
		}
	}
	// The promoted box carries its payload identity, so the next pan
	// can delta against it.
	if st := c.boxes[0]; st == nil || st.wireID == 0 {
		t.Fatal("promoted prefetched box lost its delta-base id")
	}
}

// TestDecodeFrameCorrupt covers the client's handling of hostile or
// damaged v3 frames: corrupt DEFLATE, truncated delta bodies, and a
// delta frame for a sub-request that never declared a base all surface
// as errors instead of panics or silent misdecodes.
func TestDecodeFrameCorrupt(t *testing.T) {
	c := &Client{opts: Options{Codec: server.CodecJSON}}
	dboxSub := &v2Sub{item: server.BatchItem{Kind: "dbox"}}

	if _, err := c.decodeFrame(dboxSub, wire.Frame{
		Codec: wire.CodecFlate, Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}, 3); err == nil {
		t.Fatal("corrupt flate payload must error")
	}
	good, _ := wire.Compress(bytes.Repeat([]byte(`{"cols":[]}`), 50))
	if _, err := c.decodeFrame(dboxSub, wire.Frame{
		Codec: wire.CodecFlate, Payload: good[:len(good)/2],
	}, 3); err == nil {
		t.Fatal("truncated flate payload must error")
	}
	if _, err := c.decodeFrame(dboxSub, wire.Frame{
		Codec: wire.CodecDelta, Payload: []byte{0x01},
	}, 3); err == nil {
		t.Fatal("delta for a baseless sub must error")
	}
	withBase := &v2Sub{
		item: server.BatchItem{Kind: "dbox"},
		base: &boxState{data: &server.DataResponse{}},
	}
	if _, err := c.decodeFrame(withBase, wire.Frame{
		Codec: wire.CodecDelta, Payload: []byte{0x01},
	}, 3); err == nil {
		t.Fatal("truncated delta body must error")
	}
	// The happy flate path through decodeFrame still works: a valid
	// compressed payload inflates and decodes. (Oversized bombs are
	// covered at the wire layer, whose bound decodeFrame reuses.)
	payload, err := server.Encode(&server.DataResponse{Cols: []string{"id"}, Types: server.ColTypes{storage.TInt64}}, server.CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := wire.Compress(payload)
	if fr, err := c.decodeFrame(dboxSub, wire.Frame{Codec: wire.CodecFlate, Payload: comp}, 3); err != nil || fr.dr == nil {
		t.Fatalf("valid flate frame failed: %v", err)
	} else if fr.rawN != int64(len(payload)) {
		t.Fatalf("rawN = %d, want inflated size %d", fr.rawN, len(payload))
	}
}

// TestParallelChunkStreaming: a viewport larger than MaxBatchItems is
// split into chunks that overlap under FetchConcurrency, with all
// merges landing on the caller's goroutine — and yields exactly the
// same tiles as the sequential client.
func TestParallelChunkStreaming(t *testing.T) {
	db, ca := multiLayerApp(t, 3000)
	_, hs := startBackend(t, db, ca)
	scheme := fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 16}

	ct := &countingTransport{}
	par, err := NewClient(hs.URL, ca, Options{
		Scheme: scheme, Codec: server.CodecJSON, CacheBytes: 32 << 20,
		BatchSize: 8, FetchConcurrency: 4,
		HTTPClient: &http.Client{Transport: ct},
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewClient(hs.URL, ca, Options{
		Scheme: scheme, Codec: server.CodecJSON, CacheBytes: 32 << 20,
		BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	ct.reset()
	repPar, err := par.Load()
	if err != nil {
		t.Fatal(err)
	}
	repSeq, err := seq.Load()
	if err != nil {
		t.Fatal(err)
	}
	// A 512x512 viewport at 32px tiles over two layers needs >512
	// sub-requests: at least 3 chunks at MaxBatchItems=256.
	if repSeq.Requests < 3 {
		t.Fatalf("workload too small to chunk: %d round trips", repSeq.Requests)
	}
	if repPar.Requests != repSeq.Requests || ct.count("/batch") != repSeq.Requests {
		t.Fatalf("parallel client used %d round trips (transport saw %d), sequential %d",
			repPar.Requests, ct.count("/batch"), repSeq.Requests)
	}
	if repPar.Rows != repSeq.Rows || repPar.Rows == 0 {
		t.Fatalf("parallel fetched %d rows, sequential %d", repPar.Rows, repSeq.Rows)
	}
	for li := 0; li < 2; li++ {
		a, _ := par.ObjectsInViewport(li)
		b, _ := seq.ObjectsInViewport(li)
		if len(a) != len(b) || len(a) == 0 {
			t.Fatalf("layer %d: parallel sees %d objects, sequential %d", li, len(a), len(b))
		}
	}
}

// TestParallelChunkErrorIsolation: one chunk failing mid-overlap must
// not discard sibling chunks' merges or hang the merge queue.
func TestParallelChunkErrorIsolation(t *testing.T) {
	db, ca := multiLayerApp(t, 1200)
	_, hs := startBackend(t, db, ca)
	c, err := NewClient(hs.URL, ca, Options{
		Scheme: fetch.DBoxExact, Codec: server.CodecJSON, CacheBytes: 16 << 20,
		FetchConcurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(); err != nil {
		t.Fatal(err) // confirms the protocol so later chunks overlap
	}
	// Hand-build > MaxBatchItems subs so the parallel path engages,
	// half of them broken (no such layer).
	var subs []v2Sub
	merged := 0
	for i := 0; i < server.MaxBatchItems+8; i++ {
		layer := 0
		if i%2 == 1 {
			layer = 9 // broken
		}
		subs = append(subs, v2Sub{
			item: server.BatchItem{Kind: "dbox", Layer: layer,
				MinX: float64(i), MinY: 0, MaxX: float64(i) + 50, MaxY: 50},
			merge: func(fr frameResult) { merged++ },
		})
	}
	var rep FetchReport
	err = c.runBatchV2(subs, &rep, time.Now())
	if err == nil {
		t.Fatal("broken items must surface an error")
	}
	if errors.Is(err, errServerIsV1) || errors.Is(err, errServerNoV3) {
		t.Fatalf("post-negotiation failure must not be a downgrade sentinel: %v", err)
	}
	if merged != (server.MaxBatchItems+8)/2 {
		t.Fatalf("good siblings merged %d times, want %d", merged, (server.MaxBatchItems+8)/2)
	}
	if rep.Requests != 2 {
		t.Fatalf("expected 2 chunk round trips, got %d", rep.Requests)
	}
}
