package frontend

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"kyrix/internal/geom"
	"kyrix/internal/server"
)

// Batch protocol selection for ClientOptions.BatchProtocol.
const (
	// ProtocolAuto negotiates: batch v2 when batching is enabled,
	// falling back to v1 (and remembering the downgrade) when the
	// server does not speak it.
	ProtocolAuto = 0
	// ProtocolV1 forces the buffered JSON batch protocol.
	ProtocolV1 = 1
	// ProtocolV2 forces the framed-stream protocol; a server that does
	// not speak it is an error instead of a silent downgrade.
	ProtocolV2 = 2
)

// errServerIsV1 reports that the backend rejected a v2 batch request —
// the negotiation signal that it only speaks protocol v1.
var errServerIsV1 = errors.New("frontend: server does not speak batch v2")

// useBatchV2 reports whether viewport fetches should go through the
// framed v2 batch: forced by BatchProtocol, or negotiated and no
// earlier downgrade. In auto mode v2 engages for dbox schemes
// unconditionally (the one-round-trip multi-layer viewport is the
// protocol's whole point there, and BatchSize is a tiles-only knob)
// and for tile schemes when batching is on (BatchSize > 1), mirroring
// the v1 opt-in.
func (c *Client) useBatchV2() bool {
	if c.v1Fallback {
		return false
	}
	switch c.opts.BatchProtocol {
	case ProtocolV2:
		return true
	case ProtocolV1:
		return false
	}
	return c.opts.Scheme.Kind == "dbox" || c.opts.BatchSize > 1
}

// v2Sub is one planned sub-request of a v2 batch and how to fold its
// decoded payload into client state. merge runs on the client's
// goroutine as each frame is decoded, so layers land incrementally as
// the stream arrives.
type v2Sub struct {
	item  server.BatchItem
	merge func(dr *server.DataResponse, payloadBytes int64)
}

// planViewportV2 turns one viewport move into the v2 sub-requests it
// needs across every data layer — missing tiles for tile-scheme
// layers, a new dynamic box for dbox layers whose box the viewport
// escaped, the full canvas for static layers on load. Cache hits and
// box promotions are recorded on rep as the per-layer paths would.
func (c *Client) planViewportV2(vp geom.Rect, includeStatic bool, rep *FetchReport) ([]v2Sub, error) {
	var subs []v2Sub
	for li := range c.canvas.Layers {
		li := li
		lm := &c.canvas.Layers[li]
		if !lm.HasData {
			continue
		}
		if lm.Static {
			if includeStatic {
				subs = append(subs, c.dboxSub(li, c.canvasRect()))
			}
			continue
		}
		switch c.opts.Scheme.Kind {
		case "tile":
			sz := c.opts.Scheme.TileSize
			for _, tid := range c.missingTiles(li, sz, vp, rep) {
				tid := tid
				subs = append(subs, v2Sub{
					item: server.BatchItem{
						Kind: "tile", Layer: li, Size: sz,
						Design: c.opts.Scheme.Design, Col: tid.Col, Row: tid.Row,
					},
					merge: func(dr *server.DataResponse, n int64) {
						c.fcache.Put(c.tileCacheKey(li, sz, tid), dr, n)
						c.observeDensity(li, tid.TileRect(sz), len(dr.Rows))
					},
				})
			}
		case "dbox":
			if box, need := c.nextDBox(li, vp, rep); need {
				subs = append(subs, c.dboxSub(li, box))
			}
		default:
			// Same error the per-layer v1 loop raises: a scheme typo
			// must not become a successful empty fetch.
			return nil, fmt.Errorf("frontend: unknown scheme kind %q", c.opts.Scheme.Kind)
		}
	}
	return subs, nil
}

// dboxSub plans one dynamic-box sub-request whose result becomes the
// layer's current box (the v2 analogue of fetchBoxInto).
func (c *Client) dboxSub(li int, box geom.Rect) v2Sub {
	return v2Sub{
		item: server.BatchItem{
			Kind: "dbox", Layer: li,
			MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY,
		},
		merge: func(dr *server.DataResponse, n int64) {
			prev := c.boxes[li]
			st := &boxState{box: box, data: dr}
			if prev != nil {
				st.prefetched = prev.prefetched
			}
			c.boxes[li] = st
			c.observeDensity(li, box, len(dr.Rows))
		},
	}
}

// fetchViewportV2 serves one viewport move over the framed batch
// protocol: every layer's sub-requests ride one round trip (chunked
// only past the server's MaxBatchItems cap). Returns errServerIsV1
// untouched when negotiation fails before anything merged, so the
// caller can downgrade and re-plan.
func (c *Client) fetchViewportV2(vp geom.Rect, includeStatic bool, rep *FetchReport, start time.Time) error {
	subs, err := c.planViewportV2(vp, includeStatic, rep)
	if err != nil {
		return err
	}
	if len(subs) == 0 {
		return nil
	}
	// Layer merges update client state only; report accounting (rows,
	// payload bytes) is counted exactly once here.
	wrapped := make([]v2Sub, len(subs))
	for i, s := range subs {
		merge := s.merge
		wrapped[i] = v2Sub{item: s.item, merge: func(dr *server.DataResponse, n int64) {
			rep.Rows += len(dr.Rows)
			rep.Bytes += n
			merge(dr, n)
		}}
	}
	return c.runBatchV2(wrapped, rep, start)
}

// runBatchV2 issues the sub-requests in MaxBatchItems-sized chunks,
// sequentially, merging each chunk's frames as they stream in.
func (c *Client) runBatchV2(subs []v2Sub, rep *FetchReport, start time.Time) error {
	var firstErr error
	for ci := 0; len(subs) > 0; ci++ {
		n := len(subs)
		if n > server.MaxBatchItems {
			n = server.MaxBatchItems
		}
		chunk := subs[:n]
		subs = subs[n:]
		if err := c.postBatchV2(chunk, rep, start); err != nil {
			if errors.Is(err, errServerIsV1) {
				if ci == 0 {
					return errServerIsV1 // nothing merged; caller may downgrade
				}
				// A mid-batch downgrade cannot happen against one
				// server; treat it as a transport failure. %v, not %w:
				// the sentinel must not survive into this error, or
				// callers would downgrade after frames already merged.
				return fmt.Errorf("frontend: batch v2 rejected mid-viewport: %v", err)
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// countingReader counts bytes read off the wire, header and framing
// included — the quantity FetchReport.WireBytes reports.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// postBatchV2 issues one framed-stream batch round trip and merges
// frames incrementally as they arrive. Per-frame errors do not abort
// the stream: sibling frames still merge, and the first frame error is
// returned after the stream is drained. errServerIsV1 is returned when
// the response is not a v2 stream (negotiation failure).
func (c *Client) postBatchV2(subs []v2Sub, rep *FetchReport, start time.Time) error {
	req := server.BatchRequestV2{
		V:      server.BatchV2Version,
		Canvas: c.canvas.ID,
		Codec:  c.opts.Codec,
		Items:  make([]server.BatchItem, len(subs)),
	}
	for i := range subs {
		req.Items[i] = subs[i].item
	}
	body, err := jsonMarshal(req)
	if err != nil {
		return fmt.Errorf("frontend: encode batch v2: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("frontend: batch v2: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != server.BatchV2ContentType {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		_, _ = io.Copy(io.Discard, resp.Body)
		// The downgrade signal is a protocol-level rejection only: a
		// v1-only server ignores the unknown v2 fields, finds no tiles
		// and answers 400 (or answers 200 with a JSON envelope). A
		// transient 5xx or transport-layer status must NOT demote the
		// protocol for the client's lifetime — it surfaces as a real
		// error instead.
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == 200 {
			return fmt.Errorf("%w (%s: %s)", errServerIsV1, resp.Status, msg)
		}
		return fmt.Errorf("frontend: batch v2: %s: %s", resp.Status, msg)
	}
	rep.Requests++
	cr := &countingReader{r: resp.Body}
	br := bufio.NewReader(cr)
	nframes, err := server.ReadBatchHeader(br)
	if err != nil {
		return err
	}
	if nframes != len(subs) {
		return fmt.Errorf("frontend: batch v2 advertises %d frames, asked %d", nframes, len(subs))
	}
	seen := make([]bool, nframes)
	var firstErr error
	for i := 0; i < nframes; i++ {
		f, err := server.ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("frontend: batch v2 stream truncated after %d/%d frames", i, nframes)
			}
			rep.WireBytes += cr.n
			return err
		}
		if f.Index < 0 || f.Index >= nframes || seen[f.Index] {
			rep.WireBytes += cr.n
			return fmt.Errorf("frontend: batch v2 bogus frame index %d", f.Index)
		}
		seen[f.Index] = true
		if rep.FirstFrame == 0 {
			rep.FirstFrame = time.Since(start)
		}
		if f.Status != server.FrameOK {
			if firstErr == nil {
				firstErr = fmt.Errorf("frontend: batch v2 item %d: %s", f.Index, f.Payload)
			}
			continue
		}
		dr, err := server.Decode(f.Payload, c.opts.Codec)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		subs[f.Index].merge(dr, int64(len(f.Payload)))
	}
	rep.WireBytes += cr.n
	return firstErr
}

// PrefetchBoxes warms the dynamic-box prefetch slot of several layers
// with one box — a single framed round trip when the v2 protocol is
// available, per-layer GET /dbox otherwise. Like PrefetchBox it does
// not count toward interaction reports.
func (c *Client) PrefetchBoxes(layers []int, box geom.Rect) error {
	if !c.useBatchV2() {
		return c.prefetchBoxesSequential(layers, box)
	}
	var subs []v2Sub
	for _, li := range layers {
		li := li
		lm := &c.canvas.Layers[li]
		if !lm.HasData || lm.Static {
			continue
		}
		subs = append(subs, v2Sub{
			item: server.BatchItem{
				Kind: "dbox", Layer: li,
				MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY,
			},
			merge: func(dr *server.DataResponse, _ int64) {
				st := c.boxes[li]
				if st == nil {
					st = &boxState{}
					c.boxes[li] = st
				}
				st.prefetched = &boxState{box: box, data: dr}
			},
		})
	}
	if len(subs) == 0 {
		return nil
	}
	var rep FetchReport // prefetches do not count toward interaction reports
	err := c.runBatchV2(subs, &rep, time.Now())
	if errors.Is(err, errServerIsV1) && c.opts.BatchProtocol != ProtocolV2 {
		c.v1Fallback = true
		return c.prefetchBoxesSequential(layers, box)
	}
	return err
}

// prefetchBoxesSequential is the v1 path: one GET /dbox per layer.
func (c *Client) prefetchBoxesSequential(layers []int, box geom.Rect) error {
	for _, li := range layers {
		if err := c.PrefetchBox(li, box); err != nil {
			return err
		}
	}
	return nil
}
