package frontend

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"kyrix/internal/geom"
	"kyrix/internal/obs"
	"kyrix/internal/server"
	"kyrix/internal/storage"
	"kyrix/internal/wire"
)

// Batch protocol selection for ClientOptions.BatchProtocol.
const (
	// ProtocolAuto negotiates: batch v3 when batching is enabled,
	// stepping down to v2 and then v1 (remembering each downgrade)
	// when the server does not speak the newer protocol.
	ProtocolAuto = 0
	// ProtocolV1 forces the buffered JSON batch protocol.
	ProtocolV1 = 1
	// ProtocolV2 forces the framed-stream protocol without per-frame
	// compression or deltas.
	ProtocolV2 = 2
	// ProtocolV3 forces the compressed/delta framed stream; a server
	// that does not speak it is an error instead of a silent downgrade.
	ProtocolV3 = 3
)

// Compression selection for ClientOptions.Compression (v3 only).
const (
	// CompressionAuto lets the server DEFLATE-compress frames that
	// pass its worth-it heuristic (the v3 default).
	CompressionAuto = 0
	// CompressionOff asks for raw frames (ablations, CPU-bound
	// clients). Delta frames are still used when profitable.
	CompressionOff = 1
)

// Negotiation sentinels: the server rejected a framed request at the
// protocol level, one ladder step at a time.
var (
	// errServerIsV1 reports that the backend rejected a v2 batch
	// request — it only speaks protocol v1.
	errServerIsV1 = errors.New("frontend: server does not speak batch v2")
	// errServerNoV3 reports that the backend rejected a v3 batch
	// request — it speaks at most v2.
	errServerNoV3 = errors.New("frontend: server does not speak batch v3")
)

// useBatchV2 reports whether viewport fetches should go through the
// framed batch stream (v2 or v3): forced by BatchProtocol, or
// negotiated and no earlier downgrade to v1. In auto mode the framed
// path engages for dbox schemes unconditionally (the one-round-trip
// multi-layer viewport is the protocol's whole point there, and
// BatchSize is a tiles-only knob) and for tile schemes when batching
// is on (BatchSize > 1), mirroring the v1 opt-in.
func (c *Client) useBatchV2() bool {
	if c.v1Fallback {
		return false
	}
	switch c.opts.BatchProtocol {
	case ProtocolV2, ProtocolV3:
		return true
	case ProtocolV1:
		return false
	}
	return c.opts.Scheme.Kind == "dbox" || c.opts.BatchSize > 1
}

// forcedFramed reports whether the options pin a framed protocol
// version — a negotiation failure is then a hard error, never a
// silent downgrade to the v1 paths.
func (c *Client) forcedFramed() bool {
	return c.opts.BatchProtocol == ProtocolV2 || c.opts.BatchProtocol == ProtocolV3
}

// batchVersion is the framed protocol version the next round trip
// should speak: the forced version, or the highest not yet ruled out
// by a remembered downgrade.
func (c *Client) batchVersion() int {
	switch c.opts.BatchProtocol {
	case ProtocolV2:
		return 2
	case ProtocolV3:
		return 3
	}
	if c.v2Fallback {
		return 2
	}
	return 3
}

// frameResult is one decoded OK frame, ready to merge into client
// state: the (possibly delta-reconstructed) rows, byte accounting, and
// the payload identity future delta fetches can declare as their base.
type frameResult struct {
	dr *server.DataResponse
	// rawN is the full-payload equivalent size — what a raw v2 frame
	// would have carried (wire-side byte accounting is handled by the
	// round trip's countingReader, not per frame).
	rawN int64
	// boxID identifies the full payload these rows correspond to
	// (wire.PayloadID); zero for tile frames, which never delta.
	boxID uint64
}

// v2Sub is one planned sub-request of a framed batch and how to fold
// its decoded result into client state. merge always runs on the
// client's goroutine — even when chunks stream concurrently — so
// layers land incrementally as frames arrive without locking client
// state.
type v2Sub struct {
	item server.BatchItem
	// base is the box state item.Base was declared from: the delta
	// base the client guarantees it holds until this batch completes.
	// boxState contents are immutable once published (merges replace
	// whole states), so concurrent chunk decoders may read it.
	base  *boxState
	merge func(fr frameResult)
}

// declareBase offers a layer's held box as the delta base for a dbox
// sub-request when the client has one worth declaring and the session
// is (still) on a delta-capable protocol — a settled-v2 session skips
// the hash bookkeeping and request bloat the server would ignore.
func (c *Client) declareBase(sub *v2Sub, st *boxState) {
	if c.batchVersion() < 3 || st == nil || st.data == nil || st.wireID == 0 || !st.box.Valid() {
		return
	}
	sub.base = st
	sub.item.Base = &server.BaseRef{
		MinX: st.box.MinX, MinY: st.box.MinY,
		MaxX: st.box.MaxX, MaxY: st.box.MaxY,
		ID: strconv.FormatUint(st.wireID, 16),
	}
}

// planViewportV2 turns one viewport move into the framed sub-requests
// it needs across every data layer — missing tiles for tile-scheme
// layers, a new dynamic box for dbox layers whose box the viewport
// escaped, the full canvas for static layers on load. Cache hits and
// box promotions are recorded on rep as the per-layer paths would.
func (c *Client) planViewportV2(vp geom.Rect, includeStatic bool, rep *FetchReport) ([]v2Sub, error) {
	var subs []v2Sub
	for li := range c.canvas.Layers {
		li := li
		lm := &c.canvas.Layers[li]
		if !lm.HasData {
			continue
		}
		if lm.Static {
			if includeStatic {
				subs = append(subs, c.dboxSub(li, c.canvasRect()))
			}
			continue
		}
		switch c.opts.Scheme.Kind {
		case "tile":
			sz := c.opts.Scheme.TileSize
			for _, tid := range c.missingTiles(li, sz, vp, rep) {
				tid := tid
				subs = append(subs, v2Sub{
					item: server.BatchItem{
						Kind: "tile", Layer: li, Size: sz,
						Design: c.opts.Scheme.Design, Col: tid.Col, Row: tid.Row,
					},
					merge: func(fr frameResult) {
						c.fcache.Put(c.tileCacheKey(li, sz, tid), fr.dr, fr.rawN)
						c.observeDensity(li, tid.TileRect(sz), len(fr.dr.Rows))
					},
				})
			}
		case "dbox":
			if box, need := c.nextDBox(li, vp, rep); need {
				subs = append(subs, c.dboxSub(li, box))
			}
		default:
			// Same error the per-layer v1 loop raises: a scheme typo
			// must not become a successful empty fetch.
			return nil, fmt.Errorf("frontend: unknown scheme kind %q", c.opts.Scheme.Kind)
		}
	}
	return subs, nil
}

// dboxSub plans one dynamic-box sub-request whose result becomes the
// layer's current box (the framed analogue of fetchBoxInto). The
// layer's held box, if any, is declared as the delta base so a v3
// server can ship only the rows entering the new box.
func (c *Client) dboxSub(li int, box geom.Rect) v2Sub {
	sub := v2Sub{
		item: server.BatchItem{
			Kind: "dbox", Layer: li,
			MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY,
		},
		merge: func(fr frameResult) {
			prev := c.boxes[li]
			st := &boxState{box: box, data: fr.dr, wireID: fr.boxID}
			if prev != nil {
				st.prefetched = prev.prefetched
			}
			c.boxes[li] = st
			c.observeDensity(li, box, len(fr.dr.Rows))
		},
	}
	c.declareBase(&sub, c.boxes[li])
	return sub
}

// fetchViewportV2 serves one viewport move over the framed batch
// protocol: every layer's sub-requests ride one round trip (chunked —
// and overlapped — only past the server's MaxBatchItems cap). Returns
// errServerIsV1 untouched when negotiation fails before anything
// merged, so the caller can downgrade and re-plan.
func (c *Client) fetchViewportV2(vp geom.Rect, includeStatic bool, rep *FetchReport, start time.Time) error {
	subs, err := c.planViewportV2(vp, includeStatic, rep)
	if err != nil {
		return err
	}
	if len(subs) == 0 {
		return nil
	}
	// Layer merges update client state only; report accounting (rows,
	// payload bytes) is counted exactly once here.
	wrapped := make([]v2Sub, len(subs))
	for i, s := range subs {
		merge := s.merge
		wrapped[i] = s
		wrapped[i].merge = func(fr frameResult) {
			rep.Rows += len(fr.dr.Rows)
			rep.Bytes += fr.rawN
			merge(fr)
		}
	}
	return c.runBatchV2(wrapped, rep, start)
}

// runBatchV2 issues the sub-requests in MaxBatchItems-sized chunks.
// Until the first successful framed exchange the chunks go out one at
// a time so the downgrade ladder (v3 -> v2 -> v1) cannot interleave
// with in-flight work; once the protocol is settled, multiple chunks
// overlap under FetchConcurrency with their frames merged back onto
// this goroutine through a merge queue — client state is never touched
// concurrently.
func (c *Client) runBatchV2(subs []v2Sub, rep *FetchReport, start time.Time) error {
	var chunks [][]v2Sub
	for len(subs) > 0 {
		n := len(subs)
		if n > server.MaxBatchItems {
			n = server.MaxBatchItems
		}
		chunks = append(chunks, subs[:n])
		subs = subs[n:]
	}
	inline := func(f func()) { f() }

	var firstErr error
	idx := 0
	for idx < len(chunks) && !c.protoConfirmed {
		// postBatchFramed flips protoConfirmed (via exec) as soon as
		// the server accepts the version and streams a valid header —
		// per-frame application errors must not keep the client
		// re-negotiating forever.
		err := c.postBatchFramed(c.batchVersion(), chunks[idx], rep, start, inline)
		switch {
		case err == nil:
		case errors.Is(err, errServerNoV3):
			if idx > 0 {
				return fmt.Errorf("frontend: batch v3 rejected mid-viewport: %v", err)
			}
			if c.opts.BatchProtocol == ProtocolV3 {
				return fmt.Errorf("frontend: batch v3 forced but %w", err)
			}
			// Step the ladder down and retry this chunk at v2.
			c.v2Fallback = true
			continue
		case errors.Is(err, errServerIsV1):
			if idx == 0 {
				return errServerIsV1 // nothing merged; caller may downgrade
			}
			// A mid-batch downgrade cannot happen against one server;
			// treat it as a transport failure. %v, not %w: the sentinel
			// must not survive into this error, or callers would
			// downgrade after frames already merged.
			return fmt.Errorf("frontend: batch v2 rejected mid-viewport: %v", err)
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
		idx++
	}

	remaining := chunks[idx:]
	version := c.batchVersion()
	conc := c.opts.FetchConcurrency
	if conc > len(remaining) {
		conc = len(remaining)
	}
	if conc <= 1 {
		// Sequential chunk loop (the conservative FetchConcurrency
		// default, matching the per-tile path).
		for _, chunk := range remaining {
			if err := c.postBatchFramed(version, chunk, rep, start, inline); err != nil {
				if err = demoteNegotiationErr(err); firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}

	// Overlapped chunks: bounded fetch+decode concurrency, with every
	// merge (and all rep accounting) funneled back onto this goroutine.
	// Both channels are unbuffered, so a chunk's done error arrives
	// strictly after all its merges were executed here.
	mergeCh := make(chan func())
	doneCh := make(chan error)
	sem := make(chan struct{}, conc)
	for _, chunk := range remaining {
		chunk := chunk
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			doneCh <- c.postBatchFramed(version, chunk, rep, start, func(f func()) { mergeCh <- f })
		}()
	}
	for outstanding := len(remaining); outstanding > 0; {
		select {
		case f := <-mergeCh:
			f()
		case err := <-doneCh:
			outstanding--
			if err != nil {
				if err = demoteNegotiationErr(err); firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// demoteNegotiationErr strips the downgrade sentinels off errors from
// post-negotiation chunks: once frames merged, a protocol rejection is
// a transport failure, never a reason to silently re-fetch at v1.
func demoteNegotiationErr(err error) error {
	if errors.Is(err, errServerIsV1) || errors.Is(err, errServerNoV3) {
		return fmt.Errorf("frontend: framed batch rejected mid-viewport: %v", err)
	}
	return err
}

// countingReader counts bytes read off the wire, header and framing
// included — the quantity FetchReport.WireBytes reports.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// postBatchFramed issues one framed-stream batch round trip at the
// given protocol version (2 or 3) and hands each decoded frame's merge
// to exec as it arrives — exec runs the closure on the client's
// goroutine (directly on the sequential path, via the merge queue when
// chunks overlap), and all rep mutation happens inside those closures.
// Per-frame errors do not abort the stream: sibling frames still
// merge, and the first frame error is returned after the stream is
// drained. The negotiation sentinels are returned when the response is
// a protocol-level rejection.
func (c *Client) postBatchFramed(version int, subs []v2Sub, rep *FetchReport, start time.Time, exec func(func())) error {
	req := server.BatchRequestV2{
		V:      version,
		Canvas: c.canvas.ID,
		Codec:  c.opts.Codec,
		Items:  make([]server.BatchItem, len(subs)),
	}
	if version >= 3 && c.opts.Compression == CompressionOff {
		req.Comp = server.CompOff
	}
	for i := range subs {
		req.Items[i] = subs[i].item
	}
	body, err := jsonMarshal(req)
	if err != nil {
		return fmt.Errorf("frontend: encode batch v%d: %w", version, err)
	}
	hreq, err := http.NewRequest(http.MethodPost, c.base+"/batch", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("frontend: batch v%d: %w", version, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Stitch the server's http.batch span under the client's interaction
	// trace (no-op without an active span).
	obs.InjectHeader(c.ictx, hreq.Header)
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("frontend: batch v%d: %w", version, err)
	}
	defer resp.Body.Close()
	wantCT := server.BatchV2ContentType
	if version >= 3 {
		wantCT = server.BatchV3ContentType
	}
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != wantCT {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		_, _ = io.Copy(io.Discard, resp.Body)
		// The downgrade signal is a protocol-level rejection only: an
		// older server rejects the unknown version field with 400 (a
		// v1-only server may also answer 200 with a JSON envelope). A
		// transient 5xx or transport-layer status must NOT demote the
		// protocol for the client's lifetime — it surfaces as a real
		// error instead.
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == 200 {
			sentinel := errServerIsV1
			if version >= 3 && resp.StatusCode == http.StatusBadRequest {
				sentinel = errServerNoV3
			}
			return fmt.Errorf("%w (%s: %s)", sentinel, resp.Status, msg)
		}
		return fmt.Errorf("frontend: batch v%d: %s: %s", version, resp.Status, msg)
	}
	exec(func() { rep.Requests++ })
	cr := &countingReader{r: resp.Body}
	br := bufio.NewReader(cr)
	gotVersion, nframes, err := wire.ReadHeader(br)
	if err != nil {
		return err
	}
	if int(gotVersion) != version {
		return fmt.Errorf("frontend: asked batch v%d, stream is v%d", version, gotVersion)
	}
	if nframes != len(subs) {
		return fmt.Errorf("frontend: batch v%d advertises %d frames, asked %d", version, nframes, len(subs))
	}
	// The server accepted this protocol version and committed a valid
	// stream: settle negotiation, even if individual frames fail below.
	exec(func() { c.protoConfirmed = true })
	seen := make([]bool, nframes)
	var firstErr error
	addWire := func() { n := cr.n; exec(func() { rep.WireBytes += n }) }
	for i := 0; i < nframes; i++ {
		f, err := wire.ReadFrame(br, gotVersion)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("frontend: batch v%d stream truncated after %d/%d frames", version, i, nframes)
			}
			addWire()
			return err
		}
		if f.Index < 0 || f.Index >= nframes || seen[f.Index] {
			addWire()
			return fmt.Errorf("frontend: batch v%d bogus frame index %d", version, f.Index)
		}
		seen[f.Index] = true
		at := time.Since(start)
		exec(func() {
			if rep.FirstFrame == 0 || at < rep.FirstFrame {
				rep.FirstFrame = at
			}
		})
		if f.Status != server.FrameOK {
			if firstErr == nil {
				firstErr = fmt.Errorf("frontend: batch v%d item %d: %s", version, f.Index, f.Payload)
			}
			continue
		}
		fr, err := c.decodeFrame(&subs[f.Index], f, version)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sub := &subs[f.Index]
		exec(func() { sub.merge(fr) })
	}
	addWire()
	return firstErr
}

// decodeFrame turns one OK frame into a mergeable result: inflate a
// compressed payload (bounded — a hostile length cannot become a
// decompression bomb), reconstruct a delta frame against the sub's
// declared base, or decode a raw payload directly. Pure with respect
// to mutable client state, so overlapped chunks may run it off the
// client goroutine.
func (c *Client) decodeFrame(sub *v2Sub, f wire.Frame, version int) (frameResult, error) {
	var fr frameResult
	payload := f.Payload
	if f.Codec.Compressed() {
		var err error
		payload, err = wire.Decompress(payload, wire.MaxFramePayload)
		if err != nil {
			return fr, fmt.Errorf("frontend: batch item %d: %w", f.Index, err)
		}
	}
	if f.Codec.IsDelta() {
		if sub.base == nil {
			return fr, fmt.Errorf("frontend: batch item %d: delta frame for a sub-request that declared no base", f.Index)
		}
		d, err := wire.DecodeDelta(payload)
		if err != nil {
			return fr, fmt.Errorf("frontend: batch item %d: %w", f.Index, err)
		}
		entering, err := server.Decode(d.Entering, c.opts.Codec)
		if err != nil {
			return fr, fmt.Errorf("frontend: batch item %d entering rows: %w", f.Index, err)
		}
		dr, err := applyDelta(sub.base.data, d, entering)
		if err != nil {
			return fr, fmt.Errorf("frontend: batch item %d: %w", f.Index, err)
		}
		fr.dr, fr.rawN, fr.boxID = dr, int64(d.FullLen), d.NewID
		return fr, nil
	}
	dr, err := server.Decode(payload, c.opts.Codec)
	if err != nil {
		return fr, err
	}
	fr.dr, fr.rawN = dr, int64(len(payload))
	if sub.item.Kind == "dbox" && version >= 3 {
		// The payload identity becomes the delta base id of the next
		// fetch of this layer; a settled-v2 session never declares
		// bases, so it skips the hash.
		fr.boxID = wire.PayloadID(payload)
	}
	return fr, nil
}

// applyDelta reconstructs a full box result from the base the client
// holds plus the server's delta: base rows minus the tombstoned ids,
// plus the entering rows. The reconstruction is exactly the row set of
// the full payload the server diffed against (rows are keyed by their
// integer first column, the same identity the renderer deduplicates
// on).
func applyDelta(base *server.DataResponse, d wire.Delta, entering *server.DataResponse) (*server.DataResponse, error) {
	if base == nil {
		return nil, errors.New("delta frame but no base rows held")
	}
	tomb := make(map[int64]bool, len(d.Tombstones))
	for _, id := range d.Tombstones {
		tomb[id] = true
	}
	out := &server.DataResponse{Cols: entering.Cols, Types: entering.Types}
	if len(entering.Rows) == 0 {
		// An empty entering payload carries fallback column types; the
		// surviving rows are all base rows, so keep the base schema.
		out.Cols, out.Types = base.Cols, base.Types
	}
	rows := make([]storage.Row, 0, len(base.Rows)+len(entering.Rows))
	for _, row := range base.Rows {
		if len(row) == 0 || tomb[row[0].AsInt()] {
			continue
		}
		rows = append(rows, row)
	}
	rows = append(rows, entering.Rows...)
	out.Rows = rows
	return out, nil
}

// PrefetchBoxes warms the dynamic-box prefetch slot of several layers
// with one box — a single framed round trip when a framed protocol is
// available, per-layer GET /dbox otherwise. Each layer's current box
// is declared as the delta base, so under v3 a momentum prefetch one
// viewport ahead ships mostly as entering rows. Like PrefetchBox it
// does not count toward interaction reports.
func (c *Client) PrefetchBoxes(layers []int, box geom.Rect) error {
	if !c.useBatchV2() {
		return c.prefetchBoxesSequential(layers, box)
	}
	var subs []v2Sub
	for _, li := range layers {
		li := li
		lm := &c.canvas.Layers[li]
		if !lm.HasData || lm.Static {
			continue
		}
		sub := v2Sub{
			item: server.BatchItem{
				Kind: "dbox", Layer: li,
				MinX: box.MinX, MinY: box.MinY, MaxX: box.MaxX, MaxY: box.MaxY,
			},
			merge: func(fr frameResult) {
				st := c.boxes[li]
				if st == nil {
					st = &boxState{}
					c.boxes[li] = st
				}
				st.prefetched = &boxState{box: box, data: fr.dr, wireID: fr.boxID}
			},
		}
		c.declareBase(&sub, c.boxes[li])
		subs = append(subs, sub)
	}
	if len(subs) == 0 {
		return nil
	}
	var rep FetchReport // prefetches do not count toward interaction reports
	err := c.runBatchV2(subs, &rep, time.Now())
	if errors.Is(err, errServerIsV1) && !c.forcedFramed() {
		c.v1Fallback = true
		return c.prefetchBoxesSequential(layers, box)
	}
	return err
}

// prefetchBoxesSequential is the v1 path: one GET /dbox per layer.
func (c *Client) prefetchBoxesSequential(layers []int, box geom.Rect) error {
	for _, li := range layers {
		if err := c.PrefetchBox(li, box); err != nil {
			return err
		}
	}
	return nil
}
