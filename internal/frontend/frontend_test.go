package frontend

import (
	"image/color"
	"net/http/httptest"
	"slices"
	"testing"

	"kyrix/internal/fetch"
	"kyrix/internal/geom"
	"kyrix/internal/obs"
	"kyrix/internal/render"
	"kyrix/internal/server"
	"kyrix/internal/spec"
	"kyrix/internal/sqldb"
	"kyrix/internal/storage"
	"kyrix/internal/workload"
)

// testApp builds a two-canvas app: an overview scatter canvas and a 4x
// zoomed detail canvas over the same points, joined by a jump — enough
// to exercise pan, dbox, tiles, jumps and rendering end to end.
func testApp(t testing.TB, n int) (*sqldb.DB, *spec.CompiledApp) {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec("CREATE TABLE points (id INT, x DOUBLE, y DOUBLE, val DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	d := workload.Uniform(n, 2048, 1024, 3)
	for _, p := range d.Points {
		if err := db.InsertRow("points", storage.Row{
			storage.I64(p.ID), storage.F64(p.X), storage.F64(p.Y), storage.F64(p.Val),
		}); err != nil {
			t.Fatal(err)
		}
	}
	reg := spec.NewRegistry()
	reg.RegisterRenderer("dots")
	reg.RegisterRenderer("legend")
	reg.RegisterSelector("always", func(storage.Row, int) bool { return true })
	reg.RegisterViewport("scaleBy4", func(r storage.Row) geom.Point {
		return geom.Point{X: r[1].AsFloat() * 4, Y: r[2].AsFloat() * 4}
	})
	reg.RegisterName("detailName", func(r storage.Row) string { return "Detail view" })

	cols := []spec.ColumnSpec{
		{Name: "id", Type: "int"}, {Name: "x", Type: "double"},
		{Name: "y", Type: "double"}, {Name: "val", Type: "double"},
	}
	app := &spec.App{
		Name: "zoomable",
		Canvases: []spec.Canvas{
			{
				ID: "overview", W: 2048, H: 1024,
				Transforms: []spec.Transform{
					{ID: "pts", Query: "SELECT * FROM points", Columns: cols},
					{ID: "empty"},
				},
				Layers: []spec.Layer{
					{TransformID: "empty", Static: true, Renderer: "legend"},
					{TransformID: "pts",
						Placement: &spec.Placement{XCol: "x", YCol: "y", Radius: 1},
						Renderer:  "dots"},
				},
			},
			{
				ID: "detail", W: 8192, H: 4096,
				Transforms: []spec.Transform{
					{ID: "pts4", Query: "SELECT * FROM points", Columns: cols},
				},
				Layers: []spec.Layer{
					{TransformID: "pts4",
						Placement: &spec.Placement{XCol: "x", YCol: "y", XScale: 4, YScale: 4, Radius: 2},
						Renderer:  "dots"},
				},
			},
		},
		Jumps: []spec.Jump{{
			From: "overview", To: "detail", Type: spec.GeometricSemanticZoom,
			Selector: "always", NewViewport: "scaleBy4", Name: "detailName",
		}},
		InitialCanvas: "overview", InitialX: 1024, InitialY: 512,
		ViewportW: 512, ViewportH: 512,
	}
	ca, err := spec.Compile(app, reg)
	if err != nil {
		t.Fatal(err)
	}
	return db, ca
}

func startBackend(t testing.TB, db *sqldb.DB, ca *spec.CompiledApp) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(db, ca, server.Options{
		CacheBytes: 8 << 20,
		Precompute: fetch.Options{
			BuildSpatial: true,
			TileSizes:    []float64{256},
			MappingIndex: sqldb.IndexBTree,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func newTestClient(t testing.TB, opts Options) (*Client, *server.Server) {
	db, ca := testApp(t, 3000)
	srv, hs := startBackend(t, db, ca)
	c, err := NewClient(hs.URL, ca, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func TestConnectAndLoad(t *testing.T) {
	c, _ := newTestClient(t, DefaultOptions())
	if c.Canvas().ID != "overview" {
		t.Fatalf("canvas = %s", c.Canvas().ID)
	}
	vp := c.Viewport()
	if vp.W() != 512 || vp.Center() != (geom.Point{X: 1024, Y: 512}) {
		t.Fatalf("viewport = %v", vp)
	}
	rep, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Rows == 0 {
		t.Fatalf("load report = %+v", rep)
	}
	rows, err := c.ObjectsInViewport(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no objects after load")
	}
	for _, r := range rows {
		box := geom.RectAround(geom.Point{X: r[1].AsFloat(), Y: r[2].AsFloat()}, 1)
		if !box.Intersects(vp) {
			t.Fatalf("object outside viewport: %v", r)
		}
	}
}

func TestDBoxPanProtocol(t *testing.T) {
	c, srv := newTestClient(t, Options{
		Scheme:     fetch.DBox50,
		Codec:      server.CodecJSON,
		CacheBytes: 4 << 20,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	before := srv.Stats.BoxRequests.Load()
	// Tiny pan: viewport stays inside the 50% inflated box -> no
	// request.
	rep, err := c.PanBy(20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 || rep.CacheHits == 0 {
		t.Fatalf("small pan should hit the box: %+v", rep)
	}
	if srv.Stats.BoxRequests.Load() != before {
		t.Fatal("backend saw a request for an in-box pan")
	}
	// Large pan: escapes the box -> exactly one new box request for
	// the data layer.
	rep, err = c.PanBy(600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 1 {
		t.Fatalf("large pan requests = %d", rep.Requests)
	}
}

func TestTilePanUsesFrontendCache(t *testing.T) {
	c, srv := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	firstReqs := srv.Stats.TileRequests.Load()
	if firstReqs == 0 {
		t.Fatal("load issued no tile requests")
	}
	// Pan by one tile: only the new column of tiles is requested.
	rep, err := c.PanBy(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits == 0 {
		t.Fatal("pan should reuse cached tiles")
	}
	if rep.Requests == 0 || rep.Requests >= int(firstReqs) {
		t.Fatalf("pan requests = %d (load %d)", rep.Requests, firstReqs)
	}
	// Pan back: everything cached, zero requests.
	rep, err = c.PanBy(-256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 {
		t.Fatalf("pan-back requests = %d", rep.Requests)
	}
}

func TestMappingDesignEndToEnd(t *testing.T) {
	c, _ := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "mapping", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ObjectsInViewport(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("mapping design returned nothing")
	}
}

func TestBinaryCodecEndToEnd(t *testing.T) {
	c, _ := newTestClient(t, Options{
		Scheme:     fetch.DBoxExact,
		Codec:      server.CodecBinary,
		CacheBytes: 4 << 20,
	})
	rep, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows == 0 {
		t.Fatal("binary load empty")
	}
}

func TestObjectsDeduplicated(t *testing.T) {
	// With tiles, an object whose bbox straddles a tile boundary is
	// returned by both tiles; the frontend must deduplicate.
	c, _ := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ObjectsInViewport(1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		id := r[0].AsInt()
		if seen[id] {
			t.Fatalf("duplicate object %d", id)
		}
		seen[id] = true
	}
}

func TestJump(t *testing.T) {
	c, _ := newTestClient(t, DefaultOptions())
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ObjectsInViewport(1)
	if err != nil || len(rows) == 0 {
		t.Fatalf("objects: %v %d", err, len(rows))
	}
	clicked := rows[0]
	choices, err := c.JumpsFor(clicked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 1 || choices[0].Label != "Detail view" || choices[0].To != "detail" {
		t.Fatalf("choices = %+v", choices)
	}
	rep, err := c.Jump(choices[0].Index, clicked)
	if err != nil {
		t.Fatal(err)
	}
	if c.Canvas().ID != "detail" {
		t.Fatalf("canvas after jump = %s", c.Canvas().ID)
	}
	// New viewport centered at 4x the clicked point (modulo clamping).
	want := geom.Point{X: clicked[1].AsFloat() * 4, Y: clicked[2].AsFloat() * 4}
	center := c.Viewport().Center()
	if center.Dist(want) > 512 {
		t.Fatalf("jump center = %v want near %v", center, want)
	}
	if rep.Rows == 0 {
		t.Fatal("jump load fetched nothing")
	}
	// The clicked object appears on the detail canvas.
	found := false
	detailRows, _ := c.ObjectsInViewport(0)
	for _, r := range detailRows {
		if r[0].AsInt() == clicked[0].AsInt() {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("clicked object missing from detail view")
	}
}

func TestJumpErrors(t *testing.T) {
	c, _ := newTestClient(t, DefaultOptions())
	if _, err := c.Jump(99, nil); err == nil {
		t.Fatal("bad jump index must fail")
	}
	// Jump from the wrong canvas.
	if _, err := c.Jump(0, nil); err != nil {
		t.Fatal(err) // valid: from overview
	}
	if _, err := c.Jump(0, nil); err == nil {
		t.Fatal("jump from detail (wrong from-canvas) must fail")
	}
	// Client without a compiled app cannot jump.
	db, ca := testApp(t, 50)
	_, hs := startBackend(t, db, ca)
	c2, err := NewClient(hs.URL, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Jump(0, nil); err == nil {
		t.Fatal("nil compiled app must fail to jump")
	}
	if _, err := c2.JumpsFor(nil, 0); err == nil {
		t.Fatal("nil compiled app must fail JumpsFor")
	}
}

func TestRender(t *testing.T) {
	c, _ := newTestClient(t, DefaultOptions())
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	red := color.RGBA{255, 0, 0, 255}
	c.RegisterRenderer("dots", func(img *render.Image, meta *server.LayerMeta, row storage.Row, box geom.Rect) {
		img.Dot(box.Center(), 2, red)
	})
	legendDrawn := false
	c.RegisterRenderer("legend", func(img *render.Image, meta *server.LayerMeta, row storage.Row, box geom.Rect) {
		legendDrawn = true
		if row != nil {
			t.Error("legend renderer should get nil row")
		}
	})
	img, err := c.Render(256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !legendDrawn {
		t.Fatal("legend renderer not invoked")
	}
	// At least one dot landed.
	w, h := img.Size()
	found := false
	for y := 0; y < h && !found; y++ {
		for x := 0; x < w; x++ {
			if img.RGBA().RGBAAt(x, y) == red {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no dots rendered")
	}
	// Missing renderer errors.
	c2, _ := newTestClient(t, DefaultOptions())
	if _, err := c2.Render(64, 64); err == nil {
		t.Fatal("unregistered renderer must fail")
	}
}

func TestPrefetchBoxPromotion(t *testing.T) {
	c, srv := newTestClient(t, Options{
		Scheme:     fetch.DBoxExact,
		Codec:      server.CodecJSON,
		CacheBytes: 4 << 20,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	// Prefetch the box exactly where the next pan will land.
	next := c.Viewport().Translate(600, 0)
	if err := c.PrefetchBox(1, next); err != nil {
		t.Fatal(err)
	}
	before := srv.Stats.BoxRequests.Load()
	rep, err := c.Pan(next)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 {
		t.Fatalf("prefetched pan still issued %d requests", rep.Requests)
	}
	if srv.Stats.BoxRequests.Load() != before {
		t.Fatal("backend saw an extra request")
	}
	rows, _ := c.ObjectsInViewport(1)
	if len(rows) == 0 {
		t.Fatal("prefetched data not visible")
	}
}

func TestPrefetchTiles(t *testing.T) {
	c, _ := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	next := c.Viewport().Translate(512, 0)
	tiles := fetch.TilesNeeded(next, 256, c.Canvas().W, c.Canvas().H)
	if err := c.PrefetchTiles(1, 256, tiles); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Pan(next)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 {
		t.Fatalf("prefetched tile pan issued %d requests", rep.Requests)
	}
}

func TestReportsAccumulate(t *testing.T) {
	c, _ := newTestClient(t, DefaultOptions())
	_, _ = c.Load()
	_, _ = c.PanBy(600, 0)
	_, _ = c.PanBy(600, 0)
	if len(c.TotalReports) != 3 {
		t.Fatalf("reports = %d", len(c.TotalReports))
	}
	if c.TotalReports[0].OverBudget {
		t.Fatal("local load should be well under 500ms")
	}
}

func TestConnectErrors(t *testing.T) {
	if _, err := NewClient("http://127.0.0.1:1", nil, DefaultOptions()); err == nil {
		t.Fatal("unreachable backend must fail")
	}
}

func TestTileBatchFetch(t *testing.T) {
	mkOpts := func(batch int) Options {
		return Options{
			Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
			Codec:      server.CodecJSON,
			CacheBytes: 16 << 20,
			BatchSize:  batch,
		}
	}
	// Reference client: one GET per tile.
	ref, _ := newTestClient(t, mkOpts(0))
	if _, err := ref.Load(); err != nil {
		t.Fatal(err)
	}
	refRows, err := ref.ObjectsInViewport(1)
	if err != nil {
		t.Fatal(err)
	}

	// Batched client: same viewport, tiles over POST /batch.
	c, srv := newTestClient(t, mkOpts(4))
	rep, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if srv.Stats.BatchRequests.Load() == 0 {
		t.Fatal("batched client issued no /batch requests")
	}
	if rep.Rows == 0 || rep.Bytes == 0 {
		t.Fatalf("batched load report = %+v", rep)
	}
	rows, err := c.ObjectsInViewport(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(refRows) {
		t.Fatalf("batched client sees %d objects, per-tile client %d", len(rows), len(refRows))
	}
	// A 512x512 viewport over 256-tiles needs >= 4 tiles; with batch
	// size 4 the whole load should take far fewer round trips.
	if rep.Requests >= ref.TotalReports[0].Requests {
		t.Fatalf("batched load used %d round trips, per-tile used %d",
			rep.Requests, ref.TotalReports[0].Requests)
	}

	// Pan with everything missing again batches, pan-back is cached.
	rep, err = c.PanBy(512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("pan into new tiles should fetch")
	}
	rep, err = c.PanBy(-512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 {
		t.Fatalf("pan-back requests = %d", rep.Requests)
	}
}

func TestPrefetchTilesBatched(t *testing.T) {
	c, srv := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
		BatchSize:  8,
	})
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	batchesBefore := srv.Stats.BatchRequests.Load()
	next := c.Viewport().Translate(512, 0)
	tiles := fetch.TilesNeeded(next, 256, c.Canvas().W, c.Canvas().H)
	if err := c.PrefetchTiles(1, 256, tiles); err != nil {
		t.Fatal(err)
	}
	if srv.Stats.BatchRequests.Load() == batchesBefore {
		t.Fatal("prefetch should go through /batch")
	}
	rep, err := c.Pan(next)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 0 {
		t.Fatalf("prefetched tile pan issued %d requests", rep.Requests)
	}
	// Prefetching the same tiles again is a no-op (all cached).
	if err := c.PrefetchTiles(1, 256, tiles); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats.BatchRequests.Load(); got != batchesBefore+1 {
		t.Fatalf("cached prefetch issued more batches: %d", got)
	}
}

func TestBatchSizeClampedToServerLimit(t *testing.T) {
	// A BatchSize above the server's MaxBatchTiles must be split
	// client-side, not rejected with 400 by the server.
	c, _ := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
		BatchSize:  server.MaxBatchTiles + 100,
	})
	if _, err := c.Load(); err != nil {
		t.Fatalf("oversized BatchSize must be clamped, got: %v", err)
	}
	rows, err := c.ObjectsInViewport(1)
	if err != nil || len(rows) == 0 {
		t.Fatalf("clamped batch load broken: %d rows, %v", len(rows), err)
	}
}

func TestBatchChunksRunConcurrently(t *testing.T) {
	// v1 protocol: BatchSize 2 over a viewport needing >= 4 tiles
	// produces several chunks; with FetchConcurrency they must still
	// all land. (Under v2 the whole viewport is one framed round trip,
	// so this pins ProtocolV1 to keep the chunked path covered.)
	c, srv := newTestClient(t, Options{
		Scheme:           fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:            server.CodecJSON,
		CacheBytes:       16 << 20,
		BatchSize:        2,
		FetchConcurrency: 4,
		BatchProtocol:    ProtocolV1,
	})
	rep, err := c.Load()
	if err != nil {
		t.Fatal(err)
	}
	if srv.Stats.BatchRequests.Load() < 2 {
		t.Fatalf("expected multiple chunked batches, got %d", srv.Stats.BatchRequests.Load())
	}
	if rep.Rows == 0 {
		t.Fatal("concurrent chunks fetched nothing")
	}
	ref, _ := newTestClient(t, Options{
		Scheme:     fetch.Granularity{Kind: "tile", Design: "spatial", TileSize: 256},
		Codec:      server.CodecJSON,
		CacheBytes: 16 << 20,
	})
	if _, err := ref.Load(); err != nil {
		t.Fatal(err)
	}
	refRows, _ := ref.ObjectsInViewport(1)
	rows, _ := c.ObjectsInViewport(1)
	if len(rows) != len(refRows) {
		t.Fatalf("concurrent-chunk client sees %d objects, reference %d", len(rows), len(refRows))
	}
}

// TestInteractionTrace checks the client-side trace pillar: a Load with
// Options.Tracer set records one "interaction" root in the client's
// recorder, and the trace header stamped on the /batch POST makes the
// server's http.batch span a child of the same trace.
func TestInteractionTrace(t *testing.T) {
	rec := obs.NewRecorder(8)
	opts := DefaultOptions()
	opts.Tracer = obs.NewTracer(rec)
	c, srv := newTestClient(t, opts)
	if _, err := c.Load(); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap.Recent) == 0 {
		t.Fatal("client recorder is empty after Load")
	}
	root := snap.Recent[len(snap.Recent)-1]
	if root.Name != "interaction" || root.TraceID == "" {
		t.Fatalf("client root = %+v", root)
	}
	var attrs []string
	for _, a := range root.Attrs {
		attrs = append(attrs, a.Key)
	}
	for _, want := range []string{"canvas", "load", "requests", "ttffUS"} {
		if !slices.Contains(attrs, want) {
			t.Fatalf("interaction span missing attr %q (have %v)", want, attrs)
		}
	}
	// The server's http.batch root must carry the client's trace ID and
	// parent under the interaction span.
	var batch *obs.SpanData
	ssnap := srv.FlightRecorder().Snapshot()
	for _, d := range ssnap.Recent {
		if d.Name == "http.batch" && d.TraceID == root.TraceID {
			batch = d
		}
	}
	if batch == nil {
		t.Fatalf("no server http.batch span under client trace %s", root.TraceID)
	}
	if batch.Parent != root.SpanID {
		t.Fatalf("server batch parent = %s, want client span %s", batch.Parent, root.SpanID)
	}
}
