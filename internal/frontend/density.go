package frontend

import (
	"math"

	"kyrix/internal/geom"
	"kyrix/internal/prefetch"
)

// densityCellSize is the granularity of the per-layer density grid the
// frontend learns from its own fetches. Semantic prefetching (§4)
// consumes it: "semantic-based prefetching uses the similarity to
// recently viewed data in data characteristics (e.g., distribution)".
const densityCellSize = 2048.0

type cellKey struct{ cx, cy int }

// observeDensity records that a fetched region contained rows points,
// updating the scalar density estimate (used by adaptive boxes) and the
// spatial grid (used by the semantic predictor). Cells covered by the
// region get an exponentially weighted update so drifting data shifts
// estimates without erasing history.
func (c *Client) observeDensity(li int, region geom.Rect, rows int) {
	area := region.Area()
	if area <= 0 {
		return
	}
	d := float64(rows) / area
	c.density[li] = d
	grid := c.densityGrid[li]
	if grid == nil {
		grid = make(map[cellKey]float64)
		c.densityGrid[li] = grid
	}
	c0 := int(math.Floor(region.MinX / densityCellSize))
	c1 := int(math.Floor(region.MaxX / densityCellSize))
	r0 := int(math.Floor(region.MinY / densityCellSize))
	r1 := int(math.Floor(region.MaxY / densityCellSize))
	for cy := r0; cy <= r1; cy++ {
		for cx := c0; cx <= c1; cx++ {
			k := cellKey{cx, cy}
			if prev, ok := grid[k]; ok {
				grid[k] = 0.5*prev + 0.5*d
			} else {
				grid[k] = d
			}
		}
	}
}

// DensityField exposes the layer's learned density grid in the form the
// semantic predictor consumes: the mean observed density of the cells a
// region covers, with ok=false when none of them has been seen.
func (c *Client) DensityField(li int) prefetch.DensityField {
	return func(region geom.Rect) (float64, bool) {
		grid := c.densityGrid[li]
		if grid == nil {
			return 0, false
		}
		c0 := int(math.Floor(region.MinX / densityCellSize))
		c1 := int(math.Floor(region.MaxX / densityCellSize))
		r0 := int(math.Floor(region.MinY / densityCellSize))
		r1 := int(math.Floor(region.MaxY / densityCellSize))
		var sum float64
		n := 0
		for cy := r0; cy <= r1; cy++ {
			for cx := c0; cx <= c1; cx++ {
				if d, ok := grid[cellKey{cx, cy}]; ok {
					sum += d
					n++
				}
			}
		}
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), true
	}
}
